"""Overload with and without UAM admission shedding.

Injects seeded out-of-spec arrival bursts (beyond the tasks' declared
UAM ``a_i`` budgets) into a Figure-10-style workload under lock-free RUA,
then runs the identical faulted workload twice: once with the admission
guard shedding every out-of-spec arrival, once admitting everything.
Runtime invariant monitors and a bounded-retry guard are active in both
runs, so each prints a structured degradation report.

Run:  python examples/overload_shedding.py [bursts_per_task]
"""

import random
import sys

from repro.experiments.runner import run_once
from repro.experiments.workloads import paper_taskset
from repro.faults import AdmissionPolicy, FaultPlan, RetryGuard, ShedMode
from repro.units import MS

HORIZON = 60 * MS
SEED = 42


def run(tasks, plan, shedding: bool):
    return run_once(
        tasks, "lockfree", HORIZON, random.Random(SEED + 1),
        fault_plan=plan,
        admission=AdmissionPolicy(ShedMode.SHED) if shedding else None,
        retry_guard=RetryGuard(max_retries=8),
        monitors=True,
    )


def main() -> None:
    bursts = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    rng = random.Random(SEED)
    tasks = paper_taskset(rng, accesses_per_job=2, target_load=0.8)
    plan = FaultPlan.burst_storm(SEED + 13, len(tasks), HORIZON,
                                 bursts_per_task=bursts, burst_size=2)
    print(f"Workload: {len(tasks)} tasks at AL=0.8, plus {bursts} "
          f"out-of-spec arrival bursts per task (x2 jobs each)\n")
    for shedding in (True, False):
        result = run(tasks, plan, shedding)
        label = "shedding ON " if shedding else "shedding OFF"
        print(f"{label}: AUR={result.aur:.3f} CMR={result.cmr:.3f} "
              f"jobs={len(result.records)} retries={result.total_retries}")
        print(result.degradation.summary())
        print()
    print("Expected shape: both runs survive the overload without a "
          "crash or an\ninvariant violation, and the shedding run holds "
          "a higher AUR because the\nout-of-spec jobs never dilute the "
          "schedule.")


if __name__ == "__main__":
    main()
