"""Planetary-rover scenario — the paper's Mars Rover motivation.

NASA/JPL's rovers (Clark et al. 2004, cited in the paper's introduction)
run activities with context-dependent execution times: hazard avoidance
must react quickly, science activities are valuable but deferrable, and
telemetry windows are hard cutoffs.  Execution times vary with terrain,
so the system sees transient overloads — the "dynamic embedded real-time
system" the paper targets.

This example sweeps the load (terrain difficulty) and shows the
utility-accrual behaviour of lock-free vs lock-based RUA across the
underload → overload transition, including the increasing-TUF intercept
case (drive-window utility grows as the rover approaches its waypoint).

Run:  python examples/mars_rover.py
"""

from repro.arrivals import UAMSpec
from repro.api import simulate
from repro.tasks import make_task, scale_to_load
from repro.tuf import LinearDecreasingTUF, PiecewiseLinearTUF, StepTUF
from repro.units import MS, US


def build_rover_taskset():
    """Five rover activities sharing the vehicle-state and science-data
    stores (objects 0 and 1)."""
    return [
        make_task(
            "hazard-avoidance",
            arrival=UAMSpec(1, 2, 25 * MS),    # terrain-driven bursts
            tuf=StepTUF(critical_time=7 * MS, height=50.0),
            compute=2 * MS,
            accesses=[(0, 300 * US)],
        ),
        make_task(
            "navigation",
            arrival=UAMSpec(1, 1, 160 * MS),
            tuf=LinearDecreasingTUF(critical_time=150 * MS, initial=10.0),
            compute=25 * MS,
            accesses=[(0, 3 * MS)],            # long vehicle-state update
        ),
        make_task(
            "science-imaging",
            arrival=UAMSpec(1, 1, 380 * MS),
            tuf=PiecewiseLinearTUF(points=(
                (0, 8.0), (100 * MS, 8.0), (350 * MS, 0.0),
            )),
            compute=60 * MS,
            accesses=[(1, 4 * MS)],            # bulk science-data append
        ),
        make_task(
            "telemetry-uplink",
            arrival=UAMSpec(1, 1, 420 * MS),
            tuf=StepTUF(critical_time=400 * MS, height=15.0),
            compute=40 * MS,
            accesses=[(1, 3 * MS)],
        ),
        make_task(
            "housekeeping",
            arrival=UAMSpec(1, 1, 220 * MS),
            tuf=LinearDecreasingTUF(critical_time=200 * MS, initial=1.0),
            compute=15 * MS,
            accesses=[(0, 500 * US)],
        ),
    ]


def main() -> None:
    print("Mars-rover scenario: load sweep (terrain difficulty)")
    print(f"{'AL':>5} | {'lock-based AUR':>15} {'lock-free AUR':>15} "
          f"| {'lock-based CMR':>15} {'lock-free CMR':>15} "
          f"| {'sched ovh LB/LF [ms]':>21}")
    for load in (0.3, 0.6, 0.9, 1.1, 1.4):
        tasks = scale_to_load(build_rover_taskset(), load)
        row = {}
        for sync in ("lockbased", "lockfree"):
            summary = simulate(tasks, sync=sync, horizon=8_000 * MS,
                               seed=11, arrival_style="uniform")
            row[sync] = summary
        lb_ovh = row["lockbased"].result.scheduler_overhead_time / MS
        lf_ovh = row["lockfree"].result.scheduler_overhead_time / MS
        print(f"{load:5.1f} | {row['lockbased'].aur:15.3f} "
              f"{row['lockfree'].aur:15.3f} | "
              f"{row['lockbased'].cmr:15.3f} {row['lockfree'].cmr:15.3f} "
              f"| {lb_ovh:9.1f} / {lf_ovh:8.1f}")
    print()
    print("As terrain difficulty pushes the rover into overload, utility "
          "degrades\ngracefully under RUA (deadline scheduling would "
          "collapse instead).  With only\nfive activities both sharing "
          "styles salvage similar utility, but lock-free\ngets it while "
          "spending a fraction of the CPU on scheduling — headroom the\n"
          "rover keeps for science.  Scale the task count up (see "
          "quickstart.py and\nthe Figure 12/13 benches) and the "
          "lock-based margin collapses outright.")


if __name__ == "__main__":
    main()
