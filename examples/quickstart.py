"""Quickstart: compare lock-based and lock-free RUA on one workload.

Builds a random 8-task / 6-queue workload at a configurable approximate
load, runs it under all four sharing/scheduling styles, and prints the
paper's headline metrics (AUR, CMR) plus the mechanism statistics that
explain them (retries, blockings, scheduler overhead).

Run:  python examples/quickstart.py [load]
"""

import sys

from repro import quick_simulation


def main() -> None:
    load = float(sys.argv[1]) if len(sys.argv) > 1 else 1.1
    print(f"Workload: 8 tasks, 6 shared queues, AL = {load}")
    print(f"{'style':<10} {'AUR':>6} {'CMR':>6} {'jobs':>6} "
          f"{'retries':>8} {'blocked':>8} {'sched overhead [us]':>20}")
    for sync in ("ideal", "edf", "lockfree", "lockbased"):
        summary = quick_simulation(
            n_tasks=8, n_objects=6, sync=sync, load=load,
            horizon_us=2_000_000, seed=42,
        )
        result = summary.result
        print(f"{sync:<10} {summary.aur:6.3f} {summary.cmr:6.3f} "
              f"{len(result.records):6d} {result.total_retries:8d} "
              f"{result.total_blockings:8d} "
              f"{result.scheduler_overhead_time / 1000:20.1f}")
    print()
    print("Expected shape (the paper's Figures 10-13): during underloads "
          "(try load 0.4)\nevery style meets everything; during overloads "
          "(load 1.1+) lock-free RUA\naccrues far more utility than "
          "lock-based RUA.")


if __name__ == "__main__":
    main()
