"""Retry-bound study — Theorem 2 hands-on.

Shows, for an interference-heavy workload under adversarial bursty UAM
arrivals, how the measured per-job lock-free retries compare to the
analytical bound f_i = 3 a_i + sum 2 a_j (ceil(C_i / W_j) + 1), and how
the two retry policies (conservative ON_PREEMPTION vs realistic
ON_CONFLICT) change the measurement but never the soundness.

Also demonstrates the *real* Michael & Scott queue retrying under the
interleaving VM, connecting the kernel-level retry model to the actual
published algorithm.

Run:  python examples/retry_bound_study.py
"""

import random

from repro.analysis.retry_bound import retry_bound_for_taskset
from repro.experiments.runner import run_once
from repro.experiments.workloads import interference_taskset
from repro.lockfree import MSQueue, VM, adversarial_scheduler
from repro.sim.objects import RetryPolicy
from repro.units import MS


def kernel_level_study() -> None:
    print("=== Kernel-level: simulated retries vs Theorem 2 bound ===")
    rng = random.Random(3)
    tasks = interference_taskset(rng)
    bounds = [retry_bound_for_taskset(tasks, i) for i in range(len(tasks))]
    print(f"{'task':<6} {'bound f_i':>9} "
          f"{'max retries (preempt)':>22} {'max retries (conflict)':>23}")
    worst = {}
    for policy in (RetryPolicy.ON_PREEMPTION, RetryPolicy.ON_CONFLICT):
        worst[policy] = {t.name: 0 for t in tasks}
        for seed in range(3):
            result = run_once(tasks, "lockfree", 400 * MS,
                              random.Random(seed), arrival_style="bursty",
                              retry_policy=policy)
            for record in result.records:
                worst[policy][record.task_name] = max(
                    worst[policy][record.task_name], record.retries)
    for index, task in enumerate(tasks):
        print(f"{task.name:<6} {bounds[index]:9d} "
              f"{worst[RetryPolicy.ON_PREEMPTION][task.name]:22d} "
              f"{worst[RetryPolicy.ON_CONFLICT][task.name]:23d}")
    print()


def structure_level_study() -> None:
    print("=== Structure-level: Michael & Scott queue under an "
          "adversarial VM ===")
    for burst in (1, 2, 4, 8):
        queue = MSQueue()
        vm = VM(scheduler=adversarial_scheduler(burst=burst), seed=1)
        for producer in range(6):
            def body(pid=producer):
                for v in range(10):
                    yield from queue.enqueue((pid, v))
            vm.spawn(f"p{producer}", body())
        vm.run()
        drained = len(queue.drain_sequential())
        print(f"burst={burst}: {queue.total_retries:3d} CAS retries "
              f"across 60 enqueues; all {drained} elements intact")
    print()
    print("Shorter scheduler bursts = more mid-operation preemptions = "
          "more retries,\nyet every element survives: lock-freedom "
          "trades retries for progress, never\ncorrectness — the "
          "tradeoff Theorem 3 prices.")


def main() -> None:
    kernel_level_study()
    structure_level_study()


if __name__ == "__main__":
    main()
