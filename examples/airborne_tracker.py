"""AWACS-style airborne tracker — the paper's Figure 1(a)/(b) scenario.

An adaptive airborne tracking system (Clark et al. 1999) runs, per radar
scan, a pipeline of activities with heterogeneous time constraints:

* plot correlation   — parabolically decaying TUF (early correlation is
  far more valuable);
* track association  — hard step TUF (useless after the gate closes);
* track maintenance  — linearly decaying TUF.

All three share track-database queues.  Under threat-dense conditions the
sensor produces bursts of plots — a textbook UAM arrival pattern — and
the system overloads; the interesting question is how much utility each
synchronization discipline salvages.

Run:  python examples/airborne_tracker.py
"""

import random

from repro.arrivals import UAMSpec
from repro.api import simulate
from repro.tasks import make_task
from repro.tuf.catalog import (
    awacs_association_tuf,
    awacs_plot_correlation_tuf,
    awacs_track_maintenance_tuf,
)
from repro.units import MS, US


def build_tracker_taskset():
    """Three tracker activities plus a radar-burst interferer, sharing
    two track-database queues (objects 0 and 1)."""
    scan = 50 * MS   # radar scan period
    return [
        make_task(
            "plot-correlation",
            arrival=UAMSpec(1, 3, scan),    # bursts of up to 3 plot batches
            tuf=awacs_plot_correlation_tuf(critical_time=20 * MS,
                                           importance=5.0),
            compute=2 * MS,
            accesses=[(0, 100 * US), (1, 100 * US)],
        ),
        make_task(
            "track-association",
            arrival=UAMSpec(1, 1, scan),
            tuf=awacs_association_tuf(critical_time=30 * MS,
                                      importance=10.0),
            compute=4 * MS,
            accesses=[(0, 150 * US)],
        ),
        make_task(
            "track-maintenance",
            arrival=UAMSpec(1, 1, scan),
            tuf=awacs_track_maintenance_tuf(critical_time=45 * MS,
                                            importance=2.0),
            compute=6 * MS,
            accesses=[(1, 200 * US)],
        ),
        make_task(
            "sensor-io",
            arrival=UAMSpec(1, 4, 10 * MS),  # bursty interrupt-driven IO
            tuf=awacs_association_tuf(critical_time=3 * MS,
                                      importance=1.0),
            compute=400 * US,
            accesses=[(0, 50 * US)],
        ),
    ]


def main() -> None:
    tasks = build_tracker_taskset()
    print("AWACS tracker scenario: 4 activities, 2 shared track queues")
    print(f"{'style':<10} {'AUR':>6} {'CMR':>6} "
          f"{'mean sojourn [ms]':>18} {'aborts':>7}")
    for sync in ("lockbased", "lockfree"):
        summary = simulate(tasks, sync=sync, horizon=2_000 * MS, seed=7,
                           arrival_style="bursty")
        result = summary.result
        sojourn = (result.mean_sojourn() or 0) / MS
        print(f"{sync:<10} {summary.aur:6.3f} {summary.cmr:6.3f} "
              f"{sojourn:18.2f} {result.abort_count:7d}")
    print()
    print("Lock-free sharing keeps the urgent sensor-io and "
          "plot-correlation activities\nfrom queueing behind the long "
          "track-maintenance critical sections, which is\nexactly the "
          "dependency-chain cost the paper eliminates.")


if __name__ == "__main__":
    main()
