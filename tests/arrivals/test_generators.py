"""Tests for UAM arrival generators — conformance by construction."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.arrivals import (
    BurstyUAMGenerator,
    PeriodicGenerator,
    PoissonThinnedUAMGenerator,
    UAMSpec,
    UniformUAMGenerator,
    check_uam,
    generator_for,
    max_arrivals_in_any_window,
)

specs = st.builds(
    UAMSpec,
    min_arrivals=st.integers(min_value=0, max_value=4),
    max_arrivals=st.integers(min_value=4, max_value=8),
    window=st.integers(min_value=50, max_value=5000),
)


def _conforms(generator, spec, seed, horizon=None):
    horizon = horizon or spec.window * 12
    trace = generator.generate(random.Random(seed), horizon)
    assert trace == sorted(trace)
    assert all(0 <= t < horizon for t in trace)
    return check_uam(trace, spec, horizon=horizon)


class TestPeriodicGenerator:
    def test_exact_periodic_trace(self):
        gen = PeriodicGenerator(period=100)
        trace = gen.generate(random.Random(0), 1000)
        assert trace == list(range(0, 1000, 100))

    def test_phase_offsets_trace(self):
        gen = PeriodicGenerator(period=100, phase=30)
        trace = gen.generate(random.Random(0), 500)
        assert trace[0] == 30

    def test_no_jitter_conforms_to_periodic_spec(self):
        gen = PeriodicGenerator(period=100)
        assert _conforms(gen, gen.spec, seed=1) == []

    def test_jitter_conforms_to_widened_spec(self):
        gen = PeriodicGenerator(period=100, jitter=25)
        assert gen.spec == UAMSpec(0, 2, 100)
        for seed in range(10):
            assert _conforms(gen, gen.spec, seed=seed) == []

    def test_rejects_oversized_jitter(self):
        with pytest.raises(ValueError):
            PeriodicGenerator(period=100, jitter=26)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            PeriodicGenerator(period=0)


class TestUniformUAMGenerator:
    @settings(max_examples=40, deadline=None)
    @given(spec=specs, seed=st.integers(0, 1000),
           burstiness=st.sampled_from([0.0, 0.5, 1.0]))
    def test_always_conformant(self, spec, seed, burstiness):
        gen = UniformUAMGenerator(spec, burstiness=burstiness)
        assert _conforms(gen, spec, seed) == []

    def test_zero_burstiness_is_exactly_the_grid(self):
        spec = UAMSpec(min_arrivals=2, max_arrivals=5, window=100)
        gen = UniformUAMGenerator(spec, burstiness=0.0)
        trace = gen.generate(random.Random(0), 1000)
        # Exactly l arrivals per window, in every window.
        assert len(trace) == 2 * 10

    def test_burstiness_increases_volume(self):
        spec = UAMSpec(min_arrivals=1, max_arrivals=6, window=100)
        quiet = UniformUAMGenerator(spec, burstiness=0.1)
        busy = UniformUAMGenerator(spec, burstiness=1.0)
        horizon = 10_000
        n_quiet = len(quiet.generate(random.Random(5), horizon))
        n_busy = len(busy.generate(random.Random(5), horizon))
        assert n_busy > n_quiet

    def test_rejects_bad_burstiness(self):
        with pytest.raises(ValueError):
            UniformUAMGenerator(UAMSpec(1, 2, 10), burstiness=1.5)


class TestBurstyUAMGenerator:
    def test_bursts_saturate_the_envelope(self):
        spec = UAMSpec(min_arrivals=1, max_arrivals=4, window=100)
        gen = BurstyUAMGenerator(spec)
        trace = gen.generate(random.Random(0), 1000)
        assert max_arrivals_in_any_window(trace, 100) == 4
        assert check_uam(trace, spec, horizon=1000) == []

    def test_burst_positions_are_window_starts(self):
        spec = UAMSpec(min_arrivals=1, max_arrivals=3, window=50)
        trace = BurstyUAMGenerator(spec, phase=10).generate(
            random.Random(0), 200)
        assert trace == sorted([10, 60, 110, 160] * 3)

    @settings(max_examples=30, deadline=None)
    @given(spec=specs, seed=st.integers(0, 100))
    def test_always_conformant(self, spec, seed):
        gen = BurstyUAMGenerator(spec)
        assert _conforms(gen, spec, seed) == []


class TestPoissonThinnedUAMGenerator:
    @settings(max_examples=30, deadline=None)
    @given(spec=specs, seed=st.integers(0, 100),
           intensity=st.sampled_from([0.3, 1.0, 3.0]))
    def test_always_conformant(self, spec, seed, intensity):
        gen = PoissonThinnedUAMGenerator(spec, intensity=intensity)
        assert _conforms(gen, spec, seed) == []

    def test_high_intensity_approaches_envelope(self):
        spec = UAMSpec(min_arrivals=0, max_arrivals=5, window=100)
        gen = PoissonThinnedUAMGenerator(spec, intensity=10.0)
        trace = gen.generate(random.Random(3), 5000)
        # Thinning should leave nearly a-per-window density.
        assert len(trace) > 0.7 * 5 * 50

    def test_rejects_nonpositive_intensity(self):
        with pytest.raises(ValueError):
            PoissonThinnedUAMGenerator(UAMSpec(0, 1, 10), intensity=0)


class TestFactory:
    def test_all_styles_resolve(self):
        spec = UAMSpec(1, 3, 100)
        for style, cls in (("uniform", UniformUAMGenerator),
                           ("bursty", BurstyUAMGenerator),
                           ("poisson", PoissonThinnedUAMGenerator)):
            assert isinstance(generator_for(spec, style), cls)

    def test_periodic_style_requires_periodic_spec(self):
        assert isinstance(
            generator_for(UAMSpec.periodic(10), "periodic"),
            PeriodicGenerator,
        )
        with pytest.raises(ValueError):
            generator_for(UAMSpec(1, 2, 10), "periodic")

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            generator_for(UAMSpec(1, 1, 10), "fractal")


def test_determinism_same_seed_same_trace():
    spec = UAMSpec(1, 4, 200)
    gen = UniformUAMGenerator(spec)
    a = gen.generate(random.Random(42), 5000)
    b = gen.generate(random.Random(42), 5000)
    assert a == b
