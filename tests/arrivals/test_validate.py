"""Tests for sliding-window UAM validation."""

import pytest

from repro.arrivals import (
    OnlineWindowCounter,
    UAMSpec,
    check_uam,
    max_arrivals_in_any_window,
    min_arrivals_in_any_window,
)


class TestMaxCounting:
    def test_empty_trace(self):
        assert max_arrivals_in_any_window([], 10) == 0

    def test_single_arrival(self):
        assert max_arrivals_in_any_window([5], 10) == 1

    def test_cluster_inside_window(self):
        assert max_arrivals_in_any_window([0, 1, 2, 50], 10) == 3

    def test_simultaneous_arrivals(self):
        assert max_arrivals_in_any_window([7, 7, 7], 10) == 3

    def test_boundary_is_half_open(self):
        # Window [0, 10) excludes the arrival at exactly t=10.
        assert max_arrivals_in_any_window([0, 10], 10) == 1
        assert max_arrivals_in_any_window([0, 9], 10) == 2

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            max_arrivals_in_any_window([1], 0)


class TestMinCounting:
    def test_dense_trace_min(self):
        times = list(range(0, 100, 10))
        assert min_arrivals_in_any_window(times, 20, 100) == 2

    def test_gap_produces_low_min(self):
        # Nothing in [40, 60): an empty window exists.
        times = [0, 10, 20, 30, 70, 80, 90]
        assert min_arrivals_in_any_window(times, 20, 100) == 0

    def test_periodic_grid_has_exact_count(self):
        # Period-10 grid: every half-open window of 30 holds exactly 3.
        times = list(range(0, 300, 10))
        assert min_arrivals_in_any_window(times, 30, 300) == 3

    def test_rejects_horizon_below_window(self):
        with pytest.raises(ValueError):
            min_arrivals_in_any_window([0], 10, 5)


class TestCheckUAM:
    def test_conformant_trace_has_no_violations(self):
        spec = UAMSpec(min_arrivals=1, max_arrivals=2, window=10)
        times = [0, 5, 10, 15, 20, 25]
        assert check_uam(times, spec, horizon=30) == []

    def test_max_violation_detected(self):
        spec = UAMSpec(min_arrivals=0, max_arrivals=2, window=10)
        violations = check_uam([0, 1, 2], spec)
        assert violations
        assert all(v.kind == "max" for v in violations)

    def test_min_violation_detected(self):
        spec = UAMSpec(min_arrivals=1, max_arrivals=5, window=10)
        violations = check_uam([0, 30], spec, horizon=40)
        assert any(v.kind == "min" for v in violations)

    def test_min_not_checked_without_horizon(self):
        spec = UAMSpec(min_arrivals=1, max_arrivals=5, window=10)
        assert check_uam([0, 30], spec) == []

    def test_rejects_unsorted_trace(self):
        spec = UAMSpec(0, 2, 10)
        with pytest.raises(ValueError):
            check_uam([5, 3], spec)

    def test_violation_str_is_informative(self):
        spec = UAMSpec(0, 1, 10)
        violation = check_uam([0, 1], spec)[0]
        assert "max" in str(violation)


class TestOnlineWindowCounter:
    def test_counts_half_open_window(self):
        counter = OnlineWindowCounter(window=10, limit=3)
        for t in (0, 4, 9):
            counter.admit(t)
        # (t-10, t]: the t=0 admission leaves the window exactly at t=10.
        assert counter.count_at(9) == 3
        assert counter.count_at(10) == 2

    def test_would_conform_tracks_limit(self):
        counter = OnlineWindowCounter(window=10, limit=2)
        assert counter.would_conform(0)
        counter.admit(0)
        counter.admit(1)
        assert not counter.would_conform(5)
        assert counter.would_conform(10)    # t=0 has left the window

    def test_earliest_admissible(self):
        counter = OnlineWindowCounter(window=10, limit=2)
        counter.admit(0)
        counter.admit(4)
        # The 2nd-most-recent admission (t=0) blocks until t=10.
        assert counter.earliest_admissible(5) == 10
        assert counter.earliest_admissible(10) == 10
        assert counter.earliest_admissible(25) == 25

    def test_admissions_must_be_non_decreasing(self):
        counter = OnlineWindowCounter(window=10, limit=2)
        counter.admit(5)
        counter.admit(5)
        with pytest.raises(ValueError):
            counter.admit(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineWindowCounter(window=0, limit=1)
        with pytest.raises(ValueError):
            OnlineWindowCounter(window=10, limit=0)

    def test_greedy_admission_matches_offline_validator(self):
        import random as _random

        rng = _random.Random(2)
        spec = UAMSpec(0, 3, 50)
        counter = OnlineWindowCounter(window=spec.window,
                                      limit=spec.max_arrivals)
        t = 0
        for _ in range(200):
            t += rng.randrange(0, 12)
            if counter.would_conform(t):
                counter.admit(t)
        admitted = list(counter.admitted_times)
        # The online filter yields exactly what check_uam accepts.
        assert check_uam(admitted, spec) == []
        # And it is maximal: every admission instant was saturating or
        # legal, so re-checking each prefix finds no slack violation.
        assert max_arrivals_in_any_window(admitted, spec.window) == 3
