"""Tests for the UAM spec type."""

import pytest
from hypothesis import given, strategies as st

from repro.arrivals import UAMSpec


class TestValidation:
    def test_accepts_basic_tuple(self):
        spec = UAMSpec(min_arrivals=1, max_arrivals=3, window=1000)
        assert spec.window == 1000

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            UAMSpec(min_arrivals=0, max_arrivals=1, window=0)

    def test_rejects_negative_min(self):
        with pytest.raises(ValueError):
            UAMSpec(min_arrivals=-1, max_arrivals=1, window=10)

    def test_rejects_zero_max(self):
        with pytest.raises(ValueError):
            UAMSpec(min_arrivals=0, max_arrivals=0, window=10)

    def test_rejects_min_above_max(self):
        with pytest.raises(ValueError):
            UAMSpec(min_arrivals=3, max_arrivals=2, window=10)


class TestPeriodicSpecialCase:
    def test_periodic_constructor(self):
        spec = UAMSpec.periodic(500)
        assert spec == UAMSpec(min_arrivals=1, max_arrivals=1, window=500)
        assert spec.is_periodic

    def test_non_periodic_flag(self):
        assert not UAMSpec(1, 2, 500).is_periodic
        assert not UAMSpec(0, 1, 500).is_periodic


class TestRates:
    def test_peak_and_guaranteed_rates(self):
        spec = UAMSpec(min_arrivals=2, max_arrivals=6, window=300)
        assert spec.peak_rate == pytest.approx(6 / 300)
        assert spec.guaranteed_rate == pytest.approx(2 / 300)


class TestIntervalCounting:
    def test_zero_interval_allows_one_burst(self):
        spec = UAMSpec(1, 4, 100)
        assert spec.max_arrivals_in(0) == 4

    def test_interval_shorter_than_window_gives_two_bursts(self):
        # Theorem 2 proof: ceil(C/W)+1 = 2 when C < W.
        spec = UAMSpec(1, 3, 100)
        assert spec.max_arrivals_in(50) == 6

    def test_exact_window_multiples(self):
        spec = UAMSpec(1, 2, 100)
        assert spec.max_arrivals_in(100) == 4   # (1 + 1) * 2
        assert spec.max_arrivals_in(200) == 6   # (2 + 1) * 2

    def test_min_counting_floors(self):
        spec = UAMSpec(2, 5, 100)
        assert spec.min_arrivals_in(99) == 0
        assert spec.min_arrivals_in(100) == 2
        assert spec.min_arrivals_in(250) == 4

    def test_rejects_negative_intervals(self):
        spec = UAMSpec(1, 1, 10)
        with pytest.raises(ValueError):
            spec.max_arrivals_in(-1)
        with pytest.raises(ValueError):
            spec.min_arrivals_in(-1)

    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=1, max_value=10**6),
           st.integers(min_value=0, max_value=10**7))
    def test_max_bound_dominates_min_bound(self, a, window, interval):
        spec = UAMSpec(min_arrivals=min(a, 1), max_arrivals=a, window=window)
        assert spec.max_arrivals_in(interval) >= spec.min_arrivals_in(interval)
