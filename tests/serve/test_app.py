"""ServeApp end-to-end: request pipeline, HTTP surface, drain."""

import http.client
import json
import threading
import time

import pytest

from repro.api import quick_scenario
from repro.campaign.chaos import ChaosPlan
from repro.serve import ServeApp, ServeConfig, load_drain_journal
from repro.serve.breaker import CLOSED, OPEN


def scenario_body(seed=1, n_tasks=3, horizon_us=5_000, **extra):
    scenario = quick_scenario(n_tasks=n_tasks, horizon_us=horizon_us,
                              seed=seed)
    return json.dumps({"scenario": scenario.to_dict(), **extra}).encode()


def make_config(tmp_path, **overrides):
    overrides.setdefault("workers", 1)
    overrides.setdefault("cache_dir", str(tmp_path / "cache"))
    overrides.setdefault("trial_timeout", 20.0)
    overrides.setdefault("drain_grace_s", 2.0)
    return ServeConfig(**overrides)


@pytest.fixture
def app_factory(tmp_path):
    apps = []

    def make(start=True, **overrides):
        app = ServeApp(make_config(tmp_path, **overrides))
        apps.append(app)
        if start:
            app.start()
        return app

    yield make
    for app in apps:
        app.close()


class TestSimulatePipeline:
    def test_compute_then_cache_hit_byte_identical(self, app_factory):
        app = app_factory()
        status, first, _ = app.handle_simulate(scenario_body())
        assert status == 200 and first["cached"] is False
        status, second, _ = app.handle_simulate(scenario_body())
        assert status == 200 and second["cached"] is True
        assert first["result"] == second["result"]
        assert first["digest"] == second["digest"]
        assert app.cache.stats()["hits"] == 1

    def test_corrupted_cache_entry_recomputes_same_bytes(self, app_factory):
        app = app_factory()
        _, first, _ = app.handle_simulate(scenario_body())
        path = app.cache.path_for(first["digest"])
        path.write_text(path.read_text()[:40])     # tear the entry
        status, again, _ = app.handle_simulate(scenario_body())
        assert status == 200 and again["cached"] is False
        assert again["result"] == first["result"]  # recompute, not garbage
        assert app.cache.stats()["corrupt"] == 1

    def test_bad_requests_are_400(self, app_factory):
        app = app_factory(start=False)
        for body in (b"", b"not json", b"[1,2]",
                     b'{"scenario": {"bogus": 1}}',
                     b'{"scenario": 7}'):
            status, payload, _ = app.handle_simulate(body)
            assert status == 400, body
            assert payload["error"] in ("bad_request", "bad_scenario")
        status, payload, _ = app.handle_simulate(
            scenario_body(deadline_s=-1))
        assert status == 400
        status, payload, _ = app.handle_simulate(
            scenario_body(priority="high"))
        assert status == 400

    def test_queue_full_sheds_429_with_retry_after(self, app_factory):
        # No dispatchers: the queue can only fill.
        app = app_factory(start=False, queue_capacity=1, queue_watermark=1)
        results = []
        first = threading.Thread(target=lambda: results.append(
            app.handle_simulate(scenario_body(seed=1, deadline_s=0.5))))
        first.start()
        deadline = time.monotonic() + 2.0
        while app.queue.depth() == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        # Equal density at the watermark: shed immediately.
        status, payload, headers = app.handle_simulate(
            scenario_body(seed=2, deadline_s=5.0))
        assert status == 429
        assert payload["reason"] == "queue_full"
        assert "Retry-After" in headers
        first.join(timeout=5.0)
        status_first, _, _ = results[0]
        assert status_first == 504              # nobody served it

    def test_denser_request_evicts_and_answers_the_sparse_one(
            self, app_factory):
        app = app_factory(start=False, queue_capacity=1, queue_watermark=1)
        results = []
        sparse = threading.Thread(target=lambda: results.append(
            app.handle_simulate(
                scenario_body(seed=1, priority=1.0, deadline_s=10.0))))
        sparse.start()
        deadline = time.monotonic() + 2.0
        while app.queue.depth() == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        done = threading.Event()
        dense_out = []

        def dense():
            dense_out.append(app.handle_simulate(
                scenario_body(seed=2, priority=50.0, deadline_s=0.3)))
            done.set()

        threading.Thread(target=dense).start()
        sparse.join(timeout=5.0)                # evicted -> answered now
        status, payload, _ = results[0]
        assert status == 429
        assert payload["reason"] == "evicted"
        done.wait(timeout=5.0)
        assert dense_out[0][0] == 504           # admitted, never dispatched

    def test_deadline_in_queue_is_504(self, app_factory):
        app = app_factory(start=False)
        started = time.monotonic()
        status, payload, _ = app.handle_simulate(
            scenario_body(deadline_s=0.2))
        assert status == 504
        assert payload["reason"] == "deadline"
        assert 0.15 < time.monotonic() - started < 5.0


class TestBreaker:
    def test_trips_fast_fails_then_recovers(self, app_factory):
        app = app_factory(
            max_attempts=1,                      # crashes are terminal
            breaker_threshold=2, breaker_reset_s=0.3,
            chaos=ChaosPlan(crash=(0, 1)))
        for seed in (10, 11):                    # two crashing trials
            status, payload, _ = app.handle_simulate(
                scenario_body(seed=seed, deadline_s=20.0))
            assert status == 500
            assert payload["kind"] == "crash"
        assert app.breaker.state == OPEN
        # Hard-open: fast 503 without touching queue or pool.
        status, payload, headers = app.handle_simulate(
            scenario_body(seed=12, deadline_s=20.0))
        assert status == 503 and payload["reason"] == "breaker"
        assert "Retry-After" in headers
        time.sleep(0.35)                         # half-open timer
        status, payload, _ = app.handle_simulate(
            scenario_body(seed=13, deadline_s=20.0))
        assert status == 200                     # probe succeeded
        assert app.breaker.state == CLOSED
        assert app.breaker.transitions >= 3


class TestDrain:
    def test_draining_rejects_new_work_and_journals_queued(
            self, app_factory, tmp_path):
        journal = tmp_path / "drain.jsonl"
        app = app_factory(start=False, drain_journal=str(journal))
        results = []
        waiter = threading.Thread(target=lambda: results.append(
            app.handle_simulate(scenario_body(seed=5, deadline_s=10.0))))
        waiter.start()
        deadline = time.monotonic() + 2.0
        while app.queue.depth() == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        report = app.shutdown(grace_s=0.0, reason="SIGTERM")
        waiter.join(timeout=5.0)
        status, payload, _ = results[0]
        assert status == 503 and payload["error"] == "draining"
        assert report["unfinished_journaled"] == 1
        entries = load_drain_journal(journal)
        assert len(entries) == 1
        assert entries[0]["digest"] == payload["digest"]
        # Draining app refuses fresh work.
        status, payload, headers = app.handle_simulate(scenario_body())
        assert status == 503 and "Retry-After" in headers

    def test_grace_lets_inflight_work_finish(self, app_factory):
        app = app_factory()
        status, payload, _ = app.handle_simulate(scenario_body(seed=6))
        assert status == 200
        report = app.shutdown(grace_s=2.0)
        assert report["unfinished_journaled"] == 0
        assert app.stats()["draining"] is True


class TestHTTP:
    def post(self, app, path, body):
        connection = http.client.HTTPConnection("127.0.0.1", app.port,
                                                timeout=30)
        try:
            connection.request("POST", path, body=body,
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    def get(self, app, path):
        connection = http.client.HTTPConnection("127.0.0.1", app.port,
                                                timeout=30)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def test_full_http_surface(self, app_factory):
        app = app_factory()
        status, payload = self.post(app, "/simulate", scenario_body(seed=8))
        assert status == 200
        digest = payload["digest"]

        status, raw = self.get(app, f"/result/{digest}")
        assert status == 200
        assert json.loads(raw)["result"] == payload["result"]
        assert self.get(app, "/result/" + "0" * 64)[0] == 404
        assert self.get(app, "/result/nope")[0] == 400

        status, raw = self.get(app, "/healthz")
        assert status == 200 and json.loads(raw)["status"] == "ok"

        status, raw = self.get(app, "/stats")
        stats = json.loads(raw)
        assert status == 200
        assert stats["cache"]["writes"] == 1
        assert stats["responses"].get("200") == 1

        status, raw = self.get(app, "/metrics")
        text = raw.decode()
        assert status == 200
        for name in ("repro_serve_queue_depth", "repro_serve_breaker_state",
                     "repro_serve_cache_hit_rate", "repro_serve_workers",
                     "repro_serve_responses", "repro_serve_worker_saturation"):
            assert name in text, name
        assert text.rstrip().endswith("# EOF")

        assert self.get(app, "/nothing")[0] == 404
        assert self.post(app, "/nothing", b"{}")[0] == 404
        assert self.post(app, "/simulate", b"x" * (1 << 20 + 1))[0] == 413

    def test_healthz_reports_draining(self, app_factory):
        app = app_factory()
        app.drain.begin("test")
        status, raw = self.get(app, "/healthz")
        assert status == 503
        assert json.loads(raw)["status"] == "draining"
