"""Circuit breaker state machine under an injected clock."""

import pytest

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return Clock()


class TestBreaker:
    def test_trips_after_consecutive_failures(self, clock):
        breaker = CircuitBreaker(threshold=3, reset_after=5.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.rejected_total == 1

    def test_success_resets_the_failure_streak(self, clock):
        breaker = CircuitBreaker(threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED      # streak broken: 2, not 4

    def test_half_opens_on_timer_and_closes_on_probe_success(self, clock):
        breaker = CircuitBreaker(threshold=1, reset_after=2.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.retry_after() == pytest.approx(2.0)
        clock.advance(2.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()              # the probe
        assert not breaker.allow()          # only one probe slot
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_a_fresh_timer(self, clock):
        breaker = CircuitBreaker(threshold=1, reset_after=2.0, clock=clock)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        clock.advance(1.0)
        breaker.record_failure()            # probe failed
        assert breaker.state == OPEN
        assert breaker.retry_after() == pytest.approx(2.0)
        clock.advance(1.9)
        assert not breaker.allow()
        clock.advance(0.1)
        assert breaker.allow()

    def test_record_neutral_frees_the_probe_slot(self, clock):
        breaker = CircuitBreaker(threshold=1, reset_after=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_neutral()            # e.g. client deadline, not pool
        assert breaker.state == HALF_OPEN   # no verdict on the pool
        assert breaker.allow()              # slot reusable

    def test_state_codes_cover_all_states(self, clock):
        breaker = CircuitBreaker(threshold=1, reset_after=1.0, clock=clock)
        assert breaker.state_code == 0
        breaker.record_failure()
        assert breaker.state_code == 2
        clock.advance(1.0)
        assert breaker.state_code == 1

    def test_transitions_are_counted(self, clock):
        breaker = CircuitBreaker(threshold=1, reset_after=1.0, clock=clock)
        breaker.record_failure()            # closed -> open
        clock.advance(1.0)
        breaker.allow()                     # open -> half-open
        breaker.record_success()            # half-open -> closed
        assert breaker.transitions == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after=-1.0)
