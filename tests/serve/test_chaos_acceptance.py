"""Chaos acceptance: the service never serves a wrong result.

Under sustained load with injected worker crashes, a hung trial, and a
corrupted cache entry (ISSUE 6 acceptance criteria):

* every 200 response is byte-identical to a clean ``simulate(scenario)``
  run at the same seed (crashes, retries, rebuilds and cache round-trips
  are invisible in the payload);
* overload is shed with 429s, never queued unboundedly;
* no 5xx caused by the injected faults (retries absorb them);
* the circuit breaker re-closes after the fault burst passes.
"""

import json
import time

import pytest

from repro.api import quick_scenario, simulate
from repro.campaign.chaos import ChaosPlan
from repro.scenario import Scenario
from repro.serve import LoadConfig, ServeApp, ServeConfig, run_load
from repro.serve.breaker import CLOSED
from repro.serve.cache import canonical_payload_json
from repro.serve.pool import result_payload


@pytest.mark.slow
def test_chaos_load_never_serves_a_wrong_result(tmp_path):
    chaos = ChaosPlan(crash=(1, 4), transient=(6,), hang=(2,),
                      hang_seconds=30.0)
    config = ServeConfig(
        workers=2,
        queue_capacity=8,
        queue_watermark=4,
        trial_timeout=0.5,          # kills the hung trial fast
        max_attempts=3,             # retries absorb every injected fault
        breaker_threshold=5,
        breaker_reset_s=0.5,
        default_deadline_s=30.0,
        cache_dir=str(tmp_path / "cache"),
        drain_grace_s=2.0,
        chaos=chaos,
    )
    app = ServeApp(config).start()
    try:
        # Prime the cache with the load run's first scenario, then
        # corrupt the entry on disk: the run must quarantine it and
        # recompute, not serve the damage.
        load_config = LoadConfig(
            url=app.url,
            consumers=4,
            rate=40.0,
            duration_s=1.5,
            seed=0,
            n_scenarios=4,
            n_tasks=4,
            horizon_us=10_000,
            deadline_s=30.0,
            verify=True,            # byte-compare vs clean local runs
        )
        from repro.serve.loadgen import _build_scenarios
        prime = _build_scenarios(load_config)[0]
        status, payload, _ = app.handle_simulate(json.dumps(
            {"scenario": prime}).encode())
        assert status == 200
        entry = app.cache.path_for(payload["digest"])
        entry.write_text(entry.read_text()[:-30] + "GARBAGE-TAIL")

        report = run_load(load_config)
    finally:
        drain = app.shutdown(grace_s=5.0, reason="test over")

    outcomes = report["outcomes"]
    # Every accepted request was answered correctly: the injected
    # crashes, the hang, the transient and the corrupt entry produced
    # zero 5xx and zero wrong bytes.
    assert outcomes["failed"] == 0, report
    assert outcomes["unavailable"] == 0, report
    assert outcomes["transport_error"] == 0, report
    assert outcomes["ok"] > 0
    assert report["verification"]["mismatches"] == []
    assert report["verification"]["verified"] >= 1

    # The faults actually fired and were absorbed.  (The hung trial may
    # surface as "timeout" or as "crash" collateral of a concurrent
    # crash's pool rebuild; both are retryable.)
    kinds = app.pool.failure_kinds
    assert kinds.get("crash", 0) >= 2
    assert kinds.get("crash", 0) + kinds.get("timeout", 0) >= 3
    assert app.pool.retries >= 3
    assert app.pool.rebuilds >= 1
    assert app.cache.stats()["corrupt"] == 1        # the tampered entry
    assert app.cache.stats()["hits"] > 0            # repeats hit the cache

    # Breaker ended the run closed (it may never have tripped: that is
    # the point of retry absorption).
    assert app.breaker.state == CLOSED
    assert drain["unfinished_journaled"] == 0


@pytest.mark.slow
def test_overload_sheds_429_and_recovers(tmp_path):
    """A single worker pinned by a hung trial behind a tiny queue: the
    flood is shed with 429s while the queue depth stays bounded, and
    service recovers once the hang is killed."""
    config = ServeConfig(
        workers=1,
        queue_capacity=2,
        queue_watermark=1,
        trial_timeout=0.6,
        max_attempts=2,
        default_deadline_s=30.0,
        cache_dir=str(tmp_path / "cache"),
        drain_grace_s=2.0,
        chaos=ChaosPlan(hang=(0,), hang_seconds=30.0),
    )
    app = ServeApp(config).start()
    try:
        report = run_load(LoadConfig(
            url=app.url,
            consumers=4,
            rate=60.0,
            duration_s=1.0,
            seed=1,
            n_scenarios=3,
            n_tasks=4,
            horizon_us=10_000,
            deadline_s=30.0,
        ))
        assert app.queue.depth() <= config.queue_capacity
    finally:
        app.shutdown(grace_s=5.0, reason="test over")

    outcomes = report["outcomes"]
    assert outcomes["shed"] > 0                     # overload answered 429
    assert outcomes["ok"] > 0                       # ... but not starved
    assert outcomes["failed"] == 0
    assert app.queue.shed_total > 0
    # Served results still byte-match clean runs (passive check: any
    # divergent 200 for one digest would have been recorded).
    assert report["verification"]["mismatches"] == [] \
        if "verification" in report else True


@pytest.mark.slow
def test_breaker_trips_under_fault_burst_then_recloses(tmp_path):
    """With retries disabled, a crash burst trips the breaker: clients
    get fast 503s instead of queue timeouts, and one clean probe after
    the reset timer re-closes it — end-to-end over HTTP."""
    config = ServeConfig(
        workers=1,
        max_attempts=1,                 # every crash is terminal
        breaker_threshold=2,
        breaker_reset_s=0.4,
        trial_timeout=10.0,
        default_deadline_s=20.0,
        cache_dir=str(tmp_path / "cache"),
        drain_grace_s=2.0,
        chaos=ChaosPlan(crash=(0, 1)),
    )
    app = ServeApp(config).start()
    try:
        def post(seed):
            scenario = quick_scenario(n_tasks=3, horizon_us=5_000,
                                      seed=seed)
            return app.handle_simulate(json.dumps(
                {"scenario": scenario.to_dict(),
                 "deadline_s": 20.0}).encode())

        assert post(100)[0] == 500      # crash 1
        assert post(101)[0] == 500      # crash 2 -> trips
        status, payload, headers = post(102)
        assert status == 503 and payload["reason"] == "breaker"
        time.sleep(0.45)                # half-open
        status, payload, _ = post(103)  # probe, chaos exhausted: succeeds
        assert status == 200
        assert app.breaker.state == CLOSED

        # And the recovered service serves correct bytes.
        scenario = Scenario.from_dict(
            quick_scenario(n_tasks=3, horizon_us=5_000, seed=103).to_dict())
        clean = result_payload(scenario, simulate(scenario))
        assert canonical_payload_json(payload["result"]) == \
            canonical_payload_json(clean)
    finally:
        app.shutdown(grace_s=2.0, reason="test over")
