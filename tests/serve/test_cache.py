"""Result-cache robustness: corruption quarantine, atomic visibility,
cache-dir loss mid-run — every defect degrades to recompute."""

import json
import shutil
import threading

import pytest

from repro.serve.cache import ResultCache, payload_checksum

DIGEST = "ab" + "0" * 62
OTHER = "cd" + "0" * 62
PAYLOAD = {"aur": 0.5, "jobs": 12, "seed": 7}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRoundTrip:
    def test_miss_then_hit(self, cache):
        assert cache.get(DIGEST) is None
        assert cache.put(DIGEST, PAYLOAD) is not None
        assert cache.get(DIGEST) == PAYLOAD
        stats = cache.stats()
        assert stats == {"hits": 1, "misses": 1, "corrupt": 0,
                         "writes": 1, "hit_rate": 0.5}

    def test_rejects_malformed_digests(self, cache):
        for bad in ("", "xyz", "A" * 64, "0" * 63, "../../etc/passwd"):
            with pytest.raises(ValueError):
                cache.get(bad)


class TestCorruption:
    def corrupt_cases(self, cache):
        path = cache.path_for(DIGEST)
        good = path.read_text()
        envelope = json.loads(good)
        tampered = dict(envelope)
        tampered["payload"] = {**PAYLOAD, "aur": 0.9}   # bit-flip, stale sum
        misfiled = dict(envelope)
        misfiled["digest"] = OTHER
        return [
            good[: len(good) // 2],                      # torn write
            "not json at all {{{",                       # garbage
            json.dumps({"payload": PAYLOAD}),            # missing fields
            json.dumps(tampered, sort_keys=True),        # checksum mismatch
            json.dumps(misfiled, sort_keys=True),        # wrong address
        ]

    def test_every_defect_quarantines_and_recomputes(self, cache):
        cache.put(DIGEST, PAYLOAD)
        path = cache.path_for(DIGEST)
        for round_, defect in enumerate(self.corrupt_cases(cache), 1):
            path.write_text(defect)
            assert cache.get(DIGEST) is None           # miss, not garbage
            assert not path.exists()                   # moved aside
            assert len(cache.quarantined()) == round_  # evidence kept
            # The recompute path: overwrite and serve again.
            cache.put(DIGEST, PAYLOAD)
            assert cache.get(DIGEST) == PAYLOAD
        assert cache.stats()["corrupt"] == len(self.corrupt_cases(cache))

    def test_quarantine_names_never_collide(self, cache):
        path = cache.path_for(DIGEST)
        for _ in range(3):
            cache.put(DIGEST, PAYLOAD)
            path.write_text("garbage")
            assert cache.get(DIGEST) is None
        assert len(cache.quarantined()) == 3


class TestConcurrency:
    def test_read_during_write_sees_old_or_new_never_torn(self, cache):
        """Hammer get() while put() rewrites the same entry: atomic
        rename means every read is a verified payload or a clean miss —
        never a quarantine event (which would mean a torn read)."""
        versions = [{"v": n, "blob": "x" * 500} for n in range(40)]
        cache.put(DIGEST, versions[0])
        stop = threading.Event()
        seen, failures = [], []

        def reader():
            while not stop.is_set():
                payload = cache.get(DIGEST)
                if payload is None:
                    failures.append("miss during rewrite")
                elif payload not in versions:
                    failures.append(f"torn payload {payload!r}")
                else:
                    seen.append(payload["v"])

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for version in versions[1:]:
            cache.put(DIGEST, version)
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not failures
        assert cache.stats()["corrupt"] == 0
        assert len(seen) > 0

    def test_cache_dir_deleted_mid_run_degrades_to_recompute(self, cache):
        cache.put(DIGEST, PAYLOAD)
        assert cache.get(DIGEST) == PAYLOAD
        shutil.rmtree(cache.root)
        # Reads are misses, not errors; writes rebuild the tree.
        assert cache.get(DIGEST) is None
        assert cache.put(DIGEST, PAYLOAD) is not None
        assert cache.get(DIGEST) == PAYLOAD
        assert cache.stats()["corrupt"] == 0

    def test_root_replaced_by_a_file_still_degrades(self, cache, tmp_path):
        cache.put(DIGEST, PAYLOAD)
        shutil.rmtree(cache.root)
        cache.root.write_text("now I am a file")
        assert cache.get(DIGEST) is None       # NotADirectoryError -> miss
        assert cache.put(DIGEST, PAYLOAD) is None   # swallowed, best-effort


class TestChecksum:
    def test_payload_checksum_is_canonical(self):
        assert payload_checksum({"b": 1, "a": 2}) == \
            payload_checksum({"a": 2, "b": 1})
        assert payload_checksum({"a": 1}) != payload_checksum({"a": 2})
