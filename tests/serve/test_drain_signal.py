"""SIGTERM drain, exercised against a real ``repro serve`` process."""

import http.client
import json
import pathlib
import re
import signal
import subprocess
import sys
import time

import pytest

REPO = pathlib.Path(__file__).parent.parent.parent


@pytest.mark.slow
def test_sigterm_drains_and_exits_zero(tmp_path):
    summary = tmp_path / "serve.json"
    process = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve",
         "--port", "0", "--workers", "1",
         "--cache-dir", str(tmp_path / "cache"),
         "--drain-grace", "5",
         "--drain-journal", str(tmp_path / "drain.jsonl"),
         "--json", str(summary)],
        cwd=REPO, env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        # The startup banner prints the ephemeral port.
        line = process.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        assert match, f"no URL in startup banner: {line!r}"
        port = int(match.group(1))

        # Serve one real request so the drain has state behind it.
        from repro.api import quick_scenario
        scenario = quick_scenario(n_tasks=3, horizon_us=5_000, seed=2)
        connection = http.client.HTTPConnection("127.0.0.1", port,
                                                timeout=30)
        connection.request("POST", "/simulate", body=json.dumps(
            {"scenario": scenario.to_dict()}).encode())
        response = connection.getresponse()
        body = json.loads(response.read())
        connection.close()
        assert response.status == 200

        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=30)
        assert returncode == 0              # a drain is a success

        payload = json.loads(summary.read_text())
        assert payload["command"] == "serve"
        assert payload["drain"]["reason"] == "SIGTERM"
        assert payload["stats"]["responses"]["200"] == 1
        assert payload["stats"]["cache"]["writes"] == 1
        # Nothing was left behind: no journal written.
        assert payload["drain"]["unfinished_journaled"] == 0
        assert not (tmp_path / "drain.jsonl").exists()
        assert body["cached"] is False
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


@pytest.mark.slow
def test_duration_mode_exits_zero_without_signals(tmp_path):
    result = subprocess.run(
        [sys.executable, "-m", "repro", "serve",
         "--duration", "0.2", "--drain-grace", "1",
         "--cache-dir", str(tmp_path / "cache")],
        cwd=REPO, env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        capture_output=True, text=True, timeout=60)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "drained (duration elapsed)" in result.stdout
