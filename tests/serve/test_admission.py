"""Admission queue: bounded depth, UAM density shedding, drain."""

import threading

from repro.serve.admission import AdmissionQueue, ServeRequest


def request(digest="d" * 64, priority=1.0, cost=1.0, enqueued_at=0.0):
    return ServeRequest({"k": 1}, digest, priority=priority, cost=cost,
                        enqueued_at=enqueued_at)


class TestAdmission:
    def test_admits_below_watermark(self):
        queue = AdmissionQueue(capacity=4, watermark=2)
        assert queue.submit(request()).admitted
        assert queue.submit(request()).admitted
        assert queue.depth() == 2
        assert queue.admitted_total == 2

    def test_degraded_sheds_sparser_arrivals(self):
        queue = AdmissionQueue(capacity=4, watermark=1)
        assert queue.submit(request(priority=2.0, cost=1.0)).admitted
        # At the watermark: a sparser (lower priority/cost) arrival sheds.
        decision = queue.submit(request(priority=1.0, cost=1.0))
        assert not decision.admitted
        assert decision.reason == "queue_full"
        assert queue.shed_total == 1
        # A denser arrival still gets in (capacity not yet reached).
        assert queue.submit(request(priority=8.0, cost=1.0)).admitted

    def test_saturated_evicts_the_sparsest(self):
        queue = AdmissionQueue(capacity=2, watermark=1)
        sparse = request(priority=1.0, cost=10.0)
        assert queue.submit(sparse).admitted
        assert queue.submit(request(priority=4.0, cost=1.0)).admitted
        decision = queue.submit(request(priority=8.0, cost=1.0))
        assert decision.admitted
        assert decision.shed is sparse          # caller must answer it 429
        assert decision.reason == "evicted"
        assert queue.depth() == 2               # hard bound held
        assert queue.evicted_total == 1

    def test_eviction_never_triggered_by_sparser_arrival(self):
        queue = AdmissionQueue(capacity=1, watermark=1)
        assert queue.submit(request(priority=5.0)).admitted
        decision = queue.submit(request(priority=1.0))
        assert not decision.admitted and decision.shed is None

    def test_take_serves_densest_first(self):
        queue = AdmissionQueue(capacity=8)
        low = request(priority=1.0, cost=4.0)
        high = request(priority=4.0, cost=1.0)
        mid = request(priority=1.0, cost=1.0)
        for req in (low, high, mid):
            queue.submit(req)
        assert queue.take(0.1) is high
        assert queue.take(0.1) is mid
        assert queue.take(0.1) is low
        assert queue.take(0.01) is None         # empty -> timeout

    def test_take_ties_break_by_arrival_order(self):
        queue = AdmissionQueue(capacity=8)
        first = request(enqueued_at=1.0)
        second = request(enqueued_at=2.0)
        queue.submit(first)
        queue.submit(second)
        assert queue.take(0.1) is first

    def test_close_returns_leftovers_and_rejects_new_work(self):
        queue = AdmissionQueue(capacity=8)
        queued = [request() for _ in range(3)]
        for req in queued:
            queue.submit(req)
        leftover = queue.close()
        assert leftover == queued
        assert queue.depth() == 0
        decision = queue.submit(request())
        assert not decision.admitted and decision.reason == "draining"
        assert queue.take(0.01) is None         # consumers wake and exit

    def test_close_wakes_blocked_consumer(self):
        queue = AdmissionQueue(capacity=8)
        out = []
        thread = threading.Thread(
            target=lambda: out.append(queue.take(timeout=None)))
        thread.start()
        queue.close()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert out == [None]

    def test_request_finish_first_writer_wins(self):
        req = request()
        assert req.finish(200, {"a": 1})
        assert not req.finish(429, {"b": 2})
        assert req.status == 200 and req.body == {"a": 1}
        assert req.wait(0.1)
