"""Crash-isolated worker pool: retry taxonomy, rebuilds, deadlines."""

import time

import pytest

from repro.api import quick_scenario, simulate
from repro.campaign.chaos import ChaosPlan
from repro.scenario import Scenario
from repro.serve.pool import PoolFailure, SimulationPool, result_payload


def scenario_dict(seed=1):
    return quick_scenario(n_tasks=3, horizon_us=5_000,
                          seed=seed).to_dict()


NO_SLEEP = staticmethod(lambda _s: None)


@pytest.fixture
def pool_factory():
    pools = []

    def make(**kwargs):
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("sleep", lambda _s: None)   # skip real backoff
        pool = SimulationPool(**kwargs)
        pools.append(pool)
        return pool

    yield make
    for pool in pools:
        pool.shutdown()


class TestExecute:
    def test_returns_the_canonical_payload(self, pool_factory):
        pool = pool_factory()
        wire = scenario_dict()
        payload = pool.execute(wire)
        scenario = Scenario.from_dict(wire)
        assert payload == result_payload(scenario, simulate(scenario))
        assert payload["scenario_digest"] == scenario.digest()
        assert pool.executions == 1

    def test_transient_failure_is_retried(self, pool_factory):
        pool = pool_factory(chaos=ChaosPlan(transient=(0,)), max_attempts=3)
        payload = pool.execute(scenario_dict())
        assert payload["jobs"] >= 0
        assert pool.retries == 1
        assert pool.failure_kinds == {"transient": 1}

    def test_worker_crash_is_retried_after_rebuild(self, pool_factory):
        pool = pool_factory(chaos=ChaosPlan(crash=(0,)), max_attempts=3)
        payload = pool.execute(scenario_dict())
        assert payload["unfinished"] >= 0
        assert pool.rebuilds >= 1
        assert pool.failure_kinds.get("crash", 0) >= 1

    def test_hung_worker_times_out_and_retries(self, pool_factory):
        pool = pool_factory(
            chaos=ChaosPlan(hang=(0,), hang_seconds=30.0),
            trial_timeout=0.5, max_attempts=2)
        started = time.monotonic()
        payload = pool.execute(scenario_dict())
        assert payload["seed"] == 1
        assert time.monotonic() - started < 10.0   # did not wait out the hang
        assert pool.failure_kinds == {"timeout": 1}
        assert pool.rebuilds == 1

    def test_exhausted_attempts_raise_with_the_terminal_kind(
            self, pool_factory):
        pool = pool_factory(chaos=ChaosPlan(transient=(0, 1)),
                            max_attempts=2)
        with pytest.raises(PoolFailure) as err:
            pool.execute(scenario_dict())
        assert err.value.kind == "transient"
        assert err.value.attempts == 2

    def test_scenario_error_is_not_retried(self, pool_factory):
        pool = pool_factory(max_attempts=3)
        with pytest.raises(PoolFailure) as err:
            pool.execute({"bogus": True})
        assert err.value.kind == "exception"
        assert err.value.attempts == 1            # no retry on bad input
        assert pool.retries == 0


class TestDeadline:
    def test_exhausted_deadline_fails_before_dispatch(self, pool_factory):
        pool = pool_factory()
        with pytest.raises(PoolFailure) as err:
            pool.execute(scenario_dict(), deadline=time.monotonic() - 1.0)
        assert err.value.kind == "deadline"

    def test_deadline_cancels_a_running_trial(self, pool_factory):
        pool = pool_factory(
            chaos=ChaosPlan(hang=(0, 1), hang_seconds=30.0),
            trial_timeout=None, max_attempts=3)
        started = time.monotonic()
        with pytest.raises(PoolFailure) as err:
            pool.execute(scenario_dict(), deadline=time.monotonic() + 0.4)
        assert err.value.kind == "deadline"
        assert time.monotonic() - started < 10.0
        assert pool.retries == 0                  # client is gone: no retry

    def test_trial_timeout_wins_when_shorter_than_deadline(
            self, pool_factory):
        pool = pool_factory(
            chaos=ChaosPlan(hang=(0,), hang_seconds=30.0),
            trial_timeout=0.4, max_attempts=2)
        payload = pool.execute(scenario_dict(),
                               deadline=time.monotonic() + 30.0)
        assert payload["seed"] == 1               # retried as a timeout


class TestResultPayload:
    def test_is_deterministic_and_json_stable(self):
        scenario = Scenario.from_dict(scenario_dict(seed=9))
        first = result_payload(scenario, simulate(scenario))
        second = result_payload(scenario, simulate(scenario))
        assert first == second
        import json
        json.dumps(first)                          # JSON-serializable
