"""The unified Scenario API: validation, serialization round-trip, the
legacy-wrapper equivalences and the deprecated-kwarg shims."""

import json
import random

import pytest

from repro import Scenario, quick_scenario, quick_simulation, simulate
from repro.experiments.runner import run_once
from repro.experiments.workloads import BuilderSpec, paper_taskset
from repro.faults.plan import FaultPlan
from repro.obs import Observer
from repro.sim.objects import RetryPolicy


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------

def test_exactly_one_task_source_required():
    with pytest.raises(ValueError):
        Scenario()                                   # neither
    tasks = tuple(paper_taskset(random.Random(0), n_tasks=2))
    workload = BuilderSpec.make("paper", n_tasks=2)
    with pytest.raises(ValueError):
        Scenario(workload=workload, tasks=tasks)     # both


def test_invalid_fields_rejected():
    workload = BuilderSpec.make("paper", n_tasks=2)
    with pytest.raises(ValueError):
        Scenario(workload=workload, sync="spinlock")
    with pytest.raises(ValueError):
        Scenario(workload=workload, seeding="alternating")
    with pytest.raises(ValueError):
        Scenario(workload=workload, policy="rate-monotonic")
    with pytest.raises(ValueError):
        Scenario(workload=workload, horizon=0)


def test_arrival_traces_require_matching_tasks():
    tasks = tuple(paper_taskset(random.Random(0), n_tasks=2))
    workload = BuilderSpec.make("paper", n_tasks=2)
    with pytest.raises(ValueError):
        Scenario(workload=workload, arrival_traces=((0,), (0,)))
    with pytest.raises(ValueError):
        Scenario(tasks=tasks, arrival_traces=((0,),))   # length mismatch
    scenario = Scenario(tasks=tasks, arrival_traces=[[0, 10], [5]])
    assert scenario.arrival_traces == ((0, 10), (5,))   # normalized


def test_lists_normalized_and_strings_coerced():
    tasks = paper_taskset(random.Random(0), n_tasks=2)
    scenario = Scenario(tasks=tasks, retry_policy="on_preemption")
    assert isinstance(scenario.tasks, tuple)
    assert scenario.retry_policy is RetryPolicy.ON_PREEMPTION


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------

def test_to_dict_from_dict_round_trip_through_json():
    scenario = quick_scenario(n_tasks=4, n_objects=3, sync="lockbased",
                              load=1.1, horizon_us=20_000, seed=7,
                              tuf_class="hetero")
    wire = json.loads(json.dumps(scenario.to_dict()))
    assert Scenario.from_dict(wire) == scenario


def test_to_dict_rejects_runtime_objects():
    tasks = tuple(paper_taskset(random.Random(0), n_tasks=2))
    with pytest.raises(ValueError):
        Scenario(tasks=tasks).to_dict()
    workload = BuilderSpec.make("paper", n_tasks=2)
    with pytest.raises(ValueError):
        Scenario(workload=workload, faults=FaultPlan(seed=1)).to_dict()


def test_from_dict_rejects_unknown_keys():
    wire = quick_scenario().to_dict()
    wire["typo_field"] = 1
    with pytest.raises(ValueError):
        Scenario.from_dict(wire)


# ----------------------------------------------------------------------
# Wrapper equivalences
# ----------------------------------------------------------------------

def test_quick_simulation_equals_quick_scenario_run():
    direct = simulate(quick_scenario(n_tasks=4, horizon_us=20_000, seed=3))
    wrapped = quick_simulation(n_tasks=4, horizon_us=20_000, seed=3)
    assert wrapped.result.records == direct.result.records
    assert wrapped.aur == direct.aur and wrapped.cmr == direct.cmr


def test_legacy_simulate_signature_warns_and_matches():
    tasks = paper_taskset(random.Random(0), n_tasks=3, n_objects=2)
    with pytest.warns(DeprecationWarning):
        legacy = simulate(tasks, "lockfree", 20_000_000, 5)
    scenario = Scenario(sync="lockfree", horizon=20_000_000, seed=5,
                        tasks=tuple(tasks), seeding="shared")
    canonical = simulate(scenario)
    assert legacy.result.records == canonical.result.records
    assert legacy.result.scheduler_invocations == \
        canonical.result.scheduler_invocations


def test_scenario_call_rejects_extra_legacy_arguments():
    scenario = quick_scenario()
    with pytest.raises(TypeError):
        simulate(scenario, sync="lockfree")
    with pytest.raises(TypeError):
        simulate(scenario, monitors=True)


def test_run_once_is_deterministic_in_its_rng():
    tasks = paper_taskset(random.Random(0), n_tasks=3, n_objects=2)
    first = run_once(tasks, "lockbased", 20_000_000, random.Random(9))
    second = run_once(tasks, "lockbased", 20_000_000, random.Random(9))
    assert first.records == second.records
    assert first.scheduler_overhead_time == second.scheduler_overhead_time


# ----------------------------------------------------------------------
# Deprecated-kwarg shims
# ----------------------------------------------------------------------

def test_fault_plan_alias_warns_everywhere():
    tasks = paper_taskset(random.Random(0), n_tasks=2, n_objects=2)
    plan = FaultPlan(seed=3)
    with pytest.warns(DeprecationWarning, match="fault_plan"):
        run_once(tasks, "lockfree", 5_000_000, random.Random(1),
                 fault_plan=plan)
    with pytest.warns(DeprecationWarning):
        simulate(tasks, "lockfree", 5_000_000, 1, fault_plan=plan)
    with pytest.raises(TypeError):
        run_once(tasks, "lockfree", 5_000_000, random.Random(1),
                 faults=plan, fault_plan=plan)


def test_obs_alias_warns_and_still_attaches():
    observer = Observer()
    with pytest.warns(DeprecationWarning, match="obs"):
        summary = quick_simulation(n_tasks=3, horizon_us=10_000, seed=2,
                                   obs=observer)
    assert summary.result.obs is not None
    with pytest.raises(TypeError):
        quick_simulation(n_tasks=3, horizon_us=10_000, seed=2,
                         observer=Observer(), obs=Observer())


def test_canonical_kwargs_do_not_warn(recwarn):
    tasks = paper_taskset(random.Random(0), n_tasks=2, n_objects=2)
    run_once(tasks, "lockfree", 5_000_000, random.Random(1),
             faults=FaultPlan(seed=3), observer=Observer())
    deprecations = [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]
    assert deprecations == []


# ----------------------------------------------------------------------
# Content digest (the serve-layer cache key)
# ----------------------------------------------------------------------

def test_digest_is_stable_and_canonical():
    scenario = quick_scenario(n_tasks=3, n_objects=2, seed=7)
    digest = scenario.digest()
    assert len(digest) == 64 and int(digest, 16) >= 0
    # Deterministic within a process...
    assert scenario.digest() == digest
    # ...and across dict-ordering: rebuilding from a key-reversed dict
    # must hash identically (JSON transports do not preserve order).
    shuffled = dict(reversed(list(scenario.to_dict().items())))
    shuffled["workload"] = dict(
        reversed(list(shuffled["workload"].items())))
    assert Scenario.from_dict(shuffled).digest() == digest
    # ...and through a JSON round-trip.
    rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
    assert rebuilt.digest() == digest


def test_digest_survives_process_restart():
    """The digest is a pure content hash: a fresh interpreter (fresh
    PYTHONHASHSEED, fresh imports) computes the same value."""
    import subprocess
    import sys

    scenario = quick_scenario(n_tasks=3, n_objects=2, seed=11)
    code = (
        "import json, sys\n"
        "from repro import Scenario\n"
        "s = Scenario.from_dict(json.loads(sys.argv[1]))\n"
        "print(s.digest())\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code, json.dumps(scenario.to_dict())],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": "src", "PYTHONHASHSEED": "random"},
        cwd=str(__import__("pathlib").Path(__file__).parent.parent),
    )
    assert out.stdout.strip() == scenario.digest()


def test_digest_changes_under_any_field_change():
    base = quick_scenario(n_tasks=3, n_objects=2, seed=7)
    digests = {base.digest()}
    variants = [
        quick_scenario(n_tasks=3, n_objects=2, seed=8),
        quick_scenario(n_tasks=4, n_objects=2, seed=7),
        quick_scenario(n_tasks=3, n_objects=2, seed=7, sync="lockbased"),
        quick_scenario(n_tasks=3, n_objects=2, seed=7, load=0.9),
        quick_scenario(n_tasks=3, n_objects=2, seed=7, tuf_class="hetero"),
    ]
    import dataclasses
    variants += [
        dataclasses.replace(base, horizon=base.horizon + 1),
        dataclasses.replace(base, seeding="shared"),
        dataclasses.replace(base, policy="llf"),
        dataclasses.replace(base, retry_policy="on_preemption"),
        dataclasses.replace(base, trace=True),
        dataclasses.replace(base, monitors=True),
    ]
    for variant in variants:
        digests.add(variant.digest())
    assert len(digests) == len(variants) + 1, "digest collision"


def test_digest_rejects_runtime_scenarios():
    tasks = tuple(paper_taskset(random.Random(0), n_tasks=2))
    with pytest.raises(ValueError):
        Scenario(tasks=tasks).digest()
