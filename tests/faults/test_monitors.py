"""Tests for the runtime invariant monitors.

The load-bearing property is the *absence of false positives*: a
fault-free run of the paper's own evaluation workloads must report zero
violations, otherwise every degradation report from a faulted run is
suspect.
"""

import random

import pytest

from repro.analysis.retry_bound import retry_bound_for_taskset
from repro.experiments.runner import run_once
from repro.experiments.workloads import paper_taskset
from repro.faults.monitors import MonitorSuite
from repro.faults.report import DegradationReport
from repro.sim.locks import LockManager
from repro.tasks.job import Job, JobState
from repro.units import MS
from tests.helpers import simple_task


class TestNoFalsePositives:
    """Fig 9–13-style workloads, fault-free, monitors on: zero findings."""

    @pytest.mark.parametrize("sync", ["lockfree", "lockbased"])
    @pytest.mark.parametrize("tuf_class", ["step", "hetero"])
    @pytest.mark.parametrize("load", [0.4, 1.1])
    def test_paper_workloads_report_clean(self, sync, tuf_class, load):
        rng = random.Random(3)
        tasks = paper_taskset(rng, n_tasks=6, accesses_per_job=2,
                              tuf_class=tuf_class, target_load=load)
        result = run_once(tasks, sync, horizon=30 * MS,
                          rng=random.Random(4), monitors=True)
        report = result.degradation
        assert report is not None
        assert report.ok, report.summary()
        assert report.faults_injected == 0


class TestUnits:
    def _suite(self, tasks=None):
        tasks = tasks or [simple_task("T", critical_us=1000,
                                      compute_us=100)]
        report = DegradationReport()
        return tasks, report, MonitorSuite(tasks, report)

    def test_clock_monotonicity(self):
        _, report, suite = self._suite()
        suite.note_clock(5)
        suite.note_clock(5)       # equal is fine (simultaneous events)
        assert report.ok
        suite.note_clock(3)
        assert [v.monitor for v in report.violations] == ["clock"]

    def test_retry_bound_violation_and_dedup(self):
        tasks, report, suite = self._suite()
        job = Job(task=tasks[0], jid=0, release_time=0)
        bound = retry_bound_for_taskset(tasks, 0)
        job.retries = bound
        suite.note_retry(10, job)
        assert report.ok                      # at the bound is legal
        job.retries = bound + 1
        suite.note_retry(11, job)
        suite.note_retry(12, job)             # same job: flagged once
        violations = report.violations_of("retry-bound")
        assert len(violations) == 1
        assert str(bound) in violations[0].detail

    def test_abort_point_violation(self):
        tasks, report, suite = self._suite()
        job = Job(task=tasks[0], jid=0, release_time=0)
        crit = job.critical_time_abs
        suite.note_execution(job, 0, crit)    # up to the edge is legal
        assert report.ok
        suite.note_execution(job, crit, crit + 1)
        assert report.violations_of("abort-point")

    def test_lock_state_mismatch(self):
        tasks, report, suite = self._suite()
        job = Job(task=tasks[0], jid=0, release_time=0)
        locks = LockManager()
        assert locks.try_acquire(job, "o")
        # The kernel would mirror the acquisition into job.held_locks;
        # leaving it empty is exactly the inconsistency to catch.
        suite.audit_locks(5, [job], locks)
        assert report.violations_of("lock-state")

    def test_consistent_lock_state_is_clean(self):
        tasks, report, suite = self._suite()
        job = Job(task=tasks[0], jid=0, release_time=0)
        locks = LockManager()
        assert locks.try_acquire(job, "o")
        job.held_locks.add("o")
        job.holds_lock = "o"
        suite.audit_locks(5, [job], locks)
        assert report.ok

    def test_blocked_without_blocked_on_is_flagged(self):
        tasks, report, suite = self._suite()
        job = Job(task=tasks[0], jid=0, release_time=0,
                  state=JobState.BLOCKED)
        suite.audit_locks(5, [job], LockManager())
        violations = report.violations_of("lock-state")
        assert any("no blocked_on" in v.detail for v in violations)


class TestReport:
    def test_summary_mentions_everything(self):
        report = DegradationReport(injected_arrivals=4, shed_jobs=2,
                                   retry_aborts=1)
        text = report.summary()
        assert "4 burst arrivals" in text
        assert "2 shed" in text
        assert "1 retry-guard aborts" in text
        assert "all hold" in text

    def test_summary_caps_violation_listing(self):
        from repro.faults.report import InvariantViolation
        report = DegradationReport()
        for k in range(14):
            report.record(InvariantViolation(time=k, monitor="clock",
                                             job=f"J{k}"))
        text = report.summary()
        assert "14 violated" in text
        assert "... and 4 more" in text
