"""Kernel-level fault injection: each injector family end to end, plus
the acceptance criterion that a seeded faulted run replays exactly."""

from repro.arrivals.validate import check_uam
from repro.faults.degradation import AdmissionPolicy, RetryGuard, ShedMode
from repro.faults.plan import (
    ArrivalBurst,
    CostJitter,
    FaultPlan,
    SegmentOverrun,
    TimerFault,
)
from repro.sim.kernel import Kernel, SimulationConfig, SyncMode
from repro.sim.overheads import KernelCosts
from repro.sim.tracing import TraceKind
from repro.units import US
from tests.helpers import simple_task, zero_cost_policy


def _run(tasks, traces_us, horizon_us=100_000, sync=SyncMode.NONE,
         policy_kind="edf", costs=None, **fault_kwargs):
    config = SimulationConfig(
        tasks=tasks,
        arrival_traces=[[t * US for t in trace] for trace in traces_us],
        policy=zero_cost_policy(policy_kind),
        horizon=horizon_us * US,
        sync=sync,
        costs=costs or KernelCosts.ideal(),
        trace=True,
        **fault_kwargs,
    )
    kernel = Kernel(config)
    return kernel, kernel.run()


class TestArrivalBursts:
    def _task(self):
        return simple_task("T", critical_us=1000, compute_us=100,
                           window_us=10_000)

    def test_burst_inflates_releases_without_admission(self):
        plan = FaultPlan(bursts=(ArrivalBurst(0, 2000 * US, count=2),))
        _, result = _run([self._task()], [[0]], fault_plan=plan)
        assert result.degradation.injected_arrivals == 2
        assert result.releases == 3

    def test_shed_mode_rejects_out_of_spec_arrivals(self):
        plan = FaultPlan(bursts=(ArrivalBurst(0, 2000 * US, count=2),))
        kernel, result = _run(
            [self._task()], [[0]], fault_plan=plan,
            admission=AdmissionPolicy(ShedMode.SHED))
        assert result.degradation.shed_jobs == 2
        assert result.releases == 1
        assert len(kernel.tracer.of_kind(TraceKind.SHED)) == 2

    def test_defer_mode_releases_later_and_conformantly(self):
        task = self._task()
        plan = FaultPlan(bursts=(ArrivalBurst(0, 2000 * US, count=2),))
        kernel, result = _run(
            [task], [[0]], horizon_us=40_000, fault_plan=plan,
            admission=AdmissionPolicy(ShedMode.DEFER))
        report = result.degradation
        assert report.shed_jobs == 0
        assert report.deferred_jobs >= 2
        assert report.deferred_delay_total > 0
        # Every injected job eventually runs, at UAM-conformant instants.
        assert result.releases == 3
        releases = sorted(r.release_time for r in result.records)
        assert releases == [0, 10_000 * US, 20_000 * US]
        assert check_uam(releases, task.arrival) == []
        assert kernel.tracer.of_kind(TraceKind.DEFER)

    def test_burst_beyond_horizon_is_dropped(self):
        plan = FaultPlan(bursts=(ArrivalBurst(0, 200_000 * US, count=3),))
        _, result = _run([self._task()], [[0]], fault_plan=plan)
        assert result.degradation.injected_arrivals == 0
        assert result.releases == 1


class TestOverruns:
    def test_overrun_delays_completion(self):
        task = simple_task("T", critical_us=10_000, compute_us=100)
        baseline_plan = FaultPlan()
        plan = FaultPlan(overruns=(SegmentOverrun(task="T", extra=500 * US),))
        _, base = _run([task], [[0]], monitors=True,
                       fault_plan=baseline_plan)
        kernel, faulted = _run([task], [[0]], fault_plan=plan)
        assert base.records[0].completion_time == 100 * US
        assert faulted.records[0].completion_time == 600 * US
        assert faulted.degradation.injected_overruns == 1
        assert kernel.tracer.of_kind(TraceKind.FAULT)

    def test_overrun_applies_once_per_job_segment(self):
        task = simple_task("T", critical_us=1000, compute_us=100,
                           window_us=10_000)
        plan = FaultPlan(overruns=(
            SegmentOverrun(task="T", extra=50 * US, segment_index=0),))
        _, result = _run([task], [[0, 10_000, 20_000]],
                         horizon_us=40_000, fault_plan=plan)
        # One overrun per job instance of segment 0, not one per tick.
        assert result.degradation.injected_overruns == 3
        assert all(r.completion_time - r.release_time == 150 * US
                   for r in result.records)


class TestSpuriousRetries:
    def _tasks(self):
        # L's access is on object 0; the interferers touch object 1 only,
        # so under ON_CONFLICT L never retries without the fault plan.
        long = simple_task("L", critical_us=50_000, compute_us=100,
                           accesses=[(0, 3000)], window_us=60_000)
        d1 = simple_task("D1", critical_us=3000, compute_us=100,
                         accesses=[(1, 200)], window_us=60_000)
        d2 = simple_task("D2", critical_us=4000, compute_us=100,
                         accesses=[(1, 200)], window_us=60_000)
        return [long, d1, d2]

    def test_forced_invalidation_causes_retries(self):
        plan = FaultPlan.retry_storm(0, times_per_task=5,
                                     task_names=["L"])
        kernel, result = _run(
            self._tasks(), [[0], [1000], [2000]], horizon_us=60_000,
            sync=SyncMode.LOCK_FREE, policy_kind="rua-lockfree",
            fault_plan=plan)
        by_name = {r.task_name: r for r in result.records}
        assert result.degradation.forced_retries == 2
        assert by_name["L"].retries == 2
        assert len(kernel.tracer.of_kind(TraceKind.RETRY)) == 2

    def test_without_plan_no_retries(self):
        _, result = _run(self._tasks(), [[0], [1000], [2000]],
                         horizon_us=60_000, sync=SyncMode.LOCK_FREE,
                         policy_kind="rua-lockfree", monitors=True)
        assert result.total_retries == 0
        assert result.degradation.ok

    def test_retry_guard_aborts_after_budget(self):
        plan = FaultPlan.retry_storm(0, times_per_task=5,
                                     task_names=["L"])
        _, result = _run(
            self._tasks(), [[0], [1000], [2000]], horizon_us=60_000,
            sync=SyncMode.LOCK_FREE, policy_kind="rua-lockfree",
            fault_plan=plan, retry_guard=RetryGuard(max_retries=1))
        by_name = {r.task_name: r for r in result.records}
        assert result.degradation.retry_aborts == 1
        assert by_name["L"].aborted
        assert by_name["L"].accrued_utility == 0.0
        # The interferers are untouched by L's degradation.
        assert not by_name["D1"].aborted and not by_name["D2"].aborted

    def test_backoff_time_is_charged_and_counted(self):
        plan = FaultPlan.retry_storm(0, times_per_task=5,
                                     task_names=["L"])
        guard = RetryGuard(max_retries=10, backoff_base=50 * US)
        _, result = _run(
            self._tasks(), [[0], [1000], [2000]], horizon_us=60_000,
            sync=SyncMode.LOCK_FREE, policy_kind="rua-lockfree",
            fault_plan=plan, retry_guard=guard)
        report = result.degradation
        # Two forced retries: backoff 50us then 100us (factor 2).
        assert report.backoff_time == 150 * US
        assert report.retry_aborts == 0


class TestTimerFaults:
    def _task(self):
        # Would normally be aborted at its 1 ms critical time, far short
        # of its 5 ms of compute.
        return simple_task("X", critical_us=1000, compute_us=5000)

    def test_abort_timer_fires_without_fault(self):
        _, result = _run([self._task()], [[0]], monitors=True)
        record = result.records[0]
        assert record.aborted and record.completion_time is None
        assert result.degradation.ok   # a timely abort is not a violation

    def test_dropped_timer_lets_job_run_past_abort_point(self):
        plan = FaultPlan(timer_faults=(TimerFault(task="X", drop=True),))
        kernel, result = _run([self._task()], [[0]], fault_plan=plan,
                              monitors=True)
        record = result.records[0]
        assert not record.aborted
        assert record.completion_time == 5000 * US
        report = result.degradation
        assert report.timer_faults == 1
        violations = report.violations_of("abort-point")
        assert len(violations) == 1
        assert violations[0].job == "X#0"
        assert kernel.tracer.of_kind(TraceKind.FAULT)

    def test_delayed_timer_aborts_late_and_is_flagged(self):
        plan = FaultPlan(timer_faults=(
            TimerFault(task="X", delay=2000 * US),))
        _, result = _run([self._task()], [[0]], fault_plan=plan,
                         monitors=True)
        record = result.records[0]
        assert record.aborted
        report = result.degradation
        assert report.timer_faults == 1
        assert report.violations_of("abort-point")


class TestCostJitter:
    def test_jitter_perturbs_charges_deterministically(self):
        task = simple_task("T", critical_us=10_000, compute_us=100)
        plan = FaultPlan(seed=5, jitter=CostJitter(magnitude=0.5))

        def one():
            return _run([task], [[0]], fault_plan=plan,
                        costs=KernelCosts())[1]

        first, second = one(), one()
        assert first.degradation.jittered_charges > 0
        assert first.degradation == second.degradation
        assert first.records == second.records


class TestReplayDeterminism:
    def test_full_fault_plan_replays_identically(self):
        # The acceptance criterion: every injector family active at once,
        # two runs of the same config, bit-identical outcome and report.
        tasks = [
            simple_task("L", critical_us=50_000, compute_us=100,
                        accesses=[(0, 3000)], window_us=60_000),
            simple_task("D1", critical_us=3000, compute_us=100,
                        accesses=[(1, 200)], window_us=60_000),
            simple_task("D2", critical_us=4000, compute_us=100,
                        accesses=[(1, 200)], window_us=60_000),
        ]
        plan = FaultPlan(
            seed=21,
            overruns=(SegmentOverrun(task="D1", extra=40 * US),),
            bursts=(ArrivalBurst(1, 9000 * US, count=2),),
            spurious_retries=FaultPlan.retry_storm(
                21, times_per_task=3, task_names=["L"]).spurious_retries,
            timer_faults=(TimerFault(task="D2", jid=0, drop=True),),
            jitter=CostJitter(magnitude=0.3),
        )

        def one():
            return _run(tasks, [[0], [1000], [2000]], horizon_us=60_000,
                        sync=SyncMode.LOCK_FREE,
                        policy_kind="rua-lockfree", costs=KernelCosts(),
                        fault_plan=plan,
                        admission=AdmissionPolicy(ShedMode.SHED),
                        retry_guard=RetryGuard(max_retries=4),
                        monitors=True)[1]

        first, second = one(), one()
        assert first.records == second.records
        assert first.degradation == second.degradation
        assert first.degradation.faults_injected > 0
        assert first.aur == second.aur
        assert first.scheduler_overhead_time == second.scheduler_overhead_time

    def test_monitors_are_pure_observers(self):
        tasks = [simple_task("T", critical_us=10_000, compute_us=100,
                             accesses=[(0, 500)], window_us=20_000)]
        _, watched = _run(tasks, [[0, 20_000]], horizon_us=50_000,
                          sync=SyncMode.LOCK_FREE,
                          policy_kind="rua-lockfree", monitors=True)
        _, unwatched = _run(tasks, [[0, 20_000]], horizon_us=50_000,
                            sync=SyncMode.LOCK_FREE,
                            policy_kind="rua-lockfree")
        assert watched.records == unwatched.records
        assert watched.degradation.ok
        assert unwatched.degradation is None
