"""Tests for fault plans: validation and seeded generation."""

import pytest

from repro.faults.plan import (
    ArrivalBurst,
    CostJitter,
    FaultPlan,
    SegmentOverrun,
    SpuriousRetry,
    TimerFault,
)
from repro.units import MS


class TestValidation:
    def test_overrun_requires_positive_extra(self):
        with pytest.raises(ValueError):
            SegmentOverrun(task="T", extra=0)

    def test_burst_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            ArrivalBurst(task_index=0, time=-1)
        with pytest.raises(ValueError):
            ArrivalBurst(task_index=0, time=5, count=0)

    def test_spurious_retry_requires_budget(self):
        with pytest.raises(ValueError):
            SpuriousRetry(times=0)

    def test_timer_fault_must_drop_or_delay(self):
        with pytest.raises(ValueError):
            TimerFault(task="T")
        with pytest.raises(ValueError):
            TimerFault(task="T", delay=-1)
        TimerFault(task="T", drop=True)
        TimerFault(task="T", delay=10)

    def test_jitter_magnitude_range(self):
        with pytest.raises(ValueError):
            CostJitter(magnitude=0.0)
        with pytest.raises(ValueError):
            CostJitter(magnitude=1.5)
        CostJitter(magnitude=1.0)


class TestMatching:
    def test_overrun_wildcards(self):
        spec = SegmentOverrun(task="T", extra=5)
        assert spec.matches("T", jid=3, segment_index=1)
        assert not spec.matches("U", jid=3, segment_index=1)
        pinned = SegmentOverrun(task="T", extra=5, jid=1, segment_index=0)
        assert pinned.matches("T", 1, 0)
        assert not pinned.matches("T", 2, 0)
        assert not pinned.matches("T", 1, 1)

    def test_spurious_retry_wildcards(self):
        assert SpuriousRetry(times=1).matches("any", obj=7)
        assert SpuriousRetry(times=1, task="T").matches("T", obj=7)
        assert not SpuriousRetry(times=1, obj=3).matches("T", obj=7)

    def test_timer_fault_matching(self):
        fault = TimerFault(task="T", drop=True)
        assert fault.matches("T", jid=0) and fault.matches("T", jid=9)
        assert not fault.matches("U", jid=0)
        assert not TimerFault(task="T", jid=1, drop=True).matches("T", 0)


class TestPlan:
    def test_empty(self):
        assert FaultPlan().empty
        assert not FaultPlan(bursts=(ArrivalBurst(0, 1),)).empty
        assert not FaultPlan(jitter=CostJitter(0.1)).empty

    def test_burst_storm_is_deterministic_in_seed(self):
        a = FaultPlan.burst_storm(9, n_tasks=4, horizon=100 * MS,
                                  bursts_per_task=3)
        b = FaultPlan.burst_storm(9, n_tasks=4, horizon=100 * MS,
                                  bursts_per_task=3)
        c = FaultPlan.burst_storm(10, n_tasks=4, horizon=100 * MS,
                                  bursts_per_task=3)
        assert a == b
        assert a != c

    def test_burst_storm_shape(self):
        horizon = 100 * MS
        plan = FaultPlan.burst_storm(1, n_tasks=3, horizon=horizon,
                                     bursts_per_task=2, burst_size=4)
        assert len(plan.bursts) == 6
        assert all(b.count == 4 for b in plan.bursts)
        # Sorted, and landing in the middle 80 % of the horizon.
        keys = [(b.time, b.task_index) for b in plan.bursts]
        assert keys == sorted(keys)
        assert all(horizon // 10 <= b.time < 9 * horizon // 10
                   for b in plan.bursts)
        assert {b.task_index for b in plan.bursts} == {0, 1, 2}

    def test_burst_storm_rejects_empty_taskset(self):
        with pytest.raises(ValueError):
            FaultPlan.burst_storm(0, n_tasks=0, horizon=MS,
                                  bursts_per_task=1)

    def test_retry_storm_variants(self):
        broad = FaultPlan.retry_storm(0, times_per_task=3)
        assert broad.spurious_retries == (SpuriousRetry(times=3),)
        named = FaultPlan.retry_storm(0, times_per_task=2,
                                      task_names=["A", "B"])
        assert [s.task for s in named.spurious_retries] == ["A", "B"]
