"""Smoke tests for the CML-under-faults degradation campaign."""

from repro.experiments.faults import cml_under_faults
from repro.units import MS


class TestCampaign:
    def test_small_campaign_shape_and_degradation(self):
        campaign = cml_under_faults(burst_levels=(0, 2), repeats=1,
                                    horizon=20 * MS)
        figure = campaign.figure
        assert [s.label for s in figure.series] == [
            "AUR shed on", "AUR shed off", "violations (shed off)"]
        assert sorted(campaign.reports) == [0, 2]
        # Level 0 is the fault-free control.
        for guarded, unguarded in campaign.reports[0]:
            assert guarded.faults_injected == 0
            assert unguarded.faults_injected == 0
        # Level 2 injects bursts; the guard sheds every out-of-spec one.
        level2 = campaign.reports[2]
        assert sum(g.injected_arrivals for g, _ in level2) > 0
        assert sum(g.shed_jobs for g, _ in level2) > 0
        assert all(u.shed_jobs == 0 for _, u in level2)

    def test_shedding_never_hurts_utility(self):
        campaign = cml_under_faults(burst_levels=(0, 4), repeats=1,
                                    horizon=20 * MS)
        shed_on, shed_off, _ = campaign.figure.series
        for on, off in zip(shed_on.estimates, shed_off.estimates):
            assert on.mean >= off.mean - 1e-9

    def test_render_includes_per_level_lines(self):
        campaign = cml_under_faults(burst_levels=(0,), repeats=1,
                                    horizon=10 * MS)
        text = campaign.render()
        assert "per-level degradation" in text
        assert "bursts/task=0" in text

    def test_campaign_is_deterministic(self):
        first = cml_under_faults(burst_levels=(2,), repeats=1,
                                 horizon=15 * MS)
        second = cml_under_faults(burst_levels=(2,), repeats=1,
                                  horizon=15 * MS)
        assert first.render() == second.render()
        assert first.reports == second.reports
