"""Tests for the graceful-degradation policies (admission + retries)."""

import pytest

from repro.arrivals.validate import check_uam
from repro.faults.degradation import (
    AdmissionGuard,
    AdmissionPolicy,
    Decision,
    RetryGuard,
    ShedMode,
)
from repro.faults.report import DegradationReport
from tests.helpers import simple_task


def _guard(mode: ShedMode, window_us: int = 10_000):
    task = simple_task("T", critical_us=1000, compute_us=100,
                       window_us=window_us)
    report = DegradationReport()
    return task, report, AdmissionGuard([task], AdmissionPolicy(mode),
                                        report)


class TestShed:
    def test_conforming_arrivals_admitted(self):
        task, report, guard = _guard(ShedMode.SHED)
        window = task.arrival.window
        for k in range(3):
            decision, when = guard.decide(0, k * window)
            assert decision is Decision.ADMIT and when == k * window
        assert report.shed_jobs == 0

    def test_out_of_spec_arrival_shed(self):
        task, report, guard = _guard(ShedMode.SHED)
        assert guard.decide(0, 0)[0] is Decision.ADMIT
        decision, _ = guard.decide(0, task.arrival.window // 2)
        assert decision is Decision.SHED
        assert report.shed_jobs == 1
        # The shed arrival leaves no trace in the admitted sequence.
        assert guard.admitted_times(0) == (0,)

    def test_admitted_sequence_is_uam_conformant(self):
        task, _, guard = _guard(ShedMode.SHED)
        window = task.arrival.window
        # An adversarial dense arrival stream ...
        for t in range(0, 3 * window, window // 7):
            guard.decide(0, t)
        # ... yields an admitted trace the offline validator accepts.
        admitted = list(guard.admitted_times(0))
        assert len(admitted) >= 3
        assert check_uam(admitted, task.arrival) == []


class TestDefer:
    def test_defer_returns_earliest_conforming_instant(self):
        task, report, guard = _guard(ShedMode.DEFER)
        window = task.arrival.window
        assert guard.decide(0, 0)[0] is Decision.ADMIT
        decision, when = guard.decide(0, window // 2)
        assert decision is Decision.DEFER
        assert when == window          # the t=0 admission leaves the window
        assert report.deferred_jobs == 1
        assert report.deferred_delay_total == window - window // 2
        # Re-submitted at the suggested instant, it is admitted.
        assert guard.decide(0, when)[0] is Decision.ADMIT

    def test_deferrals_make_progress(self):
        task, _, guard = _guard(ShedMode.DEFER)
        window = task.arrival.window
        guard.decide(0, 0)
        _, first = guard.decide(0, 10)
        assert first > 10
        guard.decide(0, first)        # admitted
        _, second = guard.decide(0, first)
        assert second > first          # strictly later each round


class TestRetryGuard:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryGuard(max_retries=0)
        with pytest.raises(ValueError):
            RetryGuard(max_retries=1, backoff_base=-1)
        with pytest.raises(ValueError):
            RetryGuard(max_retries=1, backoff_factor=0.5)

    def test_exhaustion_boundary(self):
        guard = RetryGuard(max_retries=3)
        assert not guard.exhausted(2)
        assert guard.exhausted(3)
        assert guard.exhausted(4)

    def test_backoff_schedule(self):
        guard = RetryGuard(max_retries=5, backoff_base=10,
                           backoff_factor=2.0)
        assert [guard.backoff(j) for j in (1, 2, 3)] == [10, 20, 40]
        with pytest.raises(ValueError):
            guard.backoff(0)

    def test_zero_base_means_no_backoff(self):
        guard = RetryGuard(max_retries=5)
        assert guard.backoff(1) == 0 and guard.backoff(7) == 0
