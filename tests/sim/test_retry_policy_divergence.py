"""ON_PREEMPTION vs ON_CONFLICT divergence, under the Theorem 2 bound.

The paper's analysis (Section 3.4) charges one retry per interference
event regardless of whether the preempting job touched the same object —
that is the ON_PREEMPTION accounting.  The kernel's default ON_CONFLICT
policy only retries on a genuine conflicting commit, so it can only do
better.  These tests pin a scenario where the two policies demonstrably
diverge and check both stay within ``retry_bound_for_taskset``.
"""

import random

from repro.analysis.retry_bound import retry_bound_for_taskset
from repro.experiments.runner import run_once
from repro.experiments.workloads import paper_taskset
from repro.sim.kernel import SyncMode
from repro.sim.objects import RetryPolicy
from tests.helpers import run_scenario, simple_task, zero_cost_policy


class TestScenarioDivergence:
    def _tasks(self):
        # L holds a long access on object 0; the interferers touch only
        # object 1, so their preemptions never conflict with L's access.
        long = simple_task("L", critical_us=50_000, compute_us=100,
                           accesses=[(0, 3000)], window_us=60_000)
        d1 = simple_task("D1", critical_us=3000, compute_us=100,
                         accesses=[(1, 200)], window_us=60_000)
        d2 = simple_task("D2", critical_us=4000, compute_us=100,
                         accesses=[(1, 200)], window_us=60_000)
        return [long, d1, d2]

    def _retries(self, retry_policy):
        _, result = run_scenario(
            self._tasks(), [[0], [1000], [2000]],
            sync=SyncMode.LOCK_FREE,
            policy=zero_cost_policy("rua-lockfree"), horizon_us=60_000,
            retry_policy=retry_policy)
        return {r.task_name: r.retries for r in result.records}

    def test_policies_diverge_on_disjoint_interference(self):
        conflict = self._retries(RetryPolicy.ON_CONFLICT)
        preemption = self._retries(RetryPolicy.ON_PREEMPTION)
        # Disjoint objects: no conflicting commit ever lands on object 0,
        # so ON_CONFLICT charges L nothing ...
        assert conflict["L"] == 0
        # ... while ON_PREEMPTION charges one retry per mid-access
        # preemption of L — here both interferers preempt it once.
        assert preemption["L"] == 2
        assert preemption["L"] > conflict["L"]

    def test_both_policies_within_theorem2_bound(self):
        tasks = self._tasks()
        bound_l = retry_bound_for_taskset(tasks, 0)
        # f_L = 3*a_L + sum_j 2*a_j*(ceil(C_L/W_j)+1)
        #     = 3 + 2*(1+1) + 2*(1+1) = 11 with these parameters.
        assert bound_l == 11
        for retry_policy in (RetryPolicy.ON_CONFLICT,
                             RetryPolicy.ON_PREEMPTION):
            retries = self._retries(retry_policy)
            assert retries["L"] <= bound_l


class TestWorkloadDivergence:
    def test_policies_diverge_and_both_bounded_on_paper_workload(self):
        # On a randomized paper workload with long accesses the two
        # accountings must diverge for at least one seed (strictly more
        # ON_PREEMPTION retries), and every job must respect its
        # Theorem 2 bound under either policy.  No per-run dominance is
        # asserted: the first retry changes the schedule, so later
        # retries are not pointwise comparable across policies.
        rng = random.Random(6)
        tasks = paper_taskset(rng, n_tasks=6, accesses_per_job=3,
                              target_load=1.1, max_arrivals=2,
                              access_duration=20_000)
        bounds = [retry_bound_for_taskset(tasks, i)
                  for i in range(len(tasks))]
        names = {task.name: i for i, task in enumerate(tasks)}
        diverged = False
        for seed in range(3):
            totals = {}
            for retry_policy in (RetryPolicy.ON_CONFLICT,
                                 RetryPolicy.ON_PREEMPTION):
                result = run_once(tasks, "lockfree", horizon=100_000_000,
                                  rng=random.Random(seed),
                                  retry_policy=retry_policy)
                totals[retry_policy] = result.total_retries
                for record in result.records:
                    assert record.retries <= bounds[names[record.task_name]]
            if (totals[RetryPolicy.ON_PREEMPTION]
                    > totals[RetryPolicy.ON_CONFLICT]):
                diverged = True
        assert diverged
