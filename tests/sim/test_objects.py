"""Tests for the lock-free object layer's retry semantics."""

import pytest

from repro.arrivals import UAMSpec
from repro.sim.objects import LockFreeObjectTable, RetryPolicy
from repro.tasks import Compute, Job, ObjectAccess, TaskSpec
from repro.tasks.segments import AccessKind
from repro.tuf import StepTUF


def _job_with_access(name, kind=AccessKind.WRITE, obj=0):
    task = TaskSpec(
        name=name, arrival=UAMSpec(1, 1, 1000),
        tuf=StepTUF(critical_time=1000),
        body=(ObjectAccess(obj=obj, duration=10, kind=kind), Compute(1)),
    )
    return Job(task=task, jid=0, release_time=0)


def _access_of(job) -> ObjectAccess:
    return job.task.body[0]


class TestCommitProtocol:
    def test_begin_then_commit(self):
        table = LockFreeObjectTable()
        job = _job_with_access("A")
        table.begin(job, _access_of(job))
        assert table.open_access_of(job) == 0
        table.commit(job)
        assert table.open_access_of(job) is None
        assert table.commits_on(0) == 1

    def test_commit_without_begin_raises(self):
        table = LockFreeObjectTable()
        with pytest.raises(RuntimeError, match="without open access"):
            table.commit(_job_with_access("A"))

    def test_abandon_discards_open_access(self):
        table = LockFreeObjectTable()
        job = _job_with_access("A")
        table.begin(job, _access_of(job))
        table.abandon(job)
        assert table.open_access_of(job) is None
        assert table.commits_on(0) == 0


class TestConflictPolicy:
    def test_no_retry_without_conflict(self):
        table = LockFreeObjectTable()
        job = _job_with_access("A")
        table.begin(job, _access_of(job))
        assert not table.must_retry(job)

    def test_writer_invalidated_by_concurrent_write(self):
        table = LockFreeObjectTable()
        victim = _job_with_access("A")
        other = _job_with_access("B")
        table.begin(victim, _access_of(victim))
        table.begin(other, _access_of(other))
        table.commit(other)
        assert table.must_retry(victim)

    def test_reader_not_invalidated_by_concurrent_read(self):
        table = LockFreeObjectTable()
        victim = _job_with_access("A", kind=AccessKind.READ)
        other = _job_with_access("B", kind=AccessKind.READ)
        table.begin(victim, _access_of(victim))
        table.begin(other, _access_of(other))
        table.commit(other)
        assert not table.must_retry(victim)

    def test_reader_invalidated_by_concurrent_write(self):
        table = LockFreeObjectTable()
        victim = _job_with_access("A", kind=AccessKind.READ)
        other = _job_with_access("B", kind=AccessKind.WRITE)
        table.begin(victim, _access_of(victim))
        table.begin(other, _access_of(other))
        table.commit(other)
        assert table.must_retry(victim)

    def test_different_object_does_not_conflict(self):
        table = LockFreeObjectTable()
        victim = _job_with_access("A", obj=0)
        other = _job_with_access("B", obj=1)
        table.begin(victim, _access_of(victim))
        table.begin(other, _access_of(other))
        table.commit(other)
        assert not table.must_retry(victim)

    def test_record_retry_resnapshots(self):
        table = LockFreeObjectTable()
        victim = _job_with_access("A")
        other = _job_with_access("B")
        table.begin(victim, _access_of(victim))
        table.begin(other, _access_of(other))
        table.commit(other)
        assert table.must_retry(victim)
        victim.access_dirty = False
        table.record_retry(victim)
        assert table.total_retries == 1
        assert not table.must_retry(victim)


class TestPreemptionPolicy:
    def test_on_preemption_marks_dirty(self):
        table = LockFreeObjectTable(policy=RetryPolicy.ON_PREEMPTION)
        job = _job_with_access("A")
        table.begin(job, _access_of(job))
        table.note_preemption(job)
        assert job.access_dirty
        assert table.must_retry(job)

    def test_on_conflict_ignores_preemption_alone(self):
        table = LockFreeObjectTable(policy=RetryPolicy.ON_CONFLICT)
        job = _job_with_access("A")
        table.begin(job, _access_of(job))
        table.note_preemption(job)
        assert not job.access_dirty
        assert not table.must_retry(job)

    def test_preemption_without_open_access_is_noop(self):
        table = LockFreeObjectTable(policy=RetryPolicy.ON_PREEMPTION)
        job = _job_with_access("A")
        table.note_preemption(job)
        assert not job.access_dirty
