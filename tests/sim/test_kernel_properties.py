"""Property-based kernel invariants over random workloads.

Whatever the workload, sync mode and seed:

1. accounting sanity: AUR, CMR in [0, 1]; records = releases - unfinished;
2. completed jobs finish no earlier than release + nominal demand, and
   strictly before their critical times;
3. aborted jobs accrue zero utility;
4. retries appear only under lock-free, blockings only under lock-based;
5. determinism: identical seeds give identical outcomes.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.experiments.runner import run_once
from repro.experiments.workloads import paper_taskset
from repro.units import MS

syncs = st.sampled_from(["ideal", "lockfree", "lockbased", "edf"])


def _run(seed: int, sync: str, load: float, accesses: int):
    rng = random.Random(seed)
    tasks = paper_taskset(rng, n_tasks=5, n_objects=5,
                          accesses_per_job=accesses, target_load=load)
    result = run_once(tasks, sync, horizon=40 * MS,
                      rng=random.Random(seed + 1))
    return tasks, result


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), sync=syncs,
       load=st.sampled_from([0.3, 0.8, 1.3]),
       accesses=st.integers(0, 4))
def test_accounting_and_timing_invariants(seed, sync, load, accesses):
    tasks, result = _run(seed, sync, load, accesses)
    by_name = {t.name: t for t in tasks}

    assert 0.0 <= result.aur <= 1.0
    assert 0.0 <= result.cmr <= 1.0

    for record in result.records:
        task = by_name[record.task_name]
        if record.aborted:
            assert record.accrued_utility == 0.0
            assert record.completion_time is None
        else:
            assert record.completion_time is not None
            # Cannot finish faster than its nominal demand...
            assert record.sojourn >= task.execution_estimate
            # ...and never completes at/after the critical time (the
            # abort timer fires first).
            assert record.sojourn < task.critical_time
            assert record.accrued_utility <= task.tuf.max_utility
        if sync != "lockfree":
            assert record.retries == 0
        if sync != "lockbased":
            assert record.blockings == 0


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 1_000), sync=syncs)
def test_determinism(seed, sync):
    _, first = _run(seed, sync, 0.9, 2)
    _, second = _run(seed, sync, 0.9, 2)
    snapshot = lambda r: [
        (rec.task_name, rec.jid, rec.completion_time, rec.retries,
         rec.blockings, rec.accrued_utility)
        for rec in r.records
    ]
    assert snapshot(first) == snapshot(second)
    assert first.scheduler_overhead_time == second.scheduler_overhead_time
