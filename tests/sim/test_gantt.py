"""Tests for the ASCII Gantt renderer."""

import pytest

from repro.sim.gantt import execution_runs, render_gantt
from repro.sim.kernel import SyncMode
from repro.units import US
from tests.helpers import run_scenario, simple_task, zero_cost_policy


def _preemption_scenario():
    long = simple_task("L", critical_us=50_000, compute_us=10_000,
                       window_us=60_000)
    short = simple_task("S", critical_us=2_000, compute_us=500,
                        window_us=60_000)
    return run_scenario([long, short], [[0], [1_000]], horizon_us=60_000)


class TestExecutionRuns:
    def test_single_job_one_run(self):
        task = simple_task("T", critical_us=10_000, compute_us=1_000)
        kernel, _ = run_scenario([task], [[0]], horizon_us=20_000)
        runs = execution_runs(kernel.tracer, horizon=20_000 * US)
        assert len(runs) == 1
        assert runs[0].job == "T#0"
        assert runs[0].end - runs[0].start == 1_000 * US

    def test_preempted_job_splits_into_two_runs(self):
        kernel, _ = _preemption_scenario()
        runs = execution_runs(kernel.tracer, horizon=60_000 * US)
        long_runs = [r for r in runs if r.job == "L#0"]
        short_runs = [r for r in runs if r.job == "S#0"]
        assert len(long_runs) == 2
        assert len(short_runs) == 1
        # The short job's run nests between the long job's two runs.
        assert long_runs[0].end <= short_runs[0].start
        assert short_runs[0].end <= long_runs[1].start

    def test_total_run_time_equals_work_done(self):
        kernel, result = _preemption_scenario()
        runs = execution_runs(kernel.tracer, horizon=60_000 * US)
        busy = sum(r.end - r.start for r in runs)
        assert busy == (10_000 + 500) * US


class TestRenderGantt:
    def test_lanes_for_every_job(self):
        kernel, _ = _preemption_scenario()
        text = render_gantt(kernel.tracer, horizon=60_000 * US)
        assert "L#0" in text and "S#0" in text
        lanes = {line.split()[0]: line.split()[1]
                 for line in text.splitlines()[1:]}
        assert "#" in lanes["L#0"]
        assert "#" in lanes["S#0"]

    def test_abort_marker(self):
        doomed = simple_task("D", critical_us=1_000, compute_us=5_000,
                             window_us=10_000)
        kernel, _ = run_scenario([doomed], [[0]], horizon_us=10_000)
        text = render_gantt(kernel.tracer, horizon=10_000 * US)
        assert "!" in text

    def test_retry_marker(self):
        long = simple_task("L", critical_us=50_000, compute_us=100,
                           accesses=[(0, 3_000)], window_us=60_000)
        short = simple_task("S", critical_us=3_000, compute_us=100,
                            accesses=[(0, 200)], window_us=60_000)
        kernel, _ = run_scenario(
            [long, short], [[0], [1_000]], sync=SyncMode.LOCK_FREE,
            policy=zero_cost_policy("rua-lockfree"), horizon_us=60_000)
        text = render_gantt(kernel.tracer, horizon=60_000 * US)
        assert "*" in text

    def test_parameter_validation(self):
        kernel, _ = _preemption_scenario()
        with pytest.raises(ValueError):
            render_gantt(kernel.tracer, horizon=0)
        with pytest.raises(ValueError):
            render_gantt(kernel.tracer, horizon=100, width=4)
