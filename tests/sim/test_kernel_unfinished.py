"""Regression: ``SimulationResult.unfinished`` counts jobs live at the
horizon.

The count used to be derived from the kernel's last scheduling pass's
view of the live set, which could be stale by the time the horizon hit
(jobs that arrived after the final pass were missed).  It is now the
incrementally-maintained live set itself, measured at shutdown.
"""

from repro.api import Scenario, simulate
from repro.arrivals import UAMSpec
from repro.tasks import Compute, TaskSpec
from repro.tuf import StepTUF


def _task(name: str, compute: int, critical: int) -> TaskSpec:
    return TaskSpec(
        name=name,
        arrival=UAMSpec(1, 1, critical),
        tuf=StepTUF(critical_time=critical),
        body=(Compute(compute),),
    )


def _run(tasks, traces, horizon):
    scenario = Scenario(sync="ideal", horizon=horizon, tasks=tuple(tasks),
                        arrival_traces=tuple(tuple(t) for t in traces))
    return simulate(scenario).result


def test_single_overrunning_job_counts_as_unfinished():
    # Critical time beyond the horizon: the job is neither completed nor
    # aborted when the simulation stops.
    tasks = [_task("A", compute=10_000, critical=50_000)]
    result = _run(tasks, [[0]], horizon=1_000)
    assert result.unfinished == 1
    assert result.records == []


def test_mixed_finished_and_unfinished():
    tasks = [
        _task("A", compute=100, critical=50_000),    # completes early
        _task("B", compute=40_000, critical=90_000),  # still running
        _task("C", compute=40_000, critical=90_000),  # never dispatched
    ]
    result = _run(tasks, [[0], [0], [0]], horizon=5_000)
    assert result.unfinished == 2
    assert len(result.records) == 1
    assert result.records[0].task_name == "A"


def test_late_arrival_after_last_pass_is_counted():
    # The regression case: "B" arrives between the last scheduling pass
    # (triggered by A's completion at t=100) and the horizon; a stale
    # live-set snapshot from that pass would miss it.
    tasks = [
        _task("A", compute=100, critical=50_000),
        _task("B", compute=40_000, critical=200_000),
    ]
    result = _run(tasks, [[0], [4_000]], horizon=5_000)
    assert result.unfinished == 1
    assert len(result.records) == 1


def test_everything_finished_means_zero():
    tasks = [_task("A", compute=100, critical=50_000),
             _task("B", compute=100, critical=50_000)]
    result = _run(tasks, [[0], [0]], horizon=100_000)
    assert result.unfinished == 0
    assert len(result.records) == 2
