"""Tests for per-run metrics."""

import pytest

from repro.arrivals import UAMSpec
from repro.sim.metrics import JobRecord, SimulationResult, record_of
from repro.tasks import Compute, Job, JobState, TaskSpec
from repro.tuf import LinearDecreasingTUF, StepTUF


def _record(utility=1.0, max_utility=1.0, aborted=False, completion=500,
            task="T", retries=0, blockings=0):
    return JobRecord(
        task_name=task, jid=0, release_time=0,
        completion_time=None if aborted else completion,
        accrued_utility=0.0 if aborted else utility,
        max_utility=max_utility, retries=retries, blockings=blockings,
        preemptions=0, aborted=aborted,
    )


class TestJobRecord:
    def test_sojourn(self):
        assert _record(completion=500).sojourn == 500
        assert _record(aborted=True).sojourn is None

    def test_met_critical_time(self):
        assert _record().met_critical_time
        assert not _record(aborted=True).met_critical_time


class TestRecordOf:
    def _job(self):
        task = TaskSpec(name="T", arrival=UAMSpec(1, 1, 1000),
                        tuf=LinearDecreasingTUF(critical_time=1000),
                        body=(Compute(10),))
        return Job(task=task, jid=3, release_time=100)

    def test_snapshot_of_completed_job(self):
        job = self._job()
        job.state = JobState.COMPLETED
        job.completion_time = 600
        job.accrued_utility = 0.5
        record = record_of(job)
        assert record.task_name == "T"
        assert record.jid == 3
        assert record.sojourn == 500
        assert not record.aborted

    def test_snapshot_of_aborted_job(self):
        job = self._job()
        job.state = JobState.ABORTED
        record = record_of(job)
        assert record.aborted
        assert record.accrued_utility == 0.0

    def test_live_job_rejected(self):
        with pytest.raises(ValueError, match="live"):
            record_of(self._job())


class TestSimulationResult:
    def test_aur_is_utility_ratio(self):
        result = SimulationResult(records=[
            _record(utility=1.0), _record(utility=0.5),
            _record(aborted=True),
        ])
        assert result.aur == pytest.approx(1.5 / 3.0)

    def test_cmr_counts_meets(self):
        result = SimulationResult(records=[
            _record(), _record(), _record(aborted=True), _record(),
        ])
        assert result.cmr == pytest.approx(3 / 4)

    def test_empty_result_ratios_are_zero(self):
        result = SimulationResult()
        assert result.aur == 0.0
        assert result.cmr == 0.0

    def test_totals(self):
        result = SimulationResult(records=[
            _record(retries=2, blockings=1),
            _record(retries=3, blockings=0, aborted=True),
        ])
        assert result.total_retries == 5
        assert result.total_blockings == 1
        assert result.abort_count == 1
        assert result.releases == 2

    def test_sojourn_views(self):
        result = SimulationResult(records=[
            _record(completion=100, task="A"),
            _record(completion=300, task="A"),
            _record(completion=200, task="B"),
            _record(aborted=True, task="A"),
        ])
        assert result.mean_sojourn("A") == pytest.approx(200)
        assert result.max_sojourn("A") == 300
        assert result.mean_sojourn("Z") is None
        assert sorted(result.sojourns()) == [100, 200, 300]

    def test_per_task_split(self):
        result = SimulationResult(records=[
            _record(task="A"), _record(task="B"), _record(task="A"),
        ])
        split = result.per_task()
        assert len(split["A"].records) == 2
        assert len(split["B"].records) == 1

    def test_mechanism_means(self):
        result = SimulationResult()
        assert result.mean_lock_mechanism_per_access is None
        result.lock_mechanism_time = 100
        result.lock_access_commits = 4
        assert result.mean_lock_mechanism_per_access == 25.0
        result.lockfree_mechanism_time = 30
        result.lockfree_access_commits = 3
        assert result.mean_lockfree_mechanism_per_access == 10.0
