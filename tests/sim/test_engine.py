"""Tests for the event queue."""

import pytest

from repro.sim.engine import EventQueue, QueueEmpty


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(30, 0, "c")
        q.push(10, 0, "a")
        q.push(20, 0, "b")
        assert [q.pop() for _ in range(3)] == [(10, "a"), (20, "b"),
                                               (30, "c")]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(10, 2, "milestone")
        q.push(10, 0, "timer")
        q.push(10, 1, "arrival")
        assert [payload for _, payload in (q.pop(), q.pop(), q.pop())] == [
            "timer", "arrival", "milestone"
        ]

    def test_insertion_order_breaks_full_ties(self):
        q = EventQueue()
        q.push(10, 1, "first")
        q.push(10, 1, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"


class TestBasics:
    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1, 0, "x")
        assert q
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(QueueEmpty):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(7, 0, "x")
        assert q.peek_time() == 7
        q.pop()
        assert q.peek_time() is None

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1, 0, "x")

    def test_drain_empties_in_order(self):
        q = EventQueue()
        for t in (5, 1, 3):
            q.push(t, 0, t)
        assert [t for t, _ in q.drain()] == [1, 3, 5]
        assert not q
