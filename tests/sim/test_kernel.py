"""Scenario tests for the simulated RTOS kernel."""

import pytest

from repro.sim.kernel import SimulationConfig, SyncMode
from repro.sim.objects import RetryPolicy
from repro.sim.tracing import TraceKind
from repro.tuf import LinearDecreasingTUF
from repro.units import US
from tests.helpers import run_scenario, simple_task, zero_cost_policy


class TestBasicExecution:
    def test_single_job_completes_with_full_utility(self):
        task = simple_task("T", critical_us=1000, compute_us=100)
        _, result = run_scenario([task], [[0]])
        assert len(result.records) == 1
        record = result.records[0]
        assert record.met_critical_time
        assert record.sojourn == 100 * US
        assert record.accrued_utility == 1.0
        assert result.aur == 1.0

    def test_two_jobs_run_to_completion_in_edf_order(self):
        short = simple_task("S", critical_us=500, compute_us=100)
        long = simple_task("L", critical_us=2000, compute_us=100)
        kernel, result = run_scenario([long, short], [[0], [0]])
        completions = {r.task_name: r.completion_time for r in result.records}
        assert completions["S"] < completions["L"]
        assert result.cmr == 1.0

    def test_linear_tuf_accrues_partial_utility(self):
        task = simple_task("T", critical_us=1000, compute_us=500,
                           tuf=LinearDecreasingTUF(critical_time=1000 * US))
        _, result = run_scenario([task], [[0]])
        assert result.records[0].accrued_utility == pytest.approx(0.5)

    def test_idle_gap_between_arrivals(self):
        task = simple_task("T", critical_us=1000, compute_us=100,
                           window_us=10_000)
        kernel, result = run_scenario([task], [[0, 10_000]],
                                      horizon_us=20_000)
        assert len(result.records) == 2
        assert kernel.tracer.of_kind(TraceKind.IDLE)


class TestAbortion:
    def test_job_aborted_at_critical_time(self):
        # 2000us of work, critical time 1000us: cannot finish.
        task = simple_task("T", critical_us=1000, compute_us=2000,
                           window_us=3000)
        kernel, result = run_scenario([task], [[0]])
        record = result.records[0]
        assert record.aborted
        assert record.accrued_utility == 0.0
        aborts = kernel.tracer.of_kind(TraceKind.ABORT)
        assert len(aborts) == 1
        assert aborts[0].time == 1000 * US

    def test_abort_releases_held_lock(self):
        greedy = simple_task("G", critical_us=1000, compute_us=10,
                             accesses=[(0, 5000)], window_us=10_000)
        waiter = simple_task("W", critical_us=9000, compute_us=10,
                             accesses=[(0, 100)], window_us=10_000)
        _, result = run_scenario(
            [greedy, waiter], [[0], [100]], sync=SyncMode.LOCK_BASED,
            policy=zero_cost_policy("rua-lockbased"), horizon_us=20_000)
        by_name = {r.task_name: r for r in result.records}
        assert by_name["G"].aborted
        assert by_name["W"].met_critical_time

    def test_abort_handler_time_delays_others(self):
        doomed = simple_task("D", critical_us=100, compute_us=5000,
                             window_us=10_000, handler_us=500)
        bystander = simple_task("B", critical_us=5000, compute_us=100,
                                window_us=10_000)
        # Bystander arrives exactly at the doomed job's abort instant.
        _, result = run_scenario([doomed, bystander], [[0], [100]],
                                 horizon_us=10_000)
        by_name = {r.task_name: r for r in result.records}
        # The 500us handler runs before the bystander's work.
        assert by_name["B"].completion_time >= (100 + 500 + 100) * US

    def test_stale_timer_after_completion_is_ignored(self):
        task = simple_task("T", critical_us=1000, compute_us=10)
        kernel, result = run_scenario([task], [[0]], horizon_us=5000)
        assert not result.records[0].aborted
        assert kernel.tracer.of_kind(TraceKind.ABORT) == []


class TestPreemption:
    def test_later_shorter_job_preempts(self):
        long = simple_task("L", critical_us=50_000, compute_us=10_000,
                           window_us=60_000)
        short = simple_task("S", critical_us=2000, compute_us=500,
                            window_us=60_000)
        kernel, result = run_scenario([long, short], [[0], [1000]],
                                      horizon_us=60_000)
        by_name = {r.task_name: r for r in result.records}
        assert by_name["S"].completion_time == (1000 + 500) * US
        assert by_name["L"].preemptions >= 1
        assert kernel.tracer.of_kind(TraceKind.PREEMPT)

    def test_preempted_compute_work_is_not_lost(self):
        long = simple_task("L", critical_us=50_000, compute_us=10_000,
                           window_us=60_000)
        short = simple_task("S", critical_us=2000, compute_us=500,
                            window_us=60_000)
        _, result = run_scenario([long, short], [[0], [1000]],
                                 horizon_us=60_000)
        by_name = {r.task_name: r for r in result.records}
        # Total work 10500us from t=0 with 500us of preemption in the
        # middle: completion exactly at 10500us (no work discarded).
        assert by_name["L"].completion_time == 10_500 * US


class TestLockBasedSharing:
    def test_lock_holder_scheduled_before_dependent(self):
        # RUA inserts the lock owner before the dependent (Figure 4).
        holder = simple_task("H", critical_us=40_000, compute_us=100,
                             accesses=[(0, 3000)], window_us=50_000)
        dependent = simple_task("D", critical_us=5000, compute_us=100,
                                accesses=[(0, 200)], window_us=50_000)
        kernel, result = run_scenario(
            [holder, dependent], [[0], [1000]], sync=SyncMode.LOCK_BASED,
            policy=zero_cost_policy("rua-lockbased"), horizon_us=50_000)
        assert result.cmr == 1.0
        # The dependent waited for the lock: its sojourn includes the
        # holder's critical section remainder.
        by_name = {r.task_name: r for r in result.records}
        assert by_name["D"].sojourn > (100 + 200) * US

    def test_edf_blocking_is_counted(self):
        holder = simple_task("H", critical_us=40_000, compute_us=100,
                             accesses=[(0, 3000)], window_us=50_000)
        dependent = simple_task("D", critical_us=5000, compute_us=100,
                                accesses=[(0, 200)], window_us=50_000)
        kernel, result = run_scenario(
            [holder, dependent], [[0], [1000]], sync=SyncMode.LOCK_BASED,
            policy=zero_cost_policy("edf"), horizon_us=50_000)
        by_name = {r.task_name: r for r in result.records}
        assert by_name["D"].blockings >= 1
        assert kernel.tracer.of_kind(TraceKind.BLOCK)
        assert kernel.tracer.of_kind(TraceKind.UNBLOCK)

    def test_lock_acquire_release_traced(self):
        task = simple_task("T", critical_us=10_000, compute_us=100,
                           accesses=[(0, 50)])
        kernel, _ = run_scenario([task], [[0]], sync=SyncMode.LOCK_BASED,
                                 policy=zero_cost_policy("rua-lockbased"))
        assert len(kernel.tracer.of_kind(TraceKind.LOCK_ACQUIRE)) == 1
        assert len(kernel.tracer.of_kind(TraceKind.LOCK_RELEASE)) == 1


class TestLockFreeSharing:
    def _conflict_pair(self):
        long = simple_task("L", critical_us=50_000, compute_us=100,
                           accesses=[(0, 3000)], window_us=60_000)
        short = simple_task("S", critical_us=3000, compute_us=100,
                            accesses=[(0, 200)], window_us=60_000)
        return long, short

    def test_conflicting_commit_forces_retry(self):
        long, short = self._conflict_pair()
        kernel, result = run_scenario(
            [long, short], [[0], [1000]], sync=SyncMode.LOCK_FREE,
            policy=zero_cost_policy("rua-lockfree"), horizon_us=60_000)
        by_name = {r.task_name: r for r in result.records}
        assert by_name["L"].retries == 1
        assert by_name["S"].retries == 0
        assert kernel.tracer.of_kind(TraceKind.RETRY)
        assert result.cmr == 1.0

    def test_read_does_not_invalidate_writer(self):
        from repro.tasks.segments import AccessKind
        long, _ = self._conflict_pair()
        reader = simple_task("R", critical_us=3000, compute_us=100,
                             accesses=[(0, 200)], window_us=60_000,
                             kind=AccessKind.READ)
        _, result = run_scenario(
            [long, reader], [[0], [1000]], sync=SyncMode.LOCK_FREE,
            policy=zero_cost_policy("rua-lockfree"), horizon_us=60_000)
        by_name = {r.task_name: r for r in result.records}
        assert by_name["L"].retries == 0

    def test_on_preemption_policy_retries_without_conflict(self):
        long = simple_task("L", critical_us=50_000, compute_us=100,
                           accesses=[(0, 3000)], window_us=60_000)
        disjoint = simple_task("S", critical_us=3000, compute_us=100,
                               accesses=[(1, 200)], window_us=60_000)
        _, result = run_scenario(
            [long, disjoint], [[0], [1000]], sync=SyncMode.LOCK_FREE,
            policy=zero_cost_policy("rua-lockfree"), horizon_us=60_000,
            retry_policy=RetryPolicy.ON_PREEMPTION)
        by_name = {r.task_name: r for r in result.records}
        assert by_name["L"].retries == 1

    def test_on_conflict_policy_spares_disjoint_objects(self):
        long = simple_task("L", critical_us=50_000, compute_us=100,
                           accesses=[(0, 3000)], window_us=60_000)
        disjoint = simple_task("S", critical_us=3000, compute_us=100,
                               accesses=[(1, 200)], window_us=60_000)
        _, result = run_scenario(
            [long, disjoint], [[0], [1000]], sync=SyncMode.LOCK_FREE,
            policy=zero_cost_policy("rua-lockfree"), horizon_us=60_000,
            retry_policy=RetryPolicy.ON_CONFLICT)
        by_name = {r.task_name: r for r in result.records}
        assert by_name["L"].retries == 0

    def test_retry_wastes_time_but_work_completes(self):
        long, short = self._conflict_pair()
        _, result = run_scenario(
            [long, short], [[0], [1000]], sync=SyncMode.LOCK_FREE,
            policy=zero_cost_policy("rua-lockfree"), horizon_us=60_000)
        by_name = {r.task_name: r for r in result.records}
        # L: 100 compute + started access at 100, preempted at 1000
        # (900 wasted), S runs 100+200+? ... L restarts the 3000us access
        # after S completes at 1300us, finishing at 1300+3000.
        assert by_name["L"].completion_time == (1300 + 3000) * US


class TestSyncModeNone:
    def test_access_segments_run_as_compute(self):
        task = simple_task("T", critical_us=10_000, compute_us=100,
                           accesses=[(0, 500)])
        kernel, result = run_scenario([task], [[0]], sync=SyncMode.NONE)
        assert result.records[0].sojourn == 600 * US
        assert kernel.tracer.of_kind(TraceKind.LOCK_ACQUIRE) == []
        assert kernel.tracer.of_kind(TraceKind.RETRY) == []


class TestHorizon:
    def test_unfinished_jobs_counted(self):
        task = simple_task("T", critical_us=90_000, compute_us=50_000,
                           window_us=100_000)
        _, result = run_scenario([task], [[0]], horizon_us=10_000)
        assert result.unfinished == 1
        assert result.records == []

    def test_arrivals_beyond_horizon_dropped(self):
        task = simple_task("T", critical_us=1000, compute_us=10,
                           window_us=2000)
        with pytest.warns(RuntimeWarning, match="beyond the horizon"):
            _, result = run_scenario([task], [[0, 2000, 4000, 999_000]],
                                     horizon_us=5000)
        assert len(result.records) == 3


class TestDeterminism:
    def test_identical_runs_produce_identical_results(self):
        tasks = [
            simple_task("A", critical_us=5000, compute_us=700,
                        accesses=[(0, 100)], window_us=6000),
            simple_task("B", critical_us=3000, compute_us=400,
                        accesses=[(0, 100)], window_us=6000),
        ]
        outcomes = []
        for _ in range(2):
            _, result = run_scenario(
                tasks, [[0, 6000], [500, 6500]], sync=SyncMode.LOCK_FREE,
                policy=zero_cost_policy("rua-lockfree"), horizon_us=15_000)
            outcomes.append([
                (r.task_name, r.completion_time, r.retries)
                for r in result.records
            ])
        assert outcomes[0] == outcomes[1]


class TestConfigValidation:
    def test_trace_count_must_match_tasks(self):
        task = simple_task("T", critical_us=1000, compute_us=10)
        with pytest.raises(ValueError, match="one arrival trace per task"):
            SimulationConfig(tasks=[task], arrival_traces=[],
                             policy=zero_cost_policy("edf"), horizon=1000)

    def test_horizon_must_be_positive(self):
        task = simple_task("T", critical_us=1000, compute_us=10)
        with pytest.raises(ValueError, match="horizon"):
            SimulationConfig(tasks=[task], arrival_traces=[[0]],
                             policy=zero_cost_policy("edf"), horizon=0)

    def test_kernel_runs_once(self):
        task = simple_task("T", critical_us=1000, compute_us=10)
        kernel, first = run_scenario([task], [[0]])
        # The error names the original horizon, and the rejection leaves
        # the completed run's result untouched.
        with pytest.raises(RuntimeError,
                           match=r"exactly once.*horizon=100000000"):
            kernel.run()
        assert len(first.records) == 1

    def test_unsorted_trace_rejected(self):
        task = simple_task("T", critical_us=1000, compute_us=10,
                           window_us=10_000)
        with pytest.raises(ValueError, match="task 0 is not sorted"):
            run_scenario([task], [[5000, 0]])

    def test_negative_release_rejected(self):
        task = simple_task("T", critical_us=1000, compute_us=10,
                           window_us=10_000)
        with pytest.raises(ValueError, match="negative release"):
            run_scenario([task], [[-3]])
