"""Tests for the overhead cost models."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.overheads import (
    ConstantCost,
    KernelCosts,
    LinearithmicCost,
    QuadraticCost,
    QuadraticLogCost,
    ZeroCost,
    default_edf_cost,
    default_lockbased_rua_cost,
    default_lockfree_rua_cost,
)


class TestModels:
    def test_zero_cost_is_zero(self):
        assert ZeroCost().cost(0) == 0
        assert ZeroCost().cost(1000) == 0

    def test_constant_cost(self):
        assert ConstantCost(7).cost(0) == 7
        assert ConstantCost(7).cost(99) == 7

    def test_base_applies_at_zero_jobs(self):
        assert LinearithmicCost(base=5, unit=1.0).cost(0) == 5
        assert QuadraticCost(base=5, unit=1.0).cost(0) == 5
        assert QuadraticLogCost(base=5, unit=1.0).cost(0) == 5

    @given(st.integers(min_value=0, max_value=500))
    def test_monotone_in_job_count(self, n):
        for model in (LinearithmicCost(1, 2.0), QuadraticCost(1, 2.0),
                      QuadraticLogCost(1, 2.0)):
            assert model.cost(n + 1) >= model.cost(n)

    def test_callable_alias(self):
        model = QuadraticCost(base=0, unit=1.0)
        assert model(4) == model.cost(4)

    def test_asymptotic_ordering_at_scale(self):
        # lock-based RUA pass must dominate lock-free which dominates EDF.
        n = 10
        assert (default_lockbased_rua_cost().cost(n)
                > default_lockfree_rua_cost().cost(n)
                > default_edf_cost().cost(n))


class TestKernelCosts:
    def test_defaults_are_nonnegative(self):
        costs = KernelCosts()
        assert costs.context_switch >= 0
        assert costs.lock_overhead >= 0

    def test_ideal_is_all_zero(self):
        costs = KernelCosts.ideal()
        assert costs.context_switch == 0
        assert costs.lock_overhead == 0
        assert costs.cas_overhead == 0
        assert costs.timer_overhead == 0

    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            KernelCosts(context_switch=-1)
