"""End-to-end tests for nested critical sections and deadlock
resolution (paper Section 3.3).

Nesting is excluded from the paper's lock-based/lock-free comparisons
(Section 5), but it is part of RUA's definition; these tests drive the
whole path — held-across locks, a runtime deadlock, policy-initiated
victim abortion, rollback, and recovery of the survivor.
"""

import pytest

from repro.arrivals import UAMSpec
from repro.core.rua_lockbased import LockBasedRUA
from repro.sim.kernel import Kernel, SimulationConfig, SyncMode
from repro.sim.overheads import KernelCosts, ZeroCost
from repro.sim.tracing import TraceKind
from repro.tasks import Compute, ObjectAccess, TaskSpec
from repro.tasks.segments import ReleaseLock
from repro.tuf import StepTUF
from repro.units import MS, US


def _nested_task(name, first, second, critical_us, height=1.0,
                 hold_us=2_000):
    """compute, acquire `first` (held), compute, acquire `second`,
    release `first`, compute."""
    body = (
        Compute(100 * US),
        ObjectAccess(obj=first, duration=hold_us * US,
                     release_at_end=False),
        Compute(500 * US),
        ObjectAccess(obj=second, duration=200 * US),
        ReleaseLock(obj=first),
        Compute(100 * US),
    )
    return TaskSpec(
        name=name,
        arrival=UAMSpec(1, 1, 60 * MS),
        tuf=StepTUF(critical_time=critical_us * US, height=height),
        body=body,
    )


def _run(tasks, traces_us, horizon_us=60_000, detect=True):
    config = SimulationConfig(
        tasks=tasks,
        arrival_traces=[[t * US for t in trace] for trace in traces_us],
        policy=LockBasedRUA(cost_model=ZeroCost(),
                            detect_deadlocks=detect),
        horizon=horizon_us * US,
        sync=SyncMode.LOCK_BASED,
        costs=KernelCosts.ideal(),
        allow_nesting=True,
        trace=True,
    )
    kernel = Kernel(config)
    return kernel, kernel.run()


class TestHeldAcrossLocks:
    def test_single_task_nested_body_completes(self):
        task = _nested_task("T", "A", "B", critical_us=50_000)
        kernel, result = _run([task], [[0]])
        assert result.records[0].met_critical_time
        acquires = kernel.tracer.of_kind(TraceKind.LOCK_ACQUIRE)
        releases = kernel.tracer.of_kind(TraceKind.LOCK_RELEASE)
        assert len(acquires) == 2
        assert len(releases) == 2

    def test_held_lock_blocks_competitor_until_explicit_release(self):
        holder = _nested_task("H", "A", "B", critical_us=50_000)
        competitor = TaskSpec(
            name="C",
            arrival=UAMSpec(1, 1, 60 * MS),
            tuf=StepTUF(critical_time=40 * MS),
            body=(Compute(10 * US), ObjectAccess(obj="A", duration=100 * US),
                  Compute(10 * US)),
        )
        kernel, result = _run([holder, competitor], [[0], [500]])
        by_name = {r.task_name: r for r in result.records}
        assert by_name["C"].met_critical_time
        # The competitor could only get A after the ReleaseLock, which
        # comes after H's inner B section (~2000+500+200 us of work).
        assert by_name["C"].completion_time > 2_700 * US


class TestRuntimeDeadlock:
    def _deadlock_pair(self):
        # A->B and B->A with staggered arrivals and an urgent second job
        # (earlier critical time => it preempts mid-outer-section):
        # a genuine runtime cycle.
        rich = _nested_task("rich", "A", "B", critical_us=50_000,
                            height=10.0)
        poor = _nested_task("poor", "B", "A", critical_us=10_000,
                            height=1.0)
        return rich, poor

    def test_deadlock_resolved_by_aborting_low_utility_job(self):
        rich, poor = self._deadlock_pair()
        # poor preempts rich inside rich's outer (held) section, grabs B,
        # then requests A; rich resumes and requests B: cycle closed.
        kernel, result = _run([rich, poor], [[0], [200]])
        by_name = {r.task_name: r for r in result.records}
        aborts = kernel.tracer.of_kind(TraceKind.ABORT)
        # Exactly one of the two was sacrificed, and it is the
        # least-utility one; the survivor completes in time.
        assert len(aborts) == 1
        assert by_name["poor"].aborted
        assert by_name["rich"].met_critical_time

    def test_survivor_acquires_victims_lock_in_the_same_pass(self):
        # RUA schedules lock holders proactively (dependency chains), so
        # the survivor never literally blocks: the victim's rollback and
        # the survivor's acquisition happen in one scheduling pass.
        rich, poor = self._deadlock_pair()
        kernel, result = _run([rich, poor], [[0], [200]])
        by_name = {r.task_name: r for r in result.records}
        assert by_name["rich"].blockings == 0
        abort = kernel.tracer.of_kind(TraceKind.ABORT)[0]
        acquire_b = [e for e in kernel.tracer.of_kind(TraceKind.LOCK_ACQUIRE)
                     if e.job.startswith("rich") and e.detail == "B"][0]
        assert abort.time == acquire_b.time

    def test_without_detection_resolution_waits_for_critical_time(self):
        # With detection disabled, the cycle persists until the victim's
        # own critical-time abort breaks it — the survivor completes far
        # later than under active resolution, and the rollback visibly
        # unblocks it.
        rich, poor = self._deadlock_pair()
        _, with_detection = _run([rich, poor], [[0], [200]])
        kernel, without = _run([rich, poor], [[0], [200]], detect=False)
        with_d = {r.task_name: r for r in with_detection.records}
        without_d = {r.task_name: r for r in without.records}
        assert without_d["poor"].aborted
        assert without_d["rich"].met_critical_time
        # poor's critical time is ~10 ms; detection resolves within ~6 ms.
        assert without_d["rich"].completion_time > 10_000 * US
        assert with_d["rich"].completion_time < 6_000 * US
        unblocks = kernel.tracer.of_kind(TraceKind.UNBLOCK)
        assert any(e.job.startswith("rich") for e in unblocks)


class TestBodyValidation:
    def test_release_of_unheld_object_rejected(self):
        with pytest.raises(ValueError, match="not held"):
            TaskSpec(
                name="T", arrival=UAMSpec(1, 1, 1000),
                tuf=StepTUF(critical_time=1000),
                body=(Compute(10), ReleaseLock(obj="A")),
            )

    def test_unreleased_lock_rejected(self):
        with pytest.raises(ValueError, match="still held"):
            TaskSpec(
                name="T", arrival=UAMSpec(1, 1, 1000),
                tuf=StepTUF(critical_time=1000),
                body=(ObjectAccess(obj="A", duration=10,
                                   release_at_end=False),),
            )

    def test_reacquire_held_object_rejected(self):
        with pytest.raises(ValueError, match="re-acquiring"):
            TaskSpec(
                name="T", arrival=UAMSpec(1, 1, 1000),
                tuf=StepTUF(critical_time=1000),
                body=(ObjectAccess(obj="A", duration=10,
                                   release_at_end=False),
                      ObjectAccess(obj="A", duration=10),
                      ReleaseLock(obj="A")),
            )

    def test_release_lock_must_be_instantaneous(self):
        with pytest.raises(ValueError, match="instantaneous"):
            ReleaseLock(obj="A", duration=5)


class TestNestingUnderOtherSyncModes:
    def test_lockfree_treats_nested_body_as_plain_accesses(self):
        task = _nested_task("T", "A", "B", critical_us=50_000)
        config = SimulationConfig(
            tasks=[task], arrival_traces=[[0]],
            policy=__import__("repro.core.rua_lockfree",
                              fromlist=["LockFreeRUA"]).LockFreeRUA(
                cost_model=ZeroCost()),
            horizon=60 * MS, sync=SyncMode.LOCK_FREE,
            costs=KernelCosts.ideal(), trace=True,
        )
        kernel = Kernel(config)
        result = kernel.run()
        assert result.records[0].met_critical_time
        # Both accesses committed; the ReleaseLock was a no-op.
        assert result.lockfree_access_commits == 2
        assert kernel.tracer.of_kind(TraceKind.LOCK_RELEASE) == []
