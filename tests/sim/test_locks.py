"""Tests for the lock manager."""

import pytest

from repro.arrivals import UAMSpec
from repro.sim.locks import LockManager
from repro.tasks import Compute, Job, TaskSpec
from repro.tuf import StepTUF


def _job(name="T"):
    task = TaskSpec(name=name, arrival=UAMSpec(1, 1, 1000),
                    tuf=StepTUF(critical_time=1000), body=(Compute(10),))
    return Job(task=task, jid=0, release_time=0)


class TestAcquireRelease:
    def test_free_lock_acquired(self):
        locks = LockManager()
        job = _job()
        assert locks.try_acquire(job, "q")
        assert locks.owner_of("q") is job
        assert locks.held_by(job) == ("q",)

    def test_held_lock_enqueues_waiter(self):
        locks = LockManager()
        owner, waiter = _job("A"), _job("B")
        assert locks.try_acquire(owner, "q")
        assert not locks.try_acquire(waiter, "q")
        assert locks.waiters_on("q") == (waiter,)
        assert locks.contentions == 1

    def test_release_returns_waiters(self):
        locks = LockManager()
        owner, waiter = _job("A"), _job("B")
        locks.try_acquire(owner, "q")
        locks.try_acquire(waiter, "q")
        woken = locks.release(owner, "q")
        assert woken == [waiter]
        assert locks.owner_of("q") is None

    def test_release_without_ownership_raises(self):
        locks = LockManager()
        with pytest.raises(RuntimeError, match="does not hold"):
            locks.release(_job(), "q")

    def test_reacquire_held_lock_raises(self):
        locks = LockManager()
        job = _job()
        locks.try_acquire(job, "q")
        with pytest.raises(RuntimeError, match="re-acquiring"):
            locks.try_acquire(job, "q")

    def test_duplicate_wait_not_enqueued_twice(self):
        locks = LockManager()
        owner, waiter = _job("A"), _job("B")
        locks.try_acquire(owner, "q")
        locks.try_acquire(waiter, "q")
        locks.try_acquire(waiter, "q")
        assert locks.waiters_on("q") == (waiter,)


class TestNesting:
    def test_nesting_disabled_by_default(self):
        locks = LockManager()
        job = _job()
        locks.try_acquire(job, "a")
        with pytest.raises(RuntimeError, match="nested"):
            locks.try_acquire(job, "b")

    def test_nesting_enabled(self):
        locks = LockManager(allow_nesting=True)
        job = _job()
        assert locks.try_acquire(job, "a")
        assert locks.try_acquire(job, "b")
        assert set(locks.held_by(job)) == {"a", "b"}


class TestRollback:
    def test_release_all_frees_everything(self):
        locks = LockManager(allow_nesting=True)
        job, waiter = _job("A"), _job("B")
        locks.try_acquire(job, "a")
        locks.try_acquire(job, "b")
        locks.try_acquire(waiter, "a")
        woken = locks.release_all(job)
        assert waiter in woken
        assert locks.owner_of("a") is None
        assert locks.owner_of("b") is None
        assert locks.held_by(job) == ()

    def test_release_all_cancels_own_waits(self):
        locks = LockManager()
        owner, job = _job("A"), _job("B")
        locks.try_acquire(owner, "q")
        locks.try_acquire(job, "q")
        locks.release_all(job)
        assert locks.waiters_on("q") == ()

    def test_cancel_wait(self):
        locks = LockManager()
        owner, waiter = _job("A"), _job("B")
        locks.try_acquire(owner, "q")
        locks.try_acquire(waiter, "q")
        locks.cancel_wait(waiter)
        assert locks.waiters_on("q") == ()


class TestDependencyView:
    def test_edges_map_waiter_to_owner(self):
        locks = LockManager()
        owner, waiter = _job("A"), _job("B")
        locks.try_acquire(owner, "q")
        locks.try_acquire(waiter, "q")
        assert locks.dependency_edges() == {waiter: owner}

    def test_blocking_job_uses_blocked_on(self):
        locks = LockManager()
        owner, waiter = _job("A"), _job("B")
        locks.try_acquire(owner, "q")
        waiter.blocked_on = "q"
        assert locks.blocking_job(waiter) is owner
        waiter.blocked_on = None
        assert locks.blocking_job(waiter) is None
