"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestQuick:
    def test_default_runs_all_styles(self, capsys):
        assert main(["quick", "--horizon-ms", "100", "--tasks", "3",
                     "--objects", "2"]) == 0
        out = capsys.readouterr().out
        for style in ("ideal", "edf", "lockfree", "lockbased"):
            assert style in out

    def test_sync_filter(self, capsys):
        assert main(["quick", "--horizon-ms", "50", "--tasks", "2",
                     "--objects", "1", "--sync", "lockfree"]) == 0
        out = capsys.readouterr().out
        assert "lockfree" in out
        assert "lockbased" not in out

    def test_hetero_class(self, capsys):
        assert main(["quick", "--horizon-ms", "50", "--tasks", "2",
                     "--objects", "1", "--tuf-class", "hetero",
                     "--sync", "ideal"]) == 0


class TestFigure:
    def test_fig10_small(self, capsys):
        assert main(["figure", "fig10", "--repeats", "1",
                     "--horizon-ms", "30"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "AUR lock-free" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestRetryBound:
    def test_bound_holds(self, capsys):
        assert main(["retrybound", "--repeats", "1",
                     "--horizon-ms", "100"]) == 0
        out = capsys.readouterr().out
        assert "bound holds" in out


class TestSojourn:
    def test_lockfree_wins_with_small_s(self, capsys):
        assert main(["sojourn", "--r", "30", "--s", "2"]) == 0
        out = capsys.readouterr().out
        assert "lock-free" in out
        assert "s/r = 0.0667" in out

    def test_lockbased_wins_with_large_s(self, capsys):
        assert main(["sojourn", "--r", "10", "--s", "9.9"]) == 0
        out = capsys.readouterr().out
        assert "shorter worst-case sojourn: lock-based" in out


def test_no_command_rejected():
    with pytest.raises(SystemExit):
        main([])
