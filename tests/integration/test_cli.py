"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestQuick:
    def test_default_runs_all_styles(self, capsys):
        assert main(["quick", "--horizon-ms", "100", "--tasks", "3",
                     "--objects", "2"]) == 0
        out = capsys.readouterr().out
        for style in ("ideal", "edf", "lockfree", "lockbased"):
            assert style in out

    def test_sync_filter(self, capsys):
        assert main(["quick", "--horizon-ms", "50", "--tasks", "2",
                     "--objects", "1", "--sync", "lockfree"]) == 0
        out = capsys.readouterr().out
        assert "lockfree" in out
        assert "lockbased" not in out

    def test_hetero_class(self, capsys):
        assert main(["quick", "--horizon-ms", "50", "--tasks", "2",
                     "--objects", "1", "--tuf-class", "hetero",
                     "--sync", "ideal"]) == 0


class TestFigure:
    def test_fig10_small(self, capsys):
        assert main(["figure", "fig10", "--repeats", "1",
                     "--horizon-ms", "30"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "AUR lock-free" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestRetryBound:
    def test_bound_holds(self, capsys):
        assert main(["retrybound", "--repeats", "1",
                     "--horizon-ms", "100"]) == 0
        out = capsys.readouterr().out
        assert "bound holds" in out


class TestFaults:
    def test_small_campaign(self, capsys):
        assert main(["faults", "--bursts", "0,2", "--repeats", "1",
                     "--horizon-ms", "15"]) == 0
        out = capsys.readouterr().out
        assert "CML under faults" in out
        assert "per-level degradation" in out

    def test_report_written_to_file(self, capsys, tmp_path):
        out_file = tmp_path / "degradation.txt"
        assert main(["faults", "--bursts", "2", "--repeats", "1",
                     "--horizon-ms", "10", "--out", str(out_file)]) == 0
        assert "bursts/task=2" in out_file.read_text()

    def test_bad_burst_list_rejected(self, capsys):
        assert main(["faults", "--bursts", "two"]) == 2
        assert main(["faults", "--bursts", ","]) == 2
        assert main(["faults", "--bursts=-3,2"]) == 2
        err = capsys.readouterr().err
        assert "--bursts" in err
        assert "levels must be >= 0" in err


class TestSojourn:
    def test_lockfree_wins_with_small_s(self, capsys):
        assert main(["sojourn", "--r", "30", "--s", "2"]) == 0
        out = capsys.readouterr().out
        assert "lock-free" in out
        assert "s/r = 0.0667" in out

    def test_lockbased_wins_with_large_s(self, capsys):
        assert main(["sojourn", "--r", "10", "--s", "9.9"]) == 0
        out = capsys.readouterr().out
        assert "shorter worst-case sojourn: lock-based" in out


def test_no_command_rejected():
    with pytest.raises(SystemExit):
        main([])
