"""Tests for the top-level convenience API."""

import pytest

from repro import SimulationSummary, quick_simulation
from repro.api import build_policy_and_mode, simulate
from repro.sim.kernel import SyncMode


class TestQuickSimulation:
    def test_returns_summary(self):
        summary = quick_simulation(n_tasks=3, n_objects=2, load=0.5,
                                   horizon_us=100_000, seed=1)
        assert isinstance(summary, SimulationSummary)
        assert 0.0 <= summary.aur <= 1.0
        assert 0.0 <= summary.cmr <= 1.0
        assert summary.load == pytest.approx(0.5, rel=0.05)

    def test_deterministic_in_seed(self):
        a = quick_simulation(seed=3, horizon_us=100_000)
        b = quick_simulation(seed=3, horizon_us=100_000)
        assert a.aur == b.aur
        assert len(a.result.records) == len(b.result.records)

    def test_str_is_informative(self):
        summary = quick_simulation(n_tasks=2, horizon_us=50_000)
        text = str(summary)
        assert "AUR" in text and "CMR" in text

    def test_all_sync_styles(self):
        for sync in ("lockfree", "lockbased", "ideal", "edf"):
            summary = quick_simulation(sync=sync, n_tasks=3,
                                       horizon_us=50_000)
            assert summary.sync == sync


class TestBuildPolicyAndMode:
    def test_mappings(self):
        policy, mode, costs = build_policy_and_mode("lockbased")
        assert policy.name == "rua-lockbased"
        assert mode is SyncMode.LOCK_BASED
        policy, mode, costs = build_policy_and_mode("ideal")
        assert mode is SyncMode.NONE
        assert costs.context_switch == 0

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            build_policy_and_mode("optimistic")
