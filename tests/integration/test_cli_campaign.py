"""CLI campaign-resilience integration tests.

Includes the PR's acceptance scenario: a figure campaign on 4 workers
with an injected worker crash and a hung (timed-out) trial completes,
reports the failures, and — after the journal is torn mid-write and the
campaign resumed — produces results identical to a clean serial run
with the same base seed.
"""

import json
import re

import pytest

from repro.cli import main

FIG = ["figure", "fig10", "--repeats", "1", "--horizon-ms", "10"]


def _normalize(table: str) -> list[list[str]]:
    """Reduce a rendered table to its data tokens: drop the campaign
    annotation line, the per-cell ``n=`` counts, dash rulers, and
    column-width padding — everything a campaign run is allowed to add."""
    rows = []
    for line in table.splitlines():
        if line.startswith("campaign:") or set(line.strip()) <= {"-", " "}:
            continue
        rows.append(re.sub(r"\bn=\d+\b", "", line).split())
    return rows


class TestJsonSummaries:
    def test_quick_json(self, tmp_path, capsys):
        path = tmp_path / "quick.json"
        assert main(["quick", "--horizon-ms", "50", "--tasks", "2",
                     "--objects", "1", "--sync", "lockfree",
                     "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["command"] == "quick"
        assert payload["rows"][0]["sync"] == "lockfree"
        assert "aur" in payload["rows"][0]

    def test_figure_json_carries_campaign_stats(self, tmp_path, capsys):
        path = tmp_path / "fig.json"
        assert main(FIG + ["--workers", "2", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["command"] == "figure"
        assert payload["exit_code"] == 0
        assert payload["campaign"]["workers"] == 2
        assert payload["campaign"]["failed_trials"] == 0

    def test_sojourn_json(self, tmp_path, capsys):
        path = tmp_path / "sojourn.json"
        assert main(["sojourn", "--r", "30", "--s", "2",
                     "--json", str(path)]) == 0
        assert json.loads(path.read_text())["winner"] == "lock-free"

    def test_faults_json(self, tmp_path, capsys):
        path = tmp_path / "faults.json"
        assert main(["faults", "--bursts", "0,2", "--repeats", "1",
                     "--horizon-ms", "10", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["command"] == "faults"
        assert len(payload["degradation_levels"]) == 2


class TestFailurePolicy:
    def test_terminal_failures_over_budget_exit_4(self, tmp_path, capsys):
        # One retry only and a transient chaos fault on trial 0: the
        # trial fails terminally, which exceeds --max-failures 0.
        assert main(FIG + ["--chaos-transient", "0",
                           "--trial-retries", "1"]) == 4
        assert "campaign FAILED" in capsys.readouterr().err

    def test_failures_within_budget_exit_0(self, tmp_path, capsys):
        assert main(FIG + ["--chaos-transient", "0",
                           "--trial-retries", "1",
                           "--max-failures", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 failed" in out       # annotated, not fatal

    def test_recovered_transient_is_not_a_failure(self, tmp_path, capsys):
        path = tmp_path / "fig.json"
        assert main(FIG + ["--chaos-transient", "0",
                           "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["campaign"]["failed_trials"] == 0
        assert payload["campaign"]["attempt_failures"] == {"transient": 1}

    def test_bad_campaign_flags_exit_2(self, capsys):
        assert main(FIG + ["--workers", "0"]) == 2
        assert main(FIG + ["--workers", "2", "--trial-retries", "0"]) == 2
        assert main(FIG + ["--workers", "2", "--trial-timeout=-1"]) == 2
        err = capsys.readouterr().err
        assert "--workers" in err
        assert "--trial-retries" in err
        assert "--trial-timeout" in err

    def test_resume_from_missing_journal_exits_2(self, tmp_path, capsys):
        assert main(FIG + ["--resume",
                           str(tmp_path / "missing.jsonl")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_resume_tag_mismatch_exits_2(self, tmp_path, capsys):
        journal = tmp_path / "fig10.jsonl"
        assert main(FIG + ["--journal", str(journal)]) == 0
        capsys.readouterr()
        assert main(["figure", "fig8", "--repeats", "1",
                     "--horizon-ms", "10", "--resume", str(journal)]) == 2
        assert "journal error" in capsys.readouterr().err


class TestAcceptance:
    """The PR acceptance scenario, end to end through the CLI."""

    @pytest.mark.slow
    def test_crashed_and_hung_campaign_resumes_to_serial_results(
            self, tmp_path, capsys):
        serial_out = tmp_path / "serial.txt"
        campaign_out = tmp_path / "campaign.txt"
        resumed_out = tmp_path / "resumed.txt"
        summary = tmp_path / "summary.json"
        journal = tmp_path / "journal.jsonl"

        # 1. Clean serial reference run (same base seeds by construction).
        assert main(FIG + ["--out", str(serial_out)]) == 0

        # 2. Parallel campaign: 4 workers, one injected worker crash
        #    (trial 2) and one hung trial (trial 5) that trips the
        #    per-trial timeout.  Both are retried and recover, so the
        #    campaign completes with zero *terminal* failures...
        assert main(FIG + ["--workers", "4",
                           "--trial-timeout", "1.0",
                           "--chaos-crash", "2",
                           "--chaos-hang", "5",
                           "--chaos-hang-seconds", "20",
                           "--journal", str(journal),
                           "--json", str(summary),
                           "--out", str(campaign_out),
                           "--max-failures", "0"]) == 0
        # ... and reports both injected faults in its summary.
        payload = json.loads(summary.read_text())
        assert payload["campaign"]["failed_trials"] == 0
        kinds = payload["campaign"]["attempt_failures"]
        assert kinds.get("crash", 0) >= 1
        assert kinds.get("timeout", 0) >= 1
        rendered = campaign_out.read_text()
        assert "campaign:" in rendered and "failed attempts" in rendered
        # The campaign's data agrees with the clean serial run already.
        assert _normalize(rendered) == _normalize(serial_out.read_text())

        # 3. Simulate a kill mid-journal-append: tear the last record.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:12])

        # 4. Resume.  Journaled trials replay from disk, the torn one
        #    recomputes, and the rendered figure matches the clean
        #    serial run exactly.
        capsys.readouterr()
        assert main(FIG + ["--workers", "4",
                           "--resume", str(journal),
                           "--out", str(resumed_out)]) == 0
        assert "from journal" in capsys.readouterr().out
        assert _normalize(resumed_out.read_text()) == \
               _normalize(serial_out.read_text())
