"""End-to-end assertions of the paper's headline claims.

These are the "does the reproduction actually reproduce" tests: each one
pins a qualitative claim of the evaluation (Section 6) or the analysis
(Sections 4–5) against full-stack simulation campaigns.
"""

import random

import pytest

from repro.analysis.retry_bound import retry_bound_for_taskset
from repro.experiments.runner import run_many, run_once
from repro.experiments.workloads import (
    DEFAULT_ACCESS_DURATION,
    paper_taskset,
)
from repro.sim.objects import RetryPolicy
from repro.units import MS


HORIZON = 100 * MS


def _seeds(n, base=0):
    return [base + k for k in range(n)]


def _mean(values):
    return sum(values) / len(values)


class TestFigure8Claim:
    """r is significantly larger than s (Section 6.1)."""

    def test_r_much_greater_than_s(self):
        def build(rng):
            return paper_taskset(rng, accesses_per_job=5, target_load=0.5)
        r_values, s_values = [], []
        for result in run_many(build, "lockbased", HORIZON, _seeds(3)):
            r_values.append(DEFAULT_ACCESS_DURATION
                            + (result.mean_lock_mechanism_per_access or 0))
        for result in run_many(build, "lockfree", HORIZON, _seeds(3)):
            s_values.append(
                DEFAULT_ACCESS_DURATION
                + (result.mean_lockfree_mechanism_per_access or 0))
        assert _mean(r_values) > 3 * _mean(s_values)


class TestUnderloadClaim:
    """During underloads lock-free RUA achieves ~100 % AUR and CMR
    (Figures 10-11)."""

    @pytest.mark.parametrize("tuf_class", ["step", "hetero"])
    def test_lockfree_near_perfect(self, tuf_class):
        def build(rng):
            return paper_taskset(rng, accesses_per_job=8, target_load=0.4,
                                 tuf_class=tuf_class)
        results = run_many(build, "lockfree", HORIZON, _seeds(3))
        assert _mean([r.cmr for r in results]) > 0.97
        assert _mean([r.aur for r in results]) > 0.90


class TestOverloadClaim:
    """During overloads with many shared objects, lock-based RUA's
    AUR/CMR collapse while lock-free holds (Figures 12-13)."""

    @pytest.mark.parametrize("tuf_class", ["step", "hetero"])
    def test_lockfree_dominates_lockbased(self, tuf_class):
        def build(rng):
            return paper_taskset(rng, accesses_per_job=10, target_load=1.1,
                                 tuf_class=tuf_class)
        lockfree = run_many(build, "lockfree", HORIZON, _seeds(4))
        lockbased = run_many(build, "lockbased", HORIZON, _seeds(4))
        lf_aur = _mean([r.aur for r in lockfree])
        lb_aur = _mean([r.aur for r in lockbased])
        lf_cmr = _mean([r.cmr for r in lockfree])
        lb_cmr = _mean([r.cmr for r in lockbased])
        # The paper reports lock-free higher by as much as ~65 % AUR and
        # ~80 % CMR; we require a large, unambiguous margin.
        assert lf_aur > lb_aur + 0.3
        assert lf_cmr > lb_cmr + 0.3

    def test_lockbased_degrades_with_object_count(self):
        def build_few(rng):
            return paper_taskset(rng, accesses_per_job=1, target_load=1.1)

        def build_many(rng):
            return paper_taskset(rng, accesses_per_job=10, target_load=1.1)
        few = _mean([r.aur for r in
                     run_many(build_few, "lockbased", HORIZON, _seeds(4))])
        many = _mean([r.aur for r in
                      run_many(build_many, "lockbased", HORIZON, _seeds(4))])
        assert many < few


class TestRetryBoundClaim:
    """Theorem 2 holds for every job in an adversarial campaign."""

    def test_bound_never_violated(self):
        rng = random.Random(5)
        tasks = paper_taskset(rng, accesses_per_job=6, target_load=1.0,
                              max_arrivals=2)
        bounds = {task.name: retry_bound_for_taskset(tasks, i)
                  for i, task in enumerate(tasks)}
        for seed in _seeds(3):
            result = run_once(tasks, "lockfree", HORIZON,
                              random.Random(seed), arrival_style="bursty",
                              retry_policy=RetryPolicy.ON_PREEMPTION)
            for record in result.records:
                assert record.retries <= bounds[record.task_name]


class TestBlockingVsRetryTradeoff:
    """Section 5's qualitative tradeoff: lock-based suffers blocking
    (dependency waits), lock-free suffers retries, and with s << r the
    lock-free sojourns are shorter."""

    def test_lockfree_sojourns_shorter_under_contention(self):
        def build(rng):
            return paper_taskset(rng, accesses_per_job=8, target_load=0.9)
        lockfree = run_many(build, "lockfree", HORIZON, _seeds(3))
        lockbased = run_many(build, "lockbased", HORIZON, _seeds(3))
        lf = _mean([r.mean_sojourn() or 0 for r in lockfree])
        lb = _mean([r.mean_sojourn() or 0 for r in lockbased])
        assert lf < lb

    def test_retries_only_under_lockfree_blockwaits_only_under_lockbased(self):
        def build(rng):
            return paper_taskset(rng, accesses_per_job=8, target_load=0.9)
        lockfree = run_many(build, "lockfree", HORIZON, _seeds(2))
        lockbased = run_many(build, "lockbased", HORIZON, _seeds(2))
        assert all(r.total_blockings == 0 for r in lockfree)
        assert all(r.total_retries == 0 for r in lockbased)


class TestSchedulerCostClaim:
    """Lock-free RUA spends far less simulated scheduler time than
    lock-based RUA on the same workload (Sections 3.6 / 5)."""

    def test_overhead_time_ratio(self):
        def build(rng):
            return paper_taskset(rng, accesses_per_job=5, target_load=0.7)
        lockfree = run_many(build, "lockfree", HORIZON, _seeds(2))
        lockbased = run_many(build, "lockbased", HORIZON, _seeds(2))
        lf = _mean([r.scheduler_overhead_time for r in lockfree])
        lb = _mean([r.scheduler_overhead_time for r in lockbased])
        assert lb > 2 * lf
