"""Tests for the Valois/Harris-style lock-free linked list."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.lockfree.interleave import VM, adversarial_scheduler, random_scheduler
from repro.lockfree.linked_list import LockFreeLinkedList
from repro.lockfree.ms_queue import run_op


class TestSequentialSemantics:
    def test_insert_and_contains(self):
        lst = LockFreeLinkedList()
        assert run_op(lst.insert(5)) is True
        assert run_op(lst.contains(5)) is True
        assert run_op(lst.contains(6)) is False

    def test_sorted_order_maintained(self):
        lst = LockFreeLinkedList()
        for key in (5, 1, 9, 3, 7):
            run_op(lst.insert(key))
        assert lst.snapshot() == [1, 3, 5, 7, 9]

    def test_duplicate_insert_rejected(self):
        lst = LockFreeLinkedList()
        assert run_op(lst.insert(5)) is True
        assert run_op(lst.insert(5)) is False
        assert lst.snapshot() == [5]

    def test_delete_present_and_absent(self):
        lst = LockFreeLinkedList()
        run_op(lst.insert(5))
        assert run_op(lst.delete(5)) is True
        assert run_op(lst.delete(5)) is False
        assert run_op(lst.contains(5)) is False
        assert lst.snapshot() == []

    def test_delete_middle_preserves_neighbours(self):
        lst = LockFreeLinkedList()
        for key in (1, 2, 3):
            run_op(lst.insert(key))
        run_op(lst.delete(2))
        assert lst.snapshot() == [1, 3]

    def test_no_retries_without_concurrency(self):
        lst = LockFreeLinkedList()
        for key in range(20):
            run_op(lst.insert(key))
        for key in range(0, 20, 2):
            run_op(lst.delete(key))
        assert lst.total_retries == 0


class TestConcurrentExecution:
    @pytest.mark.parametrize("seed", range(10))
    def test_disjoint_inserts_all_land(self, seed):
        lst = LockFreeLinkedList()
        vm = VM(scheduler=random_scheduler, seed=seed)

        def inserter(base):
            for k in range(5):
                yield from lst.insert(base + k)

        vm.spawn("a", inserter(0))
        vm.spawn("b", inserter(100))
        vm.spawn("c", inserter(200))
        vm.run()
        assert lst.snapshot() == (
            list(range(5)) + list(range(100, 105)) + list(range(200, 205)))

    @pytest.mark.parametrize("seed", range(10))
    def test_racing_inserts_of_same_key_one_wins(self, seed):
        lst = LockFreeLinkedList()
        vm = VM(scheduler=random_scheduler, seed=seed)
        for fiber in range(4):
            vm.spawn(f"f{fiber}", lst.insert(42))
        vm.run()
        outcomes = list(vm.results().values())
        assert sorted(outcomes) == [False, False, False, True]
        assert lst.snapshot() == [42]

    @pytest.mark.parametrize("seed", range(10))
    def test_racing_deletes_of_same_key_one_wins(self, seed):
        lst = LockFreeLinkedList()
        run_op(lst.insert(7))
        vm = VM(scheduler=random_scheduler, seed=seed)
        for fiber in range(3):
            vm.spawn(f"f{fiber}", lst.delete(7))
        vm.run()
        outcomes = list(vm.results().values())
        assert sorted(outcomes) == [False, False, True]
        assert lst.snapshot() == []

    def test_adversarial_contention_causes_retries_or_helping(self):
        activity = 0
        for seed in range(10):
            lst = LockFreeLinkedList()
            for key in range(8):
                run_op(lst.insert(key))
            vm = VM(scheduler=adversarial_scheduler(burst=1), seed=seed)
            for fiber in range(4):
                vm.spawn(f"d{fiber}", lst.delete(fiber * 2))
                vm.spawn(f"i{fiber}", lst.insert(100 + fiber))
            vm.run()
            activity += lst.total_retries + lst.helped_unlinks
        assert activity > 0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000),
       inserts=st.lists(st.integers(0, 15), min_size=1, max_size=8,
                        unique=True),
       deletes=st.lists(st.integers(0, 15), min_size=0, max_size=8,
                        unique=True))
def test_property_final_state_matches_model(seed, inserts, deletes):
    """Concurrent inserts of distinct keys then concurrent deletes: the
    final set must equal the model (inserts minus deleted-present keys),
    under any interleaving of the delete phase with late inserts... here
    phases are separated per key ownership, so the model is exact:
    every inserted key not in `deletes` survives; every key in `deletes`
    that was inserted is gone."""
    lst = LockFreeLinkedList()
    vm = VM(scheduler=random_scheduler, seed=seed)
    for key in inserts:
        vm.spawn(f"i{key}", lst.insert(key))
    vm.run()
    vm2 = VM(scheduler=random_scheduler, seed=seed + 1)
    for key in deletes:
        vm2.spawn(f"d{key}", lst.delete(key))
    vm2.run()
    expected = sorted(set(inserts) - set(deletes))
    assert lst.snapshot() == expected
