"""Tests for the NBW protocol (Kopetz & Reisinger)."""

import pytest

from repro.lockfree.interleave import VM, adversarial_scheduler, random_scheduler
from repro.lockfree.ms_queue import run_op
from repro.lockfree.nbw import NBWRegister


class TestSequential:
    def test_write_then_read(self):
        reg = NBWRegister(width=3)
        run_op(reg.write(("a", "b", "c")))
        assert run_op(reg.read()) == ("a", "b", "c")

    def test_width_validated(self):
        reg = NBWRegister(width=2)
        with pytest.raises(ValueError):
            run_op(reg.write(("only-one",)))
        with pytest.raises(ValueError):
            NBWRegister(width=0)

    def test_sequential_reads_never_retry(self):
        reg = NBWRegister(width=2)
        run_op(reg.write((1, 2)))
        for _ in range(5):
            run_op(reg.read())
        assert reg.read_retries == 0


class TestConcurrent:
    def _run_campaign(self, seed, scheduler=None, n_writes=20):
        """One writer streaming versioned tuples, two readers."""
        reg = NBWRegister(width=3)
        vm = VM(scheduler=scheduler or random_scheduler, seed=seed)

        def writer():
            for version in range(n_writes):
                yield from reg.write((version, f"payload-{version}", version))

        observations = []

        def reader():
            for _ in range(n_writes // 2):
                value = yield from reg.read()
                observations.append(value)

        vm.spawn("w", writer())
        vm.spawn("r1", reader())
        vm.spawn("r2", reader())
        vm.run()
        return reg, observations

    @pytest.mark.parametrize("seed", range(10))
    def test_reads_are_never_torn(self, seed):
        # Every observed tuple must be internally consistent: the first
        # and third cells were written together.
        _, observations = self._run_campaign(seed)
        for version, payload, version_copy in observations:
            if version is None:
                continue  # initial value, never written
            assert version == version_copy
            assert payload == f"payload-{version}"

    def test_adversarial_interleaving_causes_reader_retries(self):
        total = 0
        for seed in range(10):
            reg, _ = self._run_campaign(
                seed, scheduler=adversarial_scheduler(burst=2))
            total += reg.read_retries
        assert total > 0

    def test_writer_is_wait_free(self):
        # The writer's step count is exactly (width + 2) atomic ops per
        # write, regardless of reader interference.
        reg, _ = self._run_campaign(3, scheduler=adversarial_scheduler(1))
        assert reg.writes == 20
        # width=3: ccf-load + ccf-store + 3 cell stores + ccf-store = 6
        # steps; total atomic ops on the register's cells is bounded by
        # writes * 6 (readers add loads only).
        assert reg._ccf.stores == 2 * reg.writes

    @pytest.mark.parametrize("seed", range(5))
    def test_observed_versions_are_monotone_per_reader(self, seed):
        reg = NBWRegister(width=2)
        vm = VM(scheduler=random_scheduler, seed=seed)

        def writer():
            for version in range(15):
                yield from reg.write((version, version))

        seen = []

        def reader():
            for _ in range(10):
                value = yield from reg.read()
                if value[0] is not None:
                    seen.append(value[0])

        vm.spawn("w", writer())
        vm.spawn("r", reader())
        vm.run()
        # A single reader's successive clean reads can never observe
        # versions going backwards (the CCF only grows).
        assert seen == sorted(seen)
