"""Tests for the linearizability checker — and linearizability of the
shipped structures under adversarial interleavings."""

import pytest

from repro.lockfree.interleave import VM, adversarial_scheduler, random_scheduler
from repro.lockfree.linearizability import (
    Operation,
    SeqQueue,
    SeqStack,
    is_linearizable,
    recorded,
)
from repro.lockfree.ms_queue import EMPTY, MSQueue
from repro.lockfree.treiber_stack import STACK_EMPTY, TreiberStack


def _op(name, arg, result, invoked, responded):
    return Operation(op=name, arg=arg, result=result, invoked=invoked,
                     responded=responded)


class TestCheckerOnHandHistories:
    def test_empty_history(self):
        assert is_linearizable([], SeqQueue)

    def test_sequential_legal_history(self):
        history = [
            _op("enqueue", 1, None, 0, 1),
            _op("dequeue", None, 1, 2, 3),
        ]
        assert is_linearizable(history, SeqQueue)

    def test_sequential_illegal_history(self):
        # Dequeue returns a value never enqueued before it (real-time
        # order forbids reordering).
        history = [
            _op("dequeue", None, 1, 0, 1),
            _op("enqueue", 1, None, 2, 3),
        ]
        assert not is_linearizable(history, SeqQueue)

    def test_concurrent_reordering_allowed(self):
        # Overlapping enqueue/dequeue may linearize enqueue first.
        history = [
            _op("dequeue", None, 1, 0, 5),
            _op("enqueue", 1, None, 1, 2),
        ]
        assert is_linearizable(history, SeqQueue)

    def test_fifo_violation_rejected(self):
        history = [
            _op("enqueue", 1, None, 0, 1),
            _op("enqueue", 2, None, 2, 3),
            _op("dequeue", None, 2, 4, 5),
            _op("dequeue", None, 1, 6, 7),
        ]
        assert not is_linearizable(history, SeqQueue)

    def test_lifo_history_on_stack_spec(self):
        history = [
            _op("push", 1, None, 0, 1),
            _op("push", 2, None, 2, 3),
            _op("pop", None, 2, 4, 5),
            _op("pop", None, 1, 6, 7),
        ]
        assert is_linearizable(history, SeqStack)

    def test_empty_result_requires_empty_state(self):
        history = [
            _op("enqueue", 1, None, 0, 1),
            _op("dequeue", None, EMPTY, 2, 3),
        ]
        assert not is_linearizable(history, SeqQueue)

    def test_stack_empty_sentinel(self):
        history = [_op("pop", None, STACK_EMPTY, 0, 1)]
        assert is_linearizable(history, SeqStack)

    def test_response_before_invocation_rejected(self):
        with pytest.raises(ValueError):
            _op("enqueue", 1, None, 5, 3)


class TestStructuresAreLinearizable:
    @pytest.mark.parametrize("seed", range(12))
    def test_ms_queue_random_interleavings(self, seed):
        q = MSQueue()
        vm = VM(scheduler=random_scheduler, seed=seed)
        history = []

        def producer(pid):
            for v in range(2):
                yield from recorded(vm, history, "enqueue", (pid, v),
                                    q.enqueue((pid, v)))

        def consumer():
            for _ in range(3):
                yield from recorded(vm, history, "dequeue", None,
                                    q.dequeue())

        vm.spawn("p0", producer(0))
        vm.spawn("p1", producer(1))
        vm.spawn("c", consumer())
        vm.run()
        assert is_linearizable(history, SeqQueue)

    @pytest.mark.parametrize("seed", range(12))
    def test_ms_queue_adversarial_interleavings(self, seed):
        q = MSQueue()
        vm = VM(scheduler=adversarial_scheduler(burst=2), seed=seed)
        history = []

        def worker(pid):
            yield from recorded(vm, history, "enqueue", pid, q.enqueue(pid))
            yield from recorded(vm, history, "dequeue", None, q.dequeue())

        for pid in range(3):
            vm.spawn(f"w{pid}", worker(pid))
        vm.run()
        assert is_linearizable(history, SeqQueue)

    @pytest.mark.parametrize("seed", range(12))
    def test_treiber_stack_random_interleavings(self, seed):
        s = TreiberStack()
        vm = VM(scheduler=random_scheduler, seed=seed)
        history = []

        def worker(pid):
            yield from recorded(vm, history, "push", pid, s.push(pid))
            yield from recorded(vm, history, "pop", None, s.pop())

        for pid in range(3):
            vm.spawn(f"w{pid}", worker(pid))
        vm.run()
        assert is_linearizable(history, SeqStack)
