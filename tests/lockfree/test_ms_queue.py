"""Tests for the Michael & Scott lock-free queue."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lockfree.interleave import (
    VM,
    adversarial_scheduler,
    random_scheduler,
)
from repro.lockfree.ms_queue import EMPTY, MSQueue, run_op


class TestSequentialSemantics:
    def test_fifo_order(self):
        q = MSQueue()
        for v in (1, 2, 3):
            run_op(q.enqueue(v))
        assert q.drain_sequential() == [1, 2, 3]

    def test_empty_dequeue(self):
        q = MSQueue()
        assert run_op(q.dequeue()) is EMPTY

    def test_interleaved_enqueue_dequeue(self):
        q = MSQueue()
        run_op(q.enqueue("a"))
        assert run_op(q.dequeue()) == "a"
        run_op(q.enqueue("b"))
        run_op(q.enqueue("c"))
        assert run_op(q.dequeue()) == "b"
        assert run_op(q.dequeue()) == "c"
        assert run_op(q.dequeue()) is EMPTY

    def test_no_retries_without_concurrency(self):
        q = MSQueue()
        for v in range(10):
            run_op(q.enqueue(v))
        q.drain_sequential()
        assert q.total_retries == 0


class TestConcurrentExecution:
    def _producers_consumers(self, seed, n_producers=3, per_producer=5,
                             scheduler=None):
        q = MSQueue()
        vm = VM(scheduler=scheduler or random_scheduler, seed=seed)

        def producer(pid):
            for v in range(per_producer):
                yield from q.enqueue((pid, v))

        consumed = []

        def consumer():
            remaining = n_producers * per_producer
            while remaining:
                value = yield from q.dequeue()
                if value is not EMPTY:
                    consumed.append(value)
                    remaining -= 1

        for pid in range(n_producers):
            vm.spawn(f"p{pid}", producer(pid))
        vm.spawn("c", consumer())
        vm.run()
        return q, consumed

    @pytest.mark.parametrize("seed", range(8))
    def test_no_loss_no_duplication(self, seed):
        q, consumed = self._producers_consumers(seed)
        assert sorted(consumed) == sorted(
            (pid, v) for pid in range(3) for v in range(5))

    @pytest.mark.parametrize("seed", range(8))
    def test_per_producer_fifo_preserved(self, seed):
        _, consumed = self._producers_consumers(seed)
        for pid in range(3):
            values = [v for p, v in consumed if p == pid]
            assert values == sorted(values)

    def test_adversarial_interleaving_causes_retries(self):
        total = 0
        for seed in range(10):
            q, _ = self._producers_consumers(
                seed, scheduler=adversarial_scheduler(burst=2))
            total += q.total_retries
        assert total > 0

    def test_lock_freedom_some_operation_completes(self):
        # With N fibers and any scheduler, the VM always terminates well
        # under the step budget — no livelock (the lock-free progress
        # guarantee of Section 1.1).
        q, consumed = self._producers_consumers(0, n_producers=5,
                                                per_producer=10)
        assert len(consumed) == 50


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000),
       ops=st.lists(st.integers(0, 9), min_size=1, max_size=12))
def test_property_concurrent_matches_multiset(seed, ops):
    """Whatever the interleaving, the dequeued multiset equals the
    enqueued multiset (minus what remains in the queue)."""
    q = MSQueue()
    vm = VM(scheduler=random_scheduler, seed=seed)

    def producer():
        for v in ops:
            yield from q.enqueue(v)

    popped = []

    def consumer():
        for _ in ops:
            value = yield from q.dequeue()
            if value is not EMPTY:
                popped.append(value)

    vm.spawn("p", producer())
    vm.spawn("c", consumer())
    vm.run()
    leftover = q.drain_sequential()
    assert sorted(popped + leftover) == sorted(ops)
