"""Adversarial NBW interleavings with exact, scripted schedules.

The randomized campaigns in ``test_nbw.py`` show retries *happen*; these
tests script the precise interleaving the paper's retry model worries
about — a reader preempted mid-copy while the writer commits — and pin
the exact retry count and the absence of torn reads.

Step accounting for the scripts: each atomic op yields once before its
effect, so a fiber's first step reaches its first yield (no effect) and
every later step applies one pending effect.  A ``width + 2``-op NBW
write therefore costs ``width + 3`` VM steps; a clean ``read`` of width
``w`` costs ``w + 3``.
"""

import random

from repro.lockfree.interleave import (
    VM,
    adversarial_scheduler,
    scripted_scheduler,
)
from repro.lockfree.nbw import NBWRegister


def _run(reg: NBWRegister, script, reader_reads: int, writes):
    """One reader fiber vs one writer fiber under an exact script."""
    vm = VM(scheduler=scripted_scheduler(script))

    def writer():
        for values in writes:
            yield from reg.write(values)

    observations = []

    def reader():
        for _ in range(reader_reads):
            value = yield from reg.read()
            observations.append(value)

    vm.spawn("r", reader())
    vm.spawn("w", writer())
    vm.run()
    return observations


class TestScriptedPreemption:
    def test_reader_preempted_mid_copy_by_two_commits_retries_once(self):
        # Reader snapshots CCF=0 and cell0=0, is then preempted while the
        # writer commits (1, 1) and (2, 2) in full, and resumes to read
        # cell1=2.  Its candidate snapshot (0, 2) is torn; the trailing
        # CCF re-read (4 != 0) must force exactly one retry, and the
        # retried read returns the latest committed pair — never the torn
        # one.
        reg = NBWRegister(width=2, initial=0)
        script = (["r"] * 3          # ccf load + cell0 load (mid-copy)
                  + ["w"] * 11       # two complete 5-op writes
                  + ["r"] * 6)       # cell1 + ccf mismatch, clean re-read
        observations = _run(reg, script, reader_reads=1,
                            writes=[(1, 1), (2, 2)])
        assert observations == [(2, 2)]
        assert reg.read_retries == 1
        assert reg.writes == 2

    def test_reader_landing_on_odd_ccf_retries_once(self):
        # The writer has bumped the CCF odd (write in progress) when the
        # reader takes its first CCF snapshot: the odd value alone must
        # force a retry, before any cell is copied.
        reg = NBWRegister(width=2, initial=0)
        script = (["w"] * 3          # ccf load + store ccf=1 (odd)
                  + ["r"] * 2        # ccf load -> odd -> retry
                  + ["w"] * 3        # cells + store ccf=2 (commit)
                  + ["r"] * 4)       # clean read of (7, 7)
        observations = _run(reg, script, reader_reads=1, writes=[(7, 7)])
        assert observations == [(7, 7)]
        assert reg.read_retries == 1

    def test_uninterrupted_read_between_commits_never_retries(self):
        # Control: the same two writes, but the reader runs its whole
        # read between the commits — zero retries, first committed value.
        reg = NBWRegister(width=2, initial=0)
        script = (["w"] * 6          # full first write
                  + ["r"] * 5        # complete clean read
                  + ["w"] * 5)       # second write after the read
        observations = _run(reg, script, reader_reads=1,
                            writes=[(1, 1), (2, 2)])
        assert observations == [(1, 1)]
        assert reg.read_retries == 0


class TestAdversarialReplay:
    def test_retry_count_is_deterministic_per_seed(self):
        # The retry count under a seeded adversarial schedule is a pure
        # function of the seed — the replay-determinism the fault layer
        # relies on.
        def campaign(seed):
            reg = NBWRegister(width=3)
            vm = VM(scheduler=adversarial_scheduler(burst=2), seed=seed)

            def writer():
                for version in range(25):
                    yield from reg.write((version, version, version))

            def reader():
                for _ in range(10):
                    value = yield from reg.read()
                    assert value[0] == value[2]  # never torn

            vm.spawn("w", writer())
            vm.spawn("r1", reader())
            vm.spawn("r2", reader())
            vm.run()
            return reg.read_retries

        for seed in range(8):
            assert campaign(seed) == campaign(seed)

    def test_forced_retries_match_register_counter(self):
        # With a single reader, the sum of per-read retry deltas equals
        # the register's global counter exactly: no retry is
        # double-counted or lost under adversarial preemption, and at
        # least one is forced by this schedule.
        reg = NBWRegister(width=2, initial=0)
        vm = VM(scheduler=adversarial_scheduler(burst=2), seed=11)
        deltas = []

        def writer():
            for version in range(30):
                yield from reg.write((version, version))

        def reader():
            for _ in range(12):
                before = reg.read_retries
                value = yield from reg.read()
                deltas.append(reg.read_retries - before)
                assert value[0] == value[1]

        vm.spawn("w", writer())
        vm.spawn("r", reader())
        vm.run()
        assert sum(deltas) == reg.read_retries
        assert reg.read_retries > 0

    def test_no_torn_read_across_seed_sweep(self):
        rng = random.Random(0)
        for _ in range(20):
            seed = rng.randrange(1 << 30)
            reg = NBWRegister(width=3)
            vm = VM(scheduler=adversarial_scheduler(burst=3), seed=seed)

            def writer():
                for version in range(20):
                    yield from reg.write(
                        (version, f"p{version}", version))

            torn = []

            def reader():
                for _ in range(8):
                    value = yield from reg.read()
                    if value[0] is not None and value[0] != value[2]:
                        torn.append(value)

            vm.spawn("w", writer())
            vm.spawn("r", reader())
            vm.run()
            assert torn == []
