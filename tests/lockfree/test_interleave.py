"""Tests for the cooperative-interleaving VM."""

import pytest

from repro.lockfree.atomics import AtomicRef
from repro.lockfree.interleave import (
    VM,
    adversarial_scheduler,
    random_scheduler,
    round_robin_scheduler,
    run_interleaved,
)


def _counter_incrementer(ref, times):
    """Racy read-modify-write (intentionally non-atomic)."""
    for _ in range(times):
        value = yield from ref.load()
        yield from ref.store(value + 1)


class TestVMBasics:
    def test_single_fiber_runs_to_completion(self):
        ref = AtomicRef(0)
        vm = VM()
        vm.spawn("a", _counter_incrementer(ref, 5))
        vm.run()
        assert ref.peek() == 5
        assert vm.fibers[0].done

    def test_results_collected(self):
        def answer():
            yield "step"
            return 42
        vm = VM()
        vm.spawn("a", answer())
        vm.run()
        assert vm.results() == {"a": 42}

    def test_step_returns_false_when_done(self):
        vm = VM()
        assert vm.step() is False

    def test_step_budget_raises(self):
        def forever():
            while True:
                yield "spin"
        vm = VM()
        vm.spawn("loop", forever())
        with pytest.raises(RuntimeError, match="exceeded"):
            vm.run(max_steps=100)

    def test_now_counts_steps(self):
        vm = VM()
        vm.spawn("a", iter(_counter_incrementer(AtomicRef(0), 2)))
        vm.run()
        # Two loads + two stores (one step each) + the final resume that
        # runs the fiber to completion.
        assert vm.now == 5


class TestInterleaving:
    def test_round_robin_exposes_lost_updates(self):
        # The racy counter loses updates under interleaving — proof that
        # the VM really interleaves between load and store.
        ref = AtomicRef(0)
        vm = VM(scheduler=round_robin_scheduler)
        vm.spawn("a", _counter_incrementer(ref, 10))
        vm.spawn("b", _counter_incrementer(ref, 10))
        vm.run()
        assert ref.peek() < 20

    def test_sequential_composition_loses_nothing(self):
        ref = AtomicRef(0)
        vm = VM()
        vm.spawn("a", _counter_incrementer(ref, 10))
        vm.run()
        vm2 = VM()
        vm2.spawn("b", _counter_incrementer(ref, 10))
        vm2.run()
        assert ref.peek() == 20

    def test_random_scheduler_is_seed_deterministic(self):
        outcomes = []
        for _ in range(2):
            ref = AtomicRef(0)
            vm = VM(scheduler=random_scheduler, seed=123)
            vm.spawn("a", _counter_incrementer(ref, 5))
            vm.spawn("b", _counter_incrementer(ref, 5))
            vm.run()
            outcomes.append(ref.peek())
        assert outcomes[0] == outcomes[1]

    def test_adversarial_scheduler_runs_bursts(self):
        ref = AtomicRef(0)
        vm = run_interleaved(
            [("a", _counter_incrementer(ref, 5)),
             ("b", _counter_incrementer(ref, 5))],
            scheduler=adversarial_scheduler(burst=4), seed=7)
        assert all(f.done for f in vm.fibers)


class TestRunInterleaved:
    def test_convenience_wrapper(self):
        ref = AtomicRef(0)
        vm = run_interleaved([("a", _counter_incrementer(ref, 3))])
        assert ref.peek() == 3
        assert vm.results()["a"] is None
