"""Differential linearizability sweep — all five shipped structures
through the interleaving VM under random-adversary schedules, every
history checked with the Wing–Gong checker.

Each test drives one structure across SWEEP_SEEDS seeds (even seeds use
the uniform random scheduler, odd seeds the bursty adversarial one, so
both mid-operation preemption patterns are exercised).  Histories are
kept small enough (≤ ~8 operations) that the exhaustive checker stays
fast; a failing seed is named in the assertion message so the exact
interleaving can be replayed.
"""

from repro.lockfree.interleave import (
    VM,
    adversarial_scheduler,
    random_scheduler,
)
from repro.lockfree.linearizability import (
    SeqQueue,
    SeqRegister,
    SeqSet,
    SeqStack,
    is_linearizable,
    recorded,
)
from repro.lockfree.linked_list import LockFreeLinkedList
from repro.lockfree.ms_queue import MSQueue
from repro.lockfree.nbw import NBWRegister
from repro.lockfree.treiber_stack import TreiberStack
from repro.lockfree.waitfree_register import WaitFreeRegister

SWEEP_SEEDS = 200


def _vm(seed: int) -> VM:
    scheduler = random_scheduler if seed % 2 == 0 else \
        adversarial_scheduler(burst=3)
    return VM(scheduler=scheduler, seed=seed)


def _check(seed: int, history, spec_factory, structure: str) -> None:
    assert is_linearizable(history, spec_factory), (
        f"{structure}: non-linearizable history at seed {seed}: {history}"
    )


def test_ms_queue_sweep():
    for seed in range(SWEEP_SEEDS):
        q = MSQueue()
        vm = _vm(seed)
        history = []

        def producer(pid):
            for v in range(2):
                yield from recorded(vm, history, "enqueue", (pid, v),
                                    q.enqueue((pid, v)))

        def consumer():
            for _ in range(3):
                yield from recorded(vm, history, "dequeue", None,
                                    q.dequeue())

        vm.spawn("p0", producer(0))
        vm.spawn("p1", producer(1))
        vm.spawn("c", consumer())
        vm.run()
        _check(seed, history, SeqQueue, "ms_queue")


def test_treiber_stack_sweep():
    for seed in range(SWEEP_SEEDS):
        s = TreiberStack()
        vm = _vm(seed)
        history = []

        def worker(pid):
            yield from recorded(vm, history, "push", pid, s.push(pid))
            yield from recorded(vm, history, "pop", None, s.pop())

        for pid in range(3):
            vm.spawn(f"w{pid}", worker(pid))
        vm.run()
        _check(seed, history, SeqStack, "treiber_stack")


def test_linked_list_sweep():
    for seed in range(SWEEP_SEEDS):
        lst = LockFreeLinkedList()
        vm = _vm(seed)
        history = []

        def inserter(pid, key):
            yield from recorded(vm, history, "insert", key,
                                lst.insert(key))
            yield from recorded(vm, history, "contains", key,
                                lst.contains(key))

        def deleter(key):
            yield from recorded(vm, history, "delete", key,
                                lst.delete(key))
            yield from recorded(vm, history, "insert", key,
                                lst.insert(key))

        # Overlapping key space: both inserters race on key 0, the
        # deleter races a delete/re-insert against them.
        vm.spawn("i0", inserter(0, 0))
        vm.spawn("i1", inserter(1, 0))
        vm.spawn("d", deleter(0))
        vm.run()
        _check(seed, history, SeqSet, "linked_list")


def test_waitfree_register_sweep():
    for seed in range(SWEEP_SEEDS):
        reg = WaitFreeRegister(n_readers=2, initial=0)
        vm = _vm(seed)
        history = []

        def writer():
            for v in (1, 2):
                yield from recorded(vm, history, "write", v,
                                    reg.write(v))

        def reader(rid):
            for _ in range(2):
                yield from recorded(vm, history, "read", rid,
                                    reg.read(rid))

        vm.spawn("w", writer())
        vm.spawn("r0", reader(0))
        vm.spawn("r1", reader(1))
        vm.run()
        _check(seed, history, lambda: SeqRegister(initial=0),
               "waitfree_register")


def test_nbw_sweep():
    for seed in range(SWEEP_SEEDS):
        reg = NBWRegister(width=2, initial=0)
        vm = _vm(seed)
        history = []

        def writer():
            for v in (1, 2):
                yield from recorded(vm, history, "write", (v, v),
                                    reg.write((v, v)))

        def reader(rid):
            for _ in range(2):
                yield from recorded(vm, history, "read", rid,
                                    reg.read())

        vm.spawn("w", writer())
        vm.spawn("r0", reader(0))
        vm.spawn("r1", reader(1))
        vm.run()
        _check(seed, history, lambda: SeqRegister(initial=(0, 0)),
               "nbw")
