"""Tests for atomic cells."""

from repro.lockfree.atomics import AtomicRef
from repro.lockfree.ms_queue import run_op


class TestLoadStore:
    def test_load_returns_value(self):
        ref = AtomicRef(42)
        assert run_op(ref.load()) == 42

    def test_store_replaces_value(self):
        ref = AtomicRef(1)
        run_op(ref.store(2))
        assert ref.peek() == 2

    def test_counters(self):
        ref = AtomicRef(0)
        run_op(ref.load())
        run_op(ref.store(1))
        assert ref.loads == 1
        assert ref.stores == 1


class TestCAS:
    def test_successful_cas(self):
        sentinel = object()
        ref = AtomicRef(sentinel)
        assert run_op(ref.cas(sentinel, "new")) is True
        assert ref.peek() == "new"
        assert ref.cas_attempts == 1
        assert ref.cas_failures == 0

    def test_failed_cas_leaves_value(self):
        ref = AtomicRef("current")
        assert run_op(ref.cas("stale", "new")) is False
        assert ref.peek() == "current"
        assert ref.cas_failures == 1

    def test_cas_uses_identity_not_equality(self):
        # Two equal-but-distinct objects must not satisfy the CAS —
        # pointer semantics, as on hardware.
        a = [1]
        b = [1]
        ref = AtomicRef(a)
        assert a == b
        assert run_op(ref.cas(b, "new")) is False

    def test_ops_yield_exactly_once(self):
        ref = AtomicRef(0)
        op = ref.load()
        label = next(op)
        assert label[0] == "load"
        try:
            next(op)
            raise AssertionError("expected StopIteration")
        except StopIteration as stop:
            assert stop.value == 0

    def test_effect_happens_after_the_yield(self):
        # The preemption point precedes the effect: a store interleaved
        # at the yield of a CAS makes the CAS fail.
        ref = AtomicRef("old")
        cas = ref.cas("old", "mine")
        next(cas)                    # CAS now parked at its yield
        run_op(ref.store("theirs"))  # interloper wins the race
        try:
            next(cas)
        except StopIteration as stop:
            assert stop.value is False
        assert ref.peek() == "theirs"
