"""Tests for the Treiber lock-free stack."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lockfree.interleave import VM, adversarial_scheduler, random_scheduler
from repro.lockfree.ms_queue import run_op
from repro.lockfree.treiber_stack import STACK_EMPTY, TreiberStack


class TestSequentialSemantics:
    def test_lifo_order(self):
        s = TreiberStack()
        for v in (1, 2, 3):
            run_op(s.push(v))
        assert s.drain_sequential() == [3, 2, 1]

    def test_empty_pop(self):
        assert run_op(TreiberStack().pop()) is STACK_EMPTY

    def test_no_retries_without_concurrency(self):
        s = TreiberStack()
        for v in range(10):
            run_op(s.push(v))
        s.drain_sequential()
        assert s.total_retries == 0


class TestConcurrentExecution:
    @pytest.mark.parametrize("seed", range(8))
    def test_no_loss_no_duplication(self, seed):
        s = TreiberStack()
        vm = VM(scheduler=random_scheduler, seed=seed)

        def pusher(pid):
            for v in range(5):
                yield from s.push((pid, v))

        popped = []

        def popper():
            remaining = 10
            while remaining:
                value = yield from s.pop()
                if value is not STACK_EMPTY:
                    popped.append(value)
                    remaining -= 1

        vm.spawn("p0", pusher(0))
        vm.spawn("p1", pusher(1))
        vm.spawn("c", popper())
        vm.run()
        assert sorted(popped) == sorted(
            (pid, v) for pid in range(2) for v in range(5))

    def test_contention_produces_cas_failures(self):
        total = 0
        for seed in range(10):
            s = TreiberStack()
            vm = VM(scheduler=adversarial_scheduler(burst=1), seed=seed)
            for pid in range(4):
                vm.spawn(f"p{pid}", s.push(pid))
            vm.run()
            total += s.push_retries
        assert total > 0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000),
       values=st.lists(st.integers(), min_size=1, max_size=10))
def test_property_pop_returns_pushed_values(seed, values):
    s = TreiberStack()
    vm = VM(scheduler=random_scheduler, seed=seed)

    def pusher():
        for v in values:
            yield from s.push(v)

    popped = []

    def popper():
        for _ in values:
            value = yield from s.pop()
            if value is not STACK_EMPTY:
                popped.append(value)

    vm.spawn("p", pusher())
    vm.spawn("c", popper())
    vm.run()
    leftover = s.drain_sequential()
    assert sorted(popped + leftover) == sorted(values)
