"""Tests for the Chen/Burns-style wait-free SWMR register — and the
paper's lock-free-vs-wait-free tradeoff."""

import pytest

from repro.lockfree.interleave import VM, adversarial_scheduler, random_scheduler
from repro.lockfree.ms_queue import run_op
from repro.lockfree.nbw import NBWRegister
from repro.lockfree.waitfree_register import FREE, WaitFreeRegister


class TestSequential:
    def test_write_then_read(self):
        reg = WaitFreeRegister(n_readers=2)
        run_op(reg.write("hello"))
        assert run_op(reg.read(0)) == "hello"
        assert run_op(reg.read(1)) == "hello"

    def test_buffer_count_is_readers_plus_two(self):
        assert WaitFreeRegister(n_readers=3).n_buffers == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            WaitFreeRegister(n_readers=0)
        reg = WaitFreeRegister(n_readers=1)
        with pytest.raises(ValueError):
            run_op(reg.read(5))

    def test_reader_releases_its_own_slot(self):
        # The writer's help legitimately leaves claims in *idle* readers'
        # slots (reset at their next read start); but a reader that
        # finished must have released its own slot.
        reg = WaitFreeRegister(n_readers=2)
        run_op(reg.write("x"))
        run_op(reg.read(0))
        assert reg._slots[0].peek() == FREE
        assert reg._slots[1].peek() != FREE  # helped claim, still parked


class TestConcurrent:
    def _campaign(self, seed, scheduler=None, n_writes=25, n_readers=3):
        reg = WaitFreeRegister(n_readers=n_readers)
        vm = VM(scheduler=scheduler or random_scheduler, seed=seed)
        committed = []

        def writer():
            for version in range(n_writes):
                committed.append(version)
                yield from reg.write(version)

        observed = {i: [] for i in range(n_readers)}

        def reader(rid):
            for _ in range(n_writes // 2):
                value = yield from reg.read(rid)
                if value is not None:
                    observed[rid].append(value)

        vm.spawn("w", writer())
        for rid in range(n_readers):
            vm.spawn(f"r{rid}", reader(rid))
        vm.run()
        return reg, observed

    @pytest.mark.parametrize("seed", range(10))
    def test_reads_return_committed_values(self, seed):
        _, observed = self._campaign(seed)
        for values in observed.values():
            assert all(0 <= v < 25 for v in values)

    @pytest.mark.parametrize("seed", range(10))
    def test_no_reader_ever_loops(self, seed):
        """Wait-freedom: every read is a fixed number of atomic steps —
        the whole campaign completes without the VM's step budget ever
        being stressed, and no retry counter exists to grow."""
        reg, observed = self._campaign(
            seed, scheduler=adversarial_scheduler(burst=1))
        assert reg.writes == 25
        assert all(len(v) <= 12 for v in observed.values())

    def test_helping_actually_happens(self):
        helped = 0
        for seed in range(20):
            reg, _ = self._campaign(
                seed, scheduler=adversarial_scheduler(burst=2))
            helped += reg.helped_reads
        assert helped > 0

    @pytest.mark.parametrize("seed", range(5))
    def test_versions_monotone_per_reader(self, seed):
        _, observed = self._campaign(seed)
        for values in observed.values():
            assert values == sorted(values)


class TestPaperTradeoff:
    """Section 1.1: wait-free trades space (and a-priori reader count)
    for zero retries; lock-free (NBW readers) trades retries for a
    single buffer."""

    def test_space_cost(self):
        nbw = NBWRegister(width=1)
        wait_free = WaitFreeRegister(n_readers=8)
        assert len(nbw._cells) == 1
        assert wait_free.n_buffers == 10

    def test_retry_vs_no_retry_under_identical_adversary(self):
        # Same adversary, same op counts: NBW readers retry, the
        # wait-free register's readers never do (there is no retry path).
        nbw_retries = 0
        for seed in range(10):
            reg = NBWRegister(width=2)
            vm = VM(scheduler=adversarial_scheduler(burst=2), seed=seed)

            def writer():
                for version in range(15):
                    yield from reg.write((version, version))

            def reader():
                for _ in range(10):
                    yield from reg.read()

            vm.spawn("w", writer())
            vm.spawn("r", reader())
            vm.run()
            nbw_retries += reg.read_retries
        assert nbw_retries > 0

    def test_wait_free_requires_reader_count_up_front(self):
        # The paper's criticism: the identities/count of all jobs must be
        # known a priori.  Reading with an unregistered id fails.
        reg = WaitFreeRegister(n_readers=2)
        with pytest.raises(ValueError):
            run_op(reg.read(2))
