"""Tests for the canonical time units."""

from repro.units import MS, NS, SEC, US, ns_to_ms, ns_to_us


def test_unit_hierarchy():
    assert NS == 1
    assert US == 1000 * NS
    assert MS == 1000 * US
    assert SEC == 1000 * MS


def test_conversions():
    assert ns_to_us(2_500) == 2.5
    assert ns_to_ms(1_500_000) == 1.5
    assert ns_to_us(0) == 0.0
