"""Parallel-mode engine tests: real worker processes, real crashes.

Kept deliberately small (workers=2, a handful of trials, sub-second
timeouts) — the point is crash isolation and serial/parallel parity,
not throughput.
"""

import os

from repro.campaign import CampaignConfig, CampaignEngine, ChaosPlan


def trial_square(seed):
    return {"seed": seed, "value": seed * seed}


def trial_marker_flaky(marker_path, value):
    """Fails with a transient error once per marker file (state shared
    across worker processes via the filesystem)."""
    from repro.campaign import TransientTrialError
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("failed once")
        raise TransientTrialError("first attempt fails")
    return value


def trial_boom(seed):
    raise ValueError(f"deterministic bug for {seed}")


ARGS = [(3,), (5,), (7,), (11,)]


def _serial_values():
    engine = CampaignEngine(CampaignConfig())
    return engine.map(trial_square, ARGS).values


class TestParallelParity:
    def test_parallel_matches_serial_in_value_and_order(self):
        engine = CampaignEngine(CampaignConfig(workers=2))
        assert engine.map(trial_square, ARGS).values == _serial_values()

    def test_worker_crash_is_isolated_and_retried(self):
        engine = CampaignEngine(CampaignConfig(
            workers=2, chaos=ChaosPlan(crash=(1,))))
        result = engine.map(trial_square, ARGS)
        assert result.values == _serial_values()
        stats = engine.stats()
        assert stats.failed_trials == 0
        assert dict(stats.attempt_failures).get("crash", 0) >= 1

    def test_hung_trial_times_out_and_recovers(self):
        engine = CampaignEngine(CampaignConfig(
            workers=2, timeout=0.75,
            chaos=ChaosPlan(hang=(0,), hang_seconds=30.0),
            backoff_base=0.01, backoff_cap=0.05))
        result = engine.map(trial_square, ARGS)
        assert result.values == _serial_values()
        assert dict(engine.stats().attempt_failures).get("timeout", 0) >= 1

    def test_transient_failure_in_worker_is_retried(self, tmp_path):
        marker = str(tmp_path / "flaky.marker")
        engine = CampaignEngine(CampaignConfig(
            workers=2, backoff_base=0.01, backoff_cap=0.05))
        result = engine.map(trial_marker_flaky, [(marker, "payload")])
        assert result.values == ["payload"]
        outcome = result.outcomes[0]
        assert outcome.attempts == 2
        assert [f.kind for f in outcome.failures] == ["transient"]

    def test_deterministic_failure_does_not_abort_the_batch(self):
        engine = CampaignEngine(CampaignConfig(workers=2))
        specs_args = [(3,), (5,)]
        good = engine.map(trial_square, specs_args)
        bad = engine.map(trial_boom, [(9,)])
        assert good.values == [trial_square(3), trial_square(5)]
        assert not bad.ok
        assert [f.kind for f in bad.failures] == ["exception"]
        stats = engine.stats()
        assert stats.trials == 3 and stats.failed_trials == 1

    def test_parallel_journal_resume_parity(self, tmp_path):
        journal = str(tmp_path / "parallel.jsonl")
        first = CampaignEngine(CampaignConfig(workers=2, journal=journal),
                               tag="par")
        values = first.map(trial_square, ARGS).values
        first.close()

        resumed = CampaignEngine(CampaignConfig(workers=2, resume=journal),
                                 tag="par")
        result = resumed.map(trial_square, ARGS)
        resumed.close()
        assert result.values == values
        assert resumed.stats().from_journal == len(ARGS)
