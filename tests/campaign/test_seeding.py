"""Tests for deterministic seed derivation and seeded backoff."""

import pytest

from repro.campaign.seeding import backoff_delay, derive_seed, derive_seeds


class TestDeriveSeed:
    def test_pure_function_of_arguments(self):
        assert derive_seed(42, 7) == derive_seed(42, 7)
        assert derive_seed(42, 7, "s") == derive_seed(42, 7, "s")

    def test_distinct_across_each_argument(self):
        base = derive_seed(42, 7, "s")
        assert derive_seed(43, 7, "s") != base
        assert derive_seed(42, 8, "s") != base
        assert derive_seed(42, 7, "t") != base

    def test_64_bit_range(self):
        for index in range(50):
            seed = derive_seed(0, index)
            assert 0 <= seed < 2 ** 64

    def test_no_separator_collisions(self):
        # "1:2" + "" must not collide with "1" + "2:" style confusions.
        assert derive_seed(1, 2, "3") != derive_seed(1, 23, "")
        assert derive_seed(12, 3) != derive_seed(1, 23)

    def test_derive_seeds_matches_pointwise(self):
        seeds = derive_seeds(42, 5, "stream")
        assert seeds == [derive_seed(42, k, "stream") for k in range(5)]
        assert len(set(seeds)) == 5


class TestBackoffDelay:
    def test_exponential_growth_without_jitter(self):
        delays = [backoff_delay(a, base=0.1, factor=2.0, cap=100.0,
                                jitter=0.0, seed=0) for a in range(4)]
        assert delays == [0.1, 0.2, 0.4, 0.8]

    def test_cap_applies(self):
        assert backoff_delay(10, base=0.1, factor=2.0, cap=1.5,
                             jitter=0.0, seed=0) == 1.5

    def test_jitter_stays_within_band_and_is_seeded(self):
        raw = 0.4  # base * factor**2
        for seed in range(20):
            delay = backoff_delay(2, base=0.1, factor=2.0, cap=100.0,
                                  jitter=0.25, seed=seed)
            assert raw * 0.75 <= delay <= raw * 1.25
            again = backoff_delay(2, base=0.1, factor=2.0, cap=100.0,
                                  jitter=0.25, seed=seed)
            assert delay == again

    def test_zero_base_is_zero_delay(self):
        assert backoff_delay(3, base=0.0, factor=2.0, cap=1.0,
                             jitter=0.5, seed=9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            backoff_delay(-1, base=0.1, factor=2.0, cap=1.0,
                          jitter=0.0, seed=0)
        with pytest.raises(ValueError):
            backoff_delay(0, base=-0.1, factor=2.0, cap=1.0,
                          jitter=0.0, seed=0)
        with pytest.raises(ValueError):
            backoff_delay(0, base=0.1, factor=0.5, cap=1.0,
                          jitter=0.0, seed=0)
        with pytest.raises(ValueError):
            backoff_delay(0, base=0.1, factor=2.0, cap=1.0,
                          jitter=1.5, seed=0)
