"""Tests for crash-safe artifact writes (`repro.campaign.io`)."""

import os

import pytest

from repro.campaign.io import atomic_write


class TestAtomicWrite:
    def test_writes_text(self, tmp_path):
        target = tmp_path / "artifact.txt"
        returned = atomic_write(target, "hello\n")
        assert returned == target
        assert target.read_text() == "hello\n"

    def test_writes_bytes(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write(target, b"\x00\x01\x02")
        assert target.read_bytes() == b"\x00\x01\x02"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "c.txt"
        atomic_write(target, "nested")
        assert target.read_text() == "nested"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "artifact.txt"
        target.write_text("old")
        atomic_write(target, "new")
        assert target.read_text() == "new"

    def test_custom_encoding(self, tmp_path):
        target = tmp_path / "latin.txt"
        atomic_write(target, "café", encoding="latin-1")
        assert target.read_bytes() == b"caf\xe9"

    def test_no_temp_files_left_on_success(self, tmp_path):
        atomic_write(tmp_path / "artifact.txt", "data")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["artifact.txt"]

    def test_failed_write_leaves_previous_artifact_and_no_temp(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write(target, "previous")
        with pytest.raises(TypeError):
            atomic_write(target, 12345)  # not str/bytes: write() raises
        assert target.read_text() == "previous"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["artifact.txt"]

    def test_temp_file_lands_in_target_directory(self, tmp_path, monkeypatch):
        # os.replace is only atomic within one filesystem; the temp file
        # must therefore be created next to the target, not in $TMPDIR.
        seen = {}
        real_replace = os.replace

        def spy(src, dst):
            seen["src_dir"] = os.path.dirname(os.path.abspath(src))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        atomic_write(tmp_path / "artifact.txt", "data")
        assert seen["src_dir"] == str(tmp_path)
