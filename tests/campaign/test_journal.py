"""Journal tests: write-ahead records, torn tails, tag pinning, resume."""

import json

import pytest

from repro.campaign import CampaignConfig, CampaignEngine, JournalError
from repro.campaign.journal import CampaignJournal, load_journal
from repro.campaign.spec import TrialFailure, TrialOutcome

CALLS: dict[str, int] = {}


def trial_counted(key, seed):
    CALLS[key] = CALLS.get(key, 0) + 1
    return {"seed": seed, "payload": [seed, seed ** 2]}


@pytest.fixture(autouse=True)
def _reset_calls():
    CALLS.clear()


class TestRoundTrip:
    def test_record_and_load(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignJournal.open(path, "tag-a") as journal:
            journal.record(TrialOutcome(index=0, ok=True,
                                        value={"x": 1}, attempts=1))
            journal.record(TrialOutcome(
                index=1, ok=False, attempts=3,
                failures=[TrialFailure(index=1, attempt=a, kind="transient",
                                       message="m") for a in range(3)]))
        snapshot = load_journal(path)
        assert snapshot.tag == "tag-a"
        assert snapshot.values == {0: {"x": 1}}
        assert [f.kind for f in snapshot.failed[1]] == ["transient"] * 3
        assert snapshot.torn_lines == 0
        assert snapshot.completed == 1

    def test_later_success_supersedes_failure(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignJournal.open(path, "t") as journal:
            journal.record(TrialOutcome(
                index=4, ok=False, attempts=1,
                failures=[TrialFailure(index=4, attempt=0, kind="crash")]))
            journal.record(TrialOutcome(index=4, ok=True, value="v",
                                        attempts=1))
        snapshot = load_journal(path)
        assert snapshot.values == {4: "v"}
        assert 4 not in snapshot.failed

    def test_reopen_appends(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignJournal.open(path, "t") as journal:
            journal.record(TrialOutcome(index=0, ok=True, value=1, attempts=1))
        with CampaignJournal.open(path, "t") as journal:
            journal.record(TrialOutcome(index=1, ok=True, value=2, attempts=1))
        assert load_journal(path).values == {0: 1, 1: 2}


class TestCorruptionHandling:
    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignJournal.open(path, "t") as journal:
            journal.record(TrialOutcome(index=0, ok=True, value="a",
                                        attempts=1))
            journal.record(TrialOutcome(index=1, ok=True, value="b",
                                        attempts=1))
        # Simulate a kill mid-append: chop the last record in half.
        text = path.read_text()
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        snapshot = load_journal(path)
        assert snapshot.values == {0: "a"}
        assert snapshot.torn_lines == 1

    def test_torn_tail_with_missing_tag_line_resumes_cleanly(
            self, tmp_path):
        """A kill during journal *creation* can leave a file whose tag
        (header) line never landed and whose only record is torn.  That
        must resume as an empty journal, not raise."""
        path = tmp_path / "c.jsonl"
        path.write_text('{"type": "trial", "index": 0, "ok": true, "pa')
        snapshot = load_journal(path)
        assert snapshot.tag == ""
        assert snapshot.values == {} and snapshot.failed == {}
        assert snapshot.torn_lines == 1

        # The engine resumes from it cleanly and recomputes everything;
        # reopening for append re-pins the tag for later resumes.
        engine = CampaignEngine(
            CampaignConfig(journal=str(path), resume=str(path)), tag="t")
        result = engine.map(trial_counted, [("k1", 3), ("k2", 5)])
        engine.close()
        assert CALLS == {"k1": 1, "k2": 1}
        assert not any(o.from_journal for o in result.outcomes)
        healed = load_journal(path)
        assert healed.tag == "t"
        assert healed.completed == 2
        # A second resume replays everything from the healed journal.
        CALLS.clear()
        resumed = CampaignEngine(
            CampaignConfig(resume=str(path)), tag="t")
        replay = resumed.map(trial_counted, [("k1", 3), ("k2", 5)])
        resumed.close()
        assert CALLS == {}
        assert replay.values == result.values

    def test_empty_journal_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text("")
        with pytest.raises(JournalError, match="empty"):
            load_journal(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text('{"type": "trial", "index": 0}\n')
        with pytest.raises(JournalError, match="header"):
            load_journal(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text(json.dumps({"type": "header", "version": 99,
                                    "tag": "t"}) + "\n")
        with pytest.raises(JournalError, match="version"):
            load_journal(path)

    def test_tag_mismatch_on_append_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        CampaignJournal.open(path, "campaign-a").close()
        with pytest.raises(JournalError, match="campaign-a"):
            CampaignJournal.open(path, "campaign-b")


class TestDurability:
    """Regression: ``open()`` must fsync the parent directory, or a
    freshly created journal's *name* can vanish in a crash even though
    its bytes were fsynced — the classic create-without-dir-fsync
    hole."""

    @pytest.fixture
    def fsync_calls(self, monkeypatch):
        import repro.campaign.journal as journal_mod

        calls: list = []
        real = journal_mod._fsync_dir

        def recording(path):
            calls.append(path)
            real(path)

        monkeypatch.setattr(journal_mod, "_fsync_dir", recording)
        return calls

    def test_open_fsyncs_parent_dir_on_create(self, tmp_path, fsync_calls):
        path = tmp_path / "c.jsonl"
        CampaignJournal.open(path, "t").close()
        assert tmp_path in fsync_calls

    def test_open_fsyncs_parent_dir_on_reopen(self, tmp_path, fsync_calls):
        path = tmp_path / "c.jsonl"
        CampaignJournal.open(path, "t").close()
        fsync_calls.clear()
        CampaignJournal.open(path, "t").close()
        assert tmp_path in fsync_calls

    def test_open_fsyncs_after_torn_tail_repair(self, tmp_path,
                                                fsync_calls):
        path = tmp_path / "c.jsonl"
        with CampaignJournal.open(path, "t") as journal:
            journal.record(TrialOutcome(index=0, ok=True, value="a",
                                        attempts=1))
        # Tear the newline off the final record, then reopen: the repair
        # path rewrites the tail and must still reach the dir fsync.
        path.write_text(path.read_text().rstrip("\n"))
        fsync_calls.clear()
        CampaignJournal.open(path, "t").close()
        assert tmp_path in fsync_calls
        assert load_journal(path).completed == 1


class TestEngineResume:
    def test_resume_replays_without_recomputation(self, tmp_path):
        path = tmp_path / "c.jsonl"
        first = CampaignEngine(CampaignConfig(journal=str(path)), tag="t")
        args = [("k1", 3), ("k2", 5)]
        values = first.map(trial_counted, args).values
        first.close()
        assert CALLS == {"k1": 1, "k2": 1}

        resumed = CampaignEngine(
            CampaignConfig(journal=str(path), resume=str(path)), tag="t")
        result = resumed.map(trial_counted, args)
        resumed.close()
        assert result.values == values
        assert all(o.from_journal for o in result.outcomes)
        assert CALLS == {"k1": 1, "k2": 1}      # nothing re-ran
        assert resumed.stats().from_journal == 2

    def test_resume_after_torn_tail_recomputes_only_the_torn_trial(
            self, tmp_path):
        path = tmp_path / "c.jsonl"
        first = CampaignEngine(CampaignConfig(journal=str(path)), tag="t")
        args = [("k1", 3), ("k2", 5), ("k3", 7)]
        uninterrupted = first.map(trial_counted, args).values
        first.close()

        # Kill-mid-write simulation: tear the final record's line.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:10])

        CALLS.clear()
        resumed = CampaignEngine(
            CampaignConfig(journal=str(path), resume=str(path)), tag="t")
        result = resumed.map(trial_counted, args)
        resumed.close()
        assert result.values == uninterrupted
        assert CALLS == {"k3": 1}               # only the torn trial re-ran
        assert [o.from_journal for o in result.outcomes] == [
            True, True, False]
        # The journal is now complete again: a further resume re-runs
        # nothing.
        assert load_journal(path).completed == 3

    def test_resume_tag_mismatch_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        CampaignEngine(CampaignConfig(journal=str(path)), tag="t").close()
        with pytest.raises(JournalError):
            CampaignEngine(CampaignConfig(resume=str(path)), tag="other")
