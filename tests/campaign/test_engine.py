"""Serial-mode engine tests: retry, backoff schedule, classification.

Everything here runs in-process (``workers=1``) with an injected fake
``sleep``, so the retry/backoff behavior is tested without real waiting.
"""

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignEngine,
    ChaosPlan,
    SimulatedWorkerCrash,
    TransientTrialError,
    as_engine,
)
from repro.campaign.seeding import backoff_delay, derive_seed
from repro.campaign.spec import TrialSpec

# Per-test mutable state for trial functions (serial mode runs them
# in-process, so plain module globals are visible to assertions).
CALLS: dict[str, int] = {}


def trial_value(seed):
    return seed * 10


def trial_flaky(key, fail_times, value):
    CALLS[key] = CALLS.get(key, 0) + 1
    if CALLS[key] <= fail_times:
        raise TransientTrialError(f"flaky attempt {CALLS[key]}")
    return value


def trial_boom():
    raise ValueError("deterministic bug")


def trial_always_transient():
    raise TransientTrialError("never recovers")


def trial_simulated_crash(key):
    CALLS[key] = CALLS.get(key, 0) + 1
    if CALLS[key] == 1:
        raise SimulatedWorkerCrash("worker died")
    return "recovered"


def _engine(config=None, **kwargs):
    sleeps = []
    engine = CampaignEngine(config or CampaignConfig(),
                            sleep=sleeps.append, **kwargs)
    return engine, sleeps


@pytest.fixture(autouse=True)
def _reset_calls():
    CALLS.clear()


class TestSerialExecution:
    def test_map_returns_values_in_trial_order(self):
        engine, _ = _engine()
        result = engine.map(trial_value, [(3,), (1,), (2,)])
        assert result.values == [30, 10, 20]
        assert result.ok

    def test_success_outcome_shape(self):
        engine, _ = _engine()
        outcome = engine.map(trial_value, [(5,)]).outcomes[0]
        assert outcome.ok and outcome.value == 50
        assert outcome.attempts == 1
        assert outcome.failures == []
        assert not outcome.from_journal

    def test_global_indices_span_batches(self):
        engine, _ = _engine()
        first = engine.map(trial_value, [(1,), (2,)])
        second = engine.map(trial_value, [(3,)])
        assert [o.index for o in first.outcomes] == [0, 1]
        assert [o.index for o in second.outcomes] == [2]
        assert len(engine.outcomes) == 3

    def test_kwargs_reach_the_trial(self):
        engine, _ = _engine()
        spec = TrialSpec(index=0, fn=trial_flaky,
                         kwargs=(("key", "kw"), ("fail_times", 0),
                                 ("value", "v")))
        assert engine.run([spec]).values == ["v"]


class TestRetrySemantics:
    def test_transient_failure_retried_until_success(self):
        engine, sleeps = _engine()
        outcome = engine.map(trial_flaky, [("t1", 2, "done")]).outcomes[0]
        assert outcome.ok and outcome.value == "done"
        assert outcome.attempts == 3
        assert [f.kind for f in outcome.failures] == ["transient"] * 2
        assert [f.attempt for f in outcome.failures] == [0, 1]
        assert len(sleeps) == 2

    def test_backoff_schedule_is_seeded_and_reproducible(self):
        cfg = CampaignConfig(max_attempts=3, retry_seed=99)
        engine, sleeps = _engine(cfg)
        engine.map(trial_always_transient, [()])
        expected = [
            backoff_delay(attempt,
                          base=cfg.backoff_base, factor=cfg.backoff_factor,
                          cap=cfg.backoff_cap, jitter=cfg.backoff_jitter,
                          seed=derive_seed(99, 0, f"backoff:{attempt}"))
            for attempt in range(2)      # no sleep after the final attempt
        ]
        assert sleeps == expected
        engine2, sleeps2 = _engine(cfg)
        engine2.map(trial_always_transient, [()])
        assert sleeps2 == sleeps

    def test_deterministic_exception_not_retried(self):
        engine, sleeps = _engine()
        outcome = engine.map(trial_boom, [()]).outcomes[0]
        assert not outcome.ok
        assert outcome.attempts == 1
        assert [f.kind for f in outcome.failures] == ["exception"]
        assert "deterministic bug" in outcome.failures[0].message
        assert sleeps == []

    def test_exhausted_attempts_fail_terminally(self):
        engine, _ = _engine(CampaignConfig(max_attempts=3))
        result = engine.map(trial_always_transient, [()])
        outcome = result.outcomes[0]
        assert not outcome.ok
        assert outcome.attempts == 3
        assert len(outcome.failures) == 3
        assert result.failed == [outcome]
        assert result.values == []

    def test_max_attempts_one_disables_retry(self):
        engine, sleeps = _engine(CampaignConfig(max_attempts=1))
        outcome = engine.map(trial_always_transient, [()]).outcomes[0]
        assert not outcome.ok and outcome.attempts == 1
        assert sleeps == []

    def test_simulated_crash_classified_and_retried(self):
        engine, _ = _engine()
        outcome = engine.map(trial_simulated_crash, [("c1",)]).outcomes[0]
        assert outcome.ok and outcome.value == "recovered"
        assert [f.kind for f in outcome.failures] == ["crash"]


class TestChaosSerial:
    def test_transient_chaos_recovers_to_identical_values(self):
        clean, _ = _engine()
        clean_values = clean.map(trial_value, [(1,), (2,), (3,)]).values

        chaotic, _ = _engine(CampaignConfig(
            chaos=ChaosPlan(transient=(0, 2))))
        result = chaotic.map(trial_value, [(1,), (2,), (3,)])
        assert result.values == clean_values
        kinds = [f.kind for f in result.failures]
        assert kinds == ["transient", "transient"]

    def test_crash_chaos_recovers_serially(self):
        engine, _ = _engine(CampaignConfig(chaos=ChaosPlan(crash=(1,))))
        result = engine.map(trial_value, [(1,), (2,)])
        assert result.values == [10, 20]
        assert [f.kind for f in result.failures] == ["crash"]


class TestStats:
    def test_stats_aggregate_outcomes(self):
        engine, _ = _engine(CampaignConfig(max_attempts=2))
        engine.map(trial_value, [(1,)])
        engine.map(trial_boom, [()])
        engine.map(trial_always_transient, [()])
        stats = engine.stats()
        assert stats.trials == 3
        assert stats.completed == 1
        assert stats.failed_trials == 2
        assert dict(stats.attempt_failures) == {"exception": 1,
                                                "transient": 2}
        assert stats.workers == 1
        line = stats.summary_line()
        assert "3 trials" in line and "2 failed" in line


class TestConfigValidation:
    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(workers=0)
        with pytest.raises(ValueError):
            CampaignConfig(max_attempts=0)
        with pytest.raises(ValueError):
            CampaignConfig(timeout=0.0)

    def test_as_engine_normalizes(self):
        assert as_engine(None, tag="t") is None
        engine = as_engine(CampaignConfig(), tag="t")
        assert isinstance(engine, CampaignEngine) and engine.tag == "t"
        assert as_engine(engine, tag="other") is engine
        with pytest.raises(TypeError):
            as_engine(object(), tag="t")
