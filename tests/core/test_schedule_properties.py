"""Property-based tests of the schedule-construction invariants.

Randomized job sets and dependency structures; the invariants:

1. the output schedule is ordered by effective critical time;
2. it is feasible (every job meets its effective critical time);
3. every chain's jobs appear with dependents before their successors;
4. effective critical times only tighten (never exceed the job's own);
5. no duplicates; output is a subset of the input jobs.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.arrivals import UAMSpec
from repro.core.feasibility import is_feasible
from repro.core.pud import chain_pud
from repro.core.schedule_builder import build_rua_schedule
from repro.tasks import Compute, Job, TaskSpec
from repro.tuf import StepTUF


def _make_jobs(spec: list[tuple[int, int]]) -> list[Job]:
    """spec: (compute, critical) per job."""
    jobs = []
    for index, (compute, critical) in enumerate(spec):
        task = TaskSpec(
            name=f"J{index}",
            arrival=UAMSpec(1, 1, critical),
            tuf=StepTUF(critical_time=critical),
            body=(Compute(compute),),
        )
        jobs.append(Job(task=task, jid=0, release_time=0))
    return jobs


job_specs = st.lists(
    st.tuples(st.integers(min_value=1, max_value=500),
              st.integers(min_value=1, max_value=2000)),
    min_size=1, max_size=8,
)


def _random_chains(jobs: list[Job], seed: int) -> dict[Job, list[Job]]:
    """Random forest-shaped dependency structure: each job depends on at
    most one earlier job (no cycles by construction)."""
    rng = random.Random(seed)
    parent: dict[Job, Job | None] = {}
    for index, job in enumerate(jobs):
        if index > 0 and rng.random() < 0.5:
            parent[job] = jobs[rng.randrange(index)]
        else:
            parent[job] = None
    chains = {}
    for job in jobs:
        chain = [job]
        current = job
        while parent[current] is not None:
            current = parent[current]
            chain.append(current)
        chain.reverse()
        chains[job] = chain
    return chains


def _pud_order(jobs, chains, now=0):
    puds = {job: chain_pud(chains[job], now) for job in jobs}
    return sorted(jobs, key=lambda j: (-puds[j], j.critical_time_abs,
                                       j.name))


class TestScheduleInvariants:
    @settings(max_examples=120, deadline=None)
    @given(spec=job_specs, seed=st.integers(0, 10_000))
    def test_all_invariants(self, spec, seed):
        jobs = _make_jobs(spec)
        chains = _random_chains(jobs, seed)
        order = _pud_order(jobs, chains)
        # Rebuild to recover the effective critical times the builder
        # computed: replay and track.
        schedule = build_rua_schedule(order, chains, now=0)

        # 5: subset, no duplicates.
        assert len(schedule) == len(set(schedule))
        assert set(schedule) <= set(jobs)

        # Recompute effective cts implied by dependency inheritance over
        # the *final* schedule: a job's effective ct is at most its own.
        positions = {job: i for i, job in enumerate(schedule)}

        # 3: for every scheduled job, its chain predecessors that are
        # also scheduled appear before it.
        for job in schedule:
            chain = chains[job]
            indices = [positions[c] for c in chain if c in positions]
            assert indices == sorted(indices)

        # 2: feasibility with per-job own critical times relaxed to the
        # chain-inherited minimum of successors ahead of it.
        effective = {}
        for job in schedule:
            own = job.critical_time_abs
            for other in schedule:
                chain = chains[other]
                if job in chain:
                    tail_index = chain.index(job)
                    for successor in chain[tail_index + 1:]:
                        if successor in positions:
                            own = min(own, successor.critical_time_abs)
            effective[job] = own
        # 4: inherited cts never exceed the job's own.
        assert all(effective[j] <= j.critical_time_abs for j in schedule)
        # 2: the schedule is feasible under those (tightest) cts.
        assert is_feasible(schedule, effective, now=0)

    @settings(max_examples=60, deadline=None)
    @given(spec=job_specs)
    def test_no_dependencies_gives_ecf_order(self, spec):
        jobs = _make_jobs(spec)
        chains = {job: [job] for job in jobs}
        order = _pud_order(jobs, chains)
        schedule = build_rua_schedule(order, chains, now=0)
        cts = [job.critical_time_abs for job in schedule]
        assert cts == sorted(cts)

    @settings(max_examples=60, deadline=None)
    @given(spec=job_specs)
    def test_underload_rejects_nothing(self, spec):
        # If the whole set is EDF-feasible, RUA keeps every job.
        jobs = _make_jobs(spec)
        by_ct = sorted(jobs, key=lambda j: j.critical_time_abs)
        if not is_feasible(by_ct, {}, now=0):
            return  # only the underload case is asserted here
        chains = {job: [job] for job in jobs}
        schedule = build_rua_schedule(_pud_order(jobs, chains), chains,
                                      now=0)
        assert set(schedule) == set(jobs)
