"""Tests for tentative-schedule construction (Sections 3.4/3.4.1,
Figures 4 and 5)."""

from repro.arrivals import UAMSpec
from repro.core.schedule_builder import build_rua_schedule, insert_chain
from repro.tasks import Compute, Job, TaskSpec
from repro.tuf import StepTUF


def _job(name, critical, compute=10, release=0):
    task = TaskSpec(name=name, arrival=UAMSpec(1, 1, critical),
                    tuf=StepTUF(critical_time=critical),
                    body=(Compute(compute),))
    return Job(task=task, jid=0, release_time=release)


class TestFigure4:
    """Inserting T1 whose chain is <T2, T1>."""

    def test_case1_consistent_orders(self):
        # C2 < C1: ECF order already respects the dependency.
        t1 = _job("T1", critical=1000)
        t2 = _job("T2", critical=500)
        schedule, ct = [], {}
        insert_chain(schedule, ct, [t2, t1])
        assert schedule == [t2, t1]
        assert ct[t2] == 500 and ct[t1] == 1000

    def test_case2_inconsistent_orders_inherit(self):
        # C2 > C1: T2 must be placed before T1 with C2 updated to C1.
        t1 = _job("T1", critical=500)
        t2 = _job("T2", critical=1000)
        schedule, ct = [], {}
        insert_chain(schedule, ct, [t2, t1])
        assert schedule == [t2, t1]
        assert ct[t2] == 500   # inherited
        assert ct[t1] == 500

    def test_inherited_ct_affects_later_insertions(self):
        t1 = _job("T1", critical=500)
        t2 = _job("T2", critical=1000)
        other = _job("X", critical=700)
        schedule, ct = [], {}
        insert_chain(schedule, ct, [t2, t1])
        insert_chain(schedule, ct, [other])
        # X's ct (700) sorts after the inherited 500s.
        assert schedule == [t2, t1, other]


class TestFigure5:
    """Chains <T1>, <T1,T2>, <T1,T3> with PUD order T2, T1, T3.

    After inserting T2 (with dependent T1), inserting T3 must ensure the
    already-present T1 also precedes T3, moving it if C1 > C3.
    """

    def _jobs(self, c1, c2, c3):
        return (_job("T1", critical=c1), _job("T2", critical=c2),
                _job("T3", critical=c3))

    def test_case1_t1_already_before_t3(self):
        t1, t2, t3 = self._jobs(c1=300, c2=600, c3=900)
        schedule, ct = [], {}
        insert_chain(schedule, ct, [t1, t2])
        assert schedule == [t1, t2]
        insert_chain(schedule, ct, [t1, t3])
        assert schedule == [t1, t2, t3]

    def test_case2_t1_moved_before_t3(self):
        # C1 > C3: T1 must move before T3 and inherit C3.
        t1, t2, t3 = self._jobs(c1=800, c2=900, c3=400)
        schedule, ct = [], {}
        insert_chain(schedule, ct, [t1, t2])
        assert schedule == [t1, t2]
        insert_chain(schedule, ct, [t1, t3])
        # Paper's outcome: <T1, T3, T2>.
        assert schedule == [t1, t3, t2]
        assert ct[t1] == 400   # inherited from T3

    def test_duplicate_dependent_not_inserted_twice(self):
        t1, t2, t3 = self._jobs(c1=300, c2=600, c3=900)
        schedule, ct = [], {}
        insert_chain(schedule, ct, [t1, t2])
        insert_chain(schedule, ct, [t1, t3])
        assert schedule.count(t1) == 1


class TestBuildRuaSchedule:
    def test_rejects_infeasible_low_pud_job(self):
        # Two jobs that cannot both fit; the higher-PUD one wins.
        rich = _job("rich", critical=100, compute=80)
        poor = _job("poor", critical=100, compute=80)
        chains = {rich: [rich], poor: [poor]}
        schedule = build_rua_schedule([rich, poor], chains, now=0)
        assert schedule == [rich]

    def test_keeps_all_feasible_jobs(self):
        a = _job("A", critical=1000, compute=100)
        b = _job("B", critical=2000, compute=100)
        chains = {a: [a], b: [b]}
        schedule = build_rua_schedule([b, a], chains, now=0)
        assert set(schedule) == {a, b}
        assert schedule == [a, b]   # ECF order regardless of PUD order

    def test_dependents_inserted_with_their_job(self):
        dep = _job("dep", critical=900, compute=50)
        main = _job("main", critical=500, compute=50)
        chains = {main: [dep, main], dep: [dep]}
        schedule = build_rua_schedule([main, dep], chains, now=0)
        assert schedule.index(dep) < schedule.index(main)

    def test_infeasible_chain_rejected_wholesale(self):
        dep = _job("dep", critical=900, compute=600)
        main = _job("main", critical=500, compute=50)
        solo = _job("solo", critical=400, compute=100)
        chains = {main: [dep, main], dep: [dep], solo: [solo]}
        # dep+main need 650 > main's 500: chain rejected; solo fits.
        schedule = build_rua_schedule([main, solo, dep], chains, now=0)
        assert main not in schedule
        assert solo in schedule

    def test_already_scheduled_job_skipped_in_pud_order(self):
        dep = _job("dep", critical=300, compute=10)
        main = _job("main", critical=600, compute=10)
        chains = {main: [dep, main], dep: [dep]}
        schedule = build_rua_schedule([main, dep], chains, now=0)
        assert schedule == [dep, main]
