"""Tests for schedule feasibility (Section 3.4)."""

from repro.arrivals import UAMSpec
from repro.core.feasibility import completion_profile, is_feasible
from repro.tasks import Compute, Job, TaskSpec
from repro.tuf import StepTUF


def _job(name, compute, critical, release=0):
    task = TaskSpec(name=name, arrival=UAMSpec(1, 1, critical),
                    tuf=StepTUF(critical_time=critical),
                    body=(Compute(compute),))
    return Job(task=task, jid=0, release_time=release)


class TestIsFeasible:
    def test_empty_schedule_is_feasible(self):
        assert is_feasible([], {}, now=0)

    def test_sequential_fit(self):
        a = _job("A", 100, 500)
        b = _job("B", 100, 500)
        assert is_feasible([a, b], {}, now=0)

    def test_overflow_is_infeasible(self):
        a = _job("A", 300, 500)
        b = _job("B", 300, 500)
        assert not is_feasible([a, b], {}, now=0)

    def test_effective_ct_overrides_own(self):
        a = _job("A", 100, 1000)
        # Inherited critical time 50 makes it infeasible.
        assert not is_feasible([a], {a: 50}, now=0)

    def test_now_offset(self):
        a = _job("A", 100, 500)
        assert is_feasible([a], {}, now=390)
        assert not is_feasible([a], {}, now=401)

    def test_exact_boundary_is_feasible(self):
        a = _job("A", 500, 500)
        assert is_feasible([a], {}, now=0)


class TestCompletionProfile:
    def test_profile_lists_cumulative_completions(self):
        a = _job("A", 100, 1000)
        b = _job("B", 50, 1000)
        assert completion_profile([a, b], now=10) == [(a, 110), (b, 160)]
