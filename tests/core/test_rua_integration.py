"""End-to-end behavioural properties of RUA (paper Sections 1 and 3).

* During underloads with step TUFs and no object sharing, RUA defaults to
  EDF: all critical times met, maximum total utility.
* During overloads, RUA favours important (high-utility) jobs over
  urgent ones, beating EDF's total utility.
* Mutual preemption (Figure 6) occurs under fully-dynamic policies.
"""

import pytest

from repro.sim.kernel import SyncMode
from repro.sim.tracing import TraceKind
from repro.tuf import StepTUF
from repro.units import US
from tests.helpers import run_scenario, simple_task, zero_cost_policy


def _underload_set():
    return [
        simple_task("A", critical_us=5000, compute_us=800, window_us=10_000),
        simple_task("B", critical_us=3000, compute_us=500, window_us=10_000),
        simple_task("C", critical_us=8000, compute_us=1_000,
                    window_us=10_000),
    ]


class TestUnderloadEDFEquivalence:
    @pytest.mark.parametrize("policy_kind", ["rua-lockfree",
                                             "rua-lockbased", "edf"])
    def test_all_critical_times_met(self, policy_kind):
        tasks = _underload_set()
        traces = [[0, 10_000], [100, 10_100], [200, 10_200]]
        _, result = run_scenario(tasks, traces,
                                 policy=zero_cost_policy(policy_kind),
                                 horizon_us=25_000)
        assert result.cmr == 1.0
        assert result.aur == 1.0

    def test_completion_order_matches_edf(self):
        tasks = _underload_set()
        traces = [[0], [100], [200]]
        orders = {}
        for kind in ("rua-lockfree", "edf"):
            _, result = run_scenario(tasks, traces,
                                     policy=zero_cost_policy(kind),
                                     horizon_us=25_000)
            orders[kind] = [
                r.task_name
                for r in sorted(result.records,
                                key=lambda r: r.completion_time)
            ]
        assert orders["rua-lockfree"] == orders["edf"]


class TestOverloadImportance:
    def _overload_tasks(self):
        # Both jobs need 900us; only one fits before its critical time.
        urgent = simple_task("urgent", critical_us=1000, compute_us=900,
                             window_us=10_000)
        important = simple_task(
            "important", critical_us=1100, compute_us=900,
            window_us=10_000,
            tuf=StepTUF(critical_time=1100 * US, height=10.0))
        return [urgent, important]

    def test_rua_accrues_more_utility_than_edf(self):
        tasks = self._overload_tasks()
        traces = [[0], [0]]
        utilities = {}
        for kind in ("rua-lockfree", "edf"):
            _, result = run_scenario(tasks, traces,
                                     policy=zero_cost_policy(kind),
                                     horizon_us=10_000)
            utilities[kind] = result.accrued_utility
        # EDF runs the urgent job first: urgent accrues 1, important is
        # aborted (0).  RUA runs the important one: accrues 10.
        assert utilities["edf"] == pytest.approx(1.0)
        assert utilities["rua-lockfree"] == pytest.approx(10.0)

    def test_rua_rejects_the_low_return_job(self):
        tasks = self._overload_tasks()
        _, result = run_scenario(tasks, [[0], [0]],
                                 policy=zero_cost_policy("rua-lockfree"),
                                 horizon_us=10_000)
        by_name = {r.task_name: r for r in result.records}
        assert by_name["urgent"].aborted
        assert by_name["important"].met_critical_time


class TestMutualPreemption:
    def test_figure6_mutual_preemption_under_llf(self):
        # Two similar jobs under LLF leapfrog each other as their
        # laxities cross — the fully-dynamic behaviour of Figure 6.  The
        # kernel is event-driven (Lemma 1: preemptions happen only at
        # scheduling events), so a periodic tick task provides the events
        # at which the laxity comparison flips.
        from repro.core.llf import LLF
        from repro.sim.overheads import ZeroCost
        a = simple_task("A", critical_us=10_000, compute_us=4_000,
                        window_us=20_000)
        b = simple_task("B", critical_us=10_500, compute_us=4_000,
                        window_us=20_000)
        tick = simple_task("tick", critical_us=900, compute_us=1,
                           window_us=1_000)
        kernel, result = run_scenario(
            [a, b, tick], [[0], [0], list(range(500, 15_000, 1_000))],
            policy=LLF(cost_model=ZeroCost()), horizon_us=20_000)
        by_task = {}
        for record in result.records:
            by_task.setdefault(record.task_name, 0)
            by_task[record.task_name] += record.preemptions
        # Both long jobs suffered preemptions: they alternated (mutual
        # preemption), not just a single one-way preemption.
        assert by_task["A"] >= 1
        assert by_task["B"] >= 1
        assert by_task["A"] + by_task["B"] >= 3

    def test_rua_preemption_count_bounded_by_events(self):
        # Lemma 1: preemptions cannot exceed scheduling events.
        tasks = _underload_set()
        traces = [[0, 5_000, 10_000], [100, 5_100], [200]]
        kernel, result = run_scenario(
            tasks, traces, policy=zero_cost_policy("rua-lockfree"),
            horizon_us=25_000)
        total_preemptions = sum(r.preemptions for r in result.records)
        assert total_preemptions <= result.scheduler_invocations
