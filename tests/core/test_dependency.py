"""Tests for dependency-chain computation (paper Section 3.1, Figure 3)."""

import pytest

from repro.arrivals import UAMSpec
from repro.core.dependency import (
    DeadlockDetected,
    all_dependency_chains,
    blocking_owner,
    dependency_chain,
    needed_object,
)
from repro.sim.locks import LockManager
from repro.tasks import Compute, Job, ObjectAccess, TaskSpec
from repro.tuf import StepTUF


def _job_accessing(name, objs):
    body = tuple(ObjectAccess(obj=o, duration=10) for o in objs) or (
        Compute(10),)
    task = TaskSpec(name=name, arrival=UAMSpec(1, 1, 1000),
                    tuf=StepTUF(critical_time=1000), body=body)
    return Job(task=task, jid=0, release_time=0)


class TestNeededObject:
    def test_unacquired_access_is_needed(self):
        job = _job_accessing("T", ["R1"])
        assert needed_object(job) == "R1"

    def test_held_access_is_not_needed(self):
        job = _job_accessing("T", ["R1"])
        job.holds_lock = "R1"
        assert needed_object(job) is None

    def test_compute_segment_needs_nothing(self):
        job = _job_accessing("T", [])
        assert needed_object(job) is None


class TestFigure3Scenario:
    """The paper's example: T1 requests R1 held by T2; T2 waits for R2
    held by T3; T3 depends on nobody.  Chains: <T3,T2,T1>, <T3,T2>,
    <T3>."""

    def _build(self):
        locks = LockManager(allow_nesting=True)
        t1 = _job_accessing("T1", ["R1"])
        t2 = _job_accessing("T2", ["R1", "R2"])   # holds R1, wants R2
        t3 = _job_accessing("T3", ["R2"])          # holds R2
        assert locks.try_acquire(t2, "R1")
        t2.holds_lock = "R1"
        t2.segment_index = 1                        # now needs R2
        assert locks.try_acquire(t3, "R2")
        t3.holds_lock = "R2"
        return locks, t1, t2, t3

    def test_chains_match_paper(self):
        locks, t1, t2, t3 = self._build()
        assert dependency_chain(t1, locks) == [t3, t2, t1]
        assert dependency_chain(t2, locks) == [t3, t2]
        assert dependency_chain(t3, locks) == [t3]

    def test_all_chains(self):
        locks, t1, t2, t3 = self._build()
        chains = all_dependency_chains([t1, t2, t3], locks)
        assert chains[t1] == [t3, t2, t1]

    def test_blocking_owner_walks_one_step(self):
        locks, t1, t2, t3 = self._build()
        assert blocking_owner(t1, locks) is t2
        assert blocking_owner(t2, locks) is t3
        assert blocking_owner(t3, locks) is None


class TestDeadlock:
    def test_cycle_raises(self):
        locks = LockManager(allow_nesting=True)
        a = _job_accessing("A", ["R1", "R2"])
        b = _job_accessing("B", ["R2", "R1"])
        locks.try_acquire(a, "R1"); a.holds_lock = "R1"; a.segment_index = 1
        locks.try_acquire(b, "R2"); b.holds_lock = "R2"; b.segment_index = 1
        with pytest.raises(DeadlockDetected) as exc:
            dependency_chain(a, locks)
        assert {j.task.name for j in exc.value.cycle} == {"A", "B"}

    def test_self_wait_is_not_dependency(self):
        # A job whose needed object it itself owns is not blocked.
        locks = LockManager()
        job = _job_accessing("A", ["R1"])
        locks.try_acquire(job, "R1")
        # Lock held but holds_lock not yet recorded on the job: the
        # owner lookup must not create a self-loop.
        assert blocking_owner(job, locks) is None


class TestNoLocksView:
    def test_chain_without_locks_is_singleton(self):
        job = _job_accessing("T", ["R1"])
        assert dependency_chain(job, None) == [job]
