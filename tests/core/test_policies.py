"""Tests for the scheduler policies (RUA variants, EDF, LLF)."""

import pytest

from repro.arrivals import UAMSpec
from repro.core.edf import EDF
from repro.core.llf import LLF
from repro.core.rua_lockbased import LockBasedRUA
from repro.core.rua_lockfree import LockFreeRUA
from repro.sim.locks import LockManager
from repro.tasks import Compute, Job, ObjectAccess, TaskSpec
from repro.tuf import StepTUF


def _job(name, critical, compute=100, height=1.0, release=0):
    task = TaskSpec(name=name, arrival=UAMSpec(1, 1, critical),
                    tuf=StepTUF(critical_time=critical, height=height),
                    body=(Compute(compute),))
    return Job(task=task, jid=0, release_time=release)


class TestEDF:
    def test_orders_by_critical_time(self):
        a = _job("A", 3000)
        b = _job("B", 1000)
        c = _job("C", 2000)
        assert EDF().schedule([a, b, c], None, now=0) == [b, c, a]

    def test_deterministic_name_tiebreak(self):
        a = _job("A", 1000)
        b = _job("B", 1000)
        assert EDF().schedule([b, a], None, now=0) == [a, b]


class TestLLF:
    def test_orders_by_laxity(self):
        tight = _job("tight", critical=500, compute=400)    # laxity 100
        loose = _job("loose", critical=2000, compute=100)   # laxity 1900
        assert LLF().schedule([loose, tight], None, now=0) == [tight, loose]

    def test_laxity_changes_with_time(self):
        # As `now` advances, the idle job's laxity shrinks; the policy is
        # fully dynamic (paper Section 4.1).
        a = _job("A", critical=1000, compute=500)   # laxity 500 at t=0
        b = _job("B", critical=1200, compute=400)   # laxity 800 at t=0
        llf = LLF()
        assert llf.schedule([a, b], None, now=0)[0] is a
        # Let A execute 400: its laxity grows relative to B's.
        a.advance(400)
        order = llf.schedule([a, b], None, now=400)
        # laxity(A) = (1000-400) - 100 = 500; laxity(B) = 800 - 400 = 400.
        assert order[0] is b


class TestLockFreeRUA:
    def test_underload_matches_edf_order(self):
        jobs = [_job("A", 3000), _job("B", 1000), _job("C", 2000)]
        rua = LockFreeRUA()
        assert rua.schedule(jobs, None, now=0) == EDF().schedule(
            jobs, None, now=0)

    def test_overload_favors_importance_over_urgency(self):
        # Urgent-but-unimportant vs less-urgent-but-important; only one
        # fits.  RUA keeps the high-utility job, EDF would doom both.
        urgent = _job("urgent", critical=100, compute=90, height=1.0)
        important = _job("important", critical=110, compute=90, height=10.0)
        schedule = LockFreeRUA().schedule([urgent, important], None, now=0)
        assert schedule == [important]

    def test_rejects_lock_view(self):
        with pytest.raises(ValueError, match="must not be used"):
            LockFreeRUA().schedule([], LockManager(), now=0)

    def test_infeasible_jobs_dropped(self):
        too_late = _job("late", critical=50, compute=100)
        fine = _job("fine", critical=500, compute=100)
        schedule = LockFreeRUA().schedule([too_late, fine], None, now=0)
        assert schedule == [fine]


class TestLockBasedRUA:
    def test_without_locks_matches_lockfree_variant(self):
        jobs = [_job("A", 3000), _job("B", 1000), _job("C", 2000)]
        lb = LockBasedRUA().schedule(jobs, None, now=0)
        lf = LockFreeRUA().schedule(jobs, None, now=0)
        assert lb == lf

    def test_dependent_chain_scheduled_together(self):
        locks = LockManager()
        holder_task = TaskSpec(
            name="H", arrival=UAMSpec(1, 1, 10_000),
            tuf=StepTUF(critical_time=9_000),
            body=(ObjectAccess(obj="q", duration=500), Compute(100)),
        )
        holder = Job(task=holder_task, jid=0, release_time=0)
        locks.try_acquire(holder, "q")
        holder.holds_lock = "q"
        waiter_task = TaskSpec(
            name="W", arrival=UAMSpec(1, 1, 10_000),
            tuf=StepTUF(critical_time=1_000),
            body=(ObjectAccess(obj="q", duration=100), Compute(10)),
        )
        waiter = Job(task=waiter_task, jid=0, release_time=0)
        schedule = LockBasedRUA().schedule([waiter, holder], locks, now=0)
        # Holder inherits the waiter's earlier critical time and runs
        # first (Figure 4 Case 2).
        assert schedule.index(holder) < schedule.index(waiter)

    def test_deadlock_victim_requested(self):
        locks = LockManager(allow_nesting=True)
        def nested_job(name, first, second, height):
            task = TaskSpec(
                name=name, arrival=UAMSpec(1, 1, 10_000),
                tuf=StepTUF(critical_time=9_000, height=height),
                body=(ObjectAccess(obj=first, duration=100),
                      ObjectAccess(obj=second, duration=100)),
            )
            return Job(task=task, jid=0, release_time=0)
        a = nested_job("A", "R1", "R2", height=9.0)
        b = nested_job("B", "R2", "R1", height=1.0)
        for job, obj in ((a, "R1"), (b, "R2")):
            locks.try_acquire(job, obj)
            job.holds_lock = obj
            job.segment_index = 1
        policy = LockBasedRUA()
        schedule = policy.schedule([a, b], locks, now=0)
        victims = policy.consume_abort_requests()
        assert victims == [b]
        assert b not in schedule
        # Second consume is empty (requests are drained).
        assert policy.consume_abort_requests() == []

    def test_detection_can_be_disabled(self):
        policy = LockBasedRUA(detect_deadlocks=False)
        assert not policy.detect_deadlocks


class TestCostModels:
    def test_default_cost_ordering(self):
        n = 12
        assert (LockBasedRUA().cost_model.cost(n)
                > LockFreeRUA().cost_model.cost(n)
                > EDF().cost_model.cost(n))
