"""Property tests for the singleton-chain fast builder and its cache.

1. ``build_singleton_schedule`` is decision-identical to the reference
   ``build_rua_schedule`` whenever every dependency chain is a singleton
   (always true under lock-free sharing).
2. The :class:`ScheduleCache` never changes the result: however the
   candidate list mutates between passes — and whatever stale state the
   cache holds — the schedule (and therefore the chosen job at its
   head) equals a fresh cache-free construction.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.arrivals import UAMSpec
from repro.core.schedule_builder import build_rua_schedule
from repro.core.schedule_cache import ScheduleCache, build_singleton_schedule
from repro.tasks import Compute, Job, TaskSpec
from repro.tuf import StepTUF


def _make_jobs(spec: list[tuple[int, int]]) -> list[Job]:
    """spec: (compute, critical) per job."""
    jobs = []
    for index, (compute, critical) in enumerate(spec):
        task = TaskSpec(
            name=f"J{index}",
            arrival=UAMSpec(1, 1, critical),
            tuf=StepTUF(critical_time=critical),
            body=(Compute(compute),),
        )
        jobs.append(Job(task=task, jid=0, release_time=0))
    return jobs


def _entries(jobs: list[Job]) -> list[tuple[Job, int, int]]:
    return [(job, job.remaining_time(), job.critical_time_abs)
            for job in jobs]


job_specs = st.lists(
    st.tuples(st.integers(min_value=1, max_value=500),
              st.integers(min_value=1, max_value=2000)),
    min_size=1, max_size=10,
)


@settings(max_examples=200, deadline=None)
@given(spec=job_specs, order_seed=st.integers(0, 2**32 - 1))
def test_singleton_builder_matches_reference(spec, order_seed):
    jobs = _make_jobs(spec)
    random.Random(order_seed).shuffle(jobs)     # arbitrary PUD order
    reference = build_rua_schedule(jobs, {job: [job] for job in jobs},
                                   now=0)
    fast = build_singleton_schedule(_entries(jobs), now=0)
    assert fast == reference


@settings(max_examples=200, deadline=None)
@given(spec=job_specs, mutation_seed=st.integers(0, 2**32 - 1))
def test_cache_never_changes_the_schedule(spec, mutation_seed):
    """Drive one shared cache through a random sequence of candidate-list
    mutations (drop, reorder, clock advance, demand change); every pass
    must equal a fresh cache-free construction — in particular the
    chosen job at the schedule's head never depends on cache state."""
    rng = random.Random(mutation_seed)
    jobs = _make_jobs(spec)
    entries = _entries(jobs)
    cache = ScheduleCache()
    now = 0
    for _ in range(6):
        with_cache = build_singleton_schedule(list(entries), now,
                                              cache=cache)
        fresh = build_singleton_schedule(list(entries), now)
        assert with_cache == fresh
        if with_cache:
            assert with_cache[0] is fresh[0]
        mutation = rng.randrange(4)
        if mutation == 0 and len(entries) > 1:
            del entries[rng.randrange(len(entries))]
        elif mutation == 1:
            rng.shuffle(entries)
        elif mutation == 2:
            now += rng.randrange(0, 300)
        elif mutation == 3 and entries:
            index = rng.randrange(len(entries))
            job, remaining, ct = entries[index]
            entries[index] = (job, max(1, remaining - rng.randrange(0, 50)),
                              ct)


def test_cache_full_prefix_replay_is_exact():
    """Same clock, same candidates: the second pass replays every
    decision and still returns the identical schedule."""
    jobs = _make_jobs([(100, 150), (100, 220), (500, 260), (50, 400)])
    entries = _entries(jobs)
    cache = ScheduleCache()
    first = build_singleton_schedule(entries, now=0, cache=cache)
    assert cache.reusable_prefix(
        0, [(job.serial, remaining, ct)
            for job, remaining, ct in entries]) == len(entries)
    second = build_singleton_schedule(entries, now=0, cache=cache)
    assert second == first == build_singleton_schedule(entries, now=0)


def test_cache_invalidate_forces_full_rebuild():
    jobs = _make_jobs([(100, 150), (100, 220)])
    entries = _entries(jobs)
    cache = ScheduleCache()
    build_singleton_schedule(entries, now=0, cache=cache)
    cache.invalidate()
    keys = [(job.serial, remaining, ct) for job, remaining, ct in entries]
    assert cache.reusable_prefix(0, keys) == 0
    assert build_singleton_schedule(entries, now=0, cache=cache) == \
        build_singleton_schedule(entries, now=0)
