"""Equivalence suite: the incremental fast path is a pure optimization.

At a fixed seed, running with the fast path on versus with
``REPRO_NO_FASTPATH=1`` (the from-scratch reference path) must produce
identical observable output: job records, scheduler/mechanism overhead
accounting, AUR/CMR, and the deterministic ``sched.*`` observability
counters.  Only the fast path's own meta-counters (cache, skip and
repair bookkeeping) may differ — they exist only when it is on, and are
excluded from the comparison.
"""

from dataclasses import replace

import pytest

from repro.api import quick_scenario, simulate
from repro.obs import Observer

#: Counters that exist only to report what the fast path did; everything
#: else must match the reference path exactly.
FASTPATH_META_PREFIXES = ("sched.pass.skipped", "sched.cache.",
                          "sched.repair.")

SEEDS = range(50)


def _comparable_counters(result) -> dict:
    counters = (result.obs or {}).get("counters", {})
    return {
        name: value for name, value in counters.items()
        if not name.startswith(FASTPATH_META_PREFIXES)
    }


def _fingerprint(summary) -> dict:
    result = summary.result
    return {
        "policy": summary.policy,
        "load": summary.load,
        "aur": summary.aur,
        "cmr": summary.cmr,
        "records": tuple(result.records),
        "horizon": result.horizon,
        "scheduler_invocations": result.scheduler_invocations,
        "scheduler_overhead_time": result.scheduler_overhead_time,
        "idle_time": result.idle_time,
        "unfinished": result.unfinished,
        "lock_mechanism_time": result.lock_mechanism_time,
        "lockfree_mechanism_time": result.lockfree_mechanism_time,
        "lock_access_commits": result.lock_access_commits,
        "lockfree_access_commits": result.lockfree_access_commits,
        "lockfree_attempts": result.lockfree_attempts,
        "counters": _comparable_counters(result),
        "histograms": (result.obs or {}).get("histograms", {}),
    }


def _run(scenario, monkeypatch, *, reference: bool) -> dict:
    if reference:
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    else:
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    return _fingerprint(simulate(scenario, observer=Observer()))


@pytest.mark.parametrize("sync", ["lockfree", "lockbased"])
@pytest.mark.parametrize("policy", [None, "edf", "llf"])
def test_fastpath_matches_reference(sync, policy, monkeypatch):
    """50 fixed seeds per (sync, policy) cell, overloaded enough that
    RUA actually rejects and (lock-based) builds dependency chains."""
    for seed in SEEDS:
        scenario = replace(
            quick_scenario(n_tasks=6, n_objects=4, sync=sync, load=1.2,
                           horizon_us=30_000, seed=seed),
            policy=policy)
        fast = _run(scenario, monkeypatch, reference=False)
        slow = _run(scenario, monkeypatch, reference=True)
        assert fast == slow, (
            f"fast path diverged from reference at seed={seed}, "
            f"sync={sync}, policy={policy}")


def test_reference_emits_no_fastpath_meta_counters(monkeypatch):
    monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    summary = simulate(quick_scenario(horizon_us=30_000, seed=1),
                       observer=Observer())
    counters = (summary.result.obs or {}).get("counters", {})
    meta = [name for name in counters
            if name.startswith(FASTPATH_META_PREFIXES)]
    assert meta == []


def test_fastpath_actually_engages(monkeypatch):
    """Guard against the equivalence suite silently comparing the
    reference path against itself."""
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    summary = simulate(quick_scenario(horizon_us=30_000, seed=1),
                       observer=Observer())
    counters = (summary.result.obs or {}).get("counters", {})
    assert any(name.startswith(FASTPATH_META_PREFIXES)
               for name in counters)
