"""Tests for deadlock detection and resolution (Section 3.3)."""

from repro.arrivals import UAMSpec
from repro.core.deadlock import detect_deadlock, pick_deadlock_victim
from repro.sim.locks import LockManager
from repro.tasks import Compute, Job, ObjectAccess, TaskSpec
from repro.tuf import StepTUF


def _job(name, objs, critical=1000, height=1.0, compute=100):
    body = tuple(ObjectAccess(obj=o, duration=10) for o in objs) or (
        Compute(compute),)
    task = TaskSpec(name=name, arrival=UAMSpec(1, 1, critical),
                    tuf=StepTUF(critical_time=critical, height=height),
                    body=body)
    return Job(task=task, jid=0, release_time=0)


def _two_cycle():
    locks = LockManager(allow_nesting=True)
    a = _job("A", ["R1", "R2"], height=5.0)
    b = _job("B", ["R2", "R1"], height=1.0)
    locks.try_acquire(a, "R1"); a.holds_lock = "R1"; a.segment_index = 1
    locks.try_acquire(b, "R2"); b.holds_lock = "R2"; b.segment_index = 1
    return locks, a, b


class TestDetection:
    def test_no_jobs_no_deadlock(self):
        assert detect_deadlock([], LockManager()) is None

    def test_chain_without_cycle(self):
        locks = LockManager(allow_nesting=True)
        a = _job("A", ["R1"])
        b = _job("B", ["R1"])
        locks.try_acquire(a, "R1"); a.holds_lock = "R1"
        assert detect_deadlock([a, b], locks) is None

    def test_two_cycle_detected(self):
        locks, a, b = _two_cycle()
        cycle = detect_deadlock([a, b], locks)
        assert cycle is not None
        assert {j.task.name for j in cycle} == {"A", "B"}

    def test_three_cycle_detected(self):
        locks = LockManager(allow_nesting=True)
        a = _job("A", ["R1", "R2"])
        b = _job("B", ["R2", "R3"])
        c = _job("C", ["R3", "R1"])
        for job, obj in ((a, "R1"), (b, "R2"), (c, "R3")):
            locks.try_acquire(job, obj)
            job.holds_lock = obj
            job.segment_index = 1
        cycle = detect_deadlock([a, b, c], locks)
        assert cycle is not None
        assert len(cycle) == 3

    def test_detection_starts_from_any_root(self):
        locks, a, b = _two_cycle()
        outsider = _job("Z", [])
        cycle = detect_deadlock([outsider, a, b], locks)
        assert cycle is not None


class TestResolution:
    def test_victim_is_lowest_pud(self):
        locks, a, b = _two_cycle()
        cycle = detect_deadlock([a, b], locks)
        victim = pick_deadlock_victim(cycle, now=0)
        assert victim is b   # height 1 < height 5, same timings

    def test_tie_broken_by_latest_critical_time(self):
        x = _job("X", [], critical=500, compute=100)
        y = _job("Y", [], critical=900, compute=100)
        # Same PUD shape? chain_pud differs with critical times only via
        # the step cutoff; both complete at 100 so both PUD = 1/100.
        victim = pick_deadlock_victim([x, y], now=0)
        assert victim is y

    def test_empty_cycle_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            pick_deadlock_victim([], now=0)
