"""Tests for Potential Utility Density computation (Section 3.2)."""

import pytest

from repro.arrivals import UAMSpec
from repro.core.pud import chain_pud, completion_estimates
from repro.tasks import Compute, Job, TaskSpec
from repro.tuf import LinearDecreasingTUF, StepTUF


def _job(name, compute, critical, release=0, height=1.0):
    task = TaskSpec(name=name, arrival=UAMSpec(1, 1, critical),
                    tuf=StepTUF(critical_time=critical, height=height),
                    body=(Compute(compute),))
    return Job(task=task, jid=0, release_time=release)


class TestCompletionEstimates:
    def test_cumulative_from_now(self):
        chain = [_job("A", 100, 1000), _job("B", 200, 1000)]
        assert completion_estimates(chain, now=50) == [150, 350]

    def test_partial_progress_shortens_estimate(self):
        job = _job("A", 100, 1000)
        job.advance(40)
        assert completion_estimates([job], now=0) == [60]


class TestChainPUD:
    def test_single_job_step_tuf(self):
        job = _job("A", 100, 1000, height=5.0)
        # Completes at 100, inside the critical time: PUD = 5 / 100.
        assert chain_pud([job], now=0) == pytest.approx(0.05)

    def test_misses_critical_time_yields_zero(self):
        job = _job("A", 2000, 1000)
        assert chain_pud([job], now=0) == 0.0

    def test_chain_sums_utilities_and_times(self):
        a = _job("A", 100, 1000, height=2.0)
        b = _job("B", 100, 1000, height=3.0)
        # Executing a then b: a completes at 100 (util 2), b at 200
        # (util 3); PUD = 5 / 200.
        assert chain_pud([a, b], now=0) == pytest.approx(5 / 200)

    def test_dependent_past_its_critical_time_contributes_zero(self):
        a = _job("A", 900, 1000, height=2.0)
        b = _job("B", 200, 1000, height=3.0)
        # a completes at 900 (util 2), b at 1100 > 1000 (util 0).
        assert chain_pud([a, b], now=0) == pytest.approx(2 / 1100)

    def test_instantaneous_chain_is_infinite(self):
        job = _job("A", 100, 1000)
        job.advance(100)
        assert chain_pud([job], now=0) == float("inf")

    def test_non_step_tuf_uses_shape(self):
        task = TaskSpec(name="L", arrival=UAMSpec(1, 1, 1000),
                        tuf=LinearDecreasingTUF(critical_time=1000),
                        body=(Compute(500),))
        job = Job(task=task, jid=0, release_time=0)
        # Completes at 500: utility 0.5; PUD = 0.5/500.
        assert chain_pud([job], now=0) == pytest.approx(0.001)

    def test_release_offset_matters(self):
        job = _job("A", 100, 1000, release=400)
        # At now=450 the job completes at 550, sojourn 150 < 1000.
        assert chain_pud([job], now=450) == pytest.approx(1 / 100)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            chain_pud([], now=0)
