"""Smoke tests: every figure function runs end-to-end (tiny settings)
and produces renderable, sane output."""

import pytest

from repro.experiments import figures
from repro.units import MS


pytestmark = pytest.mark.slow  # deselect with -m "not slow" for quick runs


class TestFigureSmoke:
    def test_fig8(self):
        result = figures.fig8(repeats=2, horizon=40 * MS, objects=(1, 5))
        text = result.render()
        assert "Figure 8" in text
        r = result.series[0]
        s = result.series[1]
        # Headline shape: r >> s at every point.
        for r_est, s_est in zip(r.estimates, s.estimates):
            assert r_est.mean > s_est.mean

    def test_fig9(self):
        result = figures.fig9(repeats=1, exec_times_us=(30, 300),
                              windows_per_run=15, bisect_iterations=3)
        by_label = {s.label: s for s in result.series}
        lockbased = by_label["CML lockbased"]
        ideal = by_label["CML ideal"]
        # CML is non-decreasing in execution time for the costly
        # scheduler and never exceeds ideal by more than noise.
        assert lockbased.means()[0] <= lockbased.means()[-1] + 0.05
        assert all(lb <= i + 0.1 for lb, i in
                   zip(lockbased.means(), ideal.means()))

    @pytest.mark.parametrize("fig,regime", [
        (figures.fig10, "under"), (figures.fig11, "under"),
        (figures.fig12, "over"), (figures.fig13, "over"),
    ])
    def test_fig10_to_13(self, fig, regime):
        result = fig(repeats=2, horizon=40 * MS, objects=(2, 8))
        by_label = {s.label: s for s in result.series}
        lf_aur = by_label["AUR lock-free"].means()
        lb_aur = by_label["AUR lock-based"].means()
        if regime == "under":
            assert all(v > 0.9 for v in lf_aur)
        else:
            # Overload: lock-free strictly dominates lock-based at the
            # high-contention end.
            assert lf_aur[-1] > lb_aur[-1]

    def test_fig14(self):
        result = figures.fig14(repeats=2, horizon=40 * MS, readers=(2, 6))
        by_label = {s.label: s for s in result.series}
        assert by_label["AUR lock-free"].means()[-1] >= \
            by_label["AUR lock-based"].means()[-1] - 0.05

    def test_thm2_validation(self):
        result = figures.thm2_validation(repeats=2, horizon=100 * MS)
        measured, bound = result.series
        for m, b in zip(measured.estimates, bound.estimates):
            assert m.mean <= b.mean

    def test_lemma45_validation(self):
        result = figures.lemma45_validation(repeats=2, horizon=100 * MS)
        # Series come in (lower, measured, upper) triples.
        for i in (0, 3):
            lower = result.series[i].estimates[0].mean
            measured = result.series[i + 1].estimates[0].mean
            upper = result.series[i + 2].estimates[0].mean
            assert lower - 0.02 <= measured <= upper + 0.02
