"""Tests for the CML (Critical-time-Miss Load) bisection."""

import random

from repro.experiments.cml import measure_cml
from repro.experiments.workloads import paper_taskset
from repro.units import MS, US


def _builder(avg_exec=300 * US, accesses=0):
    def build(rng: random.Random, load: float):
        return paper_taskset(rng, n_tasks=5, avg_exec=avg_exec,
                             accesses_per_job=accesses,
                             n_objects=5 if accesses else 0,
                             target_load=load)
    return build


class TestMeasureCML:
    def test_ideal_scheduler_reaches_high_cml(self):
        cml = measure_cml(_builder(), "ideal", horizon=100 * MS,
                          seeds=[1], iterations=5)
        assert cml > 0.85

    def test_lockbased_cml_not_above_ideal(self):
        seeds = [1]
        ideal = measure_cml(_builder(accesses=2), "ideal",
                            horizon=60 * MS, seeds=seeds, iterations=4)
        lockbased = measure_cml(_builder(accesses=2), "lockbased",
                                horizon=60 * MS, seeds=seeds, iterations=4)
        assert lockbased <= ideal + 0.05

    def test_short_jobs_lower_cml_for_costly_scheduler(self):
        # The scheduler-overhead effect of Figure 9: with 20us jobs the
        # lock-based scheduler misses earlier than with 500us jobs.
        seeds = [2]
        short = measure_cml(_builder(avg_exec=20 * US, accesses=2),
                            "lockbased", horizon=8 * MS, seeds=seeds,
                            iterations=4)
        long = measure_cml(_builder(avg_exec=500 * US, accesses=2),
                           "lockbased", horizon=120 * MS, seeds=seeds,
                           iterations=4)
        assert short < long

    def test_returns_low_when_everything_misses(self):
        # 5us jobs under the costly lock-based scheduler: even tiny loads
        # miss; the probe floor is returned.
        cml = measure_cml(_builder(avg_exec=5 * US, accesses=2),
                          "lockbased", horizon=4 * MS, seeds=[3],
                          iterations=3, low=0.02)
        assert cml <= 0.1
