"""Tests for the paper workload builders."""

import random

import pytest

from repro.experiments.workloads import (
    paper_taskset,
    readers_taskset,
    scaled_paper_taskset,
)
from repro.tasks import approximate_load
from repro.tasks.segments import AccessKind, ObjectAccess
from repro.tuf import ParabolicTUF, StepTUF


class TestPaperTaskset:
    def test_defaults_ten_tasks(self):
        tasks = paper_taskset(random.Random(0))
        assert len(tasks) == 10

    def test_load_near_target(self):
        tasks = paper_taskset(random.Random(1), target_load=0.4)
        assert approximate_load(tasks) == pytest.approx(0.4, rel=0.02)

    def test_scaled_builder_pins_load(self):
        tasks = scaled_paper_taskset(random.Random(1), 1.1)
        assert approximate_load(tasks) == pytest.approx(1.1, rel=0.02)

    def test_c_le_w_holds(self):
        for task in paper_taskset(random.Random(2)):
            assert task.critical_time <= task.arrival.window

    def test_accesses_per_job(self):
        tasks = paper_taskset(random.Random(3), accesses_per_job=4)
        for task in tasks:
            assert task.access_count == 4

    def test_accesses_are_distinct_objects(self):
        tasks = paper_taskset(random.Random(3), accesses_per_job=5)
        for task in tasks:
            objs = [s.obj for s in task.body
                    if isinstance(s, ObjectAccess)]
            assert len(set(objs)) == 5

    def test_rejects_more_accesses_than_objects(self):
        with pytest.raises(ValueError):
            paper_taskset(random.Random(0), n_objects=3, accesses_per_job=4)

    def test_step_class_is_all_steps(self):
        tasks = paper_taskset(random.Random(4), tuf_class="step")
        assert all(isinstance(t.tuf, StepTUF) for t in tasks)

    def test_hetero_class_mixes_shapes(self):
        tasks = paper_taskset(random.Random(4), tuf_class="hetero")
        assert any(isinstance(t.tuf, ParabolicTUF) for t in tasks)

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            paper_taskset(random.Random(0), tuf_class="spiky")


class TestReadersTaskset:
    def test_reader_writer_split(self):
        tasks = readers_taskset(random.Random(0), n_readers=5, n_writers=2)
        assert len(tasks) == 7
        writers = [t for t in tasks if t.name.startswith("W")]
        readers = [t for t in tasks if t.name.startswith("R")]
        assert len(writers) == 2
        assert len(readers) == 5
        for task in readers:
            kinds = {s.kind for s in task.body
                     if isinstance(s, ObjectAccess)}
            assert kinds == {AccessKind.READ}

    def test_load_scales_with_tasks(self):
        light = readers_taskset(random.Random(1), n_readers=1)
        heavy = readers_taskset(random.Random(1), n_readers=8)
        assert approximate_load(heavy) > approximate_load(light)

    def test_explicit_load_override(self):
        tasks = readers_taskset(random.Random(2), n_readers=4,
                                target_load=0.5)
        assert approximate_load(tasks) == pytest.approx(0.5, rel=0.02)
