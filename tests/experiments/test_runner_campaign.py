"""Regression pin for the run_many seed-derivation contract.

Trial ``k`` consumes ``random.Random(seeds[k])`` and nothing else — not
shared-RNG draw order, not execution order, not worker identity.  That
contract (DESIGN.md §9) is what makes serial, parallel and resumed
campaigns interchangeable; these tests pin it against the real
simulation stack.
"""

from repro.campaign import CampaignConfig
from repro.experiments.runner import run_many, simulation_trial
from repro.experiments.workloads import BuilderSpec
from repro.units import MS

BUILD = BuilderSpec.make("paper", target_load=0.8)
SEEDS = [900, 901, 902]
HORIZON = 20 * MS


def _fingerprint(result):
    return (result.aur, result.cmr, result.total_retries,
            result.total_blockings, len(result.records))


class TestSeedDerivation:
    def test_each_trial_depends_only_on_its_own_seed(self):
        batch = run_many(BUILD, "lockfree", HORIZON, SEEDS)
        solo = [simulation_trial(BUILD, "lockfree", HORIZON, seed)
                for seed in SEEDS]
        assert [_fingerprint(r) for r in batch] == \
               [_fingerprint(r) for r in solo]

    def test_trial_is_insensitive_to_batch_position(self):
        forward = run_many(BUILD, "lockfree", HORIZON, SEEDS)
        backward = run_many(BUILD, "lockfree", HORIZON, SEEDS[::-1])
        assert [_fingerprint(r) for r in forward] == \
               [_fingerprint(r) for r in backward[::-1]]


class TestSerialParallelParity:
    def test_engine_serial_matches_plain_serial(self):
        plain = run_many(BUILD, "lockfree", HORIZON, SEEDS)
        engined = run_many(BUILD, "lockfree", HORIZON, SEEDS,
                           campaign=CampaignConfig(workers=1))
        assert [_fingerprint(r) for r in plain] == \
               [_fingerprint(r) for r in engined]

    def test_parallel_matches_serial(self):
        plain = run_many(BUILD, "lockfree", HORIZON, SEEDS)
        parallel = run_many(BUILD, "lockfree", HORIZON, SEEDS,
                            campaign=CampaignConfig(workers=3))
        assert [_fingerprint(r) for r in plain] == \
               [_fingerprint(r) for r in parallel]

    def test_parity_holds_for_bursty_lockbased_campaigns(self):
        kwargs = dict(arrival_style="bursty")
        plain = run_many(BUILD, "lockbased", HORIZON, SEEDS, **kwargs)
        parallel = run_many(BUILD, "lockbased", HORIZON, SEEDS,
                            campaign=CampaignConfig(workers=2), **kwargs)
        assert [_fingerprint(r) for r in plain] == \
               [_fingerprint(r) for r in parallel]
