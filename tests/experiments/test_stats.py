"""Tests for statistics helpers."""

import pytest

from repro.experiments.stats import Estimate, Series, estimate


class TestEstimate:
    def test_single_value_has_zero_ci(self):
        est = estimate([5.0])
        assert est.mean == 5.0
        assert est.ci == 0.0
        assert est.n == 1

    def test_mean_of_sample(self):
        est = estimate([1.0, 2.0, 3.0])
        assert est.mean == pytest.approx(2.0)
        assert est.n == 3

    def test_ci_shrinks_with_sample_size(self):
        narrow = estimate([1.0, 2.0] * 20)
        wide = estimate([1.0, 2.0])
        assert narrow.ci < wide.ci

    def test_constant_sample_zero_ci(self):
        assert estimate([4.2] * 5).ci == 0.0

    def test_low_high(self):
        est = Estimate(mean=10.0, ci=2.0, n=5)
        assert est.low == 8.0
        assert est.high == 12.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            estimate([])

    def test_str_formats(self):
        assert "±" in str(estimate([1.0, 2.0]))


class TestSeries:
    def test_add_and_lookup(self):
        series = Series(label="aur")
        series.add(1, [0.5, 0.7])
        series.add(2, [0.9])
        assert series.xs == [1, 2]
        assert series.means() == [pytest.approx(0.6), 0.9]
        assert series.at(2).mean == 0.9
