"""Tests for ASCII figure reporting."""

import pytest

from repro.experiments.report import format_scalar_rows, format_series_table
from repro.experiments.stats import Series


def _series(label, xs, means):
    series = Series(label=label)
    for x, mean in zip(xs, means):
        series.add(x, [mean])
    return series


class TestSeriesTable:
    def test_contains_all_labels_and_values(self):
        a = _series("alpha", [1, 2], [0.5, 0.6])
        b = _series("beta", [1, 2], [0.7, 0.8])
        text = format_series_table("My Figure", "x", [a, b])
        assert "My Figure" in text
        assert "alpha" in text and "beta" in text
        assert "0.5000" in text and "0.8000" in text

    def test_mismatched_xs_rejected(self):
        a = _series("alpha", [1, 2], [0.5, 0.6])
        b = _series("beta", [1, 3], [0.7, 0.8])
        with pytest.raises(ValueError, match="mismatched"):
            format_series_table("t", "x", [a, b])

    def test_empty_series_list(self):
        text = format_series_table("t", "x", [])
        assert "t" in text


class TestScalarRows:
    def test_alignment(self):
        text = format_scalar_rows("Facts", [("key", "value"),
                                            ("longer-key", "v2")])
        assert "Facts" in text
        assert "longer-key  v2" in text
