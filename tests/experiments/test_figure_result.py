"""Tests for the FigureResult container and its rendering."""

from repro.experiments.figures import FigureResult
from repro.experiments.stats import Series


def _series(label, points):
    series = Series(label=label)
    for x, value in points:
        series.add(x, [value])
    return series


class TestFigureResult:
    def test_render_includes_everything(self):
        result = FigureResult(
            figure="Figure X",
            title="Demo",
            x_label="n",
            series=[_series("alpha", [(1, 0.5), (2, 0.7)])],
            notes="Shape note.",
        )
        text = result.render()
        assert "Figure X: Demo" in text
        assert "alpha" in text
        assert "Shape note." in text

    def test_render_without_notes(self):
        result = FigureResult(figure="F", title="T", x_label="x",
                              series=[_series("s", [(1, 1.0)])])
        assert not result.render().endswith("\n")

    def test_empty_series_renders_header_only(self):
        result = FigureResult(figure="F", title="T", x_label="x")
        assert "F: T" in result.render()
