"""Shared builders for scenario tests.

All times in nanosecond ticks; helpers default to µs/ms magnitudes so
scenarios read like the paper's workloads.
"""

from __future__ import annotations

from repro.arrivals import UAMSpec
from repro.core.edf import EDF
from repro.core.rua_lockbased import LockBasedRUA
from repro.core.rua_lockfree import LockFreeRUA
from repro.sim.kernel import Kernel, SimulationConfig, SyncMode
from repro.sim.objects import RetryPolicy
from repro.sim.overheads import KernelCosts, ZeroCost
from repro.tasks import Compute, ObjectAccess, TaskSpec
from repro.tasks.segments import AccessKind
from repro.tuf import StepTUF
from repro.tuf.base import TimeUtilityFunction
from repro.units import MS, US


def simple_task(name: str, critical_us: int, compute_us: int,
                window_us: int | None = None,
                accesses: list[tuple[int, int]] | None = None,
                tuf: TimeUtilityFunction | None = None,
                kind: AccessKind = AccessKind.WRITE,
                handler_us: int = 0) -> TaskSpec:
    """A task with compute first, then the listed (object, duration_us)
    accesses, then a tail compute tick."""
    window = (window_us or critical_us) * US
    body: list = [Compute(compute_us * US)]
    for obj, dur_us in accesses or []:
        body.append(ObjectAccess(obj=obj, duration=dur_us * US, kind=kind))
    return TaskSpec(
        name=name,
        arrival=UAMSpec(1, 1, window),
        tuf=tuf or StepTUF(critical_time=critical_us * US),
        body=tuple(body),
        abort_handler_time=handler_us * US,
    )


def run_scenario(tasks, traces_us, sync=SyncMode.NONE, policy=None,
                 horizon_us=100_000, costs=None, trace=True,
                 retry_policy=RetryPolicy.ON_CONFLICT,
                 allow_nesting=False):
    """Run a hand-built scenario with zero-cost scheduling by default, so
    assertions about timing are exact."""
    if policy is None:
        policy = EDF(cost_model=ZeroCost())
    config = SimulationConfig(
        tasks=tasks,
        arrival_traces=[[t * US for t in trace] for trace in traces_us],
        policy=policy,
        horizon=horizon_us * US,
        sync=sync,
        costs=costs or KernelCosts.ideal(),
        retry_policy=retry_policy,
        allow_nesting=allow_nesting,
        trace=trace,
    )
    kernel = Kernel(config)
    result = kernel.run()
    return kernel, result


def random_workload(rng, horizon_us: int = 20_000, kind: str | None = None):
    """Seeded random workload for property-based tests.

    Draws a small task set (paper step/hetero classes or the Theorem 2
    interference set), then arrival traces over the horizon, all from
    ``rng`` — so a single seed pins the entire scenario.  Returns
    ``(tasks, traces, horizon)`` in nanoseconds, ready for
    :class:`~repro.sim.kernel.SimulationConfig`.
    """
    from repro.arrivals.generators import generator_for
    from repro.experiments.workloads import (
        interference_taskset,
        paper_taskset,
    )

    kind = kind or rng.choice(("step", "hetero", "interference"))
    if kind == "interference":
        tasks = interference_taskset(
            rng, n_victims=2, n_interferers=2, n_objects=2,
            max_arrivals=rng.randint(1, 2))
    else:
        n_objects = rng.randint(2, 4)
        tasks = paper_taskset(
            rng,
            n_tasks=rng.randint(3, 6),
            n_objects=n_objects,
            accesses_per_job=rng.randint(1, min(2, n_objects)),
            avg_exec=rng.randint(50, 200) * US,
            target_load=rng.uniform(0.4, 1.2),
            tuf_class=kind,
            max_arrivals=rng.randint(1, 2),
            access_duration=rng.choice((2, 20, 40)) * US,
        )
    horizon = horizon_us * US
    traces = [
        generator_for(task.arrival, "uniform").generate(rng, horizon)
        for task in tasks
    ]
    return tasks, traces, horizon


def zero_cost_policy(kind: str):
    """Policies with zero simulated pass cost (timing-exact tests)."""
    if kind == "edf":
        return EDF(cost_model=ZeroCost())
    if kind == "rua-lockfree":
        return LockFreeRUA(cost_model=ZeroCost())
    if kind == "rua-lockbased":
        return LockBasedRUA(cost_model=ZeroCost())
    raise ValueError(kind)
