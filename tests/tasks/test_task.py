"""Tests for the static task specification."""

import pytest

from repro.arrivals import UAMSpec
from repro.tasks import Compute, ObjectAccess, TaskSpec
from repro.tuf import StepTUF


def _task(**overrides):
    fields = dict(
        name="T",
        arrival=UAMSpec(1, 1, 1000),
        tuf=StepTUF(critical_time=800),
        body=(Compute(100), ObjectAccess(obj=0, duration=10), Compute(50)),
    )
    fields.update(overrides)
    return TaskSpec(**fields)


class TestDerivedFields:
    def test_compute_time(self):
        assert _task().compute_time == 150

    def test_access_count_and_time(self):
        task = _task()
        assert task.access_count == 1
        assert task.access_time == 10

    def test_execution_estimate(self):
        assert _task().execution_estimate == 160

    def test_critical_time_from_tuf(self):
        assert _task().critical_time == 800

    def test_accessed_objects(self):
        assert _task().accessed_objects == frozenset({0})

    def test_utilization_bound(self):
        task = _task(arrival=UAMSpec(1, 2, 1000))
        assert task.utilization_bound() == pytest.approx(2 * 160 / 1000)


class TestValidation:
    def test_rejects_critical_time_beyond_window(self):
        # The model requires C_i <= W_i (Section 2).
        with pytest.raises(ValueError, match="C_i <= W_i"):
            _task(arrival=UAMSpec(1, 1, 700))

    def test_accepts_critical_time_equal_to_window(self):
        _task(arrival=UAMSpec(1, 1, 800))

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            _task(name="")

    def test_rejects_empty_body(self):
        with pytest.raises(ValueError):
            _task(body=())

    def test_rejects_negative_handler_time(self):
        with pytest.raises(ValueError):
            _task(abort_handler_time=-1)
