"""Tests for job runtime state."""

import pytest

from repro.arrivals import UAMSpec
from repro.tasks import Compute, Job, JobState, ObjectAccess, TaskSpec
from repro.tuf import StepTUF


def _job(body=None, release=1000):
    task = TaskSpec(
        name="T",
        arrival=UAMSpec(1, 1, 10_000),
        tuf=StepTUF(critical_time=5_000),
        body=body or (Compute(100), ObjectAccess(obj=0, duration=50),
                      Compute(30)),
    )
    return Job(task=task, jid=0, release_time=release)


class TestBasics:
    def test_name_combines_task_and_jid(self):
        assert _job().name == "T#0"

    def test_absolute_critical_time(self):
        assert _job(release=1000).critical_time_abs == 6_000

    def test_fresh_job_is_ready_and_live(self):
        job = _job()
        assert job.state is JobState.READY
        assert job.is_live

    def test_completed_is_not_live(self):
        job = _job()
        job.state = JobState.COMPLETED
        assert not job.is_live

    def test_jobs_hash_by_identity(self):
        a, b = _job(), _job()
        assert a != b
        assert len({a, b}) == 2


class TestProgress:
    def test_remaining_time_counts_all_segments(self):
        assert _job().remaining_time() == 180

    def test_advance_reduces_remaining(self):
        job = _job()
        job.advance(60)
        assert job.remaining_time() == 120
        assert job.segment_remaining() == 40

    def test_advance_cannot_cross_segment_boundary(self):
        job = _job()
        with pytest.raises(RuntimeError, match="overruns"):
            job.advance(101)

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            _job().advance(-1)

    def test_finish_segment_requires_completion(self):
        job = _job()
        job.advance(99)
        with pytest.raises(RuntimeError, match="incomplete"):
            job.finish_segment()

    def test_finish_segment_moves_on(self):
        job = _job()
        job.advance(100)
        job.finish_segment()
        assert isinstance(job.current_segment, ObjectAccess)
        assert job.in_access

    def test_finished_job_has_no_segment(self):
        job = _job(body=(Compute(10),))
        job.advance(10)
        job.finish_segment()
        assert job.current_segment is None
        assert job.remaining_time() == 0

    def test_advancing_finished_job_raises(self):
        job = _job(body=(Compute(10),))
        job.advance(10)
        job.finish_segment()
        with pytest.raises(RuntimeError, match="finished"):
            job.advance(1)


class TestRetry:
    def test_restart_access_discards_progress(self):
        job = _job()
        job.advance(100)
        job.finish_segment()     # now in the access segment
        job.advance(30)
        wasted = job.restart_access()
        assert wasted == 30
        assert job.segment_progress == 0
        assert job.retries == 1

    def test_restart_outside_access_raises(self):
        job = _job()
        with pytest.raises(RuntimeError, match="outside an access"):
            job.restart_access()

    def test_restart_clears_dirty_flag(self):
        job = _job()
        job.advance(100)
        job.finish_segment()
        job.access_dirty = True
        job.restart_access()
        assert not job.access_dirty


class TestSojourn:
    def test_incomplete_job_has_no_sojourn(self):
        assert _job().sojourn_time() is None

    def test_sojourn_is_completion_minus_release(self):
        job = _job(release=1000)
        job.completion_time = 3_500
        assert job.sojourn_time() == 2_500
