"""Tests for job body segments."""

import pytest

from repro.tasks.segments import (
    AccessKind,
    Compute,
    ObjectAccess,
    access_count,
    access_time,
    accessed_objects,
    compute_time,
)


class TestCompute:
    def test_holds_duration(self):
        assert Compute(100).duration == 100

    def test_zero_duration_allowed(self):
        assert Compute(0).duration == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Compute(-1)


class TestObjectAccess:
    def test_defaults_to_write(self):
        assert ObjectAccess(obj=0, duration=5).kind is AccessKind.WRITE

    def test_read_kind(self):
        assert ObjectAccess(obj="q", duration=5,
                            kind=AccessKind.READ).kind is AccessKind.READ

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            ObjectAccess(obj=0, duration=0)


class TestAggregates:
    body = (Compute(100), ObjectAccess(obj=1, duration=10),
            Compute(50), ObjectAccess(obj=2, duration=20),
            ObjectAccess(obj=1, duration=5))

    def test_compute_time(self):
        assert compute_time(self.body) == 150

    def test_access_count(self):
        assert access_count(self.body) == 3

    def test_access_time(self):
        assert access_time(self.body) == 35

    def test_accessed_objects_deduplicates(self):
        assert accessed_objects(self.body) == frozenset({1, 2})

    def test_empty_body_aggregates(self):
        assert compute_time(()) == 0
        assert access_count(()) == 0
        assert accessed_objects(()) == frozenset()
