"""Tests for task-set builders."""

import random

import pytest

from repro.arrivals import UAMSpec, check_uam, generator_for
from repro.tasks import (
    Compute,
    ObjectAccess,
    approximate_load,
    make_task,
    random_taskset,
    scale_to_load,
)
from repro.tuf import StepTUF


def _arrival(window=100_000):
    return UAMSpec(1, 1, window)


class TestMakeTask:
    def test_spreads_accesses_through_body(self):
        task = make_task("T", _arrival(), StepTUF(50_000), compute=300,
                         accesses=[(0, 10), (1, 10)])
        kinds = [type(s).__name__ for s in task.body]
        assert kinds == ["Compute", "ObjectAccess", "Compute",
                         "ObjectAccess", "Compute"]
        assert task.compute_time == 300
        assert task.access_count == 2

    def test_without_accesses_single_compute(self):
        task = make_task("T", _arrival(), StepTUF(50_000), compute=100)
        assert task.body == (Compute(100),)

    def test_compute_split_preserves_total(self):
        task = make_task("T", _arrival(), StepTUF(50_000), compute=301,
                         accesses=[(0, 5), (1, 5), (2, 5)])
        assert task.compute_time == 301


class TestApproximateLoad:
    def test_matches_definition(self):
        tasks = [
            make_task("A", _arrival(), StepTUF(10_000), compute=1_000),
            make_task("B", _arrival(), StepTUF(20_000), compute=4_000),
        ]
        assert approximate_load(tasks) == pytest.approx(0.1 + 0.2)

    def test_excludes_access_time(self):
        with_access = make_task("A", _arrival(), StepTUF(10_000),
                                compute=1_000, accesses=[(0, 500)])
        without = make_task("A", _arrival(), StepTUF(10_000), compute=1_000)
        assert approximate_load([with_access]) == approximate_load([without])


class TestScaleToLoad:
    def test_hits_target(self):
        tasks = [
            make_task("A", _arrival(), StepTUF(10_000), compute=1_000),
            make_task("B", _arrival(), StepTUF(20_000), compute=2_000),
        ]
        scaled = scale_to_load(tasks, 0.8)
        assert approximate_load(scaled) == pytest.approx(0.8, rel=0.01)

    def test_preserves_access_structure(self):
        tasks = [make_task("A", _arrival(), StepTUF(10_000), compute=1_000,
                           accesses=[(3, 77)])]
        scaled = scale_to_load(tasks, 0.5)
        accesses = [s for s in scaled[0].body if isinstance(s, ObjectAccess)]
        assert accesses == [ObjectAccess(obj=3, duration=77)]

    def test_rejects_nonpositive_target(self):
        tasks = [make_task("A", _arrival(), StepTUF(10_000), compute=100)]
        with pytest.raises(ValueError):
            scale_to_load(tasks, 0.0)


class TestRandomTaskset:
    def test_reproducible(self):
        a = random_taskset(random.Random(1), n_tasks=5)
        b = random_taskset(random.Random(1), n_tasks=5)
        assert [t.name for t in a] == [t.name for t in b]
        assert [t.compute_time for t in a] == [t.compute_time for t in b]

    def test_respects_c_le_w(self):
        for task in random_taskset(random.Random(2), n_tasks=20):
            assert task.critical_time <= task.arrival.window

    def test_target_load(self):
        tasks = random_taskset(random.Random(3), n_tasks=8, target_load=1.1)
        assert approximate_load(tasks) == pytest.approx(1.1, rel=0.05)

    def test_tuf_classes(self):
        step = random_taskset(random.Random(4), n_tasks=3, tuf_class="step")
        hetero = random_taskset(random.Random(4), n_tasks=3,
                                tuf_class="hetero")
        assert len(step) == len(hetero) == 3
        with pytest.raises(ValueError):
            random_taskset(random.Random(4), tuf_class="wavy")

    def test_generated_arrivals_conform(self):
        tasks = random_taskset(random.Random(5), n_tasks=4)
        rng = random.Random(6)
        for task in tasks:
            trace = generator_for(task.arrival, "uniform").generate(
                rng, task.arrival.window * 10)
            assert check_uam(trace, task.arrival,
                             horizon=task.arrival.window * 10) == []
