"""Overhead guard: checkpointing machinery must be free when disabled.

Mirrors the DESIGN.md §10 observability guard: with ``checkpoints=None``
(the default) the kernel's checkpoint hook is a single attribute test
per event, and an armed-but-idle policy (interval larger than the run)
costs only an integer compare.  Both must stay within 5 % of the plain
min-of-N baseline, interleaved so machine drift hits every arm equally.
"""

import time

from repro.api import quick_scenario, simulate
from repro.sim.checkpoint import CheckpointPolicy

SEED = 99
ROUNDS = 5
#: Timer-granularity slack; see tests/obs/test_overhead.py.
SLACK_S = 0.002


def _reference_run(policy=None):
    # ~60 ms wall: large enough for a 5 % relative gate on min-of-N.
    scenario = quick_scenario(n_tasks=4, n_objects=3, sync="lockfree",
                              load=1.0, horizon_us=200_000, seed=SEED)
    sink = [].append if policy is not None else None
    return simulate(scenario, checkpoints=policy, checkpoint_sink=sink)


def test_disabled_checkpointing_within_5_percent_of_baseline():
    baseline = float("inf")
    disabled = float("inf")
    armed_idle = float("inf")
    never = CheckpointPolicy(every_events=10**9)
    for _ in range(ROUNDS):
        start = time.perf_counter()
        _reference_run(policy=None)
        baseline = min(baseline, time.perf_counter() - start)
        start = time.perf_counter()
        _reference_run(policy=None)
        disabled = min(disabled, time.perf_counter() - start)
        start = time.perf_counter()
        _reference_run(policy=never)
        armed_idle = min(armed_idle, time.perf_counter() - start)
    assert disabled <= baseline * 1.05 + SLACK_S, (
        f"checkpoint-disabled run {disabled:.4f}s exceeds baseline "
        f"{baseline:.4f}s by more than 5%")
    assert armed_idle <= baseline * 1.05 + SLACK_S, (
        f"armed-but-idle policy run {armed_idle:.4f}s exceeds baseline "
        f"{baseline:.4f}s by more than 5%")
