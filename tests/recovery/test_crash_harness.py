"""The crash harness: real ``kill -9`` at randomized points.

Two end-to-end recovery stories, each against live subprocesses:

* **mid-campaign** — a checkpointed campaign process is SIGKILLed after
  a randomized number of trials have been journaled; rerunning with
  ``--resume`` semantics must produce every trial's value exactly once
  (zero lost, zero duplicated — journaled trials are replayed from
  disk, interrupted ones resume or rerun).
* **mid-serve** — a serve process journaling admitted requests to the
  write-ahead log is SIGKILLed with work queued and in flight; the warm
  restart must recover every admitted request (zero lost), serve it
  exactly once (zero duplicated — the content-addressed cache is the
  commit record), answer no 5xx, and return payloads byte-identical to
  a local ``simulate()``.
"""

import json
import os
import pathlib
import random
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

HERE = pathlib.Path(__file__).parent
REPO = HERE.parent.parent


def _env():
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _wait_for(predicate, timeout_s: float, message: str):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out waiting for {message}")


# ----------------------------------------------------------------------
# Mid-campaign
# ----------------------------------------------------------------------

N_TRIALS = 6
SEED = 1200


def _campaign_cmd(journal, ckdir, resume):
    return [sys.executable, str(HERE / "_campaign_proc.py"),
            str(journal), str(ckdir), str(N_TRIALS), str(SEED),
            "resume" if resume else "fresh"]


def _journaled_ok(journal) -> int:
    try:
        lines = pathlib.Path(journal).read_text().splitlines()
    except FileNotFoundError:
        return 0
    count = 0
    for line in lines:
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if entry.get("type") == "trial" and entry.get("ok"):
            count += 1
    return count


@pytest.mark.parametrize("kill_after", [1, 3])
def test_campaign_sigkill_and_resume(tmp_path, kill_after):
    journal = tmp_path / "journal.jsonl"
    ckdir = tmp_path / "checkpoints"

    # Expected values: one uninterrupted run in its own directories.
    clean = subprocess.run(
        _campaign_cmd(tmp_path / "clean.jsonl", tmp_path / "clean-ck",
                      resume=False),
        env=_env(), capture_output=True, text=True, timeout=300)
    assert clean.returncode == 0, clean.stderr
    expected = json.loads(clean.stdout)["values"]
    assert len(expected) == N_TRIALS

    # Round 1: kill -9 once `kill_after` trials are journaled, at a
    # jittered moment inside the next trial's execution.
    proc = subprocess.Popen(_campaign_cmd(journal, ckdir, resume=False),
                            env=_env(), stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE)
    try:
        _wait_for(lambda: _journaled_ok(journal) >= kill_after,
                  timeout_s=240, message=f"{kill_after} journaled trials")
        time.sleep(random.Random(SEED + kill_after).uniform(0.0, 0.25))
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=30)
    assert proc.returncode == -signal.SIGKILL
    survived = _journaled_ok(journal)
    assert survived < N_TRIALS, "kill landed after the campaign finished"

    # Round 2: resume.  Zero lost: every trial value present and equal
    # to the uninterrupted run.  Zero duplicated: every trial journaled
    # before the kill is served from the journal, not recomputed.
    rerun = subprocess.run(_campaign_cmd(journal, ckdir, resume=True),
                           env=_env(), capture_output=True, text=True,
                           timeout=300)
    assert rerun.returncode == 0, rerun.stderr
    report = json.loads(rerun.stdout)
    assert report["ok"]
    assert json.dumps(report["values"], sort_keys=True) == \
        json.dumps(expected, sort_keys=True)
    assert report["from_journal"] == survived
    # The journal holds exactly one successful record per trial index.
    by_index: dict[int, int] = {}
    for line in journal.read_text().splitlines():
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if entry.get("type") == "trial" and entry.get("ok"):
            by_index[entry["index"]] = by_index.get(entry["index"], 0) + 1
    assert sorted(by_index) == list(range(N_TRIALS))
    assert all(count == 1 for count in by_index.values()), by_index


# ----------------------------------------------------------------------
# Mid-serve
# ----------------------------------------------------------------------


def _serve_scenarios(count):
    from repro.experiments.workloads import BuilderSpec
    from repro.scenario import Scenario

    # ~0.9s wall per request: the kill is guaranteed to land with work
    # still queued and in flight behind the two dispatchers.
    return [Scenario(workload=BuilderSpec.make("paper", n_tasks=4),
                     sync="lockfree" if index % 2 == 0 else "lockbased",
                     seed=2000 + index, horizon=2_000_000_000)
            for index in range(count)]


def _post(url, scenario, timeout=60.0):
    body = json.dumps({"scenario": scenario.to_dict(),
                       "deadline_s": 120.0}).encode()
    request = urllib.request.Request(
        url + "/simulate", data=body,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _start_server(cache_dir, wal, port=0):
    proc = subprocess.Popen(
        [sys.executable, str(HERE / "_serve_proc.py"),
         str(cache_dir), str(wal), str(port)],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True)
    url = proc.stdout.readline().strip()
    assert url.startswith("http"), proc.stderr.read()
    return proc, url


def _wal_digests(wal) -> set:
    digests = set()
    try:
        lines = pathlib.Path(wal).read_text().splitlines()
    except FileNotFoundError:
        return digests
    for line in lines:
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if entry.get("type") == "request":
            digests.add(entry["digest"])
    return digests


def test_serve_sigkill_warm_restart(tmp_path):
    import threading

    from repro.api import simulate
    from repro.serve import canonical_payload_json, result_payload

    cache_dir = tmp_path / "cache"
    wal = tmp_path / "requests.wal"
    scenarios = _serve_scenarios(6)

    proc, url = _start_server(cache_dir, wal)
    threads = []
    try:
        # Flood more work than the two dispatchers can finish, so the
        # kill lands with requests both in flight and queued.
        for scenario in scenarios:
            thread = threading.Thread(target=lambda s=scenario:
                                      _post(url, s), daemon=True)
            thread.start()
            threads.append(thread)
        _wait_for(lambda: len(_wal_digests(wal)) == len(scenarios),
                  timeout_s=60, message="all requests journaled")
        time.sleep(random.Random(SEED).uniform(0.0, 0.2))
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    admitted = _wal_digests(wal)
    assert admitted == {s.digest() for s in scenarios}

    # Warm restart against the same cache + WAL, on the SAME port: the
    # SIGKILLed server's orphaned pool workers must not hold the
    # inherited listener against the rebind.
    port = int(url.rsplit(":", 1)[1])
    proc, url = _start_server(cache_dir, wal, port=port)
    try:
        def recovered():
            try:
                with urllib.request.urlopen(url + "/healthz",
                                            timeout=5) as response:
                    health = json.loads(response.read())
            except (urllib.error.URLError, OSError):
                return False
            return health["recovery"]["complete"] and \
                health["recovery"]["recovered"] > 0

        _wait_for(recovered, timeout_s=240, message="recovery complete")

        # Zero lost, zero duplicated, zero 5xx: every admitted request
        # answers 200 from the cache, byte-identical to local compute.
        for scenario in scenarios:
            status, body = _post(url, scenario)
            assert status == 200
            assert body["cached"] is True, body
            local = result_payload(scenario, simulate(scenario))
            assert canonical_payload_json(body["result"]) == \
                canonical_payload_json(local)

        with urllib.request.urlopen(url + "/stats", timeout=5) as response:
            stats = json.loads(response.read())
        assert stats["recovery"]["recovered"] == len(scenarios)
        assert not any(code.startswith("5")
                       for code in stats["responses"])
    finally:
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
