"""Property test: snapshot anywhere, restore, finish — byte-identical.

Hypothesis drives the checkpoint/restore contract harder than the
enumerated gate: an arbitrary seed, sync style, policy override,
scheduler mode and snapshot position (any handled-event index) must all
restore to the uninterrupted run's exact
:func:`~repro.sim.checkpoint.fingerprint_result`.
"""

import dataclasses
import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import quick_scenario, simulate
from repro.sim.checkpoint import (
    CheckpointPolicy,
    KernelCheckpoint,
    fingerprint_result,
)

HORIZON_US = 4_000


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    sync=st.sampled_from(["lockfree", "lockbased"]),
    policy=st.sampled_from([None, "edf", "llf"]),
    position=st.floats(min_value=0.0, max_value=1.0),
    fastpath=st.booleans(),
)
def test_snapshot_anywhere_restores_identically(seed, sync, policy,
                                                position, fastpath):
    if fastpath:
        os.environ.pop("REPRO_NO_FASTPATH", None)
    else:
        os.environ["REPRO_NO_FASTPATH"] = "1"
    try:
        scenario = dataclasses.replace(
            quick_scenario(n_tasks=3, n_objects=2, sync=sync, load=1.0,
                           horizon_us=HORIZON_US, seed=seed),
            policy=policy)
        # every_events=1: one checkpoint per handled event, so `position`
        # can land the snapshot on any event index of the run.
        checkpoints: list[KernelCheckpoint] = []
        clean = simulate(scenario,
                         checkpoints=CheckpointPolicy(every_events=1),
                         checkpoint_sink=checkpoints.append)
        want = fingerprint_result(clean.result)
        assert checkpoints
        ckpt = checkpoints[round(position * (len(checkpoints) - 1))]
        # Serialization round-trip included: restore from the JSON wire
        # form, exactly as the campaign store would.
        ckpt = KernelCheckpoint.from_json(ckpt.to_json())
        resumed = simulate(scenario, resume_from=ckpt)
        assert fingerprint_result(resumed.result) == want
    finally:
        os.environ.pop("REPRO_NO_FASTPATH", None)
