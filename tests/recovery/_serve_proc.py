"""Subprocess body for the serve crash harness: a real ServeApp with a
write-ahead request log.  Prints its URL on the first line, then serves
until killed.  The parent test SIGKILLs it mid-flight and restarts it
against the same cache directory and request log."""

import sys
import time

from repro.serve import ServeApp, ServeConfig


def main() -> int:
    cache_dir, request_log = sys.argv[1:3]
    port = int(sys.argv[3]) if len(sys.argv) > 3 else 0
    app = ServeApp(ServeConfig(workers=2, cache_dir=cache_dir,
                               request_log=request_log, port=port,
                               queue_capacity=64,
                               trial_timeout=60.0)).start()
    print(app.url, flush=True)
    while True:
        time.sleep(0.2)


if __name__ == "__main__":
    sys.exit(main())
