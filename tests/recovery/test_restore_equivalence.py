"""The restore equivalence gate (DESIGN.md §15).

For a sweep of seeds × sync styles × policy overrides, a simulation
restored from a mid-run checkpoint must finish **byte-identical** to the
uninterrupted run — compared via
:func:`repro.sim.checkpoint.fingerprint_result`, the canonical encoding
of every deterministic field of a :class:`SimulationResult`.

The whole gate runs in both scheduler modes (PR 5 fast path on and off,
via ``REPRO_NO_FASTPATH``), because restore deliberately drops every
memoized scheduling artifact: the restored run must replay the exact
same decisions whether or not it gets to rebuild its caches.
"""

import dataclasses

import pytest

from repro.api import quick_scenario, simulate
from repro.sim.checkpoint import CheckpointPolicy, fingerprint_result

SEEDS = tuple(range(25))
SYNCS = ("lockfree", "lockbased")
POLICIES = (None, "edf", "llf")
#: Small but non-trivial: a few dozen jobs, real contention.
HORIZON_US = 6_000


def _scenario(seed: int, sync: str, policy: str | None):
    scenario = quick_scenario(n_tasks=4, n_objects=3, sync=sync,
                              load=1.0, horizon_us=HORIZON_US, seed=seed)
    return dataclasses.replace(scenario, policy=policy)


def _fingerprint(summary) -> str:
    return fingerprint_result(summary.result)


@pytest.fixture(params=["fastpath", "no_fastpath"])
def scheduler_mode(request, monkeypatch):
    if request.param == "no_fastpath":
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    else:
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    return request.param


@pytest.mark.parametrize("sync", SYNCS)
@pytest.mark.parametrize("policy", POLICIES)
def test_restore_is_byte_identical(sync, policy, scheduler_mode):
    for seed in SEEDS:
        scenario = _scenario(seed, sync, policy)
        checkpoints = []
        clean = simulate(scenario,
                         checkpoints=CheckpointPolicy(every_events=20),
                         checkpoint_sink=checkpoints.append)
        assert checkpoints, f"no checkpoints fired for seed {seed}"
        want = _fingerprint(clean)
        # Restore from the middle checkpoint and from the last one —
        # the deepest state the run ever persisted.
        picks = sorted({len(checkpoints) // 2, len(checkpoints) - 1})
        for ckpt in (checkpoints[i] for i in picks):
            resumed = simulate(scenario, resume_from=ckpt)
            assert _fingerprint(resumed) == want, (
                f"restore diverged: seed={seed} sync={sync} "
                f"policy={policy} mode={scheduler_mode} "
                f"ckpt@{ckpt.clock}")


@pytest.mark.parametrize("sync", SYNCS)
def test_checkpointing_does_not_perturb_results(sync, scheduler_mode):
    """Enabling checkpoints must be observationally free: the run with a
    checkpoint policy equals the run without one, byte for byte."""
    for seed in SEEDS[:5]:
        scenario = _scenario(seed, sync, None)
        plain = simulate(scenario)
        sink: list = []
        with_ckpt = simulate(scenario,
                             checkpoints=CheckpointPolicy(every_events=10),
                             checkpoint_sink=sink.append)
        assert _fingerprint(with_ckpt) == _fingerprint(plain)
        assert sink


def test_restore_crosses_scheduler_modes(monkeypatch):
    """A checkpoint taken under one scheduler mode restores identically
    under the other: checkpoints never capture cache state."""
    scenario = _scenario(3, "lockfree", None)
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    sink: list = []
    clean = simulate(scenario,
                     checkpoints=CheckpointPolicy(every_events=25),
                     checkpoint_sink=sink.append)
    want = _fingerprint(clean)
    ckpt = sink[len(sink) // 2]
    monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    assert _fingerprint(simulate(scenario, resume_from=ckpt)) == want
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    assert _fingerprint(simulate(scenario, resume_from=ckpt)) == want


def test_tampered_checkpoint_is_rejected():
    from repro.sim.checkpoint import CheckpointError, KernelCheckpoint

    scenario = _scenario(0, "lockfree", None)
    sink: list = []
    simulate(scenario, checkpoints=CheckpointPolicy(every_events=25),
             checkpoint_sink=sink.append)
    doc = sink[-1].to_json()
    tampered = doc.replace('"clock":', '"clock_":', 1)
    with pytest.raises(CheckpointError):
        KernelCheckpoint.from_json(tampered)
