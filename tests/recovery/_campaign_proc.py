"""Subprocess body for the campaign crash harness: run (or resume) a
checkpointed campaign and print a JSON report.  The parent test SIGKILLs
this process mid-campaign and relaunches it with the same journal."""

import json
import sys

from repro.campaign import (
    CampaignConfig,
    CampaignEngine,
    TrialSpec,
    simulate_scenario_trial,
)
from repro.experiments.workloads import BuilderSpec
from repro.scenario import Scenario


def scenarios(n_trials: int, seed: int):
    # ~0.7s wall per trial: slow enough that the parent's SIGKILL lands
    # mid-campaign, fast enough for CI.
    return [Scenario(workload=BuilderSpec.make("paper", n_tasks=4),
                     sync="lockfree" if index % 2 == 0 else "lockbased",
                     seed=seed + index, horizon=1_600_000_000)
            for index in range(n_trials)]


def main() -> int:
    journal, checkpoint_dir, n_trials, seed, resume = sys.argv[1:6]
    config = CampaignConfig(
        workers=2, max_attempts=3,
        journal=journal,
        resume=journal if resume == "resume" else None,
        checkpoint_dir=checkpoint_dir,
    )
    specs = [TrialSpec(index=i, fn=simulate_scenario_trial,
                       args=(s.to_dict(),),
                       kwargs=(("every_events", 1000),))
             for i, s in enumerate(scenarios(int(n_trials), int(seed)))]
    with CampaignEngine(config, tag="crash-harness") as engine:
        result = engine.run(specs)
        stats = engine.stats()
    print(json.dumps({
        "ok": result.ok,
        "values": result.values,
        "from_journal": stats.from_journal,
        "resumed_attempts": sum(
            (o.recovery or {}).get("resumed_attempts", 0)
            for o in result.outcomes),
    }))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
