"""Campaign sub-trial resume: checkpoint store, SIGKILL retry, lineage.

The parallel tests kill a real worker process with an unhandled
``SIGKILL`` mid-trial (via ``simulate_scenario_trial``'s crash hook) and
assert the PR 2 retry path resumes from the persisted checkpoint — same
value as an uninterrupted run, lineage recorded, journal annotated.
"""

import json

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignEngine,
    CheckpointStore,
    TrialSpec,
    load_journal,
    simulate_scenario_trial,
)
from repro.experiments.workloads import BuilderSpec
from repro.scenario import Scenario
from repro.sim.checkpoint import CheckpointPolicy, KernelCheckpoint


def _scenario(seed=7, sync="lockfree"):
    return Scenario(workload=BuilderSpec.make("paper", n_tasks=4),
                    sync=sync, seed=seed, horizon=15_000_000)


def _spec(scenario, index=0, **kwargs):
    return TrialSpec(index=index, fn=simulate_scenario_trial,
                     args=(scenario.to_dict(),),
                     kwargs=tuple(sorted({"every_events": 50,
                                          **kwargs}.items())))


def _baseline(scenario):
    with CampaignEngine(CampaignConfig(workers=1), tag="t") as eng:
        return eng.run([_spec(scenario)]).values[0]


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        sink: list = []
        from repro.api import simulate
        simulate(_scenario(), checkpoints=CheckpointPolicy(every_events=50),
                 checkpoint_sink=sink.append)
        store.save(3, sink[-1])
        loaded = store.load(3)
        assert isinstance(loaded, KernelCheckpoint)
        assert loaded.digest == sink[-1].digest

    def test_corrupt_checkpoint_quarantined(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.checkpoint_path(5).parent.mkdir(parents=True, exist_ok=True)
        store.checkpoint_path(5).write_text("{torn", encoding="utf-8")
        assert store.load(5) is None
        assert not store.checkpoint_path(5).exists()
        assert store.quarantined()
        # Repeated corruption does not collide on the quarantine name.
        store.checkpoint_path(5).write_text("also bad", encoding="utf-8")
        assert store.load(5) is None
        assert len(store.quarantined()) == 2

    def test_tampered_digest_quarantined(self, tmp_path):
        store = CheckpointStore(tmp_path)
        sink: list = []
        from repro.api import simulate
        simulate(_scenario(), checkpoints=CheckpointPolicy(every_events=50),
                 checkpoint_sink=sink.append)
        store.save(0, sink[-1])
        path = store.checkpoint_path(0)
        doc = json.loads(path.read_text())
        doc["state"]["clock"] += 1
        path.write_text(json.dumps(doc))
        assert store.load(0) is None
        assert store.quarantined()

    def test_lineage_appends(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.note_attempt(2, {"attempt": 0, "resumed": False})
        store.note_attempt(2, {"attempt": 1, "resumed": True})
        lineage = store.lineage(2)
        assert [e["attempt"] for e in lineage] == [0, 1]
        assert store.lineage(99) == []


class TestSerialResume:
    def test_checkpointed_value_matches_plain(self, tmp_path):
        scenario = _scenario()
        base = _baseline(scenario)
        cfg = CampaignConfig(workers=1, checkpoint_dir=str(tmp_path))
        with CampaignEngine(cfg, tag="t") as eng:
            result = eng.run([_spec(scenario)])
        outcome = result.outcomes[0]
        assert outcome.ok
        assert json.dumps(outcome.value, sort_keys=True) == \
            json.dumps(base, sort_keys=True)
        assert outcome.recovery["checkpoints_written"] > 0
        assert outcome.recovery["resumed_attempts"] == 0
        # Success clears the checkpoint, keeps the lineage.
        store = CheckpointStore(tmp_path)
        assert not store.checkpoint_path(0).exists()
        assert store.lineage(0)

    def test_without_checkpoint_dir_no_recovery(self):
        scenario = _scenario()
        with CampaignEngine(CampaignConfig(workers=1), tag="t") as eng:
            outcome = eng.run([_spec(scenario)]).outcomes[0]
        assert outcome.ok
        assert outcome.recovery is None


class TestParallelSigkillResume:
    def test_sigkill_mid_trial_resumes_byte_identical(self, tmp_path):
        scenario = _scenario()
        base = _baseline(scenario)
        cfg = CampaignConfig(workers=2, max_attempts=3,
                             checkpoint_dir=str(tmp_path))
        with CampaignEngine(cfg, tag="t") as eng:
            result = eng.run([_spec(scenario, crash_after_checkpoints=2)])
        outcome = result.outcomes[0]
        assert outcome.ok, outcome.failures
        assert [f.kind for f in outcome.failures] == ["crash"]
        assert json.dumps(outcome.value, sort_keys=True) == \
            json.dumps(base, sort_keys=True)
        recovery = outcome.recovery
        assert recovery["resumed_attempts"] == 1
        assert recovery["resume_simns_saved"] > 0
        resumed_entries = [e for e in recovery["lineage"]
                           if e.get("resumed")]
        assert resumed_entries and \
            resumed_entries[0]["resume_clock"] > 0

    def test_journal_records_recovery(self, tmp_path):
        scenario = _scenario()
        journal = tmp_path / "journal.jsonl"
        cfg = CampaignConfig(workers=2, max_attempts=3,
                             checkpoint_dir=str(tmp_path / "ck"),
                             journal=str(journal))
        with CampaignEngine(cfg, tag="t") as eng:
            eng.run([_spec(scenario, crash_after_checkpoints=2)])
        lines = [json.loads(line) for line in
                 journal.read_text().splitlines()]
        trial = next(e for e in lines if e.get("type") == "trial")
        assert trial["recovery"]["resumed_attempts"] == 1
        # The loader still accepts the annotated journal.
        snapshot = load_journal(journal)
        assert snapshot.completed == 1

    def test_recovery_counters_projected(self, tmp_path):
        from repro.obs import Observer

        scenario = _scenario()
        obs = Observer()
        cfg = CampaignConfig(workers=2, max_attempts=3,
                             checkpoint_dir=str(tmp_path))
        with CampaignEngine(cfg, tag="t", observer=obs) as eng:
            eng.run([_spec(scenario, crash_after_checkpoints=2)])
        counters = obs.summary()["counters"]
        assert counters["campaign.resumed_trials"] == 1
        assert counters["campaign.checkpoints_written"] > 0
        assert counters["campaign.resume_simns_saved"] > 0

    def test_corrupt_checkpoint_falls_back_to_zero(self, tmp_path):
        scenario = _scenario()
        base = _baseline(scenario)
        store = CheckpointStore(tmp_path)
        store.checkpoint_path(0).parent.mkdir(parents=True, exist_ok=True)
        store.checkpoint_path(0).write_text("{torn mid-write",
                                            encoding="utf-8")
        cfg = CampaignConfig(workers=2, checkpoint_dir=str(tmp_path))
        with CampaignEngine(cfg, tag="t") as eng:
            outcome = eng.run([_spec(scenario)]).outcomes[0]
        assert outcome.ok
        assert json.dumps(outcome.value, sort_keys=True) == \
            json.dumps(base, sort_keys=True)
        assert store.quarantined()
        assert outcome.recovery["lineage"][0]["resumed"] is False


class TestChaosKill9:
    def test_kill9_plan_retries_to_success(self, tmp_path):
        from repro.campaign import ChaosPlan

        scenario = _scenario()
        base = _baseline(scenario)
        chaos = ChaosPlan(kill9=(0,))
        assert not chaos.empty
        cfg = CampaignConfig(workers=2, max_attempts=3, chaos=chaos,
                             checkpoint_dir=str(tmp_path))
        with CampaignEngine(cfg, tag="t") as eng:
            outcome = eng.run([_spec(scenario)]).outcomes[0]
        assert outcome.ok
        assert [f.kind for f in outcome.failures] == ["crash"]
        assert json.dumps(outcome.value, sort_keys=True) == \
            json.dumps(base, sort_keys=True)

    def test_cli_load_parses_chaos_kill9(self):
        from repro.cli import _build_parser, _chaos_from_args

        args = _build_parser().parse_args(
            ["load", "--duration", "0.1", "--chaos-kill9", "1,3"])
        chaos = _chaos_from_args(args)
        assert chaos is not None and chaos.kill9 == (1, 3)

    def test_kill9_serial_degrades_to_simulated_crash(self):
        from repro.campaign import ChaosPlan, SimulatedWorkerCrash

        with pytest.raises(SimulatedWorkerCrash):
            ChaosPlan(kill9=(4,)).fire(4, 0, in_worker=False)
        # Wrong attempt or index: no fault.
        ChaosPlan(kill9=(4,)).fire(4, 1, in_worker=False)
        ChaosPlan(kill9=(4,)).fire(5, 0, in_worker=False)
