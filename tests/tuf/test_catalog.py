"""Tests for the application TUF catalog (paper Figure 1 shapes)."""

import pytest

from repro.tuf import (
    LinearDecreasingTUF,
    ParabolicTUF,
    StepTUF,
    check_tuf_wellformed,
    heterogeneous_tuf_mix,
    step_tuf_mix,
)
from repro.tuf.catalog import (
    awacs_association_tuf,
    awacs_plot_correlation_tuf,
    awacs_track_maintenance_tuf,
    coastal_surveillance_tuf,
    missile_intercept_tuf,
)


@pytest.mark.parametrize("factory", [
    awacs_association_tuf,
    awacs_plot_correlation_tuf,
    awacs_track_maintenance_tuf,
    coastal_surveillance_tuf,
    missile_intercept_tuf,
])
def test_catalog_entries_are_wellformed(factory):
    check_tuf_wellformed(factory())


def test_association_is_step():
    assert isinstance(awacs_association_tuf(), StepTUF)


def test_intercept_is_increasing():
    tuf = missile_intercept_tuf()
    assert tuf.utility(tuf.critical_time - 1) > tuf.utility(0)


def test_coastal_surveillance_has_grace_interval():
    tuf = coastal_surveillance_tuf(critical_time=80_000, importance=2.0)
    assert tuf.utility(0) == 2.0
    assert tuf.utility(80_000 // 4) == 2.0
    assert tuf.utility(80_000 // 2) < 2.0


def test_importance_scales_catalog_entries():
    assert awacs_association_tuf(importance=5.0).max_utility == 5.0


def test_step_mix_lengths_and_types():
    mix = step_tuf_mix([100, 200, 300])
    assert len(mix) == 3
    assert all(isinstance(t, StepTUF) for t in mix)
    assert [t.critical_time for t in mix] == [100, 200, 300]


def test_heterogeneous_mix_cycles_shapes():
    mix = heterogeneous_tuf_mix([100] * 6)
    assert isinstance(mix[0], StepTUF)
    assert isinstance(mix[1], ParabolicTUF)
    assert isinstance(mix[2], LinearDecreasingTUF)
    assert isinstance(mix[3], StepTUF)


def test_mix_rejects_mismatched_importances():
    with pytest.raises(ValueError):
        step_tuf_mix([100, 200], importances=[1.0])
    with pytest.raises(ValueError):
        heterogeneous_tuf_mix([100, 200], importances=[1.0])
