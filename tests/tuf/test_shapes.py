"""Unit tests for TUF shapes."""

import pytest
from hypothesis import given, strategies as st

from repro.tuf import (
    CompositeMaxTUF,
    LinearDecreasingTUF,
    ParabolicTUF,
    PiecewiseLinearTUF,
    RampUpTUF,
    ScaledTUF,
    StepTUF,
    TableTUF,
    check_tuf_wellformed,
)


class TestStepTUF:
    def test_unit_height_before_critical_time(self):
        tuf = StepTUF(critical_time=100)
        assert tuf.utility(0) == 1.0
        assert tuf.utility(99) == 1.0

    def test_zero_at_and_after_critical_time(self):
        tuf = StepTUF(critical_time=100)
        assert tuf.utility(100) == 0.0
        assert tuf.utility(101) == 0.0
        assert tuf.utility(10_000) == 0.0

    def test_height_scales_utility(self):
        tuf = StepTUF(critical_time=50, height=7.5)
        assert tuf.utility(25) == 7.5
        assert tuf.max_utility == 7.5

    def test_negative_sojourn_yields_zero(self):
        assert StepTUF(critical_time=10).utility(-1) == 0.0

    def test_rejects_nonpositive_critical_time(self):
        with pytest.raises(ValueError):
            StepTUF(critical_time=0)

    def test_rejects_nonpositive_height(self):
        with pytest.raises(ValueError):
            StepTUF(critical_time=10, height=0.0)

    def test_is_non_increasing(self):
        assert StepTUF(critical_time=100).is_non_increasing()

    @given(st.integers(min_value=1, max_value=10**9),
           st.integers(min_value=-100, max_value=2 * 10**9))
    def test_binary_valued_everywhere(self, critical, sojourn):
        tuf = StepTUF(critical_time=critical)
        assert tuf.utility(sojourn) in (0.0, 1.0)


class TestLinearDecreasingTUF:
    def test_full_utility_at_release(self):
        tuf = LinearDecreasingTUF(critical_time=100, initial=2.0)
        assert tuf.utility(0) == 2.0

    def test_halfway_yields_half(self):
        tuf = LinearDecreasingTUF(critical_time=100, initial=2.0)
        assert tuf.utility(50) == pytest.approx(1.0)

    def test_zero_at_critical_time(self):
        tuf = LinearDecreasingTUF(critical_time=100)
        assert tuf.utility(100) == 0.0

    def test_is_non_increasing(self):
        assert LinearDecreasingTUF(critical_time=1000).is_non_increasing()

    @given(st.integers(min_value=2, max_value=10**6))
    def test_monotone_decrease_property(self, critical):
        tuf = LinearDecreasingTUF(critical_time=critical)
        quarter = critical // 4
        values = [tuf.utility(k * quarter) for k in range(4)]
        assert values == sorted(values, reverse=True)


class TestParabolicTUF:
    def test_decays_slowly_then_steeply(self):
        tuf = ParabolicTUF(critical_time=100)
        early_drop = tuf.utility(0) - tuf.utility(25)
        late_drop = tuf.utility(50) - tuf.utility(75)
        assert early_drop < late_drop

    def test_matches_formula(self):
        tuf = ParabolicTUF(critical_time=200, initial=4.0)
        assert tuf.utility(100) == pytest.approx(4.0 * (1 - 0.25))

    def test_zero_beyond_critical_time(self):
        tuf = ParabolicTUF(critical_time=100)
        assert tuf.utility(100) == 0.0
        assert tuf.utility(150) == 0.0

    def test_is_non_increasing(self):
        assert ParabolicTUF(critical_time=512).is_non_increasing()


class TestRampUpTUF:
    def test_increases_toward_critical_time(self):
        tuf = RampUpTUF(critical_time=100, start=0.0, peak=1.0)
        assert tuf.utility(80) > tuf.utility(20)

    def test_drops_to_zero_at_critical_time(self):
        tuf = RampUpTUF(critical_time=100)
        assert tuf.utility(99) > 0
        assert tuf.utility(100) == 0.0

    def test_not_non_increasing(self):
        assert not RampUpTUF(critical_time=1000).is_non_increasing()

    def test_max_utility_is_near_peak(self):
        tuf = RampUpTUF(critical_time=1000, start=0.0, peak=5.0)
        assert tuf.max_utility == pytest.approx(5.0, rel=0.01)

    def test_rejects_peak_below_start(self):
        with pytest.raises(ValueError):
            RampUpTUF(critical_time=10, start=1.0, peak=0.5)


class TestPiecewiseLinearTUF:
    def test_grace_then_decay(self):
        tuf = PiecewiseLinearTUF(points=((0, 1.0), (50, 1.0), (100, 0.0)))
        assert tuf.utility(25) == 1.0
        assert tuf.utility(75) == pytest.approx(0.5)
        assert tuf.critical_time == 100

    def test_interpolation_exact_at_breakpoints(self):
        tuf = PiecewiseLinearTUF(points=((0, 2.0), (10, 1.0), (20, 0.0)))
        assert tuf.utility(10) == pytest.approx(1.0)

    def test_rejects_nonzero_terminal_utility(self):
        with pytest.raises(ValueError):
            PiecewiseLinearTUF(points=((0, 1.0), (10, 0.5)))

    def test_rejects_unordered_breakpoints(self):
        with pytest.raises(ValueError):
            PiecewiseLinearTUF(points=((0, 1.0), (10, 0.5), (10, 0.0)))

    def test_rejects_missing_origin(self):
        with pytest.raises(ValueError):
            PiecewiseLinearTUF(points=((5, 1.0), (10, 0.0)))

    def test_max_utility_over_interior_peak(self):
        tuf = PiecewiseLinearTUF(points=((0, 0.5), (10, 3.0), (20, 0.0)))
        assert tuf.max_utility == 3.0


class TestTableTUF:
    def test_sampled_lookup(self):
        tuf = TableTUF(values=(3.0, 2.0, 1.0), resolution=10)
        assert tuf.utility(0) == 3.0
        assert tuf.utility(9) == 3.0
        assert tuf.utility(10) == 2.0
        assert tuf.utility(29) == 1.0
        assert tuf.utility(30) == 0.0
        assert tuf.critical_time == 30

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            TableTUF(values=())

    def test_rejects_negative_utilities(self):
        with pytest.raises(ValueError):
            TableTUF(values=(1.0, -0.5))


class TestScaledTUF:
    def test_scales_utility_and_preserves_critical_time(self):
        inner = StepTUF(critical_time=100)
        tuf = ScaledTUF(inner=inner, factor=3.0)
        assert tuf.utility(50) == 3.0
        assert tuf.critical_time == 100
        assert tuf.max_utility == 3.0

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            ScaledTUF(inner=StepTUF(critical_time=10), factor=0.0)


class TestCompositeMaxTUF:
    def test_pointwise_maximum(self):
        a = LinearDecreasingTUF(critical_time=100, initial=1.0)
        b = ParabolicTUF(critical_time=100, initial=0.8)
        tuf = CompositeMaxTUF(components=(a, b))
        for t in (0, 30, 60, 99):
            assert tuf.utility(t) == max(a.utility(t), b.utility(t))

    def test_rejects_mismatched_critical_times(self):
        with pytest.raises(ValueError):
            CompositeMaxTUF(components=(StepTUF(critical_time=10),
                                        StepTUF(critical_time=20)))


@pytest.mark.parametrize("tuf", [
    StepTUF(critical_time=1000),
    LinearDecreasingTUF(critical_time=1000),
    ParabolicTUF(critical_time=1000),
    RampUpTUF(critical_time=1000),
    PiecewiseLinearTUF(points=((0, 1.0), (400, 1.0), (1000, 0.0))),
    TableTUF(values=(2.0, 1.0, 0.5), resolution=100),
    ScaledTUF(inner=StepTUF(critical_time=1000), factor=2.0),
])
def test_all_shapes_are_wellformed(tuf):
    check_tuf_wellformed(tuf)
