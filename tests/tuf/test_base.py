"""Tests for the TUF protocol and well-formedness checker."""

import pytest

from repro.tuf.base import TimeUtilityFunction, check_tuf_wellformed


class _BadNegative(TimeUtilityFunction):
    critical_time = 100

    def utility(self, sojourn):
        return -1.0 if 0 <= sojourn < 100 else 0.0


class _BadTail(TimeUtilityFunction):
    critical_time = 100

    def utility(self, sojourn):
        return 1.0  # never drops to zero


class _BadCriticalTime(TimeUtilityFunction):
    critical_time = 0

    def utility(self, sojourn):
        return 0.0


class _Fine(TimeUtilityFunction):
    critical_time = 100

    def utility(self, sojourn):
        return 0.5 if 0 <= sojourn < 100 else 0.0


def test_checker_accepts_wellformed():
    check_tuf_wellformed(_Fine())


def test_checker_rejects_negative_utility():
    with pytest.raises(ValueError, match="negative utility"):
        check_tuf_wellformed(_BadNegative())


def test_checker_rejects_nonzero_tail():
    with pytest.raises(ValueError, match="zero at/after"):
        check_tuf_wellformed(_BadTail())


def test_checker_rejects_nonpositive_critical_time():
    with pytest.raises(ValueError, match="critical time"):
        check_tuf_wellformed(_BadCriticalTime())


def test_call_dunder_delegates_to_utility():
    tuf = _Fine()
    assert tuf(50) == tuf.utility(50)


def test_default_max_utility_is_value_at_zero():
    assert _Fine().max_utility == 0.5


def test_is_non_increasing_detects_flat():
    assert _Fine().is_non_increasing()
