"""Tests for the Theorem 2 retry bound."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.retry_bound import (
    interference_events,
    retry_bound,
    retry_bound_for_taskset,
    x_i,
)
from repro.arrivals import UAMSpec
from repro.experiments.workloads import paper_taskset
from repro.experiments.runner import run_once
from repro.sim.objects import RetryPolicy


class TestFormula:
    def test_single_task_bound_is_3a(self):
        observer = UAMSpec(1, 2, 1000)
        assert retry_bound(observer, [], critical_time=800) == 6

    def test_matches_paper_expression(self):
        observer = UAMSpec(1, 1, 1000)
        others = [UAMSpec(1, 2, 300), UAMSpec(1, 1, 500)]
        c = 900
        expected = 3 * 1 + 2 * (
            2 * (math.ceil(c / 300) + 1) + 1 * (math.ceil(c / 500) + 1))
        assert retry_bound(observer, others, critical_time=c) == expected

    def test_short_critical_time_still_two_windows(self):
        # ceil(C/W)+1 = 2 even when C < W (the paper notes this case).
        observer = UAMSpec(1, 1, 1000)
        others = [UAMSpec(1, 3, 5000)]
        assert interference_events(observer, others, critical_time=100) == 6

    def test_bound_independent_of_object_count(self):
        # f_i depends only on arrival parameters and C_i — not on how
        # many lock-free objects the job accesses (paper's remark after
        # Theorem 2).
        observer = UAMSpec(1, 1, 1000)
        others = [UAMSpec(1, 1, 700)]
        assert (retry_bound(observer, others, 900)
                == retry_bound(observer, others, 900))

    def test_rejects_bad_critical_time(self):
        with pytest.raises(ValueError):
            interference_events(UAMSpec(1, 1, 10), [], critical_time=0)

    @given(a_i=st.integers(1, 5), a_j=st.integers(1, 5),
           w=st.integers(10, 10_000), c=st.integers(1, 10_000))
    def test_monotone_in_critical_time(self, a_i, a_j, w, c):
        observer = UAMSpec(1, a_i, max(c, 1))
        others = [UAMSpec(1, a_j, w)]
        shorter = retry_bound(observer, others, max(1, c // 2))
        longer = retry_bound(observer, others, c)
        assert longer >= shorter


class TestTasksetHelpers:
    def _tasks(self):
        rng = random.Random(1)
        return paper_taskset(rng, n_tasks=4, accesses_per_job=2,
                             target_load=0.5)

    def test_bound_for_every_task(self):
        tasks = self._tasks()
        for index in range(len(tasks)):
            bound = retry_bound_for_taskset(tasks, index)
            assert bound >= 3  # at least the task's own 3*a_i

    def test_x_i_consistency(self):
        tasks = self._tasks()
        for index, task in enumerate(tasks):
            bound = retry_bound_for_taskset(tasks, index)
            assert bound == (3 * task.arrival.max_arrivals
                             + 2 * x_i(index, tasks))

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            retry_bound_for_taskset(self._tasks(), 99)


class TestBoundHoldsInSimulation:
    """Theorem 2 soundness: measured per-job retries never exceed f_i,
    under either retry policy, even with adversarial bursty arrivals."""

    @pytest.mark.parametrize("policy", [RetryPolicy.ON_CONFLICT,
                                        RetryPolicy.ON_PREEMPTION])
    @pytest.mark.parametrize("style", ["uniform", "bursty"])
    def test_measured_retries_within_bound(self, policy, style):
        rng = random.Random(7)
        tasks = paper_taskset(rng, n_tasks=6, accesses_per_job=4,
                              target_load=1.0, max_arrivals=2)
        bounds = {
            task.name: retry_bound_for_taskset(tasks, index)
            for index, task in enumerate(tasks)
        }
        for seed in range(3):
            result = run_once(tasks, "lockfree",
                              horizon=150_000_000,
                              rng=random.Random(seed),
                              arrival_style=style, retry_policy=policy)
            for record in result.records:
                assert record.retries <= bounds[record.task_name], (
                    f"{record.task_name} exceeded its Theorem 2 bound"
                )
