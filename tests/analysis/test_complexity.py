"""Tests for the asymptotic-cost models (Section 3.6)."""

import pytest

from repro.analysis.complexity import (
    cost_ratio,
    lockbased_rua_operations,
    lockfree_rua_operations,
)


class TestModels:
    def test_zero_jobs_cost_nothing(self):
        assert lockbased_rua_operations(0) == 0.0
        assert lockfree_rua_operations(0) == 0.0

    def test_lockbased_dominates_lockfree(self):
        for n in (1, 2, 5, 10, 100, 1000):
            assert lockbased_rua_operations(n) > lockfree_rua_operations(n)

    def test_ratio_grows_with_n(self):
        # O(n^2 log n) / O(n^2) ~ log n: the ratio must increase.
        assert cost_ratio(100) > cost_ratio(10) > 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            lockbased_rua_operations(-1)
        with pytest.raises(ValueError):
            lockfree_rua_operations(-1)

    def test_models_track_real_policy_scaling(self):
        """The measured Python-time growth of the real schedulers should
        be closer to the model's growth than to constant time — a coarse
        sanity check that the implementations have the claimed shape."""
        import time
        import random
        from repro.core.rua_lockbased import LockBasedRUA
        from repro.experiments.workloads import paper_taskset
        from repro.tasks.job import Job

        def measure(n):
            rng = random.Random(0)
            tasks = paper_taskset(rng, n_tasks=n, accesses_per_job=0,
                                  n_objects=0, target_load=0.5)
            jobs = [Job(task=t, jid=0, release_time=0) for t in tasks]
            policy = LockBasedRUA()
            start = time.perf_counter()
            # Vary the clock so each call is a distinct pass (a repeated
            # identical call would be served by the exact memo fast path
            # and measure a cache hit, not the algorithm).
            for tick in range(20):
                policy.schedule(jobs, None, now=tick)
            return time.perf_counter() - start

        # The incremental fast path cut per-pass constants enough that
        # fixed overhead dominates at n=40; measure further apart so the
        # asymptotic term is what the ratio sees.
        small, large = measure(5), measure(80)
        assert large > small * 4  # super-linear growth in n
