"""Tests for Theorem 3 (lock-based vs lock-free sojourn comparison)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.sojourn import (
    blocking_count_bound,
    compare_sojourn,
    lockbased_sojourn_bound,
    lockfree_sojourn_bound,
    lockfree_wins_ratio_threshold,
    sufficient_ratio_for_lockfree,
)


class TestBounds:
    def test_blocking_count_is_min(self):
        assert blocking_count_bound(3, 5) == 3
        assert blocking_count_bound(5, 3) == 3

    def test_lockbased_formula(self):
        # u + I + r*m + r*min(m, n)
        assert lockbased_sojourn_bound(100, 50, r=10.0, m_i=4, n_i=2) == (
            100 + 50 + 40 + 20)

    def test_lockfree_formula(self):
        # u + I + s*m + s*f
        assert lockfree_sojourn_bound(100, 50, s=2.0, m_i=4, f_i=7) == (
            100 + 50 + 8 + 14)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            blocking_count_bound(-1, 2)
        with pytest.raises(ValueError):
            lockfree_sojourn_bound(1, 1, 1.0, 1, -1)


class TestThresholds:
    def test_case1_threshold_is_two_thirds(self):
        assert lockfree_wins_ratio_threshold(m_i=3, n_i=5, a_i=1,
                                             x_i=4) == pytest.approx(2 / 3)

    def test_case2_threshold_formula(self):
        m, n, a, x = 10, 4, 1, 3
        expected = (m + n) / (m + 3 * a + 2 * x)
        assert lockfree_wins_ratio_threshold(m, n, a, x) == pytest.approx(
            expected)

    def test_case2_threshold_below_one(self):
        # s/r < 1 is necessary (paper's remark): with n <= 2a + x the
        # case-2 threshold is < 1.
        for m, a, x in ((10, 1, 3), (20, 2, 5), (7, 1, 1)):
            n = 2 * a + x  # maximum possible n_i
            if m > n:
                assert lockfree_wins_ratio_threshold(m, n, a, x) < 1.0

    def test_sufficient_ratio(self):
        assert sufficient_ratio_for_lockfree() == 1.5


class TestComparison:
    def test_small_s_makes_lockfree_win(self):
        cmp = compare_sojourn(u_i=1000, interference=500, r=30.0, s=2.0,
                              m_i=3, n_i=5, a_i=1, x_i=4)
        assert cmp.lockfree_wins
        assert cmp.predicted_lockfree_wins

    def test_large_s_makes_lockbased_win(self):
        cmp = compare_sojourn(u_i=1000, interference=500, r=10.0, s=9.9,
                              m_i=3, n_i=5, a_i=1, x_i=4)
        assert not cmp.lockfree_wins
        assert not cmp.predicted_lockfree_wins

    def test_rejects_nonpositive_access_times(self):
        with pytest.raises(ValueError):
            compare_sojourn(1, 1, r=0.0, s=1.0, m_i=1, n_i=1, a_i=1, x_i=1)

    @settings(max_examples=300)
    @given(u=st.integers(0, 10_000), interference=st.integers(0, 10_000),
           r=st.floats(0.1, 100.0), ratio=st.floats(0.01, 2.0),
           m=st.integers(1, 20), a=st.integers(1, 4), x=st.integers(0, 20))
    def test_theorem3_soundness_property(self, u, interference, r, ratio,
                                         m, a, x):
        """If s/r is below the Theorem 3 threshold, the lock-free
        worst-case sojourn bound must be lower (sufficiency of the
        condition), with n_i at its worst case 2a_i + x_i and f_i from
        Theorem 2."""
        s = r * ratio
        n = 2 * a + x
        cmp = compare_sojourn(u, interference, r, s, m_i=m, n_i=n,
                              a_i=a, x_i=x)
        if cmp.predicted_lockfree_wins:
            assert cmp.lockfree <= cmp.lockbased + 1e-6
