"""Tests for the Lemma 4/5 AUR bounds."""

import random

import pytest

from repro.analysis.aur_bounds import (
    AURBounds,
    lemma4_lockfree_aur_bounds,
    lemma5_lockbased_aur_bounds,
)
from repro.arrivals import UAMSpec
from repro.experiments.runner import run_once
from repro.experiments.workloads import paper_taskset
from repro.tasks import make_task
from repro.tuf import LinearDecreasingTUF, RampUpTUF, StepTUF


def _tasks():
    return [
        make_task("A", UAMSpec(1, 2, 10_000), StepTUF(8_000),
                  compute=1_000, accesses=[(0, 100)]),
        make_task("B", UAMSpec(1, 1, 20_000),
                  LinearDecreasingTUF(critical_time=15_000),
                  compute=2_000, accesses=[(0, 100), (1, 100)]),
    ]


class TestAURBoundsType:
    def test_contains(self):
        bounds = AURBounds(lower=0.4, upper=0.9)
        assert bounds.contains(0.6)
        assert not bounds.contains(0.95)
        assert bounds.contains(0.95, slack=0.1)


class TestLemma4:
    def test_upper_exceeds_lower(self):
        tasks = _tasks()
        bounds = lemma4_lockfree_aur_bounds(
            tasks, s=200.0, interference=[500.0, 700.0],
            retry_time=[400.0, 200.0])
        assert 0.0 <= bounds.lower <= bounds.upper <= 1.0

    def test_zero_interference_tightens_to_upper(self):
        tasks = _tasks()
        loose = lemma4_lockfree_aur_bounds(
            tasks, s=200.0, interference=[5000.0, 5000.0],
            retry_time=[0.0, 0.0])
        tight = lemma4_lockfree_aur_bounds(
            tasks, s=200.0, interference=[0.0, 0.0],
            retry_time=[0.0, 0.0])
        assert tight.lower >= loose.lower

    def test_step_tufs_with_feasible_sojourns_bound_is_one(self):
        # Step TUFs: any sojourn below the critical time accrues full
        # utility, so both bounds hit 1.
        tasks = [make_task("A", UAMSpec(1, 1, 10_000), StepTUF(8_000),
                           compute=1_000)]
        bounds = lemma4_lockfree_aur_bounds(tasks, s=0.0,
                                            interference=[100.0],
                                            retry_time=[0.0])
        assert bounds.lower == pytest.approx(1.0)
        assert bounds.upper == pytest.approx(1.0)

    def test_rejects_increasing_tufs(self):
        tasks = [make_task("A", UAMSpec(1, 1, 10_000),
                           RampUpTUF(critical_time=8_000), compute=100)]
        with pytest.raises(ValueError, match="non-increasing"):
            lemma4_lockfree_aur_bounds(tasks, s=1.0, interference=[0.0],
                                       retry_time=[0.0])

    def test_rejects_misaligned_vectors(self):
        with pytest.raises(ValueError, match="align"):
            lemma4_lockfree_aur_bounds(_tasks(), s=1.0, interference=[0.0],
                                       retry_time=[0.0, 0.0])


class TestLemma5:
    def test_mirror_of_lemma4(self):
        tasks = _tasks()
        lf = lemma4_lockfree_aur_bounds(tasks, s=300.0,
                                        interference=[100.0, 100.0],
                                        retry_time=[50.0, 50.0])
        lb = lemma5_lockbased_aur_bounds(tasks, r=300.0,
                                         interference=[100.0, 100.0],
                                         blocking_time=[50.0, 50.0])
        assert lf == lb  # identical inputs -> identical bounds

    def test_larger_r_lowers_upper_bound(self):
        tasks = _tasks()
        cheap = lemma5_lockbased_aur_bounds(tasks, r=10.0,
                                            interference=[0.0, 0.0],
                                            blocking_time=[0.0, 0.0])
        pricey = lemma5_lockbased_aur_bounds(tasks, r=5_000.0,
                                             interference=[0.0, 0.0],
                                             blocking_time=[0.0, 0.0])
        assert pricey.upper <= cheap.upper


class TestBoundsHoldInSimulation:
    @pytest.mark.parametrize("sync,lemma", [("lockfree", 4),
                                            ("lockbased", 5)])
    def test_measured_aur_within_bounds(self, sync, lemma):
        rng = random.Random(11)
        tasks = paper_taskset(rng, n_tasks=6, accesses_per_job=2,
                              target_load=0.3, tuf_class="step")
        results = [
            run_once(tasks, sync, horizon=200_000_000,
                     rng=random.Random(seed))
            for seed in range(3)
        ]
        interference = []
        for task in tasks:
            worst = max((r.max_sojourn(task.name) or 0) for r in results)
            interference.append(max(0.0, worst - task.execution_estimate))
        zeros = [0.0] * len(tasks)
        if sync == "lockfree":
            mech = max((r.mean_lockfree_mechanism_per_access or 0.0)
                       for r in results)
            bounds = lemma4_lockfree_aur_bounds(
                tasks, s=2_000 + mech, interference=interference,
                retry_time=zeros)
        else:
            mech = max((r.mean_lock_mechanism_per_access or 0.0)
                       for r in results)
            bounds = lemma5_lockbased_aur_bounds(
                tasks, r=2_000 + mech, interference=interference,
                blocking_time=zeros)
        for result in results:
            assert bounds.contains(result.aur, slack=0.02), (
                f"AUR {result.aur} outside Lemma {lemma} bounds "
                f"[{bounds.lower}, {bounds.upper}]"
            )
