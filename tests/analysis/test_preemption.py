"""Tests for Lemma 1 event counting."""

import pytest

from repro.analysis.preemption import max_scheduling_events, releases_in_interval
from repro.arrivals import UAMSpec
from tests.helpers import run_scenario, simple_task, zero_cost_policy


class TestReleaseCounting:
    def test_matches_spec_helper(self):
        spec = UAMSpec(1, 3, 100)
        for interval in (0, 50, 100, 250):
            assert releases_in_interval(spec, interval) == \
                spec.max_arrivals_in(interval)

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            releases_in_interval(UAMSpec(1, 1, 10), -1)


class TestEventCounting:
    def test_single_task_is_3a(self):
        specs = [UAMSpec(1, 2, 1000)]
        assert max_scheduling_events(specs, 0, interval=500) == 6

    def test_other_tasks_contribute_two_per_release(self):
        specs = [UAMSpec(1, 1, 1000), UAMSpec(1, 1, 400)]
        # observer 0 over C=800: other task releases <= ceil(800/400)+1=3,
        # two events each => 6; own 3a = 3.
        assert max_scheduling_events(specs, 0, interval=800) == 9

    def test_index_validation(self):
        with pytest.raises(IndexError):
            max_scheduling_events([UAMSpec(1, 1, 10)], 5, 10)


class TestLemma1InSimulation:
    def test_preemptions_never_exceed_scheduler_invocations(self):
        tasks = [
            simple_task("A", critical_us=4000, compute_us=900,
                        window_us=5000),
            simple_task("B", critical_us=2500, compute_us=600,
                        window_us=5000),
            simple_task("C", critical_us=1500, compute_us=300,
                        window_us=5000),
        ]
        traces = [[0, 5000, 10_000], [300, 5300, 10_300],
                  [600, 5600, 10_600]]
        _, result = run_scenario(tasks, traces,
                                 policy=zero_cost_policy("rua-lockfree"),
                                 horizon_us=20_000)
        total_preemptions = sum(r.preemptions for r in result.records)
        assert total_preemptions <= result.scheduler_invocations
