"""``run_profile`` smoke and determinism tests."""

import pytest

from repro.obs.exporters import chrome_trace, write_chrome_trace
from repro.obs.profile import (
    PROFILE_SYNCS,
    PROFILE_WORKLOADS,
    run_profile,
)

HORIZON_US = 20_000   # short horizon keeps these fast


def _small(**kwargs):
    kwargs.setdefault("n_tasks", 5)
    kwargs.setdefault("n_objects", 4)
    kwargs.setdefault("horizon_us", HORIZON_US)
    return run_profile(**kwargs)


class TestRunProfile:
    def test_headline_keys(self):
        prof = _small()
        headline = prof.headline()
        assert headline["workload"] == "step"
        assert headline["sync"] == "lockfree"
        assert headline["horizon"] == HORIZON_US * 1000
        for key in ("wall_s", "aur", "cmr", "jobs", "retries",
                    "blockings", "scheduler_invocations"):
            assert key in headline

    def test_observer_populated(self):
        prof = _small()
        assert prof.observer.counters.get("kernel.arrivals", 0) > 0
        assert any(s.name == "sched.decision" for s in prof.observer.spans)
        assert prof.tracer is not None and prof.tracer.events

    def test_bench_metrics_are_json_scalars(self):
        metrics = _small().bench_metrics()
        assert metrics["decisions"] > 0
        for value in metrics.values():
            assert isinstance(value, (str, int, float))

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown profile workload"):
            _small(workload="nope")

    def test_unknown_retry_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown retry policy"):
            _small(retry_policy="nope")

    @pytest.mark.parametrize("workload", PROFILE_WORKLOADS)
    def test_all_workloads_run(self, workload):
        prof = _small(workload=workload)
        assert len(prof.result.records) > 0

    @pytest.mark.parametrize("sync", PROFILE_SYNCS)
    def test_all_syncs_run(self, sync):
        prof = _small(sync=sync)
        assert prof.sync == sync


class TestProfileDeterminism:
    def test_fixed_seed_trace_is_byte_identical(self, tmp_path):
        paths = []
        for run in range(2):
            prof = _small(seed=13)
            path = tmp_path / f"trace{run}.json"
            write_chrome_trace(path, prof.observer, prof.tracer)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_different_seeds_differ(self):
        a = chrome_trace(_small(seed=0).observer)
        b = chrome_trace(_small(seed=1).observer)
        assert a != b

    def test_step_workload_has_retry_counters_and_decision_spans(self):
        # The acceptance-criterion artifact: scheduler-decision spans and
        # per-object retry counter tracks in the default step profile.
        prof = _small(workload="step", horizon_us=50_000)
        doc = chrome_trace(prof.observer, prof.tracer)
        events = doc["traceEvents"]
        assert any(e["ph"] == "X" and e["name"] == "sched.decision"
                   for e in events)
        assert any(e["ph"] == "C" and e["name"].startswith("retries.")
                   for e in events)
