"""Unit tests for NullObserver / Observer."""

from repro.obs import NULL_OBSERVER, NullObserver, Observer


class TestNullObserver:
    def test_singleton_is_disabled(self):
        assert NULL_OBSERVER.enabled is False
        assert isinstance(NULL_OBSERVER, NullObserver)

    def test_every_method_is_a_noop(self):
        obs = NULL_OBSERVER
        obs.counter("c")
        obs.counter("c", 5)
        obs.histogram("h", 1.0)
        obs.span("s", "cat", "t", 0, 1, {"a": 1})
        obs.instant("i", "cat", "t", 0)
        obs.tick_counter("t", 0)
        obs.open_span("k", "s", "cat", "t", 0)
        obs.close_span("k", 1)
        obs.close_open_spans(2)
        obs.decision(3, 100, 200)
        assert obs.summary() == {"enabled": False}

    def test_allocates_no_instance_state(self):
        assert NullObserver.__slots__ == ()


class TestObserver:
    def test_counters_accumulate(self):
        obs = Observer()
        obs.counter("kernel.arrivals")
        obs.counter("kernel.arrivals", 2)
        assert obs.counters == {"kernel.arrivals": 3}

    def test_histograms_record(self):
        obs = Observer()
        obs.histogram("job.retries", 1.0)
        obs.histogram("job.retries", 3.0)
        assert obs.histograms["job.retries"].count == 2

    def test_tick_counter_samples_running_total(self):
        obs = Observer()
        obs.tick_counter("retries.0", ts=10)
        obs.tick_counter("retries.0", ts=20, value=2)
        assert obs.counters["retries.0"] == 3
        assert [(s.ts, s.value) for s in obs.counter_samples] == \
            [(10, 1), (20, 3)]

    def test_open_close_span(self):
        obs = Observer()
        obs.open_span(("block", "T0#0"), "blocked:2", "lock", "T0", 100)
        obs.close_span(("block", "T0#0"), 180)
        (span,) = obs.spans
        assert (span.name, span.start, span.duration) == \
            ("blocked:2", 100, 80)

    def test_close_unknown_key_is_ignored(self):
        obs = Observer()
        obs.close_span("nope", 5)
        assert obs.spans == []

    def test_reopen_closes_previous(self):
        obs = Observer()
        obs.open_span("k", "a", "c", "t", 0)
        obs.open_span("k", "b", "c", "t", 10)
        obs.close_span("k", 15)
        assert [(s.name, s.start, s.duration) for s in obs.spans] == \
            [("a", 0, 10), ("b", 10, 5)]

    def test_close_open_spans_flushes_everything(self):
        obs = Observer()
        obs.open_span("a", "a", "c", "t", 0)
        obs.open_span("b", "b", "c", "t", 5)
        obs.close_open_spans(20)
        assert [s.name for s in obs.spans] == ["a", "b"]
        assert obs._open == {}

    def test_injected_clock(self):
        ticks = iter(range(0, 1000, 10))
        obs = Observer(clock=lambda: next(ticks))
        assert obs.clock() == 0
        assert obs.clock() == 10

    def test_decision_stats_by_n(self):
        obs = Observer()
        obs.decision(2, 100, 1000)
        obs.decision(2, 200, 3000)
        obs.decision(5, 500, 9000)
        stats = obs.decision_stats_by_n()
        assert stats[2] == {"count": 2, "sim_cost_mean": 150.0,
                            "wall_ns_mean": 2000.0}
        assert stats[5]["count"] == 1
        assert list(stats) == [2, 5]

    def test_summary_shape(self):
        obs = Observer()
        obs.counter("b")
        obs.counter("a")
        obs.histogram("h", 2.0)
        obs.span("s", "c", "t", 0, 1)
        obs.instant("i", "c", "t", 0)
        obs.decision(3, 10, 100)
        summary = obs.summary()
        assert summary["enabled"] is True
        assert list(summary["counters"]) == ["a", "b"]
        assert summary["histograms"]["h"]["count"] == 1
        assert summary["spans"] == 1
        assert summary["instants"] == 1
        assert summary["scheduler"]["decisions"] == 1
        assert summary["scheduler"]["by_n"]["3"]["count"] == 1
