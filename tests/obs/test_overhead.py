"""Overhead guard: the disabled observability path must stay free.

Two hard promises from DESIGN.md §10:

* **Runtime** — with no observer configured the kernel holds the shared
  :data:`NULL_OBSERVER` and every instrumentation site is a single
  ``obs.enabled`` attribute test.  The reference simulation's min-of-N
  runtime in that mode must stay within 5 % of the no-obs baseline
  (measured here as an interleaved second batch of identical disabled
  runs, so the comparison carries the same machine noise).
* **Determinism** — a fixed seed yields byte-for-byte identical trace
  artifacts across runs; wall-clock readings never enter them.
"""

import json
import random
import time

from repro.experiments.runner import run_once
from repro.experiments.workloads import paper_taskset
from repro.obs import NULL_OBSERVER, Observer
from repro.obs.exporters import chrome_trace, events_jsonl
from repro.sim.kernel import Kernel, SimulationConfig
from repro.units import MS
from tests.helpers import zero_cost_policy

SEED = 99
ROUNDS = 5
#: Timer-granularity slack for the wall-clock comparisons.  The 5 %
#: relative gate is the contract; the absolute term only absorbs
#: scheduler jitter that min-of-N cannot, and stays well below any
#: real per-event regression on a ~60 ms reference run.
SLACK_S = 0.002


def _reference_run(observer=None):
    # Long enough (~60 ms wall) that a 5 % relative gate sits above
    # OS-scheduler noise on a min-of-N statistic.
    rng = random.Random(SEED)
    tasks = paper_taskset(rng, n_tasks=6, n_objects=4,
                          accesses_per_job=2, target_load=0.9)
    return run_once(tasks, "lockfree", 120 * MS,
                    random.Random(SEED + 1), observer=observer)


def _min_wall(observer_factory, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        _reference_run(observer_factory())
        best = min(best, time.perf_counter() - start)
    return best


class TestDisabledOverhead:
    def test_kernel_defaults_to_shared_null_observer(self):
        config = SimulationConfig(tasks=[], arrival_traces=[],
                                  policy=zero_cost_policy("edf"),
                                  horizon=1)
        assert Kernel(config).obs is NULL_OBSERVER

    def test_disabled_runtime_within_5_percent_of_baseline(self):
        # Interleave the two arms so drift (thermal, CPU contention)
        # hits both equally; compare best-of-N, the standard low-noise
        # statistic for wall-clock micro-comparisons.
        baseline = float("inf")
        disabled = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            _reference_run(observer=None)
            baseline = min(baseline, time.perf_counter() - start)
            start = time.perf_counter()
            _reference_run(observer=None)
            disabled = min(disabled, time.perf_counter() - start)
        assert disabled <= baseline * 1.05 + SLACK_S, (
            f"disabled-mode run {disabled:.4f}s exceeds no-obs baseline "
            f"{baseline:.4f}s by more than 5%")

    def test_enabled_overhead_is_bounded(self):
        # Recording costs something, but must stay the same order of
        # magnitude — a regression here means an instrumentation site
        # started doing real work per event.
        disabled = _min_wall(lambda: None)
        enabled = _min_wall(Observer)
        assert enabled <= disabled * 4 + 0.05, (
            f"enabled run {enabled:.4f}s vs disabled {disabled:.4f}s")


class TestTraceDeterminism:
    def test_fixed_seed_traces_are_byte_identical(self):
        artifacts = []
        for _ in range(2):
            obs = Observer()
            _reference_run(observer=obs)
            doc = json.dumps(chrome_trace(obs), sort_keys=True,
                             separators=(",", ":"))
            artifacts.append((doc.encode(), events_jsonl(obs).encode()))
        assert artifacts[0] == artifacts[1]

    def test_disabled_and_enabled_simulate_identically(self):
        # Observation must not perturb the simulation itself.
        plain = _reference_run(observer=None)
        observed = _reference_run(observer=Observer())
        snapshot = lambda r: [
            (rec.task_name, rec.jid, rec.completion_time, rec.retries,
             rec.accrued_utility) for rec in r.records
        ]
        assert snapshot(plain) == snapshot(observed)
        assert plain.scheduler_overhead_time == \
            observed.scheduler_overhead_time
