"""Unit + acceptance tests for the trace-diff diagnoser
(repro.obs.diff and ``repro diff``)."""

import json

import pytest

from repro.cli import main
from repro.obs.diff import (
    TraceFormatError,
    diff_trace_files,
    diff_traces,
    load_trace,
)
from repro.obs.exporters import write_chrome_trace, write_jsonl
from repro.obs.profile import run_profile


def _jsonl(path, rows):
    path.write_text("\n".join(json.dumps(row) for row in rows) + "\n")
    return path


def _decision(t, n, chosen, passes=1, cost=100):
    return {"type": "span", "name": "sched.decision", "cat": "sched",
            "tid": "kernel", "start": t, "duration": cost,
            "args": {"n": n, "chosen": chosen, "passes": passes}}


def _trace_rows(chosen_at_20="T1", t1_retries=0):
    rows = [
        _decision(10, 2, "T0"),
        _decision(20, 2, chosen_at_20),
        {"type": "span", "name": "exec", "cat": "cpu", "tid": "T0",
         "start": 100, "duration": 400, "args": {}},
        {"type": "span", "name": "blocked:2", "cat": "lock", "tid": "T1",
         "start": 150, "duration": 250, "args": {}},
        {"type": "instant", "name": "complete", "cat": "kernel",
         "tid": "T0", "ts": 500, "args": {"utility": 1.5}},
        {"type": "instant", "name": "abort", "cat": "kernel",
         "tid": "T1", "ts": 600, "args": {}},
    ]
    rows += [{"type": "instant", "name": "retry", "cat": "lockfree",
              "tid": "T1", "ts": 200 + i, "args": {"object": 2}}
             for i in range(t1_retries)]
    return rows


class TestLoadTrace:
    def test_jsonl_roundtrip(self, tmp_path):
        path = _jsonl(tmp_path / "a.jsonl", _trace_rows())
        view = load_trace(path)
        assert len(view.spans) == 4
        assert len(view.instants) == 2
        assert view.task_tids() == ["T0", "T1"]
        assert [d["args"]["chosen"] for d in view.decisions()] == \
            ["T0", "T1"]

    def test_multiline_jsonl_starting_with_brace(self, tmp_path):
        # A JSONL stream also starts with "{"; it must not be mistaken
        # for (or rejected as) a Chrome document.
        path = _jsonl(tmp_path / "a.jsonl", _trace_rows())
        assert path.read_text().startswith("{")
        assert len(load_trace(path).spans) == 4

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        view = load_trace(path)
        assert view.spans == [] and view.instants == []

    def test_garbage_raises(self, tmp_path):
        path = tmp_path / "garbage.txt"
        path.write_text("not a trace\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_json_without_trace_events_raises(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"some": "document"}))
        with pytest.raises(TraceFormatError):
            load_trace(path)


class TestFormatParity:
    def test_chrome_and_jsonl_exports_diff_clean(self, tmp_path):
        """Both exporters are lossless over the event model: exporting
        the same run twice must yield an identical schedule."""
        prof = run_profile(workload="step", horizon_us=20_000, seed=3)
        jsonl = tmp_path / "run.jsonl"
        chrome = tmp_path / "run.json"
        write_jsonl(jsonl, prof.observer)
        write_chrome_trace(chrome, prof.observer, prof.tracer)
        diff = diff_trace_files(jsonl, chrome)
        assert diff.identical_schedule
        assert diff.decisions_a == diff.decisions_b > 0
        assert not any(task.changed for task in diff.tasks)
        assert "schedules agree" in diff.render()


class TestDivergence:
    def test_identical_traces(self, tmp_path):
        a = _jsonl(tmp_path / "a.jsonl", _trace_rows())
        b = _jsonl(tmp_path / "b.jsonl", _trace_rows())
        diff = diff_trace_files(a, b)
        assert diff.identical_schedule
        assert diff.to_dict()["first_divergence"] is None

    def test_first_divergent_decision(self, tmp_path):
        a = _jsonl(tmp_path / "a.jsonl", _trace_rows(chosen_at_20="T1"))
        b = _jsonl(tmp_path / "b.jsonl", _trace_rows(chosen_at_20="T0"))
        diff = diff_trace_files(a, b)
        assert not diff.identical_schedule
        assert diff.divergence.index == 1     # decision #0 agreed
        assert diff.divergence.a["chosen"] == "T1"
        assert diff.divergence.b["chosen"] == "T0"
        assert "first divergent scheduling decision: #1" in diff.render()

    def test_truncated_trace_diverges_at_end(self, tmp_path):
        rows = _trace_rows()
        a = _jsonl(tmp_path / "a.jsonl", rows)
        b = _jsonl(tmp_path / "b.jsonl",
                   [r for r in rows
                    if not (r["name"] == "sched.decision"
                            and r["start"] == 20)])
        diff = diff_trace_files(a, b)
        assert diff.divergence.index == 1
        assert diff.divergence.b is None      # B ran out of decisions
        assert "(no further decisions)" in diff.render()

    def test_per_task_deltas(self, tmp_path):
        a = _jsonl(tmp_path / "a.jsonl", _trace_rows(t1_retries=2))
        b = _jsonl(tmp_path / "b.jsonl", _trace_rows(t1_retries=5))
        diff = diff_trace_files(a, b)
        t1 = next(task for task in diff.tasks if task.tid == "T1")
        assert t1.retries == (2, 5)
        assert t1.changed
        assert t1.deltas()["retries"] == 3
        t0 = next(task for task in diff.tasks if task.tid == "T0")
        assert not t0.changed
        assert t0.utility == (1.5, 1.5)
        assert t0.exec_ns == (400, 400)
        assert t1.blocking_ns == (250, 250)
        payload = diff.to_dict()
        assert payload["changed_tasks"] == 1
        assert "2->5" in diff.render()

    def test_kernel_lane_excluded_from_task_deltas(self, tmp_path):
        a = _jsonl(tmp_path / "a.jsonl", _trace_rows())
        b = _jsonl(tmp_path / "b.jsonl", _trace_rows())
        diff = diff_trace_files(a, b)
        assert all(task.tid not in ("kernel", "trace")
                   for task in diff.tasks)


class TestLockfreeVsLockbasedAcceptance:
    """Acceptance: diffing lock-based vs lock-free runs at the same seed
    reports the first divergent decision, deterministically."""

    def _views(self, tmp_path):
        paths = {}
        for sync in ("lockfree", "lockbased"):
            prof = run_profile(workload="step", sync=sync,
                               horizon_us=50_000, seed=5)
            paths[sync] = tmp_path / f"{sync}.jsonl"
            write_jsonl(paths[sync], prof.observer)
        return paths

    def test_divergence_found_and_deterministic(self, tmp_path):
        paths = self._views(tmp_path)
        first = diff_trace_files(paths["lockfree"], paths["lockbased"])
        again = diff_trace_files(paths["lockfree"], paths["lockbased"])
        assert not first.identical_schedule
        assert first.to_dict() == again.to_dict()
        assert first.divergence.index >= 0
        # The mechanisms differ where the paper says they do: only the
        # lock-free side pays retries.
        retries_lf = sum(task.retries[0] for task in first.tasks)
        retries_lb = sum(task.retries[1] for task in first.tasks)
        assert retries_lf > 0
        assert retries_lb == 0
        assert any(task.changed for task in first.tasks)
        text = first.render()
        assert "first divergent scheduling decision" in text
        assert "accrued utility" in text


class TestDiffCli:
    def _export(self, tmp_path, sync, seed=5):
        prof = run_profile(workload="step", sync=sync,
                           horizon_us=20_000, seed=seed)
        path = tmp_path / f"{sync}.jsonl"
        write_jsonl(path, prof.observer)
        return path

    def test_diff_command(self, tmp_path, capsys):
        a = self._export(tmp_path, "lockfree")
        b = self._export(tmp_path, "lockbased")
        out = tmp_path / "diff.json"
        rc = main(["diff", str(a), str(b), "--json", str(out)])
        assert rc == 0
        assert "trace diff" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["command"] == "diff"
        assert payload["decisions"]["a"] > 0
        assert isinstance(payload["tasks"], list)

    def test_missing_file_is_rc_2(self, tmp_path, capsys):
        a = self._export(tmp_path, "lockfree")
        rc = main(["diff", str(a), str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert "trace not found" in capsys.readouterr().err

    def test_unreadable_trace_is_rc_2(self, tmp_path, capsys):
        a = self._export(tmp_path, "lockfree")
        bad = tmp_path / "bad.txt"
        bad.write_text("definitely not a trace\n")
        rc = main(["diff", str(a), str(bad)])
        assert rc == 2
        assert "unreadable trace" in capsys.readouterr().err
