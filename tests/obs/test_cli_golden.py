"""Golden-file regression test: the JSON schema of every CLI command.

Each ``repro <command> --json`` payload is reduced to a structural
schema — the sorted set of ``key-path :: type`` pairs, with list indices
collapsed to ``[]`` and data-dependent key families (counters,
histograms, per-``n`` scheduler rows) collapsed to ``*`` — and compared
against a checked-in golden.  A schema drift is an API change for every
consumer of ``--json`` and must be deliberate: regenerate with

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/obs/test_cli_golden.py

and review the golden diff.
"""

import json
import os
import pathlib

import pytest

from repro.cli import main

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "goldens"

#: Dict paths whose keys are data (not schema): collapse to one entry.
DYNAMIC_KEY_PATHS = frozenset({
    ".obs.counters",
    ".obs.histograms",
    ".obs.scheduler.by_n",
    ".stats.responses",            # serve: per-status-code counts
    ".stats.pool.failure_kinds",   # serve: failure-kind counts
})


def _type_name(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    raise TypeError(f"unexpected JSON scalar {value!r}")


def schema_of(value, path: str = "") -> set[str]:
    if isinstance(value, dict):
        out = {f"{path} :: object"}
        collapse = path in DYNAMIC_KEY_PATHS
        for key, child in value.items():
            out |= schema_of(child, f"{path}.{'*' if collapse else key}")
        return out
    if isinstance(value, list):
        out = {f"{path} :: array"}
        for child in value:
            out |= schema_of(child, path + "[]")
        return out
    return {f"{path} :: {_type_name(value)}"}


def _run_cli(argv_tail, tmp_path) -> dict:
    out = tmp_path / "payload.json"
    rc = main([*argv_tail, "--json", str(out)])
    assert rc == 0
    return json.loads(out.read_text())


def _diff_argv(tmp):
    """Generate two small traces, then diff them."""
    from repro.obs.exporters import write_jsonl
    from repro.obs.profile import run_profile

    paths = []
    for sync in ("lockfree", "lockbased"):
        prof = run_profile(workload="step", sync=sync,
                           horizon_us=10_000, seed=5)
        path = tmp / f"{sync}.jsonl"
        write_jsonl(path, prof.observer)
        paths.append(str(path))
    return ["diff", *paths]


# Fast deterministic invocations, one per CLI command.  The campaign
# commands get a --journal so the engine (and its obs block) engages.
COMMANDS = {
    "quick": lambda tmp: ["quick", "--tasks", "4", "--objects", "3",
                          "--horizon-ms", "20", "--seed", "3"],
    "figure": lambda tmp: ["figure", "fig10", "--repeats", "1",
                           "--horizon-ms", "5",
                           "--journal", str(tmp / "figure.jsonl")],
    "retrybound": lambda tmp: ["retrybound", "--repeats", "1",
                               "--horizon-ms", "10",
                               "--journal", str(tmp / "retry.jsonl")],
    "faults": lambda tmp: ["faults", "--bursts", "0,1", "--repeats", "1",
                           "--horizon-ms", "5",
                           "--journal", str(tmp / "faults.jsonl")],
    "profile": lambda tmp: ["profile", "--tasks", "5", "--objects", "4",
                            "--horizon-ms", "10", "--seed", "0"],
    "sojourn": lambda tmp: ["sojourn", "--r", "10", "--s", "5"],
    # The gate runs against the committed clean fixture (rc 0).
    "bench": lambda tmp: ["bench", "check", "--dir",
                          str(pathlib.Path(__file__).parent.parent
                              / "fixtures" / "trajectories" / "clean")],
    "diff": _diff_argv,
    # Serve: start, idle 0.2s, drain — the config echo + stats schema.
    "serve": lambda tmp: ["serve", "--duration", "0.2",
                          "--drain-grace", "1",
                          "--cache-dir", str(tmp / "serve-cache")],
    # Load: short self-hosted run with verification on, so the report
    # schema includes the verification block in its populated form.
    "load": lambda tmp: ["load", "--self-host", "--rate", "20",
                         "--duration", "0.5", "--consumers", "2",
                         "--scenarios", "2", "--tasks", "4",
                         "--horizon-ms", "10", "--verify", "--seed", "3",
                         "--cache-dir", str(tmp / "load-cache")],
}


@pytest.mark.parametrize("command", sorted(COMMANDS))
def test_cli_json_schema_matches_golden(command, tmp_path, capsys):
    payload = _run_cli(COMMANDS[command](tmp_path), tmp_path)
    capsys.readouterr()   # swallow the human-facing table output
    assert payload["command"] == command
    # Every payload carries the obs block (satellite: repro --json
    # includes the obs summary).
    assert "obs" in payload and "enabled" in payload["obs"]

    schema = sorted(schema_of(payload))
    golden = GOLDEN_DIR / f"cli_{command}.schema.json"
    if os.environ.get("REPRO_REGEN_GOLDENS"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden.write_text(json.dumps(schema, indent=2) + "\n")
    assert golden.exists(), (
        f"golden {golden} missing; regenerate with REPRO_REGEN_GOLDENS=1")
    expected = json.loads(golden.read_text())
    assert schema == expected, (
        f"--json schema drift for {command!r}; if intentional, "
        f"regenerate goldens with REPRO_REGEN_GOLDENS=1 and review")
