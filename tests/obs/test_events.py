"""Unit tests for the observability event model."""

import pytest

from repro.obs.events import (
    CounterSample,
    Histogram,
    InstantEvent,
    SpanEvent,
    freeze_args,
)


class TestFreezeArgs:
    def test_none_and_empty(self):
        assert freeze_args(None) == ()
        assert freeze_args({}) == ()

    def test_sorted_and_hashable(self):
        frozen = freeze_args({"b": 2, "a": 1})
        assert frozen == (("a", 1), ("b", 2))
        hash(frozen)

    def test_round_trips_through_dict(self):
        args = {"job": "T0#1", "segment": 3}
        assert dict(freeze_args(args)) == args


class TestSpanEvent:
    def test_end(self):
        span = SpanEvent(name="exec", cat="cpu", tid="T0",
                         start=10, duration=5)
        assert span.end == 15

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            SpanEvent(name="exec", cat="cpu", tid="T0",
                      start=10, duration=-1)

    def test_zero_duration_allowed(self):
        assert SpanEvent(name="x", cat="c", tid="t",
                         start=0, duration=0).end == 0

    def test_to_dict(self):
        span = SpanEvent(name="exec", cat="cpu", tid="T0", start=1,
                         duration=2, args=freeze_args({"job": "T0#0"}))
        assert span.to_dict() == {
            "type": "span", "name": "exec", "cat": "cpu", "tid": "T0",
            "start": 1, "duration": 2, "args": {"job": "T0#0"},
        }


class TestInstantAndCounter:
    def test_instant_to_dict(self):
        inst = InstantEvent(name="retry", cat="lockfree", tid="T1", ts=7)
        assert inst.to_dict() == {
            "type": "instant", "name": "retry", "cat": "lockfree",
            "tid": "T1", "ts": 7, "args": {},
        }

    def test_counter_sample_to_dict(self):
        sample = CounterSample(name="retries.0", ts=5, value=3)
        assert sample.to_dict() == {
            "type": "counter", "name": "retries.0", "ts": 5, "value": 3,
        }


class TestHistogram:
    def test_empty_summary(self):
        assert Histogram().summary() == {"count": 0}

    def test_count_and_total(self):
        hist = Histogram()
        for v in (1.0, 2.0, 3.0):
            hist.record(v)
        assert hist.count == 3
        assert hist.total == 6.0

    def test_summary_statistics(self):
        hist = Histogram([float(v) for v in range(1, 11)])
        summary = hist.summary()
        assert summary["count"] == 10
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        assert summary["mean"] == 5.5
        assert summary["p50"] == 5.0   # nearest rank (round-half-even)
        assert summary["p90"] == 9.0

    def test_single_value(self):
        summary = Histogram([4.0]).summary()
        assert summary["min"] == summary["p50"] == summary["max"] == 4.0

    def test_summary_is_order_independent(self):
        a = Histogram([3.0, 1.0, 2.0]).summary()
        b = Histogram([1.0, 2.0, 3.0]).summary()
        assert a == b
