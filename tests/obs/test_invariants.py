"""Property-based invariants over random workloads, via the obs layer.

For any seeded random workload (``tests.helpers.random_workload``) under
either RUA variant and either retry policy:

1. **No CPU overlap** — the ``exec`` spans the kernel emits never
   overlap (one CPU in the paper's model).
2. **Segments stay in-window** — every executed segment of a job lies
   within ``[release, completion-or-abort]``.
3. **Theorem 2** — observed per-job retries never exceed
   ``f_i <= 3 a_i + sum 2 a_j (ceil(C_i/W_j) + 1)``.
4. **Utility accounting** — the accrued total equals the sum over
   completed jobs of their TUF at the observed sojourn; aborted jobs
   accrue zero.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis.retry_bound import retry_bound_for_taskset
from repro.api import build_policy_and_mode
from repro.obs import Observer
from repro.sim.kernel import Kernel, SimulationConfig
from repro.sim.objects import RetryPolicy
from tests.helpers import random_workload

syncs = st.sampled_from(["lockfree", "lockbased"])
retry_policies = st.sampled_from(
    [RetryPolicy.ON_CONFLICT, RetryPolicy.ON_PREEMPTION])


def _run(seed: int, sync: str, retry_policy: RetryPolicy):
    rng = random.Random(seed)
    tasks, traces, horizon = random_workload(rng)
    policy, mode, costs = build_policy_and_mode(sync)
    obs = Observer()
    config = SimulationConfig(
        tasks=tasks, arrival_traces=traces, policy=policy,
        horizon=horizon, sync=mode, costs=costs,
        retry_policy=retry_policy, observer=obs,
    )
    result = Kernel(config).run()
    return tasks, result, obs


def _job_windows(result, obs):
    """Map job name -> (release, finish) using records plus the abort
    instants (aborted records carry no completion time)."""
    aborts = {dict(i.args)["job"]: i.ts for i in obs.instants
              if i.name == "abort"}
    windows = {}
    for record in result.records:
        name = f"{record.task_name}#{record.jid}"
        finish = record.completion_time if record.completion_time \
            is not None else aborts.get(name)
        windows[name] = (record.release_time, finish)
    return windows


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6), sync=syncs, retry=retry_policies)
def test_exec_spans_never_overlap(seed, sync, retry):
    _, _, obs = _run(seed, sync, retry)
    execs = sorted((s for s in obs.spans if s.name == "exec"),
                   key=lambda s: (s.start, s.end))
    for prev, nxt in zip(execs, execs[1:]):
        assert nxt.start >= prev.end, (
            f"CPU overlap: {prev} and {nxt} (seed {seed})")


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6), sync=syncs, retry=retry_policies)
def test_exec_spans_stay_in_job_window(seed, sync, retry):
    _, result, obs = _run(seed, sync, retry)
    windows = _job_windows(result, obs)
    for span in obs.spans:
        if span.name != "exec":
            continue
        job = dict(span.args)["job"]
        if job not in windows:
            # Still live at the horizon: bounded by the horizon itself.
            assert span.end <= result.horizon
            continue
        release, finish = windows[job]
        assert span.start >= release, f"{job} ran before release"
        if finish is not None:
            assert span.end <= finish, f"{job} ran after departure"


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6), retry=retry_policies)
def test_retries_respect_theorem2_bound(seed, retry):
    tasks, result, _ = _run(seed, "lockfree", retry)
    index_of = {task.name: i for i, task in enumerate(tasks)}
    for record in result.records:
        try:
            bound = retry_bound_for_taskset(
                tasks, index_of[record.task_name])
        except (ValueError, ZeroDivisionError):
            continue
        assert record.retries <= bound, (
            f"{record.task_name}#{record.jid}: {record.retries} retries "
            f"> Theorem 2 bound {bound} (seed {seed})")


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6), sync=syncs, retry=retry_policies)
def test_accrued_utility_sums_over_completed_jobs(seed, sync, retry):
    tasks, result, _ = _run(seed, sync, retry)
    tuf_of = {task.name: task.tuf for task in tasks}
    expected = 0.0
    for record in result.records:
        if record.aborted:
            assert record.accrued_utility == 0.0
        else:
            assert record.accrued_utility == \
                tuf_of[record.task_name].utility(record.sojourn)
            expected += record.accrued_utility
    assert result.accrued_utility == expected
