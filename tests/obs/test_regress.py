"""Unit + acceptance tests for the perf-regression gate
(repro.obs.regress and ``repro bench check``)."""

import json
import pathlib
import shutil

import pytest

from repro.cli import main
from repro.obs.regress import (
    MAX_ENTRIES,
    MIN_HISTORY,
    append_trajectory,
    changepoint_scan,
    check_trajectories,
    ewma,
    judge_series,
    list_trajectories,
    load_trajectory,
    metric_direction,
    trajectory_path,
)

CLEAN_FIXTURE = (pathlib.Path(__file__).parent.parent / "fixtures"
                 / "trajectories" / "clean")


class TestMetricDirection:
    def test_exact_and_suffix_matches(self):
        assert metric_direction("wall_s") == "up"
        assert metric_direction("scheduler_overhead_time") == "up"
        assert metric_direction("aur") == "down"
        assert metric_direction("accrued_utility") == "down"

    def test_unknown_is_informational(self):
        assert metric_direction("jobs") == "none"
        assert metric_direction("seed") == "none"


class TestTrajectoryStore:
    def test_append_keeps_scalars_only(self, tmp_path):
        append_trajectory("k", {"aur": 0.9, "sync": "lockfree",
                                "raw": [1, 2], "nested": {"a": 1}},
                          wall_s=1.5, directory=tmp_path, now=10.0)
        document = load_trajectory("k", tmp_path)
        entry = document["entries"][0]
        assert entry["metrics"] == {"aur": 0.9, "sync": "lockfree"}
        assert entry["wall_s"] == 1.5
        assert entry["seq"] == 1

    def test_seq_monotonic_and_survives_corruption(self, tmp_path):
        append_trajectory("k", {"x": 1}, directory=tmp_path, now=1.0)
        append_trajectory("k", {"x": 2}, directory=tmp_path, now=2.0)
        assert [e["seq"] for e in
                load_trajectory("k", tmp_path)["entries"]] == [1, 2]
        trajectory_path("bad", tmp_path).write_text("{not json")
        assert load_trajectory("bad", tmp_path)["entries"] == []

    def test_eviction_is_oldest_first(self, tmp_path):
        document = {"bench": "k", "schema": 1, "entries": [
            {"seq": seq, "unix_time": 0.0, "wall_s": None, "metrics": {}}
            for seq in range(MAX_ENTRIES, 0, -1)   # stored newest-first
        ]}
        trajectory_path("k", tmp_path).write_text(json.dumps(document))
        append_trajectory("k", {"x": 1}, directory=tmp_path, now=0.0)
        kept = load_trajectory("k", tmp_path)["entries"]
        assert len(kept) == MAX_ENTRIES
        assert [e["seq"] for e in kept] == \
            list(range(2, MAX_ENTRIES + 2))

    def test_list_trajectories(self, tmp_path):
        assert list_trajectories(tmp_path / "absent") == []
        append_trajectory("b", {}, directory=tmp_path, now=0.0)
        append_trajectory("a", {}, directory=tmp_path, now=0.0)
        assert list_trajectories(tmp_path) == ["a", "b"]


class TestStats:
    def test_ewma_weights_recent_points(self):
        assert ewma([1.0]) == 1.0
        assert ewma([0.0, 10.0], alpha=0.5) == 5.0
        with pytest.raises(ValueError):
            ewma([])

    def test_changepoint_finds_level_shift(self):
        values = [1.0, 1.1, 0.9, 1.0, 3.0, 3.1, 2.9, 3.0]
        index, score = changepoint_scan(values)
        assert index == 4
        assert score > 3.0

    def test_changepoint_too_short(self):
        assert changepoint_scan([1.0, 2.0]) is None


class TestJudgeSeries:
    def test_insufficient_history(self):
        verdict = judge_series("wall_s", [1.0] * MIN_HISTORY)
        assert verdict.status == "insufficient-history"
        assert not verdict.gated

    def test_stable_series_ok(self):
        verdict = judge_series("wall_s",
                               [1.0, 1.01, 0.99, 1.02, 0.98, 1.0])
        assert verdict.status == "ok"

    def test_three_x_slowdown_gates(self):
        verdict = judge_series("wall_s",
                               [1.0, 1.01, 0.99, 1.02, 0.98, 3.0])
        assert verdict.status == "regression"
        assert verdict.gated
        assert verdict.z > 4.0
        assert verdict.rel_change > 1.5
        assert verdict.changepoint == 5 or verdict.changepoint is None

    def test_speedup_never_gates(self):
        verdict = judge_series("wall_s",
                               [1.0, 1.01, 0.99, 1.02, 0.98, 0.3])
        assert verdict.status == "drift"     # large but better direction

    def test_lower_is_worse_direction(self):
        verdict = judge_series("aur", [0.9, 0.91, 0.89, 0.9, 0.9, 0.3])
        assert verdict.status == "regression"

    def test_sparse_count_series_does_not_gate(self):
        # MAD degenerates to 0 on majority-identical histories; the
        # stdev fallback keeps a 0->1 count wobble below the gate.
        verdict = judge_series("retries", [0, 0, 1, 0, 0, 1])
        assert verdict.status == "ok"
        assert abs(verdict.z) < 4.0

    def test_constant_history_still_detects_real_jump(self):
        # A deterministic metric that was flat and genuinely moved
        # must still gate (scale floors, not the stdev fallback).
        verdict = judge_series("retries", [5, 5, 5, 5, 5, 20])
        assert verdict.status == "regression"

    def test_unknown_direction_reports_drift_only(self):
        verdict = judge_series("jobs", [10, 10, 10, 10, 10, 100])
        assert verdict.status == "drift"
        assert not verdict.gated


class TestCheckTrajectories:
    def _seed(self, tmp_path, walls):
        for i, wall in enumerate(walls):
            append_trajectory("kernel", {"aur": 1.0}, wall_s=wall,
                              directory=tmp_path, now=float(i))

    def test_clean_store(self, tmp_path):
        self._seed(tmp_path, [1.0, 1.01, 0.99, 1.02, 0.98, 1.0])
        report = check_trajectories(tmp_path)
        assert not report.regressed
        assert "gate clean" in report.render()

    def test_regressed_store_and_report(self, tmp_path):
        self._seed(tmp_path, [1.0, 1.01, 0.99, 1.02, 0.98, 3.1])
        report = check_trajectories(tmp_path)
        assert report.regressed
        text = report.render()
        assert "REGRESSION" in text
        assert "GATE FAILED: 1 regressed series" in text

    def test_empty_store(self, tmp_path):
        report = check_trajectories(tmp_path)
        assert not report.regressed
        assert "nothing to gate" in report.render()


class TestBenchCheckCli:
    """Acceptance: `repro bench check` exits 0 on the clean fixture and
    non-zero once a 3x slowdown is injected into the trajectory."""

    def test_clean_fixture_passes(self, tmp_path, capsys):
        rc = main(["bench", "check", "--dir", str(CLEAN_FIXTURE),
                   "--json", str(tmp_path / "out.json")])
        assert rc == 0
        assert "gate clean" in capsys.readouterr().out
        payload = json.loads((tmp_path / "out.json").read_text())
        assert payload["command"] == "bench"
        assert payload["regressed"] is False
        assert payload["exit_code"] == 0

    def _inject_slowdown(self, tmp_path) -> pathlib.Path:
        store = tmp_path / "trajectories"
        shutil.copytree(CLEAN_FIXTURE, store)
        path = store / "kernel.json"
        document = json.loads(path.read_text())
        last = document["entries"][-1]
        slow = json.loads(json.dumps(last))
        slow["seq"] = last["seq"] + 1
        slow["wall_s"] = round(last["wall_s"] * 3.0, 6)
        document["entries"].append(slow)
        path.write_text(json.dumps(document))
        return store

    def test_injected_slowdown_fails_gate(self, tmp_path, capsys):
        store = self._inject_slowdown(tmp_path)
        report_path = tmp_path / "gate.txt"
        rc = main(["bench", "check", "--dir", str(store),
                   "--report", str(report_path)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "GATE FAILED" in out
        assert "wall_s" in out
        # The --report artifact CI uploads carries the same verdict.
        assert "GATE FAILED" in report_path.read_text()

    def test_report_action_never_gates(self, tmp_path, capsys):
        store = self._inject_slowdown(tmp_path)
        rc = main(["bench", "report", "--dir", str(store)])
        assert rc == 0
        assert "GATE FAILED" in capsys.readouterr().out

    def test_record_appends_entry(self, tmp_path, capsys):
        store = tmp_path / "store"
        rc = main(["bench", "record", "--dir", str(store),
                   "--horizon-ms", "5", "--seed", "7"])
        assert rc == 0
        entries = load_trajectory("kernel", store)["entries"]
        assert len(entries) == 1
        assert entries[0]["metrics"]["seed"] == 7
        assert "trajectory entry appended" in capsys.readouterr().out
