"""Unit tests for the Chrome-trace / JSONL / summary exporters."""

import json

from repro.obs import Histogram, Observer
from repro.obs.exporters import (
    chrome_trace,
    events_jsonl,
    render_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim.tracing import TraceKind, Tracer


def _sample_observer() -> Observer:
    obs = Observer()
    obs.span("exec", "cpu", "T0", 1_000, 2_000, {"job": "T0#0"})
    obs.span("sched.decision", "sched", "kernel", 3_000, 500)
    obs.instant("retry", "lockfree", "T1", 4_000, {"object": 2})
    obs.tick_counter("retries.2", ts=4_000)
    return obs


class TestChromeTrace:
    def test_thread_metadata_and_phases(self):
        doc = chrome_trace(_sample_observer())
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ns"
        by_ph = {}
        for event in events:
            by_ph.setdefault(event["ph"], []).append(event)
        # One metadata record per distinct tid lane, first-seen order.
        names = [m["args"]["name"] for m in by_ph["M"]]
        assert names == ["T0", "kernel", "T1"]
        tids = [m["tid"] for m in by_ph["M"]]
        assert tids == [1, 2, 3]
        assert len(by_ph["X"]) == 2
        assert len(by_ph["i"]) == 1
        assert len(by_ph["C"]) == 1

    def test_timestamps_are_microseconds(self):
        doc = chrome_trace(_sample_observer())
        span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert span["ts"] == 1.0      # 1000 ns -> 1 µs
        assert span["dur"] == 2.0

    def test_counter_track(self):
        doc = chrome_trace(_sample_observer())
        counter = next(e for e in doc["traceEvents"] if e["ph"] == "C")
        assert counter["name"] == "retries.2"
        assert counter["tid"] == 0
        assert counter["args"] == {"value": 1}

    def test_tracer_lane_appended(self):
        tracer = Tracer()
        tracer.emit(5_000, TraceKind.COMPLETE, "T0#0", detail="u=1.0")
        doc = chrome_trace(_sample_observer(), tracer)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta[-1]["args"]["name"] == "trace"
        lane = meta[-1]["tid"]
        trace_events = [e for e in doc["traceEvents"]
                        if e.get("cat") == "trace"]
        assert len(trace_events) == 1
        assert trace_events[0]["tid"] == lane

    def test_empty_observer(self):
        doc = chrome_trace(Observer())
        assert doc["traceEvents"] == []

    def test_write_is_parseable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, _sample_observer())
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded
        assert path.read_text().endswith("\n")


class TestJsonl:
    def test_one_json_object_per_line(self, tmp_path):
        obs = _sample_observer()
        text = events_jsonl(obs)
        lines = text.strip().split("\n")
        assert len(lines) == 4      # 2 spans + 1 instant + 1 sample
        kinds = [json.loads(line)["type"] for line in lines]
        assert kinds == ["span", "span", "instant", "counter"]
        path = tmp_path / "events.jsonl"
        write_jsonl(path, obs)
        assert path.read_text() == text

    def test_empty_is_empty_string(self):
        assert events_jsonl(Observer()) == ""


class TestExporterEdgeCases:
    """Degenerate observers must still export valid artifacts."""

    def test_empty_observer_writes_valid_chrome_json(self, tmp_path):
        path = tmp_path / "empty.json"
        write_chrome_trace(path, Observer())
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"] == []
        assert loaded["displayTimeUnit"] == "ns"

    def test_counter_only_run(self, tmp_path):
        obs = Observer()
        obs.tick_counter("retries.0", ts=100)
        obs.tick_counter("retries.0", ts=200)
        obs.counter("kernel.arrivals", 3)      # scalar only, no samples
        doc = chrome_trace(obs)
        phases = sorted({e["ph"] for e in doc["traceEvents"]})
        assert phases == ["C"]                 # no spans/instants/meta
        values = [e["args"]["value"] for e in doc["traceEvents"]]
        assert values == [1, 2]
        path = tmp_path / "counters.json"
        write_chrome_trace(path, obs)
        assert json.loads(path.read_text())["traceEvents"] == \
            doc["traceEvents"]
        # JSONL mirrors the same two samples.
        lines = events_jsonl(obs).strip().split("\n")
        assert [json.loads(line)["type"] for line in lines] == \
            ["counter", "counter"]

    def test_zero_completed_jobs_still_valid(self, tmp_path):
        from repro.obs.profile import run_profile

        # 50 µs horizon: jobs arrive and the scheduler runs, but no job
        # can finish — the trace must still be a valid Chrome document.
        prof = run_profile(workload="step", horizon_us=50, seed=0)
        assert prof.observer.counters.get("kernel.completions", 0) == 0
        assert not any(i.name == "complete"
                       for i in prof.observer.instants)
        path = tmp_path / "nocomplete.json"
        write_chrome_trace(path, prof.observer, prof.tracer)
        loaded = json.loads(path.read_text())
        assert isinstance(loaded["traceEvents"], list)
        meta = [e for e in loaded["traceEvents"] if e["ph"] == "M"]
        assert meta, "thread metadata must still label the lanes"
        # And the summary table renders without a completions section.
        text = render_summary(prof.observer.summary())
        assert "counters:" in text


class TestRenderSummary:
    def test_disabled(self):
        text = render_summary({"enabled": False})
        assert "observability disabled" in text

    def test_sections_present(self):
        obs = _sample_observer()
        obs.histogram("job.retries", 2.0)
        obs.decision(3, 100, 5_000)
        text = render_summary(obs.summary(), title="profile: test")
        assert text.startswith("profile: test")
        assert "counters:" in text
        assert "retries.2" in text
        assert "histograms" in text
        assert "scheduler decisions: 1" in text
        assert "n=  3" in text

    def test_empty_histogram_renders_n0(self):
        obs = Observer()
        obs.histograms["empty"] = Histogram()
        text = render_summary(obs.summary())
        assert "n=0" in text
