"""Unit tests for the BENCH_*.json perf-trajectory baselines."""

import json

from repro.obs.bench import (
    ENV_BASELINE_DIR,
    MAX_RUNS,
    baseline_path,
    load_baseline,
    record_bench_baseline,
)


class TestBaselinePath:
    def test_explicit_directory_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_BASELINE_DIR, "/somewhere/else")
        assert baseline_path("kernel", tmp_path) == \
            tmp_path / "BENCH_kernel.json"

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_BASELINE_DIR, str(tmp_path))
        assert baseline_path("kernel") == tmp_path / "BENCH_kernel.json"


class TestLoadBaseline:
    def test_missing_file_gives_skeleton(self, tmp_path):
        assert load_baseline("kernel", tmp_path) == \
            {"bench": "kernel", "runs": []}

    def test_corrupt_file_gives_skeleton(self, tmp_path):
        (tmp_path / "BENCH_kernel.json").write_text("{not json")
        assert load_baseline("kernel", tmp_path)["runs"] == []

    def test_wrong_shape_gives_skeleton(self, tmp_path):
        (tmp_path / "BENCH_kernel.json").write_text('["a", "b"]')
        assert load_baseline("kernel", tmp_path)["runs"] == []


class TestRecordBenchBaseline:
    def test_appends_with_increasing_seq(self, tmp_path):
        record_bench_baseline("kernel", {"aur": 0.9}, wall_s=1.25,
                              directory=tmp_path, now=100.0)
        path = record_bench_baseline("kernel", {"aur": 0.8},
                                     directory=tmp_path, now=200.0)
        document = json.loads(path.read_text())
        assert [run["seq"] for run in document["runs"]] == [1, 2]
        assert document["runs"][0]["wall_s"] == 1.25
        assert document["runs"][1]["wall_s"] is None
        assert document["runs"][0]["metrics"] == {"aur": 0.9}
        assert document["runs"][0]["unix_time"] == 100.0

    def test_trajectory_is_capped(self, tmp_path):
        for i in range(MAX_RUNS + 5):
            record_bench_baseline("cap", {"i": i}, directory=tmp_path,
                                  now=float(i))
        runs = load_baseline("cap", tmp_path)["runs"]
        assert len(runs) == MAX_RUNS
        assert runs[-1]["metrics"] == {"i": MAX_RUNS + 4}
        # seq keeps counting even after the cap trims old entries.
        assert runs[-1]["seq"] == MAX_RUNS + 5

    def test_cap_boundary_is_exact(self, tmp_path):
        """At exactly MAX_RUNS nothing is evicted; one more run evicts
        exactly the oldest record (seq 1), deterministically."""
        for i in range(MAX_RUNS):
            record_bench_baseline("edge", {"i": i}, directory=tmp_path,
                                  now=float(i))
        runs = load_baseline("edge", tmp_path)["runs"]
        assert [run["seq"] for run in runs] == \
            list(range(1, MAX_RUNS + 1))
        record_bench_baseline("edge", {"i": MAX_RUNS},
                              directory=tmp_path, now=float(MAX_RUNS))
        runs = load_baseline("edge", tmp_path)["runs"]
        assert len(runs) == MAX_RUNS
        assert runs[0]["seq"] == 2          # seq 1 evicted, nothing else
        assert runs[-1]["seq"] == MAX_RUNS + 1

    def test_eviction_is_oldest_first_even_when_file_unordered(
            self, tmp_path):
        """A hand-merged file with out-of-order seq still evicts its
        genuinely oldest records, not whatever sat at the front."""
        runs = [{"seq": seq, "unix_time": float(seq), "wall_s": None,
                 "metrics": {"seq": seq}}
                for seq in range(MAX_RUNS, 0, -1)]   # newest first
        (tmp_path / "BENCH_shuffled.json").write_text(
            json.dumps({"bench": "shuffled", "runs": runs}))
        record_bench_baseline("shuffled", {"seq": MAX_RUNS + 1},
                              directory=tmp_path, now=0.0)
        kept = load_baseline("shuffled", tmp_path)["runs"]
        assert len(kept) == MAX_RUNS
        assert [run["seq"] for run in kept] == \
            list(range(2, MAX_RUNS + 2))

    def test_malformed_entries_are_dropped_on_append(self, tmp_path):
        (tmp_path / "BENCH_mixed.json").write_text(json.dumps({
            "bench": "mixed",
            "runs": [{"seq": 3, "metrics": {}}, "not-a-run", 42],
        }))
        record_bench_baseline("mixed", {"x": 1}, directory=tmp_path,
                              now=0.0)
        kept = load_baseline("mixed", tmp_path)["runs"]
        assert [run["seq"] for run in kept] == [3, 4]

    def test_survives_corrupt_previous_file(self, tmp_path):
        (tmp_path / "BENCH_kernel.json").write_text("garbage")
        path = record_bench_baseline("kernel", {"x": 1},
                                     directory=tmp_path, now=1.0)
        assert json.loads(path.read_text())["runs"][0]["seq"] == 1
