"""Unit tests for the labeled metrics registry, the observer bridges,
and the stdlib /metrics endpoint."""

import urllib.error
import urllib.request

import pytest

from repro.campaign import CampaignConfig, CampaignEngine
from repro.faults.report import DegradationReport, InvariantViolation
from repro.obs import Observer
from repro.obs.metrics import (
    OPENMETRICS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsServer,
    Summary,
    declare_standard_families,
    fill_from_degradation,
    fill_from_observer,
    sanitize_metric_name,
    snapshot_openmetrics,
)


class TestSanitizeMetricName:
    def test_dotted_names_collapse(self):
        assert sanitize_metric_name("campaign.trials") == "campaign_trials"
        assert sanitize_metric_name("retries.2") == "retries_2"

    def test_leading_digit_gets_prefix(self):
        assert sanitize_metric_name("2fast") == "m_2fast"

    def test_strips_stray_symbols(self):
        assert sanitize_metric_name("a-b c%d") == "a_b_c_d"


class TestCounter:
    def test_unlabeled_counter_renders_zero_before_first_inc(self):
        counter = Counter("hits", "help")
        assert counter.samples() == ["hits_total 0"]

    def test_total_suffix_and_labels(self):
        counter = Counter("hits", labelnames=("route",))
        counter.inc(route="a")
        counter.inc(2, route="b")
        assert counter.samples() == [
            'hits_total{route="a"} 1',
            'hits_total{route="b"} 2',
        ]

    def test_cannot_decrease(self):
        counter = Counter("hits")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_label_set_must_match(self):
        counter = Counter("hits", labelnames=("route",))
        with pytest.raises(ValueError):
            counter.inc(other="x")
        with pytest.raises(ValueError):
            counter.inc()

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("9bad")
        with pytest.raises(ValueError):
            Counter("ok", labelnames=("__reserved",))

    def test_label_values_escaped(self):
        counter = Counter("hits", labelnames=("path",))
        counter.inc(path='a"b\\c\nd')
        assert counter.samples() == [
            'hits_total{path="a\\"b\\\\c\\nd"} 1']


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("depth")
        gauge.set(5)
        gauge.inc(2.5)
        assert gauge.value() == 7.5
        assert gauge.samples() == ["depth 7.5"]


class TestHistogram:
    def test_buckets_are_cumulative(self):
        hist = Histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            hist.observe(value)
        assert hist.samples() == [
            'lat_bucket{le="1"} 2',
            'lat_bucket{le="10"} 3',
            'lat_bucket{le="+Inf"} 4',
            "lat_count 4",
            "lat_sum 106.2",
        ]

    def test_inf_bucket_always_present(self):
        hist = Histogram("lat", buckets=(1.0,))
        assert hist.buckets[-1] == float("inf")


class TestSummary:
    def test_digest_renders_quantiles(self):
        summary = Summary("job_retries")
        summary.set_digest(count=10, total=25.0,
                           quantiles={"0.5": 2.0, "0.9": 4.0})
        assert summary.samples() == [
            'job_retries{quantile="0.5"} 2',
            'job_retries{quantile="0.9"} 4',
            "job_retries_count 10",
            "job_retries_sum 25",
        ]


class TestRegistry:
    def test_render_has_type_headers_and_eof(self):
        registry = MetricsRegistry()
        registry.counter("b_hits", "hits help").inc()
        registry.gauge("a_depth").set(1)
        text = registry.render()
        lines = text.splitlines()
        # Families in sorted-name order; EOF terminator on its own line.
        assert lines[0] == "# TYPE a_depth gauge"
        assert "# TYPE b_hits counter" in lines
        assert "# HELP b_hits hits help" in lines
        assert lines[-1] == "# EOF"
        assert text.endswith("# EOF\n")

    def test_same_name_same_kind_returns_existing(self):
        registry = MetricsRegistry()
        first = registry.counter("hits")
        second = registry.counter("hits")
        assert first is second

    def test_same_name_other_kind_rejected(self):
        registry = MetricsRegistry()
        registry.counter("hits")
        with pytest.raises(ValueError):
            registry.gauge("hits")


class TestObserverBridge:
    def test_labeled_routes(self):
        obs = Observer()
        obs.counter("retries.2", 7)
        obs.counter("invariant.violations.retry-bound", 3)
        obs.counter("campaign.attempt_failures.transient", 2)
        text = fill_from_observer(MetricsRegistry(), obs).render()
        assert 'repro_object_retries_total{object="2"} 7' in text
        assert ('repro_invariant_violations_total'
                '{monitor="retry-bound"} 3') in text
        assert "repro_invariant_violations_detected_total 3" in text
        assert ('repro_campaign_attempt_failures_total'
                '{kind="transient"} 2') in text

    def test_flat_and_fallback_routes(self):
        obs = Observer()
        obs.counter("campaign.trials", 4)
        obs.counter("kernel.completions", 9)
        text = fill_from_observer(MetricsRegistry(), obs).render()
        assert "repro_campaign_trials_total 4" in text
        assert "repro_kernel_completions_total 9" in text

    def test_histograms_become_summaries(self):
        obs = Observer()
        for value in (1.0, 2.0, 3.0, 4.0):
            obs.histogram("job.retries", value)
        text = fill_from_observer(MetricsRegistry(), obs).render()
        assert "# TYPE repro_job_retries summary" in text
        assert 'repro_job_retries{quantile="0.5"}' in text
        assert "repro_job_retries_count 4" in text
        assert "repro_job_retries_sum 10" in text

    def test_null_and_empty_observers_contribute_nothing(self):
        from repro.obs.observer import NULL_OBSERVER
        base = MetricsRegistry().render()
        assert fill_from_observer(MetricsRegistry(),
                                  NULL_OBSERVER).render() == base
        assert fill_from_observer(MetricsRegistry(),
                                  Observer()).render() == base


class TestDegradationBridge:
    def test_violations_and_actions(self):
        report = DegradationReport(shed_jobs=2, deferred_jobs=1,
                                   retry_aborts=3)
        report.violations.extend([
            InvariantViolation(time=10, monitor="retry-bound", job="T0#0"),
            InvariantViolation(time=20, monitor="retry-bound", job="T1#0"),
            InvariantViolation(time=30, monitor="feasibility", job=""),
        ])
        text = fill_from_degradation(MetricsRegistry(), report).render()
        assert ('repro_invariant_violations_total'
                '{monitor="retry-bound"} 2') in text
        assert ('repro_invariant_violations_total'
                '{monitor="feasibility"} 1') in text
        assert "repro_invariant_violations_detected_total 3" in text
        assert 'repro_degradation_actions_total{action="shed"} 2' in text
        assert ('repro_degradation_actions_total'
                '{action="retry_abort"} 3') in text


class TestSnapshot:
    def test_standard_families_render_at_zero(self):
        text = snapshot_openmetrics()
        assert "repro_campaign_trials_total 0" in text
        assert "repro_campaign_retries_total 0" in text
        assert "repro_invariant_violations_detected_total 0" in text
        assert text.endswith("# EOF\n")

    def test_extra_hook(self):
        text = snapshot_openmetrics(
            extra=lambda reg: reg.gauge("workers_busy").set(3))
        assert "workers_busy 3" in text

    def test_declare_is_idempotent(self):
        registry = MetricsRegistry()
        declare_standard_families(registry)
        declare_standard_families(registry)
        assert registry.render().count(
            "# TYPE repro_campaign_trials counter") == 1


def _scrape(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=5) as response:
        return (response.status, response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"))


class TestMetricsServer:
    def test_serves_openmetrics_and_healthz(self):
        obs = Observer()
        obs.counter("campaign.trials", 2)
        with MetricsServer(lambda: snapshot_openmetrics(observer=obs),
                           port=0) as server:
            assert server.port
            status, content_type, body = _scrape(server.url)
            assert status == 200
            assert content_type == OPENMETRICS_CONTENT_TYPE
            assert "repro_campaign_trials_total 2" in body
            assert body.endswith("# EOF\n")
            base = server.url.rsplit("/", 1)[0]
            assert _scrape(f"{base}/healthz")[2] == "ok\n"
            with pytest.raises(urllib.error.HTTPError):
                _scrape(f"{base}/nope")

    def test_scrape_sees_live_updates(self):
        obs = Observer()
        with MetricsServer(lambda: snapshot_openmetrics(observer=obs),
                           port=0) as server:
            assert "repro_campaign_trials_total 0" in _scrape(server.url)[2]
            obs.counter("campaign.trials", 5)
            assert "repro_campaign_trials_total 5" in _scrape(server.url)[2]

    def test_close_stops_serving(self):
        server = MetricsServer(lambda: "# EOF\n", port=0).start()
        url = server.url
        server.close()
        assert server.port is None
        with pytest.raises(urllib.error.URLError):
            _scrape(url)


def _trial(seed):
    return seed + 1


class TestEngineIntegration:
    def test_campaign_serves_metrics_while_running(self):
        engine = CampaignEngine(CampaignConfig(metrics_port=0),
                                observer=Observer())
        try:
            assert engine.metrics_url is not None
            engine.map(_trial, [(1,), (2,)])
            body = _scrape(engine.metrics_url)[2]
            assert "repro_campaign_trials_total 2" in body
            assert "repro_campaign_trials_ok_total 2" in body
            assert body.endswith("# EOF\n")
        finally:
            engine.close()
        assert engine.metrics_url is None

    def test_no_server_without_port(self):
        engine = CampaignEngine(CampaignConfig())
        try:
            assert engine.metrics_url is None
        finally:
            engine.close()
