"""Kernel/scheduler instrumentation: the obs events a simulation emits."""

import random

from repro.api import build_policy_and_mode
from repro.obs import Observer
from repro.sim.kernel import Kernel, SimulationConfig
from repro.sim.objects import RetryPolicy
from tests.helpers import simple_task


def _run(sync: str, tasks, traces_us, observer=None,
         retry_policy=RetryPolicy.ON_CONFLICT, horizon_us=100_000):
    policy, mode, costs = build_policy_and_mode(sync)
    config = SimulationConfig(
        tasks=tasks,
        arrival_traces=[[t * 1000 for t in tr] for tr in traces_us],
        policy=policy,
        horizon=horizon_us * 1000,
        sync=mode,
        costs=costs,
        retry_policy=retry_policy,
        observer=observer,
    )
    kernel = Kernel(config)
    return kernel.run()


def _contended_tasks():
    # Two writers on the same object with overlapping arrivals.
    return [
        simple_task("A", critical_us=5_000, compute_us=100,
                    accesses=[(0, 400)]),
        simple_task("B", critical_us=1_000, compute_us=50,
                    accesses=[(0, 30)]),
    ]


class TestKernelCounters:
    def test_arrivals_and_completions(self):
        obs = Observer()
        tasks = [simple_task("A", critical_us=2_000, compute_us=100)]
        result = _run("ideal", tasks, [[0, 3_000]], observer=obs)
        assert obs.counters["kernel.arrivals"] == 2
        assert obs.counters["kernel.completions"] == len(result.records)
        assert obs.histograms["job.sojourn_ns"].count == 2
        assert obs.histograms["job.utility"].count == 2

    def test_scheduler_decision_spans_and_histogram(self):
        obs = Observer()
        tasks = [simple_task("A", critical_us=2_000, compute_us=100)]
        result = _run("ideal", tasks, [[0]], observer=obs)
        decisions = [s for s in obs.spans if s.name == "sched.decision"]
        assert len(decisions) == result.scheduler_invocations
        assert all(s.tid == "kernel" for s in decisions)
        assert obs.histograms["sched.ready_queue"].count == \
            result.scheduler_invocations
        assert len(obs.decisions) == result.scheduler_invocations
        # Decision spans carry the ready-queue size in their args.
        assert all(dict(s.args)["n"] >= 0 for s in decisions)

    def test_preemptions_counted(self):
        obs = Observer()
        # B (tight critical time) preempts A under any ECF dispatch.
        result = _run("lockfree", _contended_tasks(), [[0], [200]],
                      observer=obs)
        preempted = sum(r.preemptions for r in result.records)
        if preempted:
            assert obs.counters["kernel.preemptions"] == preempted
            assert any(i.name == "preempt" for i in obs.instants)

    def test_result_carries_obs_summary(self):
        obs = Observer()
        tasks = [simple_task("A", critical_us=2_000, compute_us=100)]
        result = _run("ideal", tasks, [[0]], observer=obs)
        assert result.obs is not None
        assert result.obs["enabled"] is True
        assert result.obs == obs.summary()

    def test_uninstrumented_run_has_no_obs_block(self):
        tasks = [simple_task("A", critical_us=2_000, compute_us=100)]
        result = _run("ideal", tasks, [[0]])
        assert result.obs is None


class TestRetryInstrumentation:
    def test_retry_events_per_object(self):
        obs = Observer()
        result = _run("lockfree", _contended_tasks(), [[0], [200, 700]],
                      observer=obs, retry_policy=RetryPolicy.ON_PREEMPTION)
        assert result.total_retries > 0
        assert obs.counters.get("retries.0", 0) == result.total_retries
        assert obs.histograms["retry.wasted_ns"].count == \
            result.total_retries
        samples = [s for s in obs.counter_samples
                   if s.name == "retries.0"]
        assert [s.value for s in samples] == \
            list(range(1, result.total_retries + 1))
        assert any(i.name == "retry" for i in obs.instants)

    def test_aborts_counted(self):
        obs = Observer()
        # A job that cannot finish by its critical time is aborted.
        tasks = [simple_task("A", critical_us=100, compute_us=5_000)]
        result = _run("ideal", tasks, [[0]], observer=obs,
                      horizon_us=50_000)
        assert result.abort_count > 0
        assert obs.counters["kernel.aborts"] == result.abort_count
        assert any(i.name == "abort" for i in obs.instants)


class TestBlockingInstrumentation:
    def test_blocking_interval_spans(self):
        obs = Observer()
        result = _run("lockbased", _contended_tasks(), [[0], [200]],
                      observer=obs)
        if result.total_blockings:
            assert obs.counters["kernel.blockings"] == \
                result.total_blockings
            blocked = [s for s in obs.spans
                       if s.name.startswith("blocked:")]
            assert len(blocked) == result.total_blockings
            assert all(s.duration >= 0 for s in blocked)


class TestSchedulerPolicyCounters:
    def test_lockfree_policy_passes(self):
        obs = Observer()
        result = _run("lockfree", _contended_tasks(), [[0], [200]],
                      observer=obs)
        assert obs.counters["sched.passes"] == \
            result.scheduler_invocations

    def test_lockbased_policy_passes(self):
        obs = Observer()
        result = _run("lockbased", _contended_tasks(), [[0], [200]],
                      observer=obs)
        assert obs.counters["sched.passes"] == \
            result.scheduler_invocations
