"""Campaign-engine instrumentation: trial/retry/journal counters."""

from repro.campaign import CampaignConfig, CampaignEngine
from repro.campaign.spec import TransientTrialError
from repro.obs import Observer


def _double(x):
    return 2 * x


_FLAKY_CALLS = {"n": 0}


def _flaky_once(x):
    _FLAKY_CALLS["n"] += 1
    if _FLAKY_CALLS["n"] == 1:
        raise TransientTrialError("first call fails")
    return x


def _always_raises(x):
    raise RuntimeError("boom")


class TestSerialEngineObs:
    def test_trial_counters_and_wall_histogram(self):
        obs = Observer()
        engine = CampaignEngine(observer=obs)
        result = engine.map(_double, [(1,), (2,), (3,)])
        assert result.ok
        assert obs.counters["campaign.trials"] == 3
        assert obs.counters["campaign.ok"] == 3
        assert "campaign.failed" not in obs.counters
        assert obs.histograms["campaign.trial_wall_s"].count == 3

    def test_retry_and_backoff_instrumented(self):
        _FLAKY_CALLS["n"] = 0
        obs = Observer()
        engine = CampaignEngine(
            CampaignConfig(max_attempts=3, backoff_base=0.0,
                           backoff_cap=0.0),
            observer=obs, sleep=lambda s: None)
        result = engine.map(_flaky_once, [(7,)])
        assert result.ok
        assert obs.counters["campaign.retries"] == 1
        assert obs.counters["campaign.attempt_failures.transient"] == 1
        assert obs.histograms["campaign.backoff_s"].count == 1

    def test_terminal_failure_counted(self):
        obs = Observer()
        engine = CampaignEngine(observer=obs)
        result = engine.map(_always_raises, [(1,)])
        assert not result.ok
        assert obs.counters["campaign.failed"] == 1
        assert obs.counters["campaign.attempt_failures.exception"] == 1

    def test_journal_writes_counted(self, tmp_path):
        obs = Observer()
        journal = str(tmp_path / "campaign.jsonl")
        with CampaignEngine(CampaignConfig(journal=journal),
                            observer=obs) as engine:
            engine.map(_double, [(1,), (2,)])
        assert obs.counters["campaign.journal_writes"] == 2

    def test_resume_hits_counted(self, tmp_path):
        journal = str(tmp_path / "campaign.jsonl")
        with CampaignEngine(CampaignConfig(journal=journal),
                            tag="t") as engine:
            engine.map(_double, [(1,), (2,)])
        obs = Observer()
        with CampaignEngine(CampaignConfig(resume=journal),
                            tag="t", observer=obs) as engine:
            result = engine.map(_double, [(1,), (2,)])
        assert result.ok
        assert obs.counters["campaign.from_journal"] == 2
        # Journal hits have no wall time (nothing ran).
        assert "campaign.trial_wall_s" not in obs.histograms

    def test_default_engine_records_nothing(self):
        engine = CampaignEngine()
        result = engine.map(_double, [(1,)])
        assert result.ok
        assert engine.obs.enabled is False


class TestParallelEngineObs:
    def test_parallel_counters_and_worker_histogram(self):
        obs = Observer()
        engine = CampaignEngine(CampaignConfig(workers=2), observer=obs)
        result = engine.map(_double, [(i,) for i in range(4)])
        assert result.ok
        assert result.values == [0, 2, 4, 6]
        assert obs.counters["campaign.trials"] == 4
        assert obs.counters["campaign.ok"] == 4
        assert obs.histograms["campaign.trial_wall_s"].count == 4
        busy = obs.histograms["campaign.workers_busy"]
        assert busy.count > 0
        assert max(busy.values) <= 2
