"""Setuptools shim.

Kept so ``pip install -e . --no-use-pep517`` works in offline
environments whose setuptools lacks the ``wheel`` package required by the
PEP 517 editable-install path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
