"""Ablation — retry policy: ON_CONFLICT (realistic, restart only on a
conflicting commit) vs ON_PREEMPTION (conservative, restart on any
preemption, the accounting of Theorem 2's proof).

Both must respect the Theorem 2 bound; ON_PREEMPTION retries at least as
often, costing some AUR at high load.  This quantifies how much slack the
conservative analysis leaves on realistic workloads.
"""

from repro.experiments.report import format_scalar_rows
from repro.experiments.runner import run_many
from repro.experiments.workloads import BuilderSpec
from repro.sim.objects import RetryPolicy
from repro.units import MS

from conftest import (
    campaign_config,
    record_bench,
    run_once_benchmark,
    save_figure,
)


def _campaign():
    build = BuilderSpec.make("interference")
    seeds = [77 + k for k in range(3)]
    out = {}
    for policy in (RetryPolicy.ON_CONFLICT, RetryPolicy.ON_PREEMPTION):
        results = run_many(build, "lockfree", 200 * MS, seeds,
                           arrival_style="bursty", retry_policy=policy,
                           campaign=campaign_config(f"ablation_retry_{policy.name.lower()}"))
        out[policy] = (
            sum(r.total_retries for r in results) / len(results),
            sum(r.aur for r in results) / len(results),
        )
    return out


def test_retry_policy_ablation(benchmark):
    out = run_once_benchmark(benchmark, _campaign)
    conflict_retries, conflict_aur = out[RetryPolicy.ON_CONFLICT]
    preempt_retries, preempt_aur = out[RetryPolicy.ON_PREEMPTION]
    text = format_scalar_rows("Ablation: lock-free retry policy", [
        ("ON_CONFLICT mean retries/run", f"{conflict_retries:.1f}"),
        ("ON_CONFLICT mean AUR", f"{conflict_aur:.3f}"),
        ("ON_PREEMPTION mean retries/run", f"{preempt_retries:.1f}"),
        ("ON_PREEMPTION mean AUR", f"{preempt_aur:.3f}"),
    ])
    save_figure("ablation_retry_policy", text)
    record_bench(benchmark, "ablation_retry_policy", {
        "conflict_retries": round(conflict_retries, 2),
        "conflict_aur": round(conflict_aur, 6),
        "preemption_retries": round(preempt_retries, 2),
        "preemption_aur": round(preempt_aur, 6),
    })
    assert preempt_retries >= conflict_retries
    assert preempt_retries > 0
    assert preempt_aur <= conflict_aur + 0.02
