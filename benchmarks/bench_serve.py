"""Sustained-throughput benchmark for the serve layer (DESIGN.md §13).

Self-hosts a ``ServeApp`` and drives it with the seeded load generator
at a fixed arrival rate: deterministic arrivals, a small scenario pool
(so the content-addressed cache carries most of the steady state), no
chaos.  Records the service's latency/throughput trajectory for the
perf-regression gate:

* ``p50_time`` / ``p99_time`` — request latency percentiles (seconds;
  ``_time`` suffix: higher is worse);
* ``throughput`` — achieved 200s per second (lower is worse);
* ``cold_p99_time`` — p99 of the cache-cold warmup pass.

Gate: ``PYTHONPATH=src python -m repro bench check``.
"""

import tempfile

from repro.serve import LoadConfig, ServeApp, ServeConfig, run_load

from conftest import record_bench, run_once_benchmark

RATE = 120.0
DURATION_S = 2.0
SCENARIOS = 6


def _load(url, seed, duration_s=DURATION_S):
    return run_load(LoadConfig(
        url=url,
        consumers=4,
        rate=RATE,
        duration_s=duration_s,
        seed=seed,
        n_scenarios=SCENARIOS,
        n_tasks=5,
        horizon_us=10_000,
        deadline_s=30.0,
    ))


def test_serve_sustained_throughput(benchmark):
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-serve-")
    app = ServeApp(ServeConfig(
        workers=2,
        queue_capacity=64,
        trial_timeout=20.0,
        default_deadline_s=30.0,
        cache_dir=cache_dir,
        drain_grace_s=5.0,
    )).start()
    try:
        # Cache-cold warmup pass: every distinct scenario computes once.
        cold = _load(app.url, seed=1, duration_s=0.5)
        report = run_once_benchmark(benchmark,
                                    lambda: _load(app.url, seed=1))
    finally:
        app.shutdown(grace_s=5.0, reason="bench over")

    outcomes = report["outcomes"]
    assert outcomes["failed"] == 0, report
    assert outcomes["transport_error"] == 0, report
    assert outcomes["ok"] > 0
    assert report["cache_hits"] > 0         # steady state is cache-backed

    latency = report["latency_s"]
    print(f"\nserve: {outcomes['ok']} ok / {report['requests_sent']} sent, "
          f"p50={latency['p50'] * 1000:.2f}ms "
          f"p99={latency['p99'] * 1000:.2f}ms "
          f"throughput={report['throughput_rps']:.1f} rps "
          f"hit_rate={report['cache_hit_rate']:.2f}")
    record_bench(benchmark, "serve", {
        "p50_time": round(latency["p50"], 6),
        "p99_time": round(latency["p99"], 6),
        "cold_p99_time": round(cold["latency_s"]["p99"], 6),
        "throughput": round(report["throughput_rps"], 3),
    })
