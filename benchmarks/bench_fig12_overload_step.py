"""Figure 12 — AUR/CMR during overload (AL ≈ 1.1), step TUFs, vs number
of shared objects accessed per job.

Paper shape: lock-based AUR/CMR sharply decrease toward 0 % as objects
grow; lock-free holds, higher by as much as ~65 % AUR / ~80 % CMR.
"""

from repro.experiments.figures import fig12
from repro.units import MS

from conftest import (
    campaign_config,
    record_bench,
    run_once_benchmark,
    save_figure,
)


def test_fig12_overload_step(benchmark):
    result = run_once_benchmark(
        benchmark,
        lambda: fig12(repeats=4, horizon=100 * MS,
                      objects=tuple(range(1, 11)),
                      campaign=campaign_config("fig12_overload_step")),
    )
    save_figure("fig12_overload_step", result.render())
    record_bench(benchmark, "fig12_overload_step",
                 {s.label: round(s.means()[-1], 6)
                  for s in result.series})
    by_label = {s.label: s for s in result.series}
    lf_aur = by_label["AUR lock-free"].means()
    lb_aur = by_label["AUR lock-based"].means()
    # Collapse of lock-based with contention; wide lock-free margin at
    # the 10-object end (the paper's headline gap).
    assert lb_aur[-1] < lb_aur[0]
    assert lb_aur[-1] < 0.35
    assert lf_aur[-1] > lb_aur[-1] + 0.3
    assert (by_label["CMR lock-free"].means()[-1]
            > by_label["CMR lock-based"].means()[-1] + 0.3)
