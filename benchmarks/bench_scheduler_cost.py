"""Section 3.6 / Section 5 ablation — scheduler pass cost scaling.

Times the *real Python implementations* of one lock-based RUA pass
(``O(n^2 log n)``) and one lock-free RUA pass (``O(n^2)``) across job
counts, demonstrating the asymptotic gap the paper attributes to the
"aggregate computation" (dependency chains).  This is a genuine
pytest-benchmark timing target, unlike the campaign benches.

Every timed call uses a fresh ``now`` so each pass is a distinct
scheduling event: a repeated identical call would be served by the
policies' exact memo and measure a cache hit instead of the algorithm.
``test_fastpath_speedup`` additionally gates the incremental fast path
itself — the same pass with ``REPRO_NO_FASTPATH=1`` (the from-scratch
reference construction) must be at least 3x slower at n >= 64 — and
records the measured speedups into the ``scheduler_cost`` trajectory
for the perf-regression gate (``repro bench check``).
"""

import itertools
import os
import random
import time

import pytest

from repro.core.rua_lockbased import LockBasedRUA
from repro.core.rua_lockfree import LockFreeRUA
from repro.experiments.workloads import paper_taskset
from repro.sim.locks import LockManager
from repro.tasks.job import Job

from conftest import record_bench

#: The clock values cycle inside every job's critical-time window, so
#: varying ``now`` never turns the whole set infeasible mid-benchmark.
NOW_CYCLE = 4096


def _jobs_with_contention(n):
    rng = random.Random(0)
    tasks = paper_taskset(rng, n_tasks=n, accesses_per_job=2,
                          target_load=0.5)
    jobs = [Job(task=t, jid=0, release_time=0) for t in tasks]
    locks = LockManager()
    # Half the jobs hold their first-needed object, creating chains.
    for job in jobs[: n // 2]:
        obj = next(iter(job.task.accessed_objects))
        job.segment_index = 0
        if locks.owner_of(obj) is None:
            locks.try_acquire(job, obj)
            job.holds_lock = obj
    return jobs, locks


def _distinct_pass(policy, jobs, locks):
    ticks = itertools.count()
    return lambda: policy.schedule(jobs, locks, now=next(ticks) % NOW_CYCLE)


@pytest.mark.parametrize("n", [5, 10, 20, 40, 64, 96])
def test_lockbased_rua_pass(benchmark, n):
    jobs, locks = _jobs_with_contention(n)
    benchmark(_distinct_pass(LockBasedRUA(), jobs, locks))


@pytest.mark.parametrize("n", [5, 10, 20, 40, 64, 96])
def test_lockfree_rua_pass(benchmark, n):
    jobs, _ = _jobs_with_contention(n)
    benchmark(_distinct_pass(LockFreeRUA(), jobs, None))


def _timed(policy, jobs, locks, repeats=10, trials=3):
    """Best-of-``trials`` wall time of ``repeats`` distinct passes."""
    best = float("inf")
    for _ in range(trials):
        ticks = itertools.count()
        start = time.perf_counter()
        for _ in range(repeats):
            policy.schedule(jobs, locks, now=next(ticks) % NOW_CYCLE)
        best = min(best, time.perf_counter() - start)
    return best


def _timed_reference(policy, jobs, locks, **kwargs):
    os.environ["REPRO_NO_FASTPATH"] = "1"
    try:
        return _timed(policy, jobs, locks, **kwargs)
    finally:
        del os.environ["REPRO_NO_FASTPATH"]


def test_fastpath_speedup():
    """The tentpole target: >= 3x wall-clock over the reference path at
    n >= 64, for both RUA variants.  Also keeps the historical shape
    assertion (a lock-based pass costs more than a lock-free one) and
    feeds the committed trajectory."""
    assert not os.environ.get("REPRO_NO_FASTPATH"), \
        "speedup bench needs the fast path enabled"
    metrics = {}
    speedups = {}
    for n in (64, 96):
        jobs, locks = _jobs_with_contention(n)
        t_lb_fast = _timed(LockBasedRUA(), jobs, locks)
        t_lb_ref = _timed_reference(LockBasedRUA(), jobs, locks)
        t_lf_fast = _timed(LockFreeRUA(), jobs, None)
        t_lf_ref = _timed_reference(LockFreeRUA(), jobs, None)
        speedups[("lockbased", n)] = t_lb_ref / t_lb_fast
        speedups[("lockfree", n)] = t_lf_ref / t_lf_fast
        # Suffix "_speedup" puts these under the gate's lower-is-worse
        # direction (repro.obs.regress.LOWER_IS_WORSE).
        metrics[f"lockbased_n{n}_speedup"] = round(t_lb_ref / t_lb_fast, 3)
        metrics[f"lockfree_n{n}_speedup"] = round(t_lf_ref / t_lf_fast, 3)
        if n == 64:
            metrics["t_lockbased_s"] = round(t_lb_fast, 6)
            metrics["t_lockfree_s"] = round(t_lf_fast, 6)
            assert t_lb_fast > t_lf_fast
    record_bench(None, "scheduler_cost", metrics)
    for (sync, n), speedup in speedups.items():
        assert speedup >= 3.0, (
            f"fast path only {speedup:.2f}x over reference "
            f"for {sync} at n={n} (target >= 3x)")
