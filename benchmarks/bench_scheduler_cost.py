"""Section 3.6 / Section 5 ablation — scheduler pass cost scaling.

Times the *real Python implementations* of one lock-based RUA pass
(``O(n^2 log n)``) and one lock-free RUA pass (``O(n^2)``) across job
counts, demonstrating the asymptotic gap the paper attributes to the
"aggregate computation" (dependency chains).  This is a genuine
pytest-benchmark timing target, unlike the campaign benches.
"""

import random

import pytest

from repro.core.rua_lockbased import LockBasedRUA
from repro.core.rua_lockfree import LockFreeRUA
from repro.experiments.workloads import paper_taskset
from repro.sim.locks import LockManager
from repro.tasks.job import Job

from conftest import record_bench


def _jobs_with_contention(n):
    rng = random.Random(0)
    tasks = paper_taskset(rng, n_tasks=n, accesses_per_job=2,
                          target_load=0.5)
    jobs = [Job(task=t, jid=0, release_time=0) for t in tasks]
    locks = LockManager()
    # Half the jobs hold their first-needed object, creating chains.
    for job in jobs[: n // 2]:
        obj = next(iter(job.task.accessed_objects))
        job.segment_index = 0
        if locks.owner_of(obj) is None:
            locks.try_acquire(job, obj)
            job.holds_lock = obj
    return jobs, locks


@pytest.mark.parametrize("n", [5, 10, 20, 40])
def test_lockbased_rua_pass(benchmark, n):
    jobs, locks = _jobs_with_contention(n)
    policy = LockBasedRUA()
    benchmark(lambda: policy.schedule(jobs, locks, now=0))


@pytest.mark.parametrize("n", [5, 10, 20, 40])
def test_lockfree_rua_pass(benchmark, n):
    jobs, _ = _jobs_with_contention(n)
    policy = LockFreeRUA()
    benchmark(lambda: policy.schedule(jobs, None, now=0))


def test_lockbased_pass_slower_than_lockfree():
    """Direct wall-time comparison at one size (shape assertion kept out
    of the timed benchmarks)."""
    import time
    jobs, locks = _jobs_with_contention(30)
    lockbased = LockBasedRUA()
    lockfree = LockFreeRUA()

    def timed(fn, repeats=30):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return time.perf_counter() - start

    t_lb = timed(lambda: lockbased.schedule(jobs, locks, now=0))
    t_lf = timed(lambda: lockfree.schedule(jobs, None, now=0))
    record_bench(None, "scheduler_cost", {
        "t_lockbased_s": round(t_lb, 6),
        "t_lockfree_s": round(t_lf, 6),
    })
    assert t_lb > t_lf
