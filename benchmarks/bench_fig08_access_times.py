"""Figure 8 — lock-based (r) vs lock-free (s) object access time under an
increasing number of shared objects accessed per job.

Paper shape: r is significantly larger than s; r grows with the object
count (it includes lock-based RUA's resource-sharing mechanism); s stays
flat at a few microseconds.
"""

from repro.experiments.figures import fig8
from repro.units import MS

from conftest import (
    campaign_config,
    record_bench,
    run_once_benchmark,
    save_figure,
)


def test_fig8_access_times(benchmark):
    result = run_once_benchmark(
        benchmark,
        lambda: fig8(repeats=3, horizon=100 * MS,
                     objects=tuple(range(1, 11)),
                     campaign=campaign_config("fig08_access_times")),
    )
    save_figure("fig08_access_times", result.render())
    record_bench(benchmark, "fig08_access_times",
                 {s.label: round(s.means()[-1], 6)
                  for s in result.series})
    r_series, s_series = result.series
    # Shape assertions: r >> s everywhere; s flat within 2x; r at 10
    # objects at least as large as at 1.
    for r_est, s_est in zip(r_series.estimates, s_series.estimates):
        assert r_est.mean > 2 * s_est.mean
    assert max(s_series.means()) < 2 * min(s_series.means())
    assert r_series.means()[-1] >= r_series.means()[0] * 0.8
