"""Theorem 3 — lock-based vs lock-free worst-case sojourn crossover.

Evaluates the analytical comparison over a parameter grid (both the
paper-stated thresholds and the exact proof-derived ones), then
instantiates the condition with the *measured* r and s from a Figure 8
style campaign, predicting — and checking against simulation — which
sharing style yields shorter sojourns.
"""

import random

from repro.analysis.sojourn import compare_sojourn
from repro.analysis.retry_bound import x_i as compute_x_i
from repro.experiments.report import format_scalar_rows
from repro.experiments.runner import run_many
from repro.experiments.workloads import (
    DEFAULT_ACCESS_DURATION,
    BuilderSpec,
    paper_taskset,
)
from repro.units import MS

from conftest import (
    campaign_config,
    record_bench,
    run_once_benchmark,
    save_figure,
)


def _campaign():
    build = BuilderSpec.make("paper", accesses_per_job=6, target_load=0.8)
    seeds = [300 + k for k in range(3)]
    lockbased = run_many(build, "lockbased", 100 * MS, seeds,
                         campaign=campaign_config("thm3_sojourn_lockbased"))
    lockfree = run_many(build, "lockfree", 100 * MS, seeds,
                        campaign=campaign_config("thm3_sojourn_lockfree"))
    r = DEFAULT_ACCESS_DURATION + (
        sum(x.mean_lock_mechanism_per_access or 0 for x in lockbased)
        / len(lockbased))
    s = DEFAULT_ACCESS_DURATION + (
        sum(x.mean_lockfree_mechanism_per_access or 0 for x in lockfree)
        / len(lockfree))
    lb_sojourn = sum(x.mean_sojourn() or 0 for x in lockbased) / len(lockbased)
    lf_sojourn = sum(x.mean_sojourn() or 0 for x in lockfree) / len(lockfree)
    # Instantiate the theorem for a representative task of the set.
    rng = random.Random(300)
    tasks = paper_taskset(rng, accesses_per_job=6, target_load=0.8)
    task = tasks[0]
    x = compute_x_i(0, tasks)
    n = 2 * task.arrival.max_arrivals + x
    comparison = compare_sojourn(
        u_i=task.compute_time, interference=0, r=r, s=s,
        m_i=task.access_count, n_i=n,
        a_i=task.arrival.max_arrivals, x_i=x)
    return r, s, comparison, lb_sojourn, lf_sojourn


def test_thm3_sojourn_crossover(benchmark):
    r, s, comparison, lb_sojourn, lf_sojourn = run_once_benchmark(
        benchmark, _campaign)
    text = format_scalar_rows("Theorem 3: sojourn comparison", [
        ("measured r [ns]", f"{r:.0f}"),
        ("measured s [ns]", f"{s:.0f}"),
        ("s/r", f"{comparison.ratio:.3f}"),
        ("paper threshold", f"{comparison.paper_threshold:.3f}"),
        ("exact threshold", f"{comparison.exact_threshold:.3f}"),
        ("predicted lock-free wins", str(comparison.predicted_lockfree_wins)),
        ("bound lock-based [ns]", f"{comparison.lockbased:.0f}"),
        ("bound lock-free [ns]", f"{comparison.lockfree:.0f}"),
        ("simulated mean sojourn lock-based [ns]", f"{lb_sojourn:.0f}"),
        ("simulated mean sojourn lock-free [ns]", f"{lf_sojourn:.0f}"),
    ])
    save_figure("thm3_sojourn", text)
    record_bench(benchmark, "thm3_sojourn", {
        "r_ns": round(r, 1),
        "s_ns": round(s, 1),
        "ratio": round(comparison.ratio, 6),
        "sojourn_lockbased_ns": round(lb_sojourn, 1),
        "sojourn_lockfree_ns": round(lf_sojourn, 1),
    })
    # Measured s/r is far below 2/3 (s << r on this workload), so the
    # theorem predicts lock-free wins — and the simulated sojourns agree.
    assert comparison.ratio < 2 / 3
    assert comparison.predicted_lockfree_wins
    assert comparison.lockfree < comparison.lockbased
    assert lf_sojourn < lb_sojourn
