"""Figure 13 — AUR/CMR during overload (AL ≈ 1.1), heterogeneous TUFs,
vs number of shared objects accessed per job.

Paper shape: as Figure 12 — lock-based collapses with contention,
lock-free holds a wide margin.
"""

from repro.experiments.figures import fig13
from repro.units import MS

from conftest import (
    campaign_config,
    record_bench,
    run_once_benchmark,
    save_figure,
)


def test_fig13_overload_hetero(benchmark):
    result = run_once_benchmark(
        benchmark,
        lambda: fig13(repeats=4, horizon=100 * MS,
                      objects=tuple(range(1, 11)),
                      campaign=campaign_config("fig13_overload_hetero")),
    )
    save_figure("fig13_overload_hetero", result.render())
    record_bench(benchmark, "fig13_overload_hetero",
                 {s.label: round(s.means()[-1], 6)
                  for s in result.series})
    by_label = {s.label: s for s in result.series}
    lf_aur = by_label["AUR lock-free"].means()
    lb_aur = by_label["AUR lock-based"].means()
    assert lb_aur[-1] < lb_aur[0]
    assert lf_aur[-1] > lb_aur[-1] + 0.25
