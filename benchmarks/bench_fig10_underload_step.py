"""Figure 10 — AUR/CMR during underload (AL ≈ 0.4), step TUFs, vs number
of shared objects accessed per job.

Paper shape: lock-free stays near 100 % at every object count;
lock-based degrades as contention grows.
"""

from repro.experiments.figures import fig10
from repro.units import MS

from conftest import (
    campaign_config,
    record_bench,
    run_once_benchmark,
    save_figure,
)


def test_fig10_underload_step(benchmark):
    result = run_once_benchmark(
        benchmark,
        lambda: fig10(repeats=3, horizon=100 * MS,
                      objects=tuple(range(1, 11)),
                      campaign=campaign_config("fig10_underload_step")),
    )
    save_figure("fig10_underload_step", result.render())
    record_bench(benchmark, "fig10_underload_step",
                 {s.label: round(s.means()[-1], 6)
                  for s in result.series})
    by_label = {s.label: s for s in result.series}
    assert all(v > 0.95 for v in by_label["AUR lock-free"].means())
    assert all(v > 0.95 for v in by_label["CMR lock-free"].means())
    # Lock-based never beats lock-free at the contended end.
    assert (by_label["AUR lock-free"].means()[-1]
            >= by_label["AUR lock-based"].means()[-1] - 0.02)
