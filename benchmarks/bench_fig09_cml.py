"""Figure 9 — Critical-time-Miss Load vs average job execution time for
ideal, lock-free and lock-based RUA.

Paper shape: lock-free tracks ideal closely and reaches CML ~1 near 10 µs
average execution time; lock-based converges to 1 only near 1 ms.
"""

from repro.experiments.figures import fig9

from conftest import (
    campaign_config,
    record_bench,
    run_once_benchmark,
    save_figure,
)


def test_fig9_cml(benchmark):
    result = run_once_benchmark(
        benchmark,
        lambda: fig9(repeats=1, exec_times_us=(10, 30, 100, 300, 1000),
                     windows_per_run=25, bisect_iterations=5,
                     campaign=campaign_config("fig09_cml")),
    )
    save_figure("fig09_cml", result.render())
    record_bench(benchmark, "fig09_cml",
                 {s.label: round(s.means()[-1], 6)
                  for s in result.series})
    by_label = {s.label: s for s in result.series}
    ideal = by_label["CML ideal"].means()
    lockfree = by_label["CML lockfree"].means()
    lockbased = by_label["CML lockbased"].means()
    # Lock-free tracks ideal within a small margin at every exec time.
    assert all(lf >= i - 0.15 for lf, i in zip(lockfree, ideal))
    # Lock-based starts far below and converges by the 1 ms point.
    assert lockbased[0] < 0.5
    assert lockbased[-1] > 0.8
    # Monotone improvement with execution time for lock-based.
    assert lockbased == sorted(lockbased)
