"""Figure 11 — AUR/CMR during underload (AL ≈ 0.4), heterogeneous TUFs
(step + parabolic + linear-decreasing), vs number of shared objects.

Paper shape: as Figure 10 — lock-free near 100 %, lock-based degraded by
contention; non-step TUFs make AUR slightly below CMR (a met critical
time no longer implies full utility).
"""

from repro.experiments.figures import fig11
from repro.units import MS

from conftest import (
    campaign_config,
    record_bench,
    run_once_benchmark,
    save_figure,
)


def test_fig11_underload_hetero(benchmark):
    result = run_once_benchmark(
        benchmark,
        lambda: fig11(repeats=3, horizon=100 * MS,
                      objects=tuple(range(1, 11)),
                      campaign=campaign_config("fig11_underload_hetero")),
    )
    save_figure("fig11_underload_hetero", result.render())
    record_bench(benchmark, "fig11_underload_hetero",
                 {s.label: round(s.means()[-1], 6)
                  for s in result.series})
    by_label = {s.label: s for s in result.series}
    assert all(v > 0.95 for v in by_label["CMR lock-free"].means())
    assert all(v > 0.85 for v in by_label["AUR lock-free"].means())
    # Decaying TUFs: AUR <= CMR pointwise for both variants.
    for tag in ("lock-free", "lock-based"):
        for aur, cmr in zip(by_label[f"AUR {tag}"].means(),
                            by_label[f"CMR {tag}"].means()):
            assert aur <= cmr + 1e-9
