"""Shared helpers for the benchmark harness.

Each bench regenerates one figure/table of the paper (see DESIGN.md's
per-experiment index): it runs the campaign once under pytest-benchmark's
timer, prints the ASCII series table (the paper-shape artifact), and
saves it under ``benchmarks/out/`` — atomically, so an interrupted bench
never leaves a truncated table behind.

The figure campaigns route through the resilient campaign engine when
the environment opts in:

* ``REPRO_BENCH_WORKERS=N``  — crash-isolated parallel trials;
* ``REPRO_BENCH_TIMEOUT=S``  — per-trial wall-clock budget (seconds);
* ``REPRO_BENCH_JOURNAL=P``  — per-bench checkpoint journals written to
  directory ``P`` (resumable with ``--resume`` via the CLI).

Unset (the default), benches keep the byte-identical serial path.
"""

from __future__ import annotations

import os
import pathlib

from repro.campaign import CampaignConfig, atomic_write

OUT_DIR = pathlib.Path(__file__).parent / "out"


def save_figure(name: str, text: str) -> None:
    """Print and persist a rendered figure table (atomic replace)."""
    atomic_write(OUT_DIR / f"{name}.txt", text + "\n")
    print()
    print(text)


def campaign_config(bench_name: str) -> CampaignConfig | None:
    """Campaign policy for one bench, from the environment (None =
    classic serial execution)."""
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "0") or "0")
    timeout = float(os.environ.get("REPRO_BENCH_TIMEOUT", "0") or "0")
    journal_dir = os.environ.get("REPRO_BENCH_JOURNAL", "")
    if workers <= 0 and timeout <= 0 and not journal_dir:
        return None
    journal = None
    if journal_dir:
        pathlib.Path(journal_dir).mkdir(parents=True, exist_ok=True)
        journal = str(pathlib.Path(journal_dir) / f"{bench_name}.jsonl")
    return CampaignConfig(
        workers=max(1, workers),
        timeout=timeout if timeout > 0 else None,
        journal=journal,
    )


def run_once_benchmark(benchmark, fn):
    """Run a campaign exactly once under the benchmark timer (campaigns
    are seconds-long simulations; statistical timing repeats are not
    meaningful and would multiply runtime)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


#: The committed perf-trajectory summary store (repro.obs.regress);
#: raw BENCH_*.json runs stay machine-local under benchmarks/out/.
TRAJECTORY_DIR = pathlib.Path(__file__).parent / "trajectories"


def record_bench(benchmark, name: str, metrics: dict) -> None:
    """Record this run's perf trajectory.  Two stores, both atomic:

    * the raw machine-local ``BENCH_<name>.json`` baseline (under
      ``benchmarks/out/``; override with ``REPRO_BENCH_BASELINE_DIR``),
      never committed;
    * the committed summary trajectory under
      ``benchmarks/trajectories/`` (override with
      ``REPRO_TRAJECTORY_DIR``), which `repro bench check` gates.

    Call after ``run_once_benchmark`` so the benchmark's measured wall
    time is available.
    """
    from repro.obs.bench import record_bench_baseline
    from repro.obs.regress import append_trajectory

    wall = None
    stats = getattr(benchmark, "stats", None)
    if stats is not None:
        try:
            wall = float(stats.stats.mean)
        except AttributeError:  # pragma: no cover - stats shape change
            wall = None
    directory = os.environ.get("REPRO_BENCH_BASELINE_DIR") or OUT_DIR
    path = record_bench_baseline(name, metrics, wall_s=wall,
                                 directory=directory)
    print(f"bench baseline appended to {path}")
    trajectory_dir = pathlib.Path(
        os.environ.get("REPRO_TRAJECTORY_DIR") or TRAJECTORY_DIR)
    trajectory_dir.mkdir(parents=True, exist_ok=True)
    trajectory = append_trajectory(name, metrics, wall_s=wall,
                                   directory=trajectory_dir)
    print(f"trajectory entry appended to {trajectory}")
