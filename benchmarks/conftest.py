"""Shared helpers for the benchmark harness.

Each bench regenerates one figure/table of the paper (see DESIGN.md's
per-experiment index): it runs the campaign once under pytest-benchmark's
timer, prints the ASCII series table (the paper-shape artifact), and
saves it under ``benchmarks/out/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def save_figure(name: str, text: str) -> None:
    """Print and persist a rendered figure table."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def run_once_benchmark(benchmark, fn):
    """Run a campaign exactly once under the benchmark timer (campaigns
    are seconds-long simulations; statistical timing repeats are not
    meaningful and would multiply runtime)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
