"""Figure 14 — AUR/CMR under an increasing number of reader tasks,
heterogeneous TUFs, AL growing from ~0.1 toward ~1.1 with the task count.

Paper shape: the same trends as the object sweeps — lock-free superior
throughout, lock-based degrading as load/contention grows.
"""

from repro.experiments.figures import fig14
from repro.units import MS

from conftest import (
    campaign_config,
    record_bench,
    run_once_benchmark,
    save_figure,
)


def test_fig14_readers(benchmark):
    result = run_once_benchmark(
        benchmark,
        lambda: fig14(repeats=3, horizon=100 * MS,
                      readers=tuple(range(1, 10)),
                      campaign=campaign_config("fig14_readers")),
    )
    save_figure("fig14_readers", result.render())
    record_bench(benchmark, "fig14_readers",
                 {s.label: round(s.means()[-1], 6)
                  for s in result.series})
    by_label = {s.label: s for s in result.series}
    lf_aur = by_label["AUR lock-free"].means()
    lb_aur = by_label["AUR lock-based"].means()
    # Lock-free at least matches lock-based at every reader count and
    # wins clearly at the heavy end.
    assert all(lf >= lb - 0.03 for lf, lb in zip(lf_aur, lb_aur))
    assert lf_aur[-1] > lb_aur[-1]
