"""Lemmas 4 and 5 — AUR bounds for lock-free and lock-based sharing.

Runs a feasible (underloaded) campaign with non-increasing TUFs and
checks the measured AUR of each sharing style against its analytical
interval.
"""

from repro.experiments.figures import lemma45_validation
from repro.units import MS

from conftest import (
    campaign_config,
    record_bench,
    run_once_benchmark,
    save_figure,
)


def test_lemma45_aur_bounds(benchmark):
    result = run_once_benchmark(
        benchmark,
        lambda: lemma45_validation(repeats=4, horizon=200 * MS,
                      campaign=campaign_config("lemma45_aur_bounds")),
    )
    save_figure("lemma45_aur_bounds", result.render())
    record_bench(benchmark, "lemma45_aur_bounds",
                 {s.label: round(s.means()[-1], 6)
                  for s in result.series})
    # Series arrive in (lower, measured, upper) triples per lemma.
    for base in (0, 3):
        lower = result.series[base].estimates[0].mean
        measured = result.series[base + 1].estimates[0].mean
        upper = result.series[base + 2].estimates[0].mean
        assert lower - 0.02 <= measured <= upper + 0.02
