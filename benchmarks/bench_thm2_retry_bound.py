"""Theorem 2 — the lock-free retry bound under the UAM.

Regenerates the validation the paper performs implicitly ("our
implementation measurements strongly validate our analytical results"):
adversarial bursty UAM arrivals under lock-free RUA, per-task maximum
observed per-job retries against the analytical bound
``f_i <= 3 a_i + sum 2 a_j (ceil(C_i/W_j) + 1)``.
"""

from repro.experiments.figures import thm2_validation
from repro.sim.objects import RetryPolicy
from repro.units import MS

from conftest import (
    campaign_config,
    record_bench,
    run_once_benchmark,
    save_figure,
)


def test_thm2_retry_bound(benchmark):
    result = run_once_benchmark(
        benchmark,
        lambda: thm2_validation(repeats=4, horizon=300 * MS,
                                retry_policy=RetryPolicy.ON_PREEMPTION,
                                campaign=campaign_config("thm2_retry_bound")),
    )
    save_figure("thm2_retry_bound", result.render())
    record_bench(benchmark, "thm2_retry_bound",
                 {s.label: round(s.means()[-1], 6)
                  for s in result.series})
    measured, bound = result.series
    for m, b in zip(measured.estimates, bound.estimates):
        assert m.mean <= b.mean, "Theorem 2 bound violated"
    # The bound is not vacuous: interference does happen.
    assert max(e.mean for e in measured.estimates) > 0
