"""High-level convenience API.

:func:`quick_simulation` wires together the full stack — random task set,
UAM arrival generation, scheduler policy, kernel — for one-call
experiments.  The experiment harness in :mod:`repro.experiments` uses the
same building blocks with the paper's exact workload parameters.

The resilient campaign layer is re-exported here for one-stop imports:
:class:`CampaignConfig` / :class:`CampaignEngine` (crash-isolated
parallel trials, per-trial timeouts, seeded retry with backoff,
checkpointed resume) and :func:`atomic_write` (interrupt-safe artifact
writes).  :func:`run_simulations` is the campaign-aware batch
counterpart of :func:`quick_simulation`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.campaign import (           # noqa: F401 - public re-exports
    CampaignConfig,
    CampaignEngine,
    CampaignResult,
    CampaignStats,
    TrialFailure,
    atomic_write,
)

from repro.obs import (                # noqa: F401 - public re-exports
    NULL_OBSERVER,
    Observer,
)

from repro.arrivals.generators import generator_for
from repro.core.edf import EDF
from repro.faults.degradation import AdmissionPolicy, RetryGuard
from repro.faults.plan import FaultPlan
from repro.core.rua_lockbased import LockBasedRUA
from repro.core.rua_lockfree import LockFreeRUA
from repro.sim.kernel import Kernel, SimulationConfig, SyncMode
from repro.sim.metrics import SimulationResult
from repro.sim.overheads import KernelCosts
from repro.tasks.task import TaskSpec
from repro.tasks.taskset import approximate_load


@dataclass(frozen=True)
class SimulationSummary:
    """Headline numbers of one run, with the full result attached."""

    policy: str
    sync: str
    load: float
    aur: float
    cmr: float
    result: SimulationResult

    def __str__(self) -> str:
        return (
            f"{self.policy}/{self.sync}: AL={self.load:.2f} "
            f"AUR={self.aur:.3f} CMR={self.cmr:.3f} "
            f"({len(self.result.records)} jobs, "
            f"{self.result.total_retries} retries, "
            f"{self.result.total_blockings} blockings)"
        )


def build_policy_and_mode(sync: str):
    """Map a sync style name to (policy, SyncMode, KernelCosts).

    * ``"lockfree"`` — lock-free RUA over lock-free objects;
    * ``"lockbased"`` — lock-based RUA over locks;
    * ``"ideal"`` — lock-free RUA over ideal (zero-cost) objects, the
      paper's "ideal RUA" baseline;
    * ``"edf"`` — EDF over ideal objects.
    """
    if sync == "lockfree":
        return LockFreeRUA(), SyncMode.LOCK_FREE, KernelCosts()
    if sync == "lockbased":
        return LockBasedRUA(), SyncMode.LOCK_BASED, KernelCosts()
    if sync == "ideal":
        return LockFreeRUA(), SyncMode.NONE, KernelCosts.ideal()
    if sync == "edf":
        return EDF(), SyncMode.NONE, KernelCosts.ideal()
    raise ValueError(f"unknown sync style {sync!r}")


def simulate(tasks: list[TaskSpec], sync: str, horizon: int, seed: int,
             arrival_style: str = "uniform",
             trace: bool = False,
             fault_plan: "FaultPlan | None" = None,
             admission: "AdmissionPolicy | None" = None,
             retry_guard: "RetryGuard | None" = None,
             monitors: bool = False,
             observer=None) -> SimulationSummary:
    """Run one simulation of ``tasks`` under the given sync style.

    The optional fault/degradation arguments (see :mod:`repro.faults`)
    inject a deterministic fault plan, guard UAM admission, bound
    lock-free retries, and attach the runtime invariant monitors; the
    run's degradation report lands on ``summary.result.degradation``.
    ``observer`` attaches a recording :class:`repro.obs.Observer`; its
    end-of-run summary lands on ``summary.result.obs``.
    """
    rng = random.Random(seed)
    traces = [
        generator_for(task.arrival, arrival_style).generate(rng, horizon)
        for task in tasks
    ]
    policy, mode, costs = build_policy_and_mode(sync)
    config = SimulationConfig(
        tasks=tasks,
        arrival_traces=traces,
        policy=policy,
        horizon=horizon,
        sync=mode,
        costs=costs,
        trace=trace,
        fault_plan=fault_plan,
        admission=admission,
        retry_guard=retry_guard,
        monitors=monitors,
        observer=observer,
    )
    result = Kernel(config).run()
    return SimulationSummary(
        policy=policy.name,
        sync=sync,
        load=approximate_load(tasks),
        aur=result.aur,
        cmr=result.cmr,
        result=result,
    )


def quick_simulation(n_tasks: int = 5,
                     n_objects: int = 3,
                     sync: str = "lockfree",
                     load: float = 0.8,
                     horizon_us: int = 500_000,
                     seed: int = 0,
                     tuf_class: str = "step",
                     arrival_style: str = "uniform",
                     observer=None) -> SimulationSummary:
    """One-call random-workload simulation (see the package docstring).

    ``horizon_us`` is in microseconds for convenience; everything else in
    the package uses nanosecond ticks.
    """
    from repro.experiments.workloads import paper_taskset

    rng = random.Random(seed)
    tasks = paper_taskset(
        rng,
        n_tasks=n_tasks,
        n_objects=n_objects,
        accesses_per_job=min(2, n_objects),
        avg_exec=300_000,                   # 300 µs
        access_duration=5_000,              # 5 µs per operation
        tuf_class=tuf_class,
        target_load=load,
    )
    return simulate(tasks, sync=sync, horizon=horizon_us * 1_000,
                    seed=seed + 1, arrival_style=arrival_style,
                    observer=observer)


def run_simulations(seeds: list[int],
                    n_tasks: int = 5,
                    n_objects: int = 3,
                    sync: str = "lockfree",
                    load: float = 0.8,
                    horizon_us: int = 500_000,
                    tuf_class: str = "step",
                    arrival_style: str = "uniform",
                    campaign: "CampaignConfig | CampaignEngine | None" = None
                    ) -> list[SimulationSummary]:
    """Batch counterpart of :func:`quick_simulation`: one seeded run per
    entry of ``seeds``, optionally routed through the resilient campaign
    engine (``campaign=CampaignConfig(workers=4, ...)``).  Each trial
    derives everything from its own seed, so serial and parallel
    execution return identical summaries; trials that failed terminally
    under a campaign are dropped from the returned list.
    """
    from repro.campaign import as_engine

    engine = as_engine(campaign, tag=f"quick:{sync}")
    if engine is None:
        return [
            quick_simulation(n_tasks=n_tasks, n_objects=n_objects,
                             sync=sync, load=load, horizon_us=horizon_us,
                             seed=seed, tuf_class=tuf_class,
                             arrival_style=arrival_style)
            for seed in seeds
        ]
    batch = engine.map(
        quick_simulation,
        [(n_tasks, n_objects, sync, load, horizon_us, seed, tuf_class,
          arrival_style)
         for seed in seeds],
    )
    return batch.values
