"""High-level convenience API.

The canonical entry point is :func:`simulate` applied to a
:class:`~repro.scenario.Scenario` — a frozen, declarative description of
one run (workload, sync style, horizon, seed, fault layer).  Everything
else is a thin wrapper:

* :func:`quick_simulation` builds the quick-look random-workload
  Scenario (see :func:`quick_scenario`) and runs it;
* :func:`run_simulations` is its campaign-aware batch counterpart;
* ``simulate(tasks, sync, horizon, seed, ...)`` — the legacy positional
  signature — still works but emits a :class:`DeprecationWarning`;
* the historical kwarg spellings ``fault_plan=`` (for ``faults=``) and
  ``obs=`` (for ``observer=``) are accepted everywhere with a
  :class:`DeprecationWarning`.

The resilient campaign layer is re-exported here for one-stop imports:
:class:`CampaignConfig` / :class:`CampaignEngine` (crash-isolated
parallel trials, per-trial timeouts, seeded retry with backoff,
checkpointed resume) and :func:`atomic_write` (interrupt-safe artifact
writes).
"""

from __future__ import annotations

import warnings

from repro.campaign import (           # noqa: F401 - public re-exports
    CampaignConfig,
    CampaignEngine,
    CampaignResult,
    CampaignStats,
    TrialFailure,
    atomic_write,
)

from repro.obs import (                # noqa: F401 - public re-exports
    NULL_OBSERVER,
    Observer,
)

from dataclasses import dataclass

from repro.core.edf import EDF
from repro.core.llf import LLF
from repro.core.rua_lockbased import LockBasedRUA
from repro.core.rua_lockfree import LockFreeRUA
from repro.scenario import Scenario
from repro.sim.kernel import Kernel, SimulationConfig, SyncMode
from repro.sim.metrics import SimulationResult
from repro.sim.overheads import KernelCosts
from repro.tasks.task import TaskSpec
from repro.tasks.taskset import approximate_load

__all__ = [
    "Scenario",
    "SimulationSummary",
    "simulate",
    "quick_scenario",
    "quick_simulation",
    "run_simulations",
    "build_policy_and_mode",
    "CampaignConfig",
    "CampaignEngine",
    "CampaignResult",
    "CampaignStats",
    "TrialFailure",
    "atomic_write",
    "Observer",
    "NULL_OBSERVER",
]


@dataclass(frozen=True)
class SimulationSummary:
    """Headline numbers of one run, with the full result attached."""

    policy: str
    sync: str
    load: float
    aur: float
    cmr: float
    result: SimulationResult

    def __str__(self) -> str:
        return (
            f"{self.policy}/{self.sync}: AL={self.load:.2f} "
            f"AUR={self.aur:.3f} CMR={self.cmr:.3f} "
            f"({len(self.result.records)} jobs, "
            f"{self.result.total_retries} retries, "
            f"{self.result.total_blockings} blockings)"
        )


def build_policy_and_mode(sync: str):
    """Map a sync style name to (policy, SyncMode, KernelCosts).

    * ``"lockfree"`` — lock-free RUA over lock-free objects;
    * ``"lockbased"`` — lock-based RUA over locks;
    * ``"ideal"`` — lock-free RUA over ideal (zero-cost) objects, the
      paper's "ideal RUA" baseline;
    * ``"edf"`` — EDF over ideal objects.
    """
    if sync == "lockfree":
        return LockFreeRUA(), SyncMode.LOCK_FREE, KernelCosts()
    if sync == "lockbased":
        return LockBasedRUA(), SyncMode.LOCK_BASED, KernelCosts()
    if sync == "ideal":
        return LockFreeRUA(), SyncMode.NONE, KernelCosts.ideal()
    if sync == "edf":
        return EDF(), SyncMode.NONE, KernelCosts.ideal()
    raise ValueError(f"unknown sync style {sync!r}")


def _coalesce_deprecated(canonical_name: str, canonical_value,
                         old_name: str, old_value, *,
                         stacklevel: int = 3):
    """Resolve a renamed keyword: prefer the canonical spelling, accept
    the old one with a DeprecationWarning, reject both at once."""
    if old_value is None:
        return canonical_value
    warnings.warn(
        f"{old_name}= is deprecated; use {canonical_name}=",
        DeprecationWarning, stacklevel=stacklevel)
    if canonical_value is not None:
        raise TypeError(
            f"pass {canonical_name}= or {old_name}=, not both")
    return old_value


def _run_scenario(scenario: Scenario, observer=None, checkpoints=None,
                  checkpoint_sink=None,
                  resume_from=None) -> SimulationSummary:
    """Execute one Scenario on a fresh kernel (optionally restored from
    a :class:`~repro.sim.checkpoint.KernelCheckpoint`)."""
    tasks, traces = scenario.materialize()
    policy, mode, costs = build_policy_and_mode(scenario.sync)
    if scenario.policy == "edf":
        policy = EDF()
    elif scenario.policy == "llf":
        policy = LLF()
    if scenario.costs is not None:
        costs = scenario.costs
    config = SimulationConfig(
        tasks=tasks,
        arrival_traces=traces,
        policy=policy,
        horizon=scenario.horizon,
        sync=mode,
        costs=costs,
        retry_policy=scenario.retry_policy,
        trace=scenario.trace,
        fault_plan=scenario.faults,
        admission=scenario.admission,
        retry_guard=scenario.retry_guard,
        monitors=scenario.monitors,
        observer=observer,
        checkpoints=checkpoints,
        checkpoint_sink=checkpoint_sink,
    )
    if resume_from is not None:
        kernel = Kernel.restore(config, resume_from)
    else:
        kernel = Kernel(config)
    result = kernel.run()
    return SimulationSummary(
        policy=policy.name,
        sync=scenario.sync,
        load=approximate_load(tasks),
        aur=result.aur,
        cmr=result.cmr,
        result=result,
    )


def simulate(scenario=None, sync=None, horizon=None, seed=None,
             arrival_style: str = "uniform",
             trace: bool = False,
             faults=None,
             fault_plan=None,
             admission=None,
             retry_guard=None,
             monitors: bool = False,
             observer=None,
             obs=None,
             tasks=None,
             checkpoints=None,
             checkpoint_sink=None,
             resume_from=None) -> SimulationSummary:
    """Run one simulation.

    Canonical form: ``simulate(scenario)`` with a
    :class:`~repro.scenario.Scenario` (plus an optional ``observer=`` to
    attach a recording :class:`repro.obs.Observer`; its end-of-run
    summary lands on ``summary.result.obs``).

    Legacy form (deprecated, still exact): ``simulate(tasks, sync,
    horizon, seed, ...)`` — a concrete task list with arrivals drawn
    from ``random.Random(seed)``.  It is equivalent to::

        simulate(Scenario(tasks=tuple(tasks), sync=sync, horizon=horizon,
                          seed=seed, seeding="shared", ...))

    The optional fault/degradation arguments (see :mod:`repro.faults`)
    inject a deterministic fault plan, guard UAM admission, bound
    lock-free retries, and attach the runtime invariant monitors; the
    run's degradation report lands on ``summary.result.degradation``.

    Crash recovery (see :mod:`repro.sim.checkpoint`): ``checkpoints=``
    attaches a :class:`~repro.sim.checkpoint.CheckpointPolicy` (each
    snapshot goes to ``checkpoint_sink``, a callable, or accumulates on
    the kernel); ``resume_from=`` restores a
    :class:`~repro.sim.checkpoint.KernelCheckpoint` and finishes the
    run byte-identically to the uninterrupted simulation.
    """
    observer = _coalesce_deprecated("observer", observer, "obs", obs)
    faults = _coalesce_deprecated("faults", faults, "fault_plan",
                                  fault_plan)
    if isinstance(scenario, Scenario):
        extras = (sync, horizon, seed, tasks, faults, admission,
                  retry_guard)
        if (any(value is not None for value in extras) or trace
                or monitors or arrival_style != "uniform"):
            raise TypeError(
                "simulate(scenario) takes the full configuration from "
                "the Scenario; only observer=, checkpoints=, "
                "checkpoint_sink= and resume_from= may be passed "
                "alongside")
        return _run_scenario(scenario, observer=observer,
                             checkpoints=checkpoints,
                             checkpoint_sink=checkpoint_sink,
                             resume_from=resume_from)
    if checkpoints is not None or checkpoint_sink is not None \
            or resume_from is not None:
        raise TypeError(
            "checkpoints=/checkpoint_sink=/resume_from= require the "
            "canonical simulate(scenario) form")
    if tasks is None:
        tasks = scenario
    if tasks is None or sync is None or horizon is None or seed is None:
        raise TypeError(
            "simulate() needs a Scenario, or the legacy "
            "(tasks, sync, horizon, seed) signature")
    warnings.warn(
        "simulate(tasks, sync, horizon, seed, ...) is deprecated; "
        "build a repro.Scenario and call simulate(scenario)",
        DeprecationWarning, stacklevel=2)
    legacy = Scenario(
        sync=sync,
        horizon=horizon,
        seed=seed,
        tasks=tuple(tasks),
        seeding="shared",
        arrival_style=arrival_style,
        trace=trace,
        faults=faults,
        admission=admission,
        retry_guard=retry_guard,
        monitors=monitors,
    )
    return _run_scenario(legacy, observer=observer)


def quick_scenario(n_tasks: int = 5,
                   n_objects: int = 3,
                   sync: str = "lockfree",
                   load: float = 0.8,
                   horizon_us: int = 500_000,
                   seed: int = 0,
                   tuf_class: str = "step",
                   arrival_style: str = "uniform") -> Scenario:
    """The declarative form of :func:`quick_simulation`'s run: the
    paper-style random workload with the quick-look parameter defaults.

    ``horizon_us`` is in microseconds for convenience; everything else in
    the package uses nanosecond ticks.  ``seeding="split"`` preserves the
    historical convention exactly: tasks from ``Random(seed)``, arrivals
    from ``Random(seed + 1)``.
    """
    from repro.experiments.workloads import BuilderSpec

    workload = BuilderSpec.make(
        "paper",
        n_tasks=n_tasks,
        n_objects=n_objects,
        accesses_per_job=min(2, n_objects),
        avg_exec=300_000,                   # 300 µs
        access_duration=5_000,              # 5 µs per operation
        tuf_class=tuf_class,
        target_load=load,
    )
    return Scenario(
        sync=sync,
        horizon=horizon_us * 1_000,
        seed=seed,
        workload=workload,
        seeding="split",
        arrival_style=arrival_style,
    )


def quick_simulation(n_tasks: int = 5,
                     n_objects: int = 3,
                     sync: str = "lockfree",
                     load: float = 0.8,
                     horizon_us: int = 500_000,
                     seed: int = 0,
                     tuf_class: str = "step",
                     arrival_style: str = "uniform",
                     observer=None,
                     obs=None) -> SimulationSummary:
    """One-call random-workload simulation (see the package docstring):
    a thin wrapper over ``simulate(quick_scenario(...))``."""
    observer = _coalesce_deprecated("observer", observer, "obs", obs)
    scenario = quick_scenario(
        n_tasks=n_tasks, n_objects=n_objects, sync=sync, load=load,
        horizon_us=horizon_us, seed=seed, tuf_class=tuf_class,
        arrival_style=arrival_style)
    return simulate(scenario, observer=observer)


def run_simulations(seeds: list[int],
                    n_tasks: int = 5,
                    n_objects: int = 3,
                    sync: str = "lockfree",
                    load: float = 0.8,
                    horizon_us: int = 500_000,
                    tuf_class: str = "step",
                    arrival_style: str = "uniform",
                    campaign: "CampaignConfig | CampaignEngine | None" = None
                    ) -> list[SimulationSummary]:
    """Batch counterpart of :func:`quick_simulation`: one seeded run per
    entry of ``seeds``, optionally routed through the resilient campaign
    engine (``campaign=CampaignConfig(workers=4, ...)``).  Each trial
    derives everything from its own seed (a seed-parameterized
    :func:`quick_scenario`), so serial and parallel execution return
    identical summaries; trials that failed terminally under a campaign
    are dropped from the returned list.
    """
    from repro.campaign import as_engine

    engine = as_engine(campaign, tag=f"quick:{sync}")
    if engine is None:
        return [
            quick_simulation(n_tasks=n_tasks, n_objects=n_objects,
                             sync=sync, load=load, horizon_us=horizon_us,
                             seed=seed, tuf_class=tuf_class,
                             arrival_style=arrival_style)
            for seed in seeds
        ]
    batch = engine.map(
        quick_simulation,
        [(n_tasks, n_objects, sync, load, horizon_us, seed, tuf_class,
          arrival_style)
         for seed in seeds],
    )
    return batch.values
