"""Labeled metrics registry with OpenMetrics text exposition.

The capture layer (:mod:`repro.obs.observer`) records flat dotted
counters and raw-value histograms.  This module is the *export* side of
that telemetry: a small Prometheus-style registry —
:class:`Counter` / :class:`Gauge` / :class:`Histogram` families with
label sets — rendered as `OpenMetrics`_ text, plus a stdlib-only HTTP
server so a long campaign is scrapeable live at ``/metrics``.

Two bridges feed the registry:

* :func:`fill_from_observer` maps the observer's dotted counter names
  into labeled families (``retries.<obj>`` becomes
  ``repro_object_retries_total{object="<obj>"}``, campaign/kernel/
  invariant counters get their own families) and exports every observer
  histogram as an OpenMetrics summary (count, sum, p50/p90 quantiles);
* :func:`fill_from_degradation` exports a
  :class:`~repro.faults.report.DegradationReport` — most importantly the
  per-monitor invariant-violation series.

Everything is stdlib-only and thread-safe: the campaign engine mutates
its observer from the driving thread while the HTTP server snapshots a
fresh registry per scrape (:func:`snapshot_openmetrics`), so a scrape
never observes a half-updated family.

.. _OpenMetrics: https://prometheus.io/docs/specs/om/open_metrics_spec/
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.report import DegradationReport
    from repro.obs.observer import NullObserver

_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")

#: ``Content-Type`` the OpenMetrics spec mandates for scrapes.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8")


def sanitize_metric_name(raw: str) -> str:
    """Collapse a dotted observer name into a legal metric name."""
    name = _INVALID_CHARS.sub("_", raw).strip("_")
    if not name or not _NAME_RE.match(name):
        name = f"m_{_INVALID_CHARS.sub('_', raw)}"
    return name


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    """Integral floats render bare (``5`` not ``5.0``) so counters look
    like counters; everything else uses repr (shortest round-trip)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label_value(value)}"'
                     for key, value in labels)
    return "{" + inner + "}"


class _MetricFamily:
    """Common bookkeeping: name/help/label validation, sample storage."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: Iterable[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _NAME_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{sorted(self.labelnames)}, got {sorted(labels)}")
        return tuple((name, str(labels[name])) for name in self.labelnames)

    # Subclasses render their samples; the registry adds the headers.
    def samples(self) -> list[str]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_MetricFamily):
    """Monotonically increasing count, one series per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: Iterable[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def samples(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [f"{self.name}_total{_labels_text(labels)} "
                f"{_format_value(value)}"
                for labels, value in items]


class Gauge(_MetricFamily):
    """A value that can go up and down (workers busy, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: Iterable[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def samples(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [f"{self.name}{_labels_text(labels)} {_format_value(value)}"
                for labels, value in items]


#: Default histogram buckets: wide log-ish spread that covers both
#: sub-second trial walls and nanosecond-scale simulated quantities.
DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0,
                   1e6, 1e9, float("inf"))


class Histogram(_MetricFamily):
    """Bucketed distribution with ``_bucket``/``_sum``/``_count``."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: Iterable[str] = (),
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.buckets = tuple(bounds)
        # label key -> (per-bucket cumulative-eligible counts, sum, count)
        self._state: dict[tuple[tuple[str, str], ...],
                          tuple[list[int], float, int]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            counts, total, n = self._state.get(
                key, ([0] * len(self.buckets), 0.0, 0))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            self._state[key] = (counts, total + float(value), n + 1)

    def samples(self) -> list[str]:
        with self._lock:
            items = sorted((k, (list(c), t, n))
                           for k, (c, t, n) in self._state.items())
        out: list[str] = []
        for labels, (counts, total, n) in items:
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                le = "+Inf" if bound == float("inf") else _format_value(bound)
                bucket_labels = labels + (("le", le),)
                out.append(f"{self.name}_bucket{_labels_text(bucket_labels)} "
                           f"{cumulative}")
            out.append(f"{self.name}_count{_labels_text(labels)} {n}")
            out.append(f"{self.name}_sum{_labels_text(labels)} "
                       f"{_format_value(total)}")
        return out


class Summary(_MetricFamily):
    """Pre-aggregated quantiles (the observer's histogram digests)."""

    kind = "summary"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: Iterable[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        # label key -> (count, sum, {quantile: value})
        self._state: dict[tuple[tuple[str, str], ...],
                          tuple[int, float, dict[str, float]]] = {}

    def set_digest(self, count: int, total: float,
                   quantiles: Mapping[str, float] | None = None,
                   **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._state[key] = (count, total, dict(quantiles or {}))

    def samples(self) -> list[str]:
        with self._lock:
            items = sorted((k, (c, t, dict(q)))
                           for k, (c, t, q) in self._state.items())
        out: list[str] = []
        for labels, (count, total, quantiles) in items:
            for q in sorted(quantiles):
                q_labels = labels + (("quantile", q),)
                out.append(f"{self.name}{_labels_text(q_labels)} "
                           f"{_format_value(quantiles[q])}")
            out.append(f"{self.name}_count{_labels_text(labels)} {count}")
            out.append(f"{self.name}_sum{_labels_text(labels)} "
                       f"{_format_value(total)}")
        return out


class MetricsRegistry:
    """Named metric families, rendered as one OpenMetrics document."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _MetricFamily] = {}

    def _register(self, family: _MetricFamily) -> _MetricFamily:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if type(existing) is not type(family):
                    raise ValueError(
                        f"metric {family.name!r} already registered as "
                        f"{existing.kind}")
                return existing
            self._families[family.name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, labelnames))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames))  # type: ignore[return-value]

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(
            Histogram(name, help_text, labelnames, buckets))  # type: ignore[return-value]

    def summary(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> Summary:
        return self._register(Summary(name, help_text, labelnames))  # type: ignore[return-value]

    def render(self) -> str:
        """The OpenMetrics text document, terminated by ``# EOF``."""
        with self._lock:
            families = [self._families[name]
                        for name in sorted(self._families)]
        lines: list[str] = []
        for family in families:
            lines.append(f"# TYPE {family.name} {family.kind}")
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.extend(family.samples())
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Observer / degradation bridges
# ----------------------------------------------------------------------

#: Dotted-prefix -> (family, label name, help) routing for observer
#: counters whose suffix is data, not schema.
_LABELED_COUNTER_ROUTES = (
    ("retries.", "repro_object_retries", "object",
     "Lock-free retries per shared object"),
    ("invariant.violations.", "repro_invariant_violations", "monitor",
     "Runtime invariant violations per monitor"),
    ("campaign.attempt_failures.", "repro_campaign_attempt_failures",
     "kind", "Failed trial attempts per failure kind"),
)

#: Flat observer counters that get stable, documented family names.
_FLAT_COUNTER_ROUTES = {
    "campaign.trials": ("repro_campaign_trials",
                        "Trials reaching a terminal outcome"),
    "campaign.ok": ("repro_campaign_trials_ok",
                    "Trials that completed successfully"),
    "campaign.failed": ("repro_campaign_trials_failed",
                        "Trials that failed terminally"),
    "campaign.retries": ("repro_campaign_retries",
                         "Trial attempts re-queued after a retryable "
                         "failure"),
    "campaign.from_journal": ("repro_campaign_trials_from_journal",
                              "Trials replayed from a resume journal"),
    "campaign.journal_writes": ("repro_campaign_journal_writes",
                                "Checkpoint journal records written"),
}


def declare_standard_families(registry: MetricsRegistry) -> None:
    """Pre-register the series every scrape must expose — trial, retry
    and invariant-violation families render (at zero) even before the
    first trial completes or the first violation lands."""
    for raw in ("campaign.trials", "campaign.ok", "campaign.failed",
                "campaign.retries"):
        name, help_text = _FLAT_COUNTER_ROUTES[raw]
        registry.counter(name, help_text)
    registry.counter("repro_invariant_violations_detected",
                     "Total runtime invariant violations across monitors")


def fill_from_observer(registry: MetricsRegistry,
                       observer: "NullObserver") -> MetricsRegistry:
    """Project an observer's counters and histograms into the registry.

    Safe on any observer implementation: the disabled
    :data:`~repro.obs.observer.NULL_OBSERVER` contributes nothing.
    """
    counters = getattr(observer, "counters", None)
    if counters:
        for raw in sorted(counters):
            value = counters[raw]
            routed = False
            for prefix, family, label, help_text in _LABELED_COUNTER_ROUTES:
                if raw.startswith(prefix):
                    registry.counter(family, help_text, (label,)).inc(
                        value, **{label: raw[len(prefix):]})
                    if family == "repro_invariant_violations":
                        registry.counter(
                            "repro_invariant_violations_detected",
                            "Total runtime invariant violations across "
                            "monitors").inc(value)
                    routed = True
                    break
            if routed:
                continue
            flat = _FLAT_COUNTER_ROUTES.get(raw)
            if flat is not None:
                registry.counter(flat[0], flat[1]).inc(value)
            else:
                registry.counter(
                    f"repro_{sanitize_metric_name(raw)}",
                    f"Observer counter {raw!r}").inc(value)
    histograms = getattr(observer, "histograms", None)
    if histograms:
        for raw in sorted(histograms):
            digest = histograms[raw].summary()
            if not digest.get("count"):
                continue
            summary = registry.summary(
                f"repro_{sanitize_metric_name(raw)}",
                f"Observer histogram {raw!r}")
            summary.set_digest(
                count=int(digest["count"]),
                total=float(histograms[raw].total),
                quantiles={"0.5": digest["p50"], "0.9": digest["p90"]})
    return registry


def fill_from_degradation(registry: MetricsRegistry,
                          report: "DegradationReport") -> MetricsRegistry:
    """Export a degradation report: per-monitor invariant-violation
    counts plus the shed/defer/abort degradation counters."""
    violations = registry.counter(
        "repro_invariant_violations",
        "Runtime invariant violations per monitor", ("monitor",))
    total = registry.counter(
        "repro_invariant_violations_detected",
        "Total runtime invariant violations across monitors")
    by_monitor: dict[str, int] = {}
    for violation in report.violations:
        by_monitor[violation.monitor] = by_monitor.get(
            violation.monitor, 0) + 1
    for monitor in sorted(by_monitor):
        violations.inc(by_monitor[monitor], monitor=monitor)
        total.inc(by_monitor[monitor])
    degradation = registry.counter(
        "repro_degradation_actions",
        "Graceful-degradation actions taken by the kernel", ("action",))
    for action, value in (("shed", report.shed_jobs),
                          ("deferred", report.deferred_jobs),
                          ("retry_abort", report.retry_aborts)):
        degradation.inc(value, action=action)
    return registry


def snapshot_openmetrics(observer: "NullObserver | None" = None,
                         degradation: "DegradationReport | None" = None,
                         extra: Callable[[MetricsRegistry], None] | None
                         = None) -> str:
    """One consistent OpenMetrics document from the current telemetry.

    Builds a fresh registry per call (scrape-time snapshot), so a
    campaign thread can keep mutating its observer while HTTP scrapes
    are served concurrently.
    """
    registry = MetricsRegistry()
    declare_standard_families(registry)
    if observer is not None:
        fill_from_observer(registry, observer)
    if degradation is not None:
        fill_from_degradation(registry, degradation)
    if extra is not None:
        extra(registry)
    return registry.render()


# ----------------------------------------------------------------------
# Stdlib-only /metrics endpoint
# ----------------------------------------------------------------------


class _MetricsHandler(BaseHTTPRequestHandler):
    """GET /metrics -> the server's render callback; quiet logging."""

    server: "_MetricsHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            try:
                body = self.server.render().encode("utf-8")
            except Exception as exc:  # pragma: no cover - defensive
                self.send_error(500, f"render failed: {exc}")
                return
            self.send_response(200)
            self.send_header("Content-Type", OPENMETRICS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404, "try /metrics")

    def log_message(self, *args: Any) -> None:  # noqa: D102
        pass


class _MetricsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    render: Callable[[], str]


class MetricsServer:
    """Background ``/metrics`` endpoint for live campaign scraping.

    ``render`` is called per scrape and must return the OpenMetrics
    text (typically :func:`snapshot_openmetrics` over the campaign
    observer).  ``port=0`` binds an ephemeral port; read ``.port`` /
    ``.url`` after :meth:`start`.
    """

    def __init__(self, render: Callable[[], str],
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self._render = render
        self._host = host
        self._requested_port = port
        self._server: _MetricsHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int | None:
        if self._server is None:
            return None
        return self._server.server_address[1]

    @property
    def url(self) -> str | None:
        if self._server is None:
            return None
        return f"http://{self._host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        if self._server is not None:
            return self
        server = _MetricsHTTPServer(
            (self._host, self._requested_port), _MetricsHandler)
        server.render = self._render
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-metrics",
            daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()
