"""Observability & profiling layer (DESIGN.md §10).

Spans, counters and histograms threaded through the simulated kernel,
the scheduler policies and the campaign engine; exporters for Chrome
trace-event JSON, JSONL event streams, a compact perf summary, and the
``BENCH_*.json`` perf-trajectory baselines.

Only :mod:`repro.obs.events` and :mod:`repro.obs.observer` load eagerly
(they are stdlib-only, so instrumented modules deep in the import graph
— the kernel, the campaign engine — can import :data:`NULL_OBSERVER`
without cycles).  The exporters, bench baselines and the profile runner
resolve lazily on first attribute access.
"""

from __future__ import annotations

from typing import Any

from repro.obs.events import (      # noqa: F401 - public re-exports
    CounterSample,
    Histogram,
    InstantEvent,
    SpanEvent,
    freeze_args,
)
from repro.obs.observer import (    # noqa: F401 - public re-exports
    NULL_OBSERVER,
    NullObserver,
    Observer,
)

_LAZY = {
    "chrome_trace": "repro.obs.exporters",
    "write_chrome_trace": "repro.obs.exporters",
    "events_jsonl": "repro.obs.exporters",
    "write_jsonl": "repro.obs.exporters",
    "render_summary": "repro.obs.exporters",
    "record_bench_baseline": "repro.obs.bench",
    "load_baseline": "repro.obs.bench",
    "baseline_path": "repro.obs.bench",
    "run_profile": "repro.obs.profile",
    "ProfileResult": "repro.obs.profile",
    "PROFILE_WORKLOADS": "repro.obs.profile",
    "PROFILE_SYNCS": "repro.obs.profile",
    # metrics registry & live /metrics endpoint
    "MetricsRegistry": "repro.obs.metrics",
    "MetricsServer": "repro.obs.metrics",
    "snapshot_openmetrics": "repro.obs.metrics",
    "fill_from_observer": "repro.obs.metrics",
    "fill_from_degradation": "repro.obs.metrics",
    # perf-regression gate over committed trajectories
    "append_trajectory": "repro.obs.regress",
    "load_trajectory": "repro.obs.regress",
    "check_trajectories": "repro.obs.regress",
    "judge_series": "repro.obs.regress",
    "RegressionReport": "repro.obs.regress",
    # trace-diff diagnosis
    "diff_trace_files": "repro.obs.diff",
    "diff_traces": "repro.obs.diff",
    "load_trace": "repro.obs.diff",
    "TraceDiff": "repro.obs.diff",
}

__all__ = [
    "CounterSample",
    "Histogram",
    "InstantEvent",
    "SpanEvent",
    "freeze_args",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    *sorted(_LAZY),
]


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
