"""Trace-diff diagnosis: where did two runs start to disagree?

``python -m repro diff A B`` aligns two exported traces — the JSONL
event stream or the Chrome trace-event JSON that ``repro profile``
writes — and answers the question raw telemetry cannot: *which
scheduling decision diverged first, and what did each task pay for it*.
The canonical use is lock-based vs lock-free RUA at the same seed
(the paper's central comparison), or before/after a kernel change.

Both exported formats are lossless over the deterministic event model
(:mod:`repro.obs.events`), so the diff is exact and deterministic: the
same pair of traces always yields the same first divergence and the
same per-task deltas in retries, aborts, blocking time and accrued
utility.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

#: Lanes that carry kernel machinery, not per-task work.
_NON_TASK_TIDS = frozenset({"kernel", "trace"})


class TraceFormatError(ValueError):
    """The file is neither a JSONL event stream nor a Chrome trace."""


@dataclass
class TraceView:
    """A trace normalized back into the deterministic event model:
    plain dict rows with ``name``/``cat``/``tid`` and nanosecond
    timestamps, independent of which exporter wrote the file."""

    path: str
    spans: list[dict[str, Any]] = field(default_factory=list)
    instants: list[dict[str, Any]] = field(default_factory=list)
    counters: list[dict[str, Any]] = field(default_factory=list)

    def decisions(self) -> list[dict[str, Any]]:
        """Scheduler decisions in simulated-time order (ties broken by
        recording order, which both exporters preserve)."""
        rows = [span for span in self.spans
                if span["name"] == "sched.decision"]
        rows.sort(key=lambda span: span["start"])
        return rows

    def task_tids(self) -> list[str]:
        tids = {row["tid"] for row in (*self.spans, *self.instants)}
        return sorted(tids - _NON_TASK_TIDS)


def _from_jsonl(lines: list[str], path: str) -> TraceView:
    view = TraceView(path=path)
    for number, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{path}:{number}: not JSON ({exc})") from exc
        kind = row.get("type")
        if kind == "span":
            view.spans.append(row)
        elif kind == "instant":
            view.instants.append(row)
        elif kind == "counter":
            view.counters.append(row)
        else:
            raise TraceFormatError(
                f"{path}:{number}: unknown event type {kind!r}")
    return view


def _from_chrome(document: dict[str, Any], path: str) -> TraceView:
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise TraceFormatError(f"{path}: no traceEvents array")
    # Integer tid -> lane name, from the thread_name metadata records.
    lanes: dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            lanes[event.get("tid")] = event.get("args", {}).get("name", "")

    def lane(event: dict[str, Any]) -> str:
        return lanes.get(event.get("tid"), str(event.get("tid")))

    def to_ns(ts_us: float) -> int:
        return round(float(ts_us) * 1000.0)

    view = TraceView(path=path)
    for event in events:
        phase = event.get("ph")
        if phase == "X":
            view.spans.append({
                "type": "span", "name": event.get("name", ""),
                "cat": event.get("cat", ""), "tid": lane(event),
                "start": to_ns(event.get("ts", 0)),
                "duration": to_ns(event.get("dur", 0)),
                "args": dict(event.get("args", {})),
            })
        elif phase == "i":
            view.instants.append({
                "type": "instant", "name": event.get("name", ""),
                "cat": event.get("cat", ""), "tid": lane(event),
                "ts": to_ns(event.get("ts", 0)),
                "args": dict(event.get("args", {})),
            })
        elif phase == "C":
            view.counters.append({
                "type": "counter", "name": event.get("name", ""),
                "ts": to_ns(event.get("ts", 0)),
                "value": event.get("args", {}).get("value"),
            })
    return view


def load_trace(path: str | os.PathLike) -> TraceView:
    """Load either exported format; the Chrome document is detected by
    its ``traceEvents`` envelope, anything else parses as JSONL."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped:
        return TraceView(path=str(path))
    if stripped.startswith("{"):
        # One JSON document: the Chrome envelope.  A multi-line JSONL
        # stream also starts with "{" but fails the whole-file parse
        # and falls through to line-by-line parsing.
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            document = None
        if isinstance(document, dict):
            if "traceEvents" in document:
                return _from_chrome(document, str(path))
            if document.get("type") not in ("span", "instant", "counter"):
                raise TraceFormatError(
                    f"{path}: JSON document without traceEvents")
    return _from_jsonl(text.splitlines(), str(path))


# ----------------------------------------------------------------------
# Alignment & deltas
# ----------------------------------------------------------------------


def _decision_key(span: dict[str, Any]) -> tuple:
    args = span.get("args", {})
    return (span["start"], args.get("n"), args.get("chosen"),
            args.get("passes"))


def _decision_brief(span: dict[str, Any] | None) -> dict[str, Any] | None:
    if span is None:
        return None
    args = span.get("args", {})
    return {"t": span["start"], "n": args.get("n"),
            "chosen": args.get("chosen"), "passes": args.get("passes"),
            "cost": span.get("duration")}


@dataclass(frozen=True)
class Divergence:
    """The first scheduling decision the two traces disagree on."""

    index: int                      # 0-based decision number
    a: dict[str, Any] | None       # None = trace A ran out of decisions
    b: dict[str, Any] | None

    def to_dict(self) -> dict[str, Any]:
        return {"index": self.index, "a": self.a, "b": self.b}


@dataclass
class TaskDelta:
    """Per-task accounting difference (B minus A)."""

    tid: str
    retries: tuple[int, int] = (0, 0)
    aborts: tuple[int, int] = (0, 0)
    completions: tuple[int, int] = (0, 0)
    blocking_ns: tuple[int, int] = (0, 0)
    exec_ns: tuple[int, int] = (0, 0)
    utility: tuple[float, float] = (0.0, 0.0)

    def deltas(self) -> dict[str, float]:
        return {name: pair[1] - pair[0]
                for name, pair in self._pairs().items()}

    def _pairs(self) -> dict[str, tuple]:
        return {"retries": self.retries, "aborts": self.aborts,
                "completions": self.completions,
                "blocking_ns": self.blocking_ns, "exec_ns": self.exec_ns,
                "utility": self.utility}

    @property
    def changed(self) -> bool:
        return any(pair[0] != pair[1] for pair in self._pairs().values())

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"tid": self.tid, "changed": self.changed}
        for name, (in_a, in_b) in self._pairs().items():
            out[name] = {"a": in_a, "b": in_b, "delta": in_b - in_a}
        return out


def _task_stats(view: TraceView) -> dict[str, dict[str, float]]:
    stats: dict[str, dict[str, float]] = {}

    def row(tid: str) -> dict[str, float]:
        return stats.setdefault(tid, {
            "retries": 0, "aborts": 0, "completions": 0,
            "blocking_ns": 0, "exec_ns": 0, "utility": 0.0})

    for instant in view.instants:
        tid = instant["tid"]
        if tid in _NON_TASK_TIDS:
            continue
        name = instant["name"]
        if name == "retry":
            row(tid)["retries"] += 1
        elif name == "abort":
            row(tid)["aborts"] += 1
        elif name == "complete":
            entry = row(tid)
            entry["completions"] += 1
            utility = instant.get("args", {}).get("utility")
            if isinstance(utility, (int, float)):
                entry["utility"] += float(utility)
    for span in view.spans:
        tid = span["tid"]
        if tid in _NON_TASK_TIDS:
            continue
        if span["name"] == "exec":
            row(tid)["exec_ns"] += span["duration"]
        elif span["cat"] == "lock" or span["name"].startswith("blocked:"):
            row(tid)["blocking_ns"] += span["duration"]
    return stats


@dataclass
class TraceDiff:
    """The full diagnosis of a trace pair."""

    path_a: str
    path_b: str
    decisions_a: int
    decisions_b: int
    divergence: Divergence | None
    tasks: list[TaskDelta] = field(default_factory=list)

    @property
    def identical_schedule(self) -> bool:
        return self.divergence is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "a": self.path_a,
            "b": self.path_b,
            "decisions": {"a": self.decisions_a, "b": self.decisions_b},
            "identical_schedule": self.identical_schedule,
            "first_divergence": (None if self.divergence is None
                                 else self.divergence.to_dict()),
            "tasks": [task.to_dict() for task in self.tasks],
            "changed_tasks": sum(1 for task in self.tasks if task.changed),
        }

    def render(self) -> str:
        title = f"trace diff: {self.path_a} vs {self.path_b}"
        lines = [title, "=" * len(title)]
        lines.append(f"scheduling decisions: A={self.decisions_a} "
                     f"B={self.decisions_b}")
        if self.divergence is None:
            lines.append("schedules agree: every scheduling decision "
                         "is identical")
        else:
            div = self.divergence
            lines.append(f"first divergent scheduling decision: "
                         f"#{div.index}")
            for side, brief in (("A", div.a), ("B", div.b)):
                if brief is None:
                    lines.append(f"  {side}: (no further decisions)")
                else:
                    lines.append(
                        f"  {side}: t={brief['t']} n={brief['n']} "
                        f"chosen={brief['chosen'] or '(idle)'} "
                        f"passes={brief['passes']} cost={brief['cost']}")
        changed = [task for task in self.tasks if task.changed]
        lines.append("")
        lines.append(f"per-task deltas (B - A), {len(changed)} of "
                     f"{len(self.tasks)} tasks changed:")
        header = (f"  {'task':<12} {'retries':>12} {'aborts':>10} "
                  f"{'blocked_ns':>16} {'exec_ns':>16} {'utility':>14}")
        lines += [header, "  " + "-" * (len(header) - 2)]

        def cell(pair: tuple, width: int, floats: bool = False) -> str:
            in_a, in_b = pair
            if in_a == in_b:
                text = f"{in_a:.3f}" if floats else f"{in_a}"
                return f"{text:>{width}}"
            if floats:
                return f"{in_a:.3f}->{in_b:.3f}".rjust(width)
            return f"{in_a}->{in_b}".rjust(width)

        for task in self.tasks:
            lines.append(
                f"  {task.tid:<12} {cell(task.retries, 12)} "
                f"{cell(task.aborts, 10)} {cell(task.blocking_ns, 16)} "
                f"{cell(task.exec_ns, 16)} "
                f"{cell(task.utility, 14, floats=True)}")
        total_a = sum(task.utility[0] for task in self.tasks)
        total_b = sum(task.utility[1] for task in self.tasks)
        lines.append("")
        lines.append(f"accrued utility: A={total_a:.3f} B={total_b:.3f} "
                     f"(delta {total_b - total_a:+.3f})")
        return "\n".join(lines)


def diff_traces(view_a: TraceView, view_b: TraceView) -> TraceDiff:
    """Align two normalized traces and compute the diagnosis."""
    decisions_a = view_a.decisions()
    decisions_b = view_b.decisions()
    divergence: Divergence | None = None
    for index in range(max(len(decisions_a), len(decisions_b))):
        span_a = decisions_a[index] if index < len(decisions_a) else None
        span_b = decisions_b[index] if index < len(decisions_b) else None
        if (span_a is None or span_b is None
                or _decision_key(span_a) != _decision_key(span_b)):
            divergence = Divergence(index=index,
                                    a=_decision_brief(span_a),
                                    b=_decision_brief(span_b))
            break

    stats_a = _task_stats(view_a)
    stats_b = _task_stats(view_b)
    tasks: list[TaskDelta] = []
    for tid in sorted(set(stats_a) | set(stats_b)):
        in_a = stats_a.get(tid, {})
        in_b = stats_b.get(tid, {})

        def pair(key: str, cast=int) -> tuple:
            return (cast(in_a.get(key, 0)), cast(in_b.get(key, 0)))

        tasks.append(TaskDelta(
            tid=tid,
            retries=pair("retries"),
            aborts=pair("aborts"),
            completions=pair("completions"),
            blocking_ns=pair("blocking_ns"),
            exec_ns=pair("exec_ns"),
            utility=pair("utility", float),
        ))
    return TraceDiff(path_a=view_a.path, path_b=view_b.path,
                     decisions_a=len(decisions_a),
                     decisions_b=len(decisions_b),
                     divergence=divergence, tasks=tasks)


def diff_trace_files(path_a: str | os.PathLike,
                     path_b: str | os.PathLike) -> TraceDiff:
    return diff_traces(load_trace(path_a), load_trace(path_b))
