"""The observer: the span/counter/histogram sink threaded through the
kernel, the scheduler policies and the campaign engine.

Two implementations share one interface:

* :class:`NullObserver` — the disabled default.  Every method is a
  no-op ``pass`` and ``enabled`` is False, so instrumented hot paths can
  guard with ``if obs.enabled:`` and pay a single attribute test.  One
  shared :data:`NULL_OBSERVER` singleton serves every un-instrumented
  run; it allocates nothing, ever.
* :class:`Observer` — the recording implementation, used by
  ``python -m repro profile`` and the observability tests.

Determinism contract (DESIGN.md §10): everything that enters the event
stream (spans, instants, counter samples, histograms) is a pure function
of the simulation, keyed by *simulated* time.  Wall-clock readings are
collected only through :meth:`Observer.decision` into aggregate samples
that are kept out of the exported trace, so a fixed seed yields a
byte-identical trace file across runs while the perf summary still
reports real measured scheduler latencies.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.obs.events import (
    CounterSample,
    Histogram,
    InstantEvent,
    SpanEvent,
    freeze_args,
)


class NullObserver:
    """Shared no-op sink; the near-zero-overhead disabled default."""

    __slots__ = ()

    enabled = False

    # -- primitives ----------------------------------------------------
    def counter(self, name: str, value: int = 1) -> None:
        pass

    def histogram(self, name: str, value: float) -> None:
        pass

    def span(self, name: str, cat: str, tid: str, start: int,
             duration: int, args: dict[str, Any] | None = None) -> None:
        pass

    def instant(self, name: str, cat: str, tid: str, ts: int,
                args: dict[str, Any] | None = None) -> None:
        pass

    def tick_counter(self, name: str, ts: int, value: int = 1) -> None:
        pass

    # -- open-ended spans (blocking intervals) -------------------------
    def open_span(self, key: Any, name: str, cat: str, tid: str,
                  ts: int) -> None:
        pass

    def close_span(self, key: Any, ts: int) -> None:
        pass

    def close_open_spans(self, ts: int) -> None:
        pass

    # -- wall-clock scheduler decision samples -------------------------
    def decision(self, n: int, sim_cost: int, wall_ns: int) -> None:
        pass

    def summary(self) -> dict[str, Any]:
        return {"enabled": False}


#: The process-wide disabled sink.  Everything instrumented holds a
#: reference to this when no observer was configured.
NULL_OBSERVER = NullObserver()


class Observer(NullObserver):
    """Recording sink: accumulates events, counters and histograms.

    ``clock`` is the wall-clock source for :meth:`decision` callers
    (injectable so tests can pin it); it defaults to
    :func:`time.perf_counter_ns`.
    """

    __slots__ = ("counters", "histograms", "spans", "instants",
                 "counter_samples", "decisions", "_open", "clock")

    enabled = True

    def __init__(self, clock: Callable[[], int] | None = None) -> None:
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}
        self.spans: list[SpanEvent] = []
        self.instants: list[InstantEvent] = []
        self.counter_samples: list[CounterSample] = []
        #: (ready-queue size, simulated pass cost, wall ns) per decision.
        self.decisions: list[tuple[int, int, int]] = []
        self._open: dict[Any, tuple[str, str, str, int]] = {}
        self.clock = clock or time.perf_counter_ns

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------

    def counter(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def histogram(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.record(value)

    def span(self, name: str, cat: str, tid: str, start: int,
             duration: int, args: dict[str, Any] | None = None) -> None:
        self.spans.append(SpanEvent(name=name, cat=cat, tid=tid,
                                    start=start, duration=duration,
                                    args=freeze_args(args)))

    def instant(self, name: str, cat: str, tid: str, ts: int,
                args: dict[str, Any] | None = None) -> None:
        self.instants.append(InstantEvent(name=name, cat=cat, tid=tid,
                                          ts=ts, args=freeze_args(args)))

    def tick_counter(self, name: str, ts: int, value: int = 1) -> None:
        """Bump the cumulative counter ``name`` and record the new total
        as a timestamped sample (a Chrome counter-track point)."""
        total = self.counters.get(name, 0) + value
        self.counters[name] = total
        self.counter_samples.append(
            CounterSample(name=name, ts=ts, value=total))

    # ------------------------------------------------------------------
    # Open-ended spans
    # ------------------------------------------------------------------

    def open_span(self, key: Any, name: str, cat: str, tid: str,
                  ts: int) -> None:
        """Start an interval whose end is not yet known (a blocking
        interval).  Re-opening an open key closes the old one first."""
        if key in self._open:
            self.close_span(key, ts)
        self._open[key] = (name, cat, tid, ts)

    def close_span(self, key: Any, ts: int) -> None:
        pending = self._open.pop(key, None)
        if pending is None:
            return
        name, cat, tid, start = pending
        self.span(name, cat, tid, start, max(0, ts - start))

    def close_open_spans(self, ts: int) -> None:
        """End-of-run flush: close every still-open interval at ``ts``
        (deterministic — keys close in opening order)."""
        for key in list(self._open):
            self.close_span(key, ts)

    # ------------------------------------------------------------------
    # Scheduler decision samples (wall clock; summary-only)
    # ------------------------------------------------------------------

    def decision(self, n: int, sim_cost: int, wall_ns: int) -> None:
        self.decisions.append((n, sim_cost, wall_ns))

    def decision_stats_by_n(self) -> dict[int, dict[str, float]]:
        """Per-ready-queue-size decision cost: the measurement behind the
        ``O(n^2)`` vs ``O(n^2 log n)`` scheduler claim."""
        grouped: dict[int, list[tuple[int, int]]] = {}
        for n, sim_cost, wall_ns in self.decisions:
            grouped.setdefault(n, []).append((sim_cost, wall_ns))
        stats: dict[int, dict[str, float]] = {}
        for n in sorted(grouped):
            rows = grouped[n]
            stats[n] = {
                "count": len(rows),
                "sim_cost_mean": sum(c for c, _ in rows) / len(rows),
                "wall_ns_mean": sum(w for _, w in rows) / len(rows),
            }
        return stats

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Aggregate view (the CLI's ``--json`` obs block).  Includes
        wall-clock aggregates; the deterministic sub-tree is everything
        except the ``wall_ns*`` keys."""
        wall = Histogram([float(w) for _, _, w in self.decisions])
        return {
            "enabled": True,
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: self.histograms[name].summary()
                for name in sorted(self.histograms)
            },
            "spans": len(self.spans),
            "instants": len(self.instants),
            "scheduler": {
                "decisions": len(self.decisions),
                "wall_ns": wall.summary(),
                "by_n": {
                    str(n): row
                    for n, row in self.decision_stats_by_n().items()
                },
            },
        }
