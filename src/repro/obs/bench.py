"""Perf-trajectory baselines: ``BENCH_<name>.json``.

Every bench (and the ``repro profile --bench`` hook) appends one run
record to a per-bench baseline file, so the repository accumulates a
perf trajectory instead of only ever holding the latest table.  The file
is a single JSON document::

    {"bench": "kernel", "runs": [
        {"seq": 1, "unix_time": ..., "wall_s": ..., "metrics": {...}},
        ...
    ]}

Appends go through :func:`~repro.campaign.io.atomic_write` (load,
extend, replace), so an interrupted bench leaves the previous trajectory
intact.  ``unix_time``/``wall_s`` are wall-clock and therefore *not*
covered by the determinism contract — baselines are measurements, not
traces.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from repro.campaign.io import atomic_write

#: Baselines are dropped next to the caller's working directory unless a
#: directory is given; CI points this at the checkout root.
ENV_BASELINE_DIR = "REPRO_BENCH_BASELINE_DIR"

#: Trajectory length cap: keeps baseline files reviewable while holding
#: far more history than any regression check needs.
MAX_RUNS = 200


def baseline_path(name: str, directory: str | os.PathLike | None = None
                  ) -> Path:
    base = Path(directory or os.environ.get(ENV_BASELINE_DIR) or ".")
    return base / f"BENCH_{name}.json"


def load_baseline(name: str, directory: str | os.PathLike | None = None
                  ) -> dict[str, Any]:
    """The current trajectory document (empty skeleton when absent or
    unreadable — a corrupt baseline must not fail a bench)."""
    path = baseline_path(name, directory)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if (isinstance(document, dict)
                and isinstance(document.get("runs"), list)):
            return document
    except (OSError, json.JSONDecodeError):
        pass
    return {"bench": name, "runs": []}


def _evict_oldest(runs: list[dict[str, Any]],
                  cap: int = MAX_RUNS) -> list[dict[str, Any]]:
    """Deterministic oldest-first eviction at the cap: runs are
    stable-sorted by ``seq`` first, so a hand-merged or out-of-order
    file still evicts its genuinely oldest records rather than whatever
    happened to sit at the front of the list."""
    ordered = sorted(runs, key=lambda run: run.get("seq", 0))
    return ordered[-cap:]


def record_bench_baseline(name: str, metrics: dict[str, Any],
                          wall_s: float | None = None,
                          directory: str | os.PathLike | None = None,
                          now: float | None = None) -> Path:
    """Append one run record to ``BENCH_<name>.json`` and return its
    path.  ``metrics`` must be JSON-serializable scalars/containers."""
    document = load_baseline(name, directory)
    runs = [run for run in document["runs"] if isinstance(run, dict)]
    next_seq = 1 + max((run.get("seq", 0) for run in runs), default=0)
    runs.append({
        "seq": next_seq,
        "unix_time": round(now if now is not None else time.time(), 3),
        "wall_s": None if wall_s is None else round(wall_s, 6),
        "metrics": metrics,
    })
    document["runs"] = _evict_oldest(runs)
    path = baseline_path(name, directory)
    atomic_write(path, json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
