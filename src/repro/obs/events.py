"""Observability event model (DESIGN.md §10).

Three primitive shapes, all immutable once recorded:

* :class:`SpanEvent` — a named interval on the *simulated* clock
  (nanosecond ticks), carried by a ``tid`` lane (a task name, a job
  name, or ``"kernel"``).  Spans are what Perfetto renders as bars.
* :class:`InstantEvent` — a point happening (a retry, a preemption, an
  injected fault) at one simulated instant.
* :class:`Histogram` — a value distribution (retries per job, sojourn
  times, per-decision scheduler cost).  Histograms keep their raw values
  (runs are bounded), so exact quantiles are available and summaries are
  deterministic.

Everything here is a pure function of the simulation, so two runs with
the same seed produce byte-identical event streams — the determinism
contract the exporters and the overhead-guard test rely on.  Wall-clock
measurements (which are *not* deterministic) never enter these types;
they live in :class:`repro.obs.observer.Observer`'s decision samples and
are exported only through aggregate summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

Args = tuple[tuple[str, Any], ...]


def freeze_args(args: dict[str, Any] | None) -> Args:
    """Normalize an args mapping into a sorted, hashable tuple."""
    if not args:
        return ()
    return tuple(sorted(args.items()))


@dataclass(frozen=True)
class SpanEvent:
    """A complete interval ``[start, start + duration]`` in sim ticks."""

    name: str
    cat: str
    tid: str
    start: int
    duration: int
    args: Args = ()

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"span {self.name!r} has negative duration")

    @property
    def end(self) -> int:
        return self.start + self.duration

    def to_dict(self) -> dict[str, Any]:
        return {"type": "span", "name": self.name, "cat": self.cat,
                "tid": self.tid, "start": self.start,
                "duration": self.duration, "args": dict(self.args)}


@dataclass(frozen=True)
class InstantEvent:
    """A point happening at one simulated instant."""

    name: str
    cat: str
    tid: str
    ts: int
    args: Args = ()

    def to_dict(self) -> dict[str, Any]:
        return {"type": "instant", "name": self.name, "cat": self.cat,
                "tid": self.tid, "ts": self.ts, "args": dict(self.args)}


@dataclass(frozen=True)
class CounterSample:
    """One cumulative-counter observation, exported as a Chrome ``ph:C``
    counter track (e.g. per-object retry totals over simulated time)."""

    name: str
    ts: int
    value: int

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "name": self.name, "ts": self.ts,
                "value": self.value}


def _quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted, non-empty sample."""
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class Histogram:
    """A value distribution with exact, deterministic summaries."""

    values: list[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def summary(self) -> dict[str, float | int]:
        """Count/min/mean/p50/p90/max — empty histograms summarize to a
        bare count so JSON stays NaN-free."""
        if not self.values:
            return {"count": 0}
        ordered = sorted(self.values)
        return {
            "count": len(ordered),
            "min": ordered[0],
            "mean": sum(ordered) / len(ordered),
            "p50": _quantile(ordered, 0.50),
            "p90": _quantile(ordered, 0.90),
            "max": ordered[-1],
        }
