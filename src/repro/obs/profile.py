"""``python -m repro profile`` — one instrumented workload run.

Builds a workload (the paper's step / heterogeneous task sets or the
Theorem 2 interference set), attaches a recording
:class:`~repro.obs.observer.Observer` plus the kernel tracer, runs the
simulation, and hands back everything the exporters need: the observer,
the tracer, the simulation result and the wall time of the run.

The simulation itself is seeded and deterministic; only ``wall_s`` and
the observer's decision samples vary across runs, and neither enters the
exported trace (determinism contract, DESIGN.md §10).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any

from repro.obs.observer import Observer

#: Workloads ``repro profile`` can run.
PROFILE_WORKLOADS = ("step", "hetero", "interference")

#: Sync styles, mirroring :func:`repro.api.build_policy_and_mode`.
PROFILE_SYNCS = ("lockfree", "lockbased", "ideal", "edf")


@dataclass
class ProfileResult:
    """One instrumented run, ready for export."""

    workload: str
    sync: str
    seed: int
    horizon: int
    wall_s: float
    aur: float
    cmr: float
    observer: Observer
    tracer: Any          # repro.sim.tracing.Tracer
    result: Any          # repro.sim.metrics.SimulationResult

    def headline(self) -> dict[str, Any]:
        """The JSON payload head (everything but the obs block)."""
        return {
            "workload": self.workload,
            "sync": self.sync,
            "seed": self.seed,
            "horizon": self.horizon,
            "wall_s": round(self.wall_s, 6),
            "aur": self.aur,
            "cmr": self.cmr,
            "jobs": len(self.result.records),
            "retries": self.result.total_retries,
            "blockings": self.result.total_blockings,
            "scheduler_invocations": self.result.scheduler_invocations,
        }

    def bench_metrics(self) -> dict[str, Any]:
        """Deterministic metrics for a ``BENCH_*.json`` trajectory entry
        (wall time is passed alongside, not inside)."""
        sched = self.observer.summary()["scheduler"]
        return {
            "workload": self.workload,
            "sync": self.sync,
            "seed": self.seed,
            "aur": round(self.aur, 6),
            "cmr": round(self.cmr, 6),
            "jobs": len(self.result.records),
            "retries": self.result.total_retries,
            "decisions": sched["decisions"],
            "scheduler_overhead_time": self.result.scheduler_overhead_time,
        }


def build_profile_tasks(workload: str, rng: random.Random,
                        n_tasks: int = 10, n_objects: int = 10,
                        load: float = 0.6):
    """Task set for a profile workload name."""
    from repro.experiments.workloads import (
        interference_taskset,
        paper_taskset,
    )

    if workload in ("step", "hetero"):
        # Longer-than-default object accesses (40 µs vs the figures'
        # 2 µs): preemptions then land inside access windows often
        # enough that the retry instrumentation has data to show.
        return paper_taskset(
            rng,
            n_tasks=n_tasks,
            n_objects=n_objects,
            accesses_per_job=min(2, max(n_objects, 1)),
            tuf_class=workload,
            target_load=load,
            access_duration=40_000,
        )
    if workload == "interference":
        return interference_taskset(rng)
    raise ValueError(
        f"unknown profile workload {workload!r}; known: "
        f"{', '.join(PROFILE_WORKLOADS)}")


def run_profile(workload: str = "step",
                sync: str = "lockfree",
                n_tasks: int = 10,
                n_objects: int = 10,
                load: float = 0.6,
                horizon_us: int = 100_000,
                seed: int = 0,
                retry_policy: str = "preemption",
                observer: Observer | None = None) -> ProfileResult:
    """Run one fully instrumented simulation and return the artifacts.

    The same seed drives task-set generation and arrival generation, so
    a (workload, sync, seed) triple pins the whole run.

    ``retry_policy`` defaults to ``"preemption"`` — the paper's
    pessimistic Lemma 1 model (every preemption mid-access retries),
    which keeps the retry instrumentation populated on moderate loads;
    ``"conflict"`` switches to the optimistic commit-conflict model the
    figure campaigns use.
    """
    from repro.api import build_policy_and_mode
    from repro.arrivals.generators import generator_for
    from repro.sim.kernel import Kernel, SimulationConfig
    from repro.sim.objects import RetryPolicy

    retry = {"preemption": RetryPolicy.ON_PREEMPTION,
             "conflict": RetryPolicy.ON_CONFLICT}.get(retry_policy)
    if retry is None:
        raise ValueError(
            f"unknown retry policy {retry_policy!r}; "
            f"known: preemption, conflict")
    horizon = horizon_us * 1_000
    rng = random.Random(seed)
    tasks = build_profile_tasks(workload, rng, n_tasks=n_tasks,
                                n_objects=n_objects, load=load)
    traces = [
        generator_for(task.arrival, "uniform").generate(rng, horizon)
        for task in tasks
    ]
    policy, mode, costs = build_policy_and_mode(sync)
    obs = observer if observer is not None else Observer()
    config = SimulationConfig(
        tasks=tasks,
        arrival_traces=traces,
        policy=policy,
        horizon=horizon,
        sync=mode,
        costs=costs,
        retry_policy=retry,
        trace=True,
        observer=obs,
    )
    kernel = Kernel(config)
    wall_start = time.perf_counter()
    result = kernel.run()
    wall_s = time.perf_counter() - wall_start
    return ProfileResult(
        workload=workload,
        sync=sync,
        seed=seed,
        horizon=horizon,
        wall_s=wall_s,
        aur=result.aur,
        cmr=result.cmr,
        observer=obs,
        tracer=kernel.tracer,
        result=result,
    )
