"""Perf-regression detection over committed bench trajectories.

The capture side (:mod:`repro.obs.bench`, ``benchmarks/conftest``)
appends raw per-machine ``BENCH_*.json`` runs; those stay un-committed.
This module owns the *committed* half of the loop: a per-bench summary
trajectory under ``benchmarks/trajectories/<bench>.json`` — one compact
record per recorded run (scalar summary metrics plus wall time), capped
and evicted oldest-first — and the detector ``python -m repro bench
check`` runs against it.

Detection is deliberately robust rather than clever (Alistarh et al.'s
point that progress claims only hold under *measured* scheduler
behavior; Brandenburg's that synchronization comparisons must be
analyzed, not anecdotal):

* **Robust z-score** — the newest point is compared against the
  median/MAD of its history; MAD resists the occasional outlier run
  that a mean/stddev gate would learn as "normal".
* **EWMA** — an exponentially weighted mean of the history gives the
  drift-following baseline the relative-change test compares against,
  so a slow multi-run drift is caught even when each step is small.
* **Changepoint scan** — a mean-shift split statistic over the whole
  series locates *where* a level shift happened, which turns "the gate
  is red" into "it regressed at entry seq N".

A metric only gates in its *worse* direction (``wall_s`` up is bad,
``aur`` down is bad); metrics with no declared direction are reported
as informational drift and never fail the gate.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.campaign.io import atomic_write

#: Default committed trajectory store, relative to the repo root.
DEFAULT_TRAJECTORY_DIR = "benchmarks/trajectories"

#: Environment override for the trajectory directory.
ENV_TRAJECTORY_DIR = "REPRO_TRAJECTORY_DIR"

#: Trajectory length cap (entries, oldest evicted first).  Smaller than
#: the raw BENCH cap: these files are committed and reviewed.
MAX_ENTRIES = 150

#: History points (excluding the newest) required before the gate
#: judges a series; shorter series report ``insufficient-history``.
MIN_HISTORY = 4

#: Gate thresholds: the newest point must be ``Z_THRESHOLD`` robust
#: standard deviations *and* ``REL_THRESHOLD`` relative change worse
#: than its baseline to fail the gate.  Both must trip — z alone fires
#: on ultra-stable series where any wobble is "many MADs", relative
#: change alone fires on noisy-but-harmless series.
Z_THRESHOLD = 4.0
REL_THRESHOLD = 0.25

#: Changepoint scan: minimum points on each side of a candidate split
#: and the score a split must reach to be reported.
CHANGEPOINT_MIN_SEGMENT = 3
CHANGEPOINT_SCORE = 3.0

#: Metric name -> gated direction.  Matched on the exact key, else on
#: the last ``_``-separated suffix (so ``scheduler_overhead_time``
#: matches ``time``).  Everything else is informational.
HIGHER_IS_WORSE = frozenset({
    "wall_s", "retries", "blockings", "aborts", "time", "wasted",
    "backoff", "violations", "shed", "deferrals", "ns",
})
LOWER_IS_WORSE = frozenset({"aur", "cmr", "utility", "throughput",
                            "speedup"})


def metric_direction(name: str) -> str:
    """``"up"`` (higher is worse), ``"down"`` or ``"none"``."""
    candidates = (name, name.rsplit("_", 1)[-1])
    for candidate in candidates:
        if candidate in HIGHER_IS_WORSE:
            return "up"
        if candidate in LOWER_IS_WORSE:
            return "down"
    return "none"


# ----------------------------------------------------------------------
# Trajectory store
# ----------------------------------------------------------------------


def trajectory_dir(directory: str | os.PathLike | None = None) -> Path:
    return Path(directory or os.environ.get(ENV_TRAJECTORY_DIR)
                or DEFAULT_TRAJECTORY_DIR)


def trajectory_path(name: str,
                    directory: str | os.PathLike | None = None) -> Path:
    return trajectory_dir(directory) / f"{name}.json"


def load_trajectory(name: str,
                    directory: str | os.PathLike | None = None
                    ) -> dict[str, Any]:
    """The trajectory document (empty skeleton when absent/corrupt — a
    broken store must not fail the bench that feeds it)."""
    path = trajectory_path(name, directory)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if (isinstance(document, dict)
                and isinstance(document.get("entries"), list)):
            document["entries"] = [entry for entry in document["entries"]
                                   if isinstance(entry, dict)]
            return document
    except (OSError, json.JSONDecodeError):
        pass
    return {"bench": name, "schema": 1, "entries": []}


def _evict_oldest(entries: list[dict[str, Any]],
                  cap: int = MAX_ENTRIES) -> list[dict[str, Any]]:
    """Deterministic oldest-first eviction: stable-sort by ``seq`` (a
    hand-merged or out-of-order file still evicts its genuinely oldest
    records), then keep the newest ``cap``."""
    ordered = sorted(entries, key=lambda entry: entry.get("seq", 0))
    return ordered[-cap:] if cap > 0 else ordered


def append_trajectory(name: str, metrics: dict[str, Any],
                      wall_s: float | None = None,
                      directory: str | os.PathLike | None = None,
                      now: float | None = None) -> Path:
    """Atomically append one summary record to the committed store.

    Only scalar summary stats are kept (numbers, plus strings as run
    provenance like workload/sync names) — never raw event streams.
    """
    document = load_trajectory(name, directory)
    entries = document["entries"]
    summary: dict[str, Any] = {}
    for key in sorted(metrics):
        value = metrics[key]
        if isinstance(value, bool) or isinstance(value, (int, float, str)):
            summary[key] = value
    next_seq = 1 + max((entry.get("seq", 0) for entry in entries),
                       default=0)
    entries.append({
        "seq": next_seq,
        "unix_time": round(now if now is not None else time.time(), 3),
        "wall_s": None if wall_s is None else round(float(wall_s), 6),
        "metrics": summary,
    })
    document["entries"] = _evict_oldest(entries)
    path = trajectory_path(name, directory)
    atomic_write(path, json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def list_trajectories(directory: str | os.PathLike | None = None
                      ) -> list[str]:
    base = trajectory_dir(directory)
    if not base.is_dir():
        return []
    return sorted(path.stem for path in base.glob("*.json"))


def _series_of(document: dict[str, Any]) -> dict[str, list[float]]:
    """Numeric series per metric (plus ``wall_s``), in seq order.
    A metric missing from some entries contributes only where present."""
    series: dict[str, list[float]] = {}
    for entry in sorted(document.get("entries", []),
                        key=lambda e: e.get("seq", 0)):
        wall = entry.get("wall_s")
        if isinstance(wall, (int, float)) and not isinstance(wall, bool):
            series.setdefault("wall_s", []).append(float(wall))
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict):
            continue
        for key, value in metrics.items():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)) and math.isfinite(value):
                series.setdefault(key, []).append(float(value))
    return series


# ----------------------------------------------------------------------
# Robust statistics
# ----------------------------------------------------------------------


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _mad(values: list[float], center: float) -> float:
    """Median absolute deviation (unscaled)."""
    return _median([abs(value - center) for value in values])


def _robust_spread(values: list[float], center: float) -> float:
    """Scaled MAD, falling back to the sample standard deviation when
    MAD degenerates to zero on a non-constant series (more than half
    the points identical — e.g. a count series like ``[0,0,1,0,0]``,
    where zero MAD would turn any wobble into an infinite z-score)."""
    spread = _MAD_SCALE * _mad(values, center)
    if spread == 0.0 and len(set(values)) > 1:
        mean = sum(values) / len(values)
        spread = math.sqrt(sum((value - mean) ** 2 for value in values)
                           / len(values))
    return spread


#: MAD -> sigma consistency constant for normal data.
_MAD_SCALE = 1.4826

#: EWMA smoothing: ~last dozen runs dominate the baseline.
EWMA_ALPHA = 0.3


def ewma(values: Iterable[float], alpha: float = EWMA_ALPHA) -> float:
    average: float | None = None
    for value in values:
        average = value if average is None else (
            alpha * value + (1.0 - alpha) * average)
    if average is None:
        raise ValueError("ewma of an empty series")
    return average


def changepoint_scan(values: list[float],
                     min_segment: int = CHANGEPOINT_MIN_SEGMENT
                     ) -> tuple[int, float] | None:
    """Best mean-shift split ``(index, score)``: the series splits into
    ``values[:index]`` / ``values[index:]``; score is the shift in
    robust-sigma units.  None when the series is too short."""
    best: tuple[int, float] | None = None
    for index in range(min_segment, len(values) - min_segment + 1):
        left, right = values[:index], values[index:]
        left_med, right_med = _median(left), _median(right)
        spread = _MAD_SCALE * max(_mad(left, left_med),
                                  _mad(right, right_med))
        scale = max(spread, 1e-4 * max(abs(left_med), abs(right_med)), 1e-12)
        score = abs(right_med - left_med) / scale
        if best is None or score > best[1]:
            best = (index, score)
    return best


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SeriesVerdict:
    """The gate's judgement of one metric series of one bench."""

    metric: str
    status: str                    # ok | regression | drift | insufficient-history
    direction: str                 # up | down | none
    n: int
    latest: float | None = None
    median: float | None = None
    ewma: float | None = None
    z: float | None = None
    rel_change: float | None = None
    changepoint: int | None = None       # entry index of the level shift
    changepoint_score: float | None = None

    @property
    def gated(self) -> bool:
        return self.status == "regression"

    def to_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "status": self.status,
            "direction": self.direction,
            "n": self.n,
            "latest": self.latest,
            "median": self.median,
            "ewma": self.ewma,
            "z": self.z,
            "rel_change": self.rel_change,
            "changepoint": self.changepoint,
            "changepoint_score": self.changepoint_score,
        }


@dataclass
class TrajectoryVerdict:
    """All series verdicts for one bench trajectory."""

    bench: str
    entries: int
    series: list[SeriesVerdict] = field(default_factory=list)

    @property
    def regressions(self) -> list[SeriesVerdict]:
        return [verdict for verdict in self.series if verdict.gated]

    def to_dict(self) -> dict[str, Any]:
        return {
            "bench": self.bench,
            "entries": self.entries,
            "regressed": bool(self.regressions),
            "series": [verdict.to_dict() for verdict in self.series],
        }


@dataclass
class RegressionReport:
    """The ``repro bench check`` outcome across every trajectory."""

    directory: str
    z_threshold: float = Z_THRESHOLD
    rel_threshold: float = REL_THRESHOLD
    benches: list[TrajectoryVerdict] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return any(bench.regressions for bench in self.benches)

    @property
    def total_regressions(self) -> int:
        return sum(len(bench.regressions) for bench in self.benches)

    def to_dict(self) -> dict[str, Any]:
        return {
            "directory": self.directory,
            "z_threshold": self.z_threshold,
            "rel_threshold": self.rel_threshold,
            "regressed": self.regressed,
            "total_regressions": self.total_regressions,
            "benches": [bench.to_dict() for bench in self.benches],
        }

    def render(self) -> str:
        """The ASCII gate report (printed, and uploaded by CI)."""
        title = f"perf-regression gate: {self.directory}"
        lines = [title, "=" * len(title),
                 f"thresholds: robust z >= {self.z_threshold:g} AND "
                 f"relative change >= {self.rel_threshold:.0%} "
                 f"(worse direction only)", ""]
        if not self.benches:
            lines.append("no trajectories found — nothing to gate")
            return "\n".join(lines)
        header = (f"{'bench':<24} {'metric':<26} {'n':>4} {'median':>12} "
                  f"{'latest':>12} {'z':>8} {'delta':>8}  status")
        lines += [header, "-" * len(header)]
        for bench in self.benches:
            for verdict in bench.series:
                if verdict.status == "insufficient-history":
                    lines.append(
                        f"{bench.bench:<24} {verdict.metric:<26} "
                        f"{verdict.n:>4} {'-':>12} {'-':>12} {'-':>8} "
                        f"{'-':>8}  insufficient history")
                    continue
                marker = ("REGRESSION" if verdict.gated
                          else verdict.status)
                if verdict.gated and verdict.changepoint is not None:
                    marker += (f" (changepoint at entry "
                               f"{verdict.changepoint}, score "
                               f"{verdict.changepoint_score:.1f})")
                lines.append(
                    f"{bench.bench:<24} {verdict.metric:<26} "
                    f"{verdict.n:>4} {verdict.median:>12.6g} "
                    f"{verdict.latest:>12.6g} {verdict.z:>8.2f} "
                    f"{verdict.rel_change:>+8.1%}  {marker}")
        lines.append("")
        if self.regressed:
            lines.append(f"GATE FAILED: {self.total_regressions} "
                         f"regressed series")
        else:
            lines.append("gate clean: no regression detected")
        return "\n".join(lines)


def judge_series(metric: str, values: list[float],
                 z_threshold: float = Z_THRESHOLD,
                 rel_threshold: float = REL_THRESHOLD) -> SeriesVerdict:
    """Judge the newest point of one metric series against its history."""
    direction = metric_direction(metric)
    if len(values) < MIN_HISTORY + 1:
        return SeriesVerdict(metric=metric, status="insufficient-history",
                             direction=direction, n=len(values))
    history, latest = values[:-1], values[-1]
    center = _median(history)
    baseline = ewma(history)
    spread = _robust_spread(history, center)
    # Floor the scale so a perfectly flat history cannot turn numeric
    # dust into an infinite z-score.
    scale = max(spread, 1e-3 * max(abs(center), abs(baseline)), 1e-12)
    z = (latest - center) / scale
    rel_base = max(abs(baseline), 1e-12)
    rel = (latest - baseline) / rel_base
    change = changepoint_scan(values)
    changepoint = changepoint_score = None
    if change is not None and change[1] >= CHANGEPOINT_SCORE:
        changepoint, changepoint_score = change[0], change[1]

    worse = (z > 0 and direction == "up") or (z < 0 and direction == "down")
    tripped = (abs(z) >= z_threshold and abs(rel) >= rel_threshold)
    if direction != "none" and worse and tripped:
        status = "regression"
    elif tripped:
        status = "drift"        # reported, never gated
    else:
        status = "ok"
    return SeriesVerdict(metric=metric, status=status, direction=direction,
                         n=len(values), latest=latest, median=center,
                         ewma=baseline, z=z, rel_change=rel,
                         changepoint=changepoint,
                         changepoint_score=changepoint_score)


def check_trajectories(directory: str | os.PathLike | None = None,
                       z_threshold: float = Z_THRESHOLD,
                       rel_threshold: float = REL_THRESHOLD,
                       benches: Iterable[str] | None = None
                       ) -> RegressionReport:
    """Run the gate over every (or the named) committed trajectories."""
    base = trajectory_dir(directory)
    names = sorted(benches) if benches is not None \
        else list_trajectories(base)
    report = RegressionReport(directory=str(base),
                              z_threshold=z_threshold,
                              rel_threshold=rel_threshold)
    for name in names:
        document = load_trajectory(name, base)
        verdict = TrajectoryVerdict(bench=name,
                                    entries=len(document["entries"]))
        series = _series_of(document)
        for metric in sorted(series):
            verdict.series.append(
                judge_series(metric, series[metric],
                             z_threshold=z_threshold,
                             rel_threshold=rel_threshold))
        report.benches.append(verdict)
    return report
