"""Trace and summary exporters.

Three formats, all written through the campaign layer's
:func:`~repro.campaign.io.atomic_write` so an interrupted export never
leaves a truncated artifact:

* **Chrome trace-event JSON** — loadable in ``chrome://tracing`` and
  Perfetto.  Spans become complete (``ph: "X"``) events, instants become
  ``ph: "i"``, cumulative counters become counter tracks (``ph: "C"``),
  and each ``tid`` lane gets a ``thread_name`` metadata record so
  Perfetto labels the rows.  Timestamps are simulated nanoseconds
  converted to the format's microseconds.
* **JSONL** — one event per line, in recording order; the streaming
  format for ad-hoc analysis (``jq``, pandas).
* **perf summary** — the compact ASCII table ``repro profile`` prints.

Only deterministic data enters the trace formats; wall-clock aggregates
appear solely in the summary table (see the determinism contract in
:mod:`repro.obs.observer`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.campaign.io import atomic_write
from repro.obs.observer import Observer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.tracing import Tracer

_PID = 1


def _tid_table(observer: Observer) -> dict[str, int]:
    """Stable string-lane → integer-tid mapping, in first-seen order
    (Chrome requires integer tids; insertion order keeps it
    deterministic)."""
    table: dict[str, int] = {}
    for event in (*observer.spans, *observer.instants):
        if event.tid not in table:
            table[event.tid] = len(table) + 1
    return table


def chrome_trace(observer: Observer,
                 tracer: "Tracer | None" = None) -> dict[str, Any]:
    """Build the trace-event JSON document (pure; no I/O)."""
    tids = _tid_table(observer)
    events: list[dict[str, Any]] = []
    for name, tid in tids.items():
        events.append({"ph": "M", "name": "thread_name", "pid": _PID,
                       "tid": tid, "args": {"name": name}})
    for span in observer.spans:
        events.append({
            "ph": "X", "name": span.name, "cat": span.cat, "pid": _PID,
            "tid": tids[span.tid], "ts": span.start / 1000.0,
            "dur": span.duration / 1000.0, "args": dict(span.args),
        })
    for inst in observer.instants:
        events.append({
            "ph": "i", "s": "t", "name": inst.name, "cat": inst.cat,
            "pid": _PID, "tid": tids[inst.tid], "ts": inst.ts / 1000.0,
            "args": dict(inst.args),
        })
    for sample in observer.counter_samples:
        events.append({
            "ph": "C", "name": sample.name, "pid": _PID, "tid": 0,
            "ts": sample.ts / 1000.0, "args": {"value": sample.value},
        })
    if tracer is not None and tracer.events:
        kernel_tid = max(tids.values(), default=0) + 1
        events.append({"ph": "M", "name": "thread_name", "pid": _PID,
                       "tid": kernel_tid, "args": {"name": "trace"}})
        for event in tracer.events:
            events.append({
                "ph": "i", "s": "t", "name": event.kind.value,
                "cat": "trace", "pid": _PID, "tid": kernel_tid,
                "ts": event.time / 1000.0,
                "args": {"job": event.job, "detail": event.detail},
            })
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(path: str | os.PathLike, observer: Observer,
                       tracer: "Tracer | None" = None) -> Path:
    """Serialize and atomically write the Chrome trace to ``path``."""
    document = chrome_trace(observer, tracer)
    return atomic_write(path, json.dumps(document, sort_keys=True,
                                         separators=(",", ":")) + "\n")


def events_jsonl(observer: Observer) -> str:
    """All deterministic events, one JSON object per line."""
    lines = []
    for event in (*observer.spans, *observer.instants,
                  *observer.counter_samples):
        lines.append(json.dumps(event.to_dict(), sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: str | os.PathLike, observer: Observer) -> Path:
    return atomic_write(path, events_jsonl(observer))


def render_summary(summary: dict[str, Any], title: str = "perf summary") -> str:
    """Compact ASCII table of an :meth:`Observer.summary` payload."""
    lines = [title, "=" * len(title)]
    if not summary.get("enabled"):
        lines.append("observability disabled")
        return "\n".join(lines)
    counters = summary.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(k) for k in counters)
        for name, value in counters.items():
            lines.append(f"  {name.ljust(width)}  {value}")
    histograms = summary.get("histograms", {})
    if histograms:
        lines.append("histograms (count/min/mean/p90/max):")
        width = max(len(k) for k in histograms)
        for name, h in histograms.items():
            if not h.get("count"):
                lines.append(f"  {name.ljust(width)}  n=0")
                continue
            lines.append(
                f"  {name.ljust(width)}  n={h['count']}"
                f" min={h['min']:g} mean={h['mean']:.4g}"
                f" p90={h['p90']:g} max={h['max']:g}")
    sched = summary.get("scheduler", {})
    if sched.get("decisions"):
        wall = sched["wall_ns"]
        lines.append(
            f"scheduler decisions: {sched['decisions']} "
            f"(wall mean={wall.get('mean', 0.0):.0f} ns, "
            f"p90={wall.get('p90', 0.0):.0f} ns)")
        lines.append("  per ready-queue size n "
                     "(sim cost drives the O(n^2) claim):")
        for n, row in sched.get("by_n", {}).items():
            lines.append(
                f"    n={n:>3}  passes={row['count']:<6.0f}"
                f" sim_cost_mean={row['sim_cost_mean']:10.1f}"
                f" wall_ns_mean={row['wall_ns_mean']:10.1f}")
    lines.append(f"spans: {summary.get('spans', 0)}  "
                 f"instants: {summary.get('instants', 0)}")
    return "\n".join(lines)
