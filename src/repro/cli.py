"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``quick`` — one random-workload simulation per sharing style;
* ``figure`` — run one of the paper's figure campaigns (reduced settings
  by default; ``--repeats``/``--horizon-ms`` scale it up);
* ``retrybound`` — the Theorem 2 validation campaign;
* ``sojourn`` — evaluate the Theorem 3 comparison for given parameters;
* ``faults`` — the CML-under-faults degradation campaign: inject
  out-of-spec arrival bursts, compare shedding on vs off, and write the
  degradation report;
* ``profile`` — one fully instrumented run (``repro.obs``): Chrome
  trace-event JSON for ``chrome://tracing``/Perfetto, JSONL event
  streams, a perf-summary table, and ``BENCH_*.json`` baselines;
* ``bench`` — the perf-regression loop over the committed
  ``benchmarks/trajectories/`` store: ``record`` appends an
  instrumented run's summary, ``check`` gates (exit 1 on a detected
  regression), ``report`` prints the trajectories;
* ``diff`` — trace-diff diagnosis: align two exported traces (JSONL or
  Chrome JSON), report the first divergent scheduling decision and the
  per-task deltas in retries, aborts, blocking time and utility;
* ``serve`` — simulation-as-a-service: an HTTP front end
  (``POST /simulate``) with bounded admission + UAM-style shedding, a
  circuit breaker over crash-isolated workers, a content-addressed
  result cache and graceful SIGTERM drain (DESIGN.md §13);
* ``load`` — seeded, reproducible load generator against a running
  ``serve`` instance (or ``--self-host`` to spin one up in-process),
  reporting latency percentiles, throughput, shed counts and cache hit
  rate; ``--verify`` byte-compares every served result against a clean
  local run.

Every command's ``--json`` payload carries an ``obs`` block: the
observability summary of the run (``{"enabled": false}`` when nothing
was instrumented).  Campaign commands accept ``--metrics-port`` to
serve a live OpenMetrics ``/metrics`` endpoint while they run.

Campaign resilience (``figure``/``retrybound``/``faults``): ``--workers N``
fans trials out to crash-isolated worker processes, ``--trial-timeout``
bounds each trial's wall clock, ``--trial-retries`` caps retry attempts,
``--journal``/``--resume`` checkpoint and resume interrupted campaigns.
``--max-failures`` makes the process exit nonzero (code 4) when more
trials than that failed terminally; every command accepts ``--json PATH``
for a machine-readable summary.  All artifact writes are atomic.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.sojourn import compare_sojourn
from repro.api import quick_scenario, simulate
from repro.campaign import (
    CampaignConfig,
    CampaignEngine,
    CampaignStats,
    ChaosPlan,
    JournalError,
    atomic_write,
)
from repro.experiments import figures
from repro.experiments.faults import cml_under_faults
from repro.obs import Observer
from repro.serve import (
    LoadConfig,
    ServeApp,
    ServeConfig,
    install_drain_signal,
    run_load,
)
from repro.units import MS

FIGURES = {
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
    "fig12": figures.fig12,
    "fig13": figures.fig13,
    "fig14": figures.fig14,
    "thm2": figures.thm2_validation,
    "lemma45": figures.lemma45_validation,
}

#: Exit code for a campaign whose terminal trial failures exceeded
#: ``--max-failures`` (distinct from 1 = domain check failed and
#: 2 = usage error).
EXIT_CAMPAIGN_FAILED = 4


def _add_campaign_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "campaign resilience",
        "parallel workers, per-trial timeouts, retry, checkpoint/resume")
    group.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = in-process serial, "
                            "byte-identical to the classic path)")
    group.add_argument("--trial-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-trial wall-clock budget "
                            "(needs --workers > 1)")
    group.add_argument("--trial-retries", type=int, default=3,
                       metavar="N",
                       help="max attempts per trial for transient "
                            "failures, crashes and timeouts (default 3)")
    group.add_argument("--journal", default=None, metavar="PATH",
                       help="append-only JSONL checkpoint journal")
    group.add_argument("--resume", default=None, metavar="PATH",
                       help="resume from a journal: completed trials are "
                            "replayed from disk, the rest recomputed "
                            "(implies --journal PATH unless given)")
    group.add_argument("--max-failures", type=int, default=0,
                       help="tolerated terminally-failed trials before "
                            "the process exits nonzero (default 0)")
    group.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="serve a live OpenMetrics /metrics endpoint "
                            "on 127.0.0.1:PORT for the campaign's "
                            "duration (0 = ephemeral port)")
    # Deterministic campaign-layer fault injection, used by the CI
    # acceptance check and the integration tests (hidden from --help).
    group.add_argument("--chaos-crash", type=int, action="append",
                       default=[], help=argparse.SUPPRESS)
    group.add_argument("--chaos-hang", type=int, action="append",
                       default=[], help=argparse.SUPPRESS)
    group.add_argument("--chaos-transient", type=int, action="append",
                       default=[], help=argparse.SUPPRESS)
    group.add_argument("--chaos-hang-seconds", type=float, default=60.0,
                       help=argparse.SUPPRESS)


class UsageError(ValueError):
    """Bad flag combination caught before any campaign work starts."""


def _campaign_from_args(args) -> CampaignConfig | None:
    if args.workers < 1:
        raise UsageError(f"invalid --workers {args.workers}: must be >= 1")
    if args.trial_retries < 1:
        raise UsageError(
            f"invalid --trial-retries {args.trial_retries}: must be >= 1")
    if args.trial_timeout is not None and args.trial_timeout <= 0:
        raise UsageError(
            f"invalid --trial-timeout {args.trial_timeout}: "
            f"must be positive")
    if args.metrics_port is not None and \
            not 0 <= args.metrics_port <= 65535:
        raise UsageError(
            f"invalid --metrics-port {args.metrics_port}: "
            f"must be in [0, 65535]")
    chaos = None
    if args.chaos_crash or args.chaos_hang or args.chaos_transient:
        chaos = ChaosPlan(crash=tuple(args.chaos_crash),
                          hang=tuple(args.chaos_hang),
                          transient=tuple(args.chaos_transient),
                          hang_seconds=args.chaos_hang_seconds)
    journal = args.journal or args.resume
    needs_engine = (args.workers > 1 or journal is not None
                    or args.trial_timeout is not None
                    or chaos is not None
                    or args.metrics_port is not None)
    if not needs_engine:
        return None
    return CampaignConfig(
        workers=args.workers,
        timeout=args.trial_timeout,
        max_attempts=max(1, args.trial_retries),
        journal=journal,
        resume=args.resume,
        max_failures=args.max_failures,
        chaos=chaos,
        metrics_port=args.metrics_port,
    )


def _campaign_exit(stats: CampaignStats | None, args) -> int:
    if stats is None:
        return 0
    if stats.failed_trials > max(0, args.max_failures):
        print(f"campaign FAILED: {stats.failed_trials} trials failed "
              f"terminally (allowed: {args.max_failures})",
              file=sys.stderr)
        return EXIT_CAMPAIGN_FAILED
    return 0


def _announce_metrics(engine: "CampaignEngine | None") -> None:
    if engine is not None and engine.metrics_url:
        print(f"serving live metrics at {engine.metrics_url}",
              file=sys.stderr)


def _write_json(args, payload: dict, obs: dict | None = None) -> None:
    path = getattr(args, "json", None)
    if path:
        payload = {**payload,
                   "obs": obs if obs is not None else {"enabled": False}}
        atomic_write(path, json.dumps(payload, indent=2, sort_keys=True,
                                      allow_nan=True) + "\n")
        print(f"json summary written to {path}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Lock-Free Synchronization for "
                     "Dynamic Embedded Real-Time Systems' (DATE 2006)"),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quick = sub.add_parser("quick", help="one-shot workload comparison")
    quick.add_argument("--tasks", type=int, default=8)
    quick.add_argument("--objects", type=int, default=6)
    quick.add_argument("--load", type=float, default=1.1)
    quick.add_argument("--horizon-ms", type=int, default=1000)
    quick.add_argument("--seed", type=int, default=42)
    quick.add_argument("--tuf-class", choices=["step", "hetero"],
                       default="step")
    quick.add_argument("--sync", action="append",
                       choices=["ideal", "edf", "lockfree", "lockbased"],
                       help="repeatable; default: all four")
    quick.add_argument("--json", default=None, metavar="PATH",
                       help="write a machine-readable summary")

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("name", choices=sorted(FIGURES))
    figure.add_argument("--repeats", type=int, default=3)
    figure.add_argument("--horizon-ms", type=int, default=100)
    figure.add_argument("--out", default=None, metavar="PATH",
                        help="also write the rendered table to a file")
    figure.add_argument("--json", default=None, metavar="PATH",
                        help="write a machine-readable summary")
    _add_campaign_args(figure)

    retry = sub.add_parser("retrybound",
                           help="Theorem 2 retry-bound validation")
    retry.add_argument("--repeats", type=int, default=3)
    retry.add_argument("--horizon-ms", type=int, default=300)
    retry.add_argument("--json", default=None, metavar="PATH",
                       help="write a machine-readable summary")
    _add_campaign_args(retry)

    faults = sub.add_parser(
        "faults",
        help="fault-injection campaign: AUR degradation under "
             "out-of-spec arrival bursts, shedding on vs off")
    faults.add_argument("--bursts", default="0,1,2,4,8",
                        help="comma-separated bursts-per-task levels")
    faults.add_argument("--burst-size", type=int, default=2)
    faults.add_argument("--repeats", type=int, default=3)
    faults.add_argument("--horizon-ms", type=int, default=60)
    faults.add_argument("--load", type=float, default=0.8)
    faults.add_argument("--max-retries", type=int, default=8)
    faults.add_argument("--seed", type=int, default=700)
    faults.add_argument("--out", default=None,
                        help="also write the degradation report to a file")
    faults.add_argument("--json", default=None, metavar="PATH",
                        help="write a machine-readable summary")
    _add_campaign_args(faults)

    profile = sub.add_parser(
        "profile",
        help="instrumented profiling run: Chrome trace, JSONL events, "
             "perf summary, BENCH baselines (repro.obs)")
    profile.add_argument("--workload",
                         choices=["step", "hetero", "interference"],
                         default="step")
    profile.add_argument("--sync",
                         choices=["lockfree", "lockbased", "ideal", "edf"],
                         default="lockfree")
    profile.add_argument("--tasks", type=int, default=10)
    profile.add_argument("--objects", type=int, default=10)
    profile.add_argument("--load", type=float, default=0.6)
    profile.add_argument("--horizon-ms", type=int, default=100)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--retry-policy",
                         choices=["preemption", "conflict"],
                         default="preemption",
                         help="lock-free retry model: pessimistic "
                              "per-preemption (Lemma 1) or "
                              "commit-conflict (default: preemption)")
    profile.add_argument("--trace", default=None, metavar="PATH",
                         help="write Chrome trace-event JSON "
                              "(chrome://tracing, Perfetto)")
    profile.add_argument("--jsonl", default=None, metavar="PATH",
                         help="write the event stream as JSON lines")
    profile.add_argument("--summary-out", default=None, metavar="PATH",
                         help="also write the perf-summary table to a file")
    profile.add_argument("--bench", default=None, metavar="NAME",
                         help="append a run entry to BENCH_<NAME>.json")
    profile.add_argument("--json", default=None, metavar="PATH",
                         help="write a machine-readable summary")

    bench = sub.add_parser(
        "bench",
        help="perf-regression loop over the committed "
             "benchmarks/trajectories/ store (record / check / report)")
    bench.add_argument("action", choices=["record", "check", "report"])
    bench.add_argument("--dir", default=None, metavar="DIR",
                       help="trajectory store (default "
                            "benchmarks/trajectories, or "
                            "$REPRO_TRAJECTORY_DIR)")
    bench.add_argument("--bench", default="kernel", metavar="NAME",
                       help="trajectory name for 'record' "
                            "(default: kernel)")
    bench.add_argument("--z-threshold", type=float, default=None,
                       help="robust z-score gate threshold "
                            "(default 4.0)")
    bench.add_argument("--rel-threshold", type=float, default=None,
                       help="relative-change gate threshold "
                            "(default 0.25)")
    bench.add_argument("--report", default=None, metavar="PATH",
                       help="also write the ASCII gate report to a file")
    # 'record' runs one instrumented profile; these mirror `profile`.
    bench.add_argument("--workload",
                       choices=["step", "hetero", "interference"],
                       default="step")
    bench.add_argument("--sync",
                       choices=["lockfree", "lockbased", "ideal", "edf"],
                       default="lockfree")
    bench.add_argument("--tasks", type=int, default=10)
    bench.add_argument("--objects", type=int, default=10)
    bench.add_argument("--load", type=float, default=0.6)
    bench.add_argument("--horizon-ms", type=int, default=100)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--json", default=None, metavar="PATH",
                       help="write a machine-readable summary")

    diff = sub.add_parser(
        "diff",
        help="trace-diff diagnosis: first divergent scheduling decision "
             "and per-task deltas between two exported traces")
    diff.add_argument("trace_a", metavar="A",
                      help="first trace (JSONL event stream or Chrome "
                           "trace JSON, as written by `repro profile`)")
    diff.add_argument("trace_b", metavar="B", help="second trace")
    diff.add_argument("--out", default=None, metavar="PATH",
                      help="also write the diagnosis to a file")
    diff.add_argument("--json", default=None, metavar="PATH",
                      help="write a machine-readable summary")

    serve = sub.add_parser(
        "serve",
        help="simulation-as-a-service HTTP front end: POST /simulate, "
             "GET /metrics, /healthz, /stats (see DESIGN.md §13)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (0 = ephemeral, printed at start)")
    serve.add_argument("--workers", type=int, default=2,
                       help="crash-isolated simulation worker processes")
    serve.add_argument("--queue-capacity", type=int, default=64,
                       help="hard admission-queue bound")
    serve.add_argument("--watermark", type=int, default=None,
                       help="queue depth where shedding starts "
                            "(default: capacity)")
    serve.add_argument("--trial-timeout", type=float, default=30.0,
                       help="per-trial wall-clock budget (seconds)")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="attempts per trial incl. retries")
    serve.add_argument("--deadline", type=float, default=60.0,
                       help="default per-request deadline (seconds)")
    serve.add_argument("--retry-seed", type=int, default=0)
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive pool failures that trip the "
                            "circuit breaker")
    serve.add_argument("--breaker-reset", type=float, default=2.0,
                       help="seconds before the open breaker half-opens")
    serve.add_argument("--cache-dir", default=".repro-serve-cache",
                       help="content-addressed result cache directory")
    serve.add_argument("--drain-grace", type=float, default=10.0,
                       help="seconds to finish in-flight work on drain")
    serve.add_argument("--request-log", default=None, metavar="PATH",
                       help="write-ahead request log: admitted requests "
                            "are journaled durably and replayed on warm "
                            "restart after a kill -9")
    serve.add_argument("--drain-journal", default=None, metavar="PATH",
                       help="journal unfinished scenarios here on drain")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for N seconds then drain "
                            "(default: until SIGTERM/SIGINT)")
    _add_chaos_args(serve)
    serve.add_argument("--json", default=None, metavar="PATH",
                       help="write config echo + final stats")

    load = sub.add_parser(
        "load",
        help="seeded load generator against a serve instance "
             "(deterministic arrivals; reports latency/throughput/sheds)")
    load.add_argument("--url", default=None,
                      help="base URL of a running `repro serve`")
    load.add_argument("--self-host", action="store_true",
                      help="start an in-process server for this run")
    load.add_argument("--consumers", type=int, default=4)
    load.add_argument("--rate", type=float, default=50.0,
                      help="aggregate arrivals per second")
    load.add_argument("--duration", type=float, default=5.0,
                      help="schedule length (seconds)")
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--scenarios", type=int, default=8,
                      help="distinct scenarios cycled (cache reuse)")
    load.add_argument("--tasks", type=int, default=6)
    load.add_argument("--horizon-ms", type=float, default=20.0)
    load.add_argument("--load", type=float, default=0.6)
    load.add_argument("--sync", default="lockfree",
                      choices=["ideal", "edf", "lockfree", "lockbased"])
    load.add_argument("--deadline", type=float, default=30.0,
                      help="per-request deadline sent to the server")
    load.add_argument("--priority-levels", type=int, default=3)
    load.add_argument("--verify", action="store_true",
                      help="byte-compare every served result against a "
                           "clean local simulate() (exit 1 on mismatch)")
    load.add_argument("--workers", type=int, default=2,
                      help="[self-host] worker processes")
    load.add_argument("--trial-timeout", type=float, default=30.0,
                      help="[self-host] per-trial budget")
    load.add_argument("--breaker-threshold", type=int, default=3,
                      help="[self-host] breaker trip threshold")
    load.add_argument("--breaker-reset", type=float, default=2.0,
                      help="[self-host] breaker half-open timer")
    load.add_argument("--request-log", default=None, metavar="PATH",
                      help="write-ahead request log for the self-hosted "
                           "server (see repro serve --request-log)")
    load.add_argument("--cache-dir", default=None,
                      help="[self-host] cache directory "
                           "(default: a fresh temp dir)")
    _add_chaos_args(load)
    load.add_argument("--json", default=None, metavar="PATH",
                      help="write the load report")

    sojourn = sub.add_parser("sojourn",
                             help="Theorem 3 sojourn comparison")
    sojourn.add_argument("--r", type=float, required=True,
                         help="lock-based access time")
    sojourn.add_argument("--s", type=float, required=True,
                         help="lock-free access time")
    sojourn.add_argument("--m", type=int, default=4,
                         help="accesses per job (m_i)")
    sojourn.add_argument("--a", type=int, default=1,
                         help="max arrivals per window (a_i)")
    sojourn.add_argument("--x", type=int, default=4,
                         help="interference events (x_i)")
    sojourn.add_argument("--u", type=int, default=1000,
                         help="pure compute time (u_i)")
    sojourn.add_argument("--interference", type=int, default=0)
    sojourn.add_argument("--json", default=None, metavar="PATH",
                         help="write a machine-readable summary")
    return parser


def _cmd_quick(args) -> int:
    syncs = args.sync or ["ideal", "edf", "lockfree", "lockbased"]
    rows = []
    # One shared observer: the JSON obs block aggregates all four runs.
    observer = Observer() if args.json else None
    print(f"{'style':<10} {'AUR':>6} {'CMR':>6} {'jobs':>6} "
          f"{'retries':>8} {'blocked':>8}")
    scenarios = {
        sync: quick_scenario(
            n_tasks=args.tasks, n_objects=args.objects, sync=sync,
            load=args.load, horizon_us=args.horizon_ms * 1000,
            seed=args.seed, tuf_class=args.tuf_class)
        for sync in syncs
    }
    for sync, scenario in scenarios.items():
        summary = simulate(scenario, observer=observer)
        result = summary.result
        print(f"{sync:<10} {summary.aur:6.3f} {summary.cmr:6.3f} "
              f"{len(result.records):6d} {result.total_retries:8d} "
              f"{result.total_blockings:8d}")
        rows.append({
            "sync": sync,
            "aur": summary.aur,
            "cmr": summary.cmr,
            "jobs": len(result.records),
            "retries": result.total_retries,
            "blockings": result.total_blockings,
        })
    # The declarative scenario (one entry per sync style differs only in
    # `sync`, so publish the first with sync dropped) lets consumers
    # replay the exact runs via Scenario.from_dict.
    scenario_dict = next(iter(scenarios.values())).to_dict()
    del scenario_dict["sync"]
    _write_json(args, {"command": "quick", "seed": args.seed,
                       "load": args.load, "syncs": list(syncs),
                       "scenario": scenario_dict, "rows": rows},
                obs=observer.summary() if observer is not None else None)
    return 0


def _cmd_figure(args) -> int:
    fn = FIGURES[args.name]
    campaign = _campaign_from_args(args)
    observer = Observer() if campaign is not None else None
    engine = (CampaignEngine(campaign, tag=f"figure:{args.name}",
                             observer=observer)
              if campaign is not None else None)
    _announce_metrics(engine)
    try:
        if args.name == "fig9":
            result = fn(repeats=max(1, args.repeats // 3), campaign=engine)
        else:
            result = fn(repeats=args.repeats, horizon=args.horizon_ms * MS,
                        campaign=engine)
    finally:
        if engine is not None:
            engine.close()
    text = result.render()
    print(text)
    if args.out:
        atomic_write(args.out, text + "\n")
        print(f"figure table written to {args.out}")
    rc = _campaign_exit(result.campaign, args)
    _write_json(args, {"command": "figure", "name": args.name,
                       "exit_code": rc, **result.to_dict()},
                obs=observer.summary() if observer is not None else None)
    return rc


def _cmd_retrybound(args) -> int:
    campaign = _campaign_from_args(args)
    observer = Observer() if campaign is not None else None
    engine = (CampaignEngine(campaign, tag="figure:thm2",
                             observer=observer)
              if campaign is not None else None)
    _announce_metrics(engine)
    try:
        result = figures.thm2_validation(repeats=args.repeats,
                                         horizon=args.horizon_ms * MS,
                                         campaign=engine)
    finally:
        if engine is not None:
            engine.close()
    print(result.render())
    measured, bound = result.series
    violated = any(m.mean > b.mean for m, b in
                   zip(measured.estimates, bound.estimates))
    print("BOUND VIOLATED" if violated else "bound holds for every task")
    rc = _campaign_exit(result.campaign, args)
    if violated:
        rc = rc or 1
    _write_json(args, {"command": "retrybound", "violated": violated,
                       "exit_code": rc, **result.to_dict()},
                obs=observer.summary() if observer is not None else None)
    return rc


def _cmd_faults(args) -> int:
    try:
        levels = tuple(int(part) for part in args.bursts.split(",") if part)
    except ValueError:
        print(f"invalid --bursts {args.bursts!r}: expected e.g. 0,2,4",
              file=sys.stderr)
        return 2
    if not levels:
        print("--bursts must name at least one level", file=sys.stderr)
        return 2
    if any(level < 0 for level in levels):
        print(f"invalid --bursts {args.bursts!r}: levels must be >= 0",
              file=sys.stderr)
        return 2
    campaign_cfg = _campaign_from_args(args)
    observer = Observer() if campaign_cfg is not None else None
    engine = (CampaignEngine(campaign_cfg, tag="faults",
                             observer=observer)
              if campaign_cfg is not None else None)
    _announce_metrics(engine)
    try:
        campaign = cml_under_faults(
            burst_levels=levels,
            repeats=args.repeats,
            horizon=args.horizon_ms * MS,
            load=args.load,
            burst_size=args.burst_size,
            max_retries=args.max_retries,
            base_seed=args.seed,
            campaign=engine,
        )
    finally:
        if engine is not None:
            engine.close()
    text = campaign.render()
    print(text)
    if args.out:
        atomic_write(args.out, text + "\n")
        print(f"degradation report written to {args.out}")
    rc = _campaign_exit(campaign.figure.campaign, args)
    _write_json(args, {"command": "faults", "exit_code": rc,
                       **campaign.to_dict()},
                obs=observer.summary() if observer is not None else None)
    return rc


def _cmd_profile(args) -> int:
    from repro.obs.bench import record_bench_baseline
    from repro.obs.exporters import (
        render_summary,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.obs.profile import run_profile

    prof = run_profile(
        workload=args.workload, sync=args.sync, n_tasks=args.tasks,
        n_objects=args.objects, load=args.load,
        horizon_us=args.horizon_ms * 1000, seed=args.seed,
        retry_policy=args.retry_policy,
    )
    summary = prof.observer.summary()
    text = render_summary(
        summary,
        title=(f"profile: {args.workload}/{args.sync} "
               f"seed={args.seed} wall={prof.wall_s:.3f}s"))
    print(text)
    if args.trace:
        write_chrome_trace(args.trace, prof.observer, prof.tracer)
        print(f"chrome trace written to {args.trace} "
              f"(load in chrome://tracing or ui.perfetto.dev)")
    if args.jsonl:
        write_jsonl(args.jsonl, prof.observer)
        print(f"event stream written to {args.jsonl}")
    if args.summary_out:
        atomic_write(args.summary_out, text + "\n")
        print(f"perf summary written to {args.summary_out}")
    if args.bench:
        path = record_bench_baseline(args.bench, prof.bench_metrics(),
                                     wall_s=prof.wall_s)
        print(f"bench baseline appended to {path}")
    _write_json(args, {"command": "profile", **prof.headline()},
                obs=summary)
    return 0


def _cmd_bench(args) -> int:
    from repro.obs.regress import (
        REL_THRESHOLD,
        Z_THRESHOLD,
        append_trajectory,
        check_trajectories,
        list_trajectories,
        load_trajectory,
        trajectory_dir,
    )

    directory = trajectory_dir(args.dir)
    if args.action == "record":
        from repro.obs.profile import run_profile

        prof = run_profile(
            workload=args.workload, sync=args.sync, n_tasks=args.tasks,
            n_objects=args.objects, load=args.load,
            horizon_us=args.horizon_ms * 1000, seed=args.seed,
        )
        directory.mkdir(parents=True, exist_ok=True)
        path = append_trajectory(args.bench, prof.bench_metrics(),
                                 wall_s=prof.wall_s, directory=directory)
        entries = len(load_trajectory(args.bench, directory)["entries"])
        print(f"trajectory entry appended to {path} "
              f"({entries} entries)")
        _write_json(args, {"command": "bench", "action": "record",
                           "bench": args.bench, "path": str(path),
                           "entries": entries,
                           "wall_s": round(prof.wall_s, 6)},
                    obs=prof.observer.summary())
        return 0

    z_threshold = args.z_threshold if args.z_threshold is not None \
        else Z_THRESHOLD
    rel_threshold = args.rel_threshold if args.rel_threshold is not None \
        else REL_THRESHOLD
    report = check_trajectories(directory, z_threshold=z_threshold,
                                rel_threshold=rel_threshold)
    text = report.render()
    print(text)
    if args.report:
        atomic_write(args.report, text + "\n")
        print(f"gate report written to {args.report}")
    gating = args.action == "check"
    rc = 1 if (gating and report.regressed) else 0
    if gating and not list_trajectories(directory):
        print(f"no trajectories under {directory}; record some with "
              f"`repro bench record`", file=sys.stderr)
    _write_json(args, {"command": "bench", "action": args.action,
                       "exit_code": rc, **report.to_dict()})
    return rc


def _cmd_diff(args) -> int:
    from repro.obs.diff import TraceFormatError, diff_trace_files

    try:
        diff = diff_trace_files(args.trace_a, args.trace_b)
    except FileNotFoundError as exc:
        print(f"trace not found: {exc.filename}", file=sys.stderr)
        return 2
    except TraceFormatError as exc:
        print(f"unreadable trace: {exc}", file=sys.stderr)
        return 2
    text = diff.render()
    print(text)
    if args.out:
        atomic_write(args.out, text + "\n")
        print(f"diagnosis written to {args.out}")
    _write_json(args, {"command": "diff", **diff.to_dict()})
    return 0


def _add_chaos_args(parser: argparse.ArgumentParser) -> None:
    chaos = parser.add_argument_group(
        "chaos", "fault injection into the worker pool (by pool "
                 "submission index)")
    chaos.add_argument("--chaos-crash", default="", metavar="I,J,...",
                       help="kill the worker process on these submissions")
    chaos.add_argument("--chaos-kill9", default="", metavar="I,J,...",
                       help="SIGKILL the worker process on these "
                            "submissions (hard, unhandled death)")
    chaos.add_argument("--chaos-hang", default="", metavar="I,J,...",
                       help="hang the trial on these submissions")
    chaos.add_argument("--chaos-transient", default="", metavar="I,J,...",
                       help="raise a transient error on these submissions")
    chaos.add_argument("--chaos-hang-seconds", type=float, default=60.0)


def _parse_indices(text: str, flag: str) -> tuple[int, ...]:
    if not text.strip():
        return ()
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise UsageError(f"{flag} expects comma-separated integers: {exc}")


def _chaos_from_args(args) -> "ChaosPlan | None":
    crash = _parse_indices(args.chaos_crash, "--chaos-crash")
    kill9 = _parse_indices(getattr(args, "chaos_kill9", ""), "--chaos-kill9")
    hang = _parse_indices(args.chaos_hang, "--chaos-hang")
    transient = _parse_indices(args.chaos_transient, "--chaos-transient")
    if not (crash or kill9 or hang or transient):
        return None
    return ChaosPlan(crash=crash, kill9=kill9, hang=hang,
                     transient=transient,
                     hang_seconds=args.chaos_hang_seconds)


def _serve_config_from_args(args, *, cache_dir: str,
                            drain_journal: str | None = None,
                            host: str = "127.0.0.1", port: int = 0,
                            queue_capacity: int = 64,
                            watermark: int | None = None,
                            deadline: float = 60.0,
                            drain_grace: float = 10.0,
                            retry_seed: int = 0) -> ServeConfig:
    try:
        return ServeConfig(
            host=host, port=port,
            workers=args.workers,
            queue_capacity=queue_capacity,
            queue_watermark=watermark,
            trial_timeout=args.trial_timeout,
            max_attempts=getattr(args, "max_attempts", 3),
            retry_seed=retry_seed,
            default_deadline_s=deadline,
            breaker_threshold=args.breaker_threshold,
            breaker_reset_s=args.breaker_reset,
            cache_dir=cache_dir,
            drain_grace_s=drain_grace,
            drain_journal=drain_journal,
            request_log=getattr(args, "request_log", None),
            chaos=_chaos_from_args(args),
        )
    except ValueError as exc:
        raise UsageError(str(exc))


def _cmd_serve(args) -> int:
    config = _serve_config_from_args(
        args, cache_dir=args.cache_dir, drain_journal=args.drain_journal,
        host=args.host, port=args.port,
        queue_capacity=args.queue_capacity, watermark=args.watermark,
        deadline=args.deadline, drain_grace=args.drain_grace,
        retry_seed=args.retry_seed)
    app = ServeApp(config)
    app.start()
    print(f"serving on {app.url}  "
          f"(workers={config.workers}, queue={config.queue_capacity}, "
          f"cache={config.cache_dir})")
    print("endpoints: POST /simulate  GET /metrics /healthz /stats "
          "/result/<digest>")
    try:
        # SIGTERM/SIGINT start the drain; only valid from the main
        # thread (tests drive main() from worker threads).
        previous = install_drain_signal(app.drain.begin)
    except ValueError:   # pragma: no cover - non-main thread
        previous = None
    try:
        if args.duration is not None:
            app.drain.wait(timeout=args.duration)
            app.drain.begin("duration elapsed")
        else:   # pragma: no cover - interactive mode
            while not app.drain.wait(timeout=3600.0):
                pass
        report = app.shutdown(grace_s=args.drain_grace,
                              reason=app.drain.reason or "drain")
    finally:
        if previous is not None:
            import signal as _signal
            for signum, handler in previous.items():
                _signal.signal(signum, handler)
    stats = app.stats()
    print(f"drained ({report['reason']}): "
          f"{stats['pool']['executions']} trials served, "
          f"{stats['cache']['hits']} cache hits, "
          f"{stats['queue']['shed']} shed, "
          f"{report['unfinished_journaled']} journaled")
    _write_json(args, {
        "command": "serve",
        "url": app.url or f"http://{config.host}:{config.port}",
        "config": config.to_dict(),
        "drain": report,
        "stats": stats,
    }, obs=app.observer.summary())
    return 0


def _cmd_load(args) -> int:
    if not args.url and not args.self_host:
        raise UsageError("load needs --url URL or --self-host")
    try:
        # Validate the load parameters before any server spins up (the
        # real URL is only known after a self-hosted bind).
        probe_config = LoadConfig(
            url=args.url or "http://127.0.0.1:0",
            consumers=args.consumers,
            rate=args.rate,
            duration_s=args.duration,
            seed=args.seed,
            n_scenarios=args.scenarios,
            n_tasks=args.tasks,
            horizon_us=int(args.horizon_ms * 1000),
            load=args.load,
            sync=args.sync,
            deadline_s=args.deadline,
            priority_levels=args.priority_levels,
            verify=args.verify,
        )
    except ValueError as exc:
        raise UsageError(str(exc))
    app = None
    if args.self_host:
        import tempfile
        cache_dir = args.cache_dir or tempfile.mkdtemp(
            prefix="repro-serve-cache-")
        config = _serve_config_from_args(args, cache_dir=cache_dir,
                                         deadline=max(args.deadline, 1.0),
                                         drain_grace=5.0)
        app = ServeApp(config)
        app.start()
        url = app.url
        print(f"self-hosted server on {url} "
              f"(workers={config.workers}, cache={cache_dir})")
    else:
        url = args.url
    try:
        import dataclasses
        report = run_load(dataclasses.replace(probe_config, url=url))
    finally:
        if app is not None:
            app.shutdown(grace_s=5.0, reason="load run finished")
    report.setdefault("verification", {"verified": 0, "mismatches": []})
    report["self_host"] = bool(args.self_host)

    outcomes = report["outcomes"]
    latency = report["latency_s"]
    print(f"{report['requests_sent']} requests @ {args.rate:g}/s x "
          f"{args.duration:g}s, {args.consumers} consumers "
          f"(seed {args.seed})")
    print(f"  ok={outcomes['ok']} shed={outcomes['shed']} "
          f"unavailable={outcomes['unavailable']} "
          f"failed={outcomes['failed']} deadline={outcomes['deadline']} "
          f"transport={outcomes['transport_error']}")
    print(f"  latency p50={latency['p50'] * 1000:.1f}ms "
          f"p99={latency['p99'] * 1000:.1f}ms "
          f"throughput={report['throughput_rps']:.1f} rps "
          f"cache_hits={report['cache_hits']}")
    mismatches = report["verification"]["mismatches"]
    if args.verify:
        print(f"  verified {report['verification']['verified']} unique "
              f"payloads against local simulate(): "
              f"{'OK' if not mismatches else 'MISMATCH'}")
    for mismatch in mismatches:
        print(f"  MISMATCH: {mismatch}", file=sys.stderr)
    _write_json(args, {"command": "load", **report})
    return 1 if mismatches else 0


def _cmd_sojourn(args) -> int:
    n = 2 * args.a + args.x   # worst-case n_i
    comparison = compare_sojourn(
        u_i=args.u, interference=args.interference, r=args.r, s=args.s,
        m_i=args.m, n_i=n, a_i=args.a, x_i=args.x,
    )
    print(f"s/r = {comparison.ratio:.4f}")
    print(f"paper threshold  (Thm 3 as stated): {comparison.paper_threshold:.4f}")
    print(f"exact threshold  (from the proof):  {comparison.exact_threshold:.4f}")
    print(f"worst-case sojourn, lock-based: {comparison.lockbased:.1f}")
    print(f"worst-case sojourn, lock-free:  {comparison.lockfree:.1f}")
    winner = "lock-free" if comparison.lockfree_wins else "lock-based"
    print(f"shorter worst-case sojourn: {winner}")
    _write_json(args, {
        "command": "sojourn",
        "ratio": comparison.ratio,
        "paper_threshold": comparison.paper_threshold,
        "exact_threshold": comparison.exact_threshold,
        "lockbased": comparison.lockbased,
        "lockfree": comparison.lockfree,
        "winner": winner,
    })
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "quick":
            return _cmd_quick(args)
        if args.command == "figure":
            return _cmd_figure(args)
        if args.command == "retrybound":
            return _cmd_retrybound(args)
        if args.command == "faults":
            return _cmd_faults(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "diff":
            return _cmd_diff(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "load":
            return _cmd_load(args)
        if args.command == "sojourn":
            return _cmd_sojourn(args)
    except UsageError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except JournalError as exc:
        print(f"journal error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
