"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``quick`` — one random-workload simulation per sharing style;
* ``figure`` — run one of the paper's figure campaigns (reduced settings
  by default; ``--repeats``/``--horizon-ms`` scale it up);
* ``retrybound`` — the Theorem 2 validation campaign;
* ``sojourn`` — evaluate the Theorem 3 comparison for given parameters;
* ``faults`` — the CML-under-faults degradation campaign: inject
  out-of-spec arrival bursts, compare shedding on vs off, and write the
  degradation report.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.sojourn import compare_sojourn
from repro.api import quick_simulation
from repro.experiments import figures
from repro.experiments.faults import cml_under_faults
from repro.units import MS

FIGURES = {
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
    "fig12": figures.fig12,
    "fig13": figures.fig13,
    "fig14": figures.fig14,
    "thm2": figures.thm2_validation,
    "lemma45": figures.lemma45_validation,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Lock-Free Synchronization for "
                     "Dynamic Embedded Real-Time Systems' (DATE 2006)"),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quick = sub.add_parser("quick", help="one-shot workload comparison")
    quick.add_argument("--tasks", type=int, default=8)
    quick.add_argument("--objects", type=int, default=6)
    quick.add_argument("--load", type=float, default=1.1)
    quick.add_argument("--horizon-ms", type=int, default=1000)
    quick.add_argument("--seed", type=int, default=42)
    quick.add_argument("--tuf-class", choices=["step", "hetero"],
                       default="step")
    quick.add_argument("--sync", action="append",
                       choices=["ideal", "edf", "lockfree", "lockbased"],
                       help="repeatable; default: all four")

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("name", choices=sorted(FIGURES))
    figure.add_argument("--repeats", type=int, default=3)
    figure.add_argument("--horizon-ms", type=int, default=100)

    retry = sub.add_parser("retrybound",
                           help="Theorem 2 retry-bound validation")
    retry.add_argument("--repeats", type=int, default=3)
    retry.add_argument("--horizon-ms", type=int, default=300)

    faults = sub.add_parser(
        "faults",
        help="fault-injection campaign: AUR degradation under "
             "out-of-spec arrival bursts, shedding on vs off")
    faults.add_argument("--bursts", default="0,1,2,4,8",
                        help="comma-separated bursts-per-task levels")
    faults.add_argument("--burst-size", type=int, default=2)
    faults.add_argument("--repeats", type=int, default=3)
    faults.add_argument("--horizon-ms", type=int, default=60)
    faults.add_argument("--load", type=float, default=0.8)
    faults.add_argument("--max-retries", type=int, default=8)
    faults.add_argument("--seed", type=int, default=700)
    faults.add_argument("--out", default=None,
                        help="also write the degradation report to a file")

    sojourn = sub.add_parser("sojourn",
                             help="Theorem 3 sojourn comparison")
    sojourn.add_argument("--r", type=float, required=True,
                         help="lock-based access time")
    sojourn.add_argument("--s", type=float, required=True,
                         help="lock-free access time")
    sojourn.add_argument("--m", type=int, default=4,
                         help="accesses per job (m_i)")
    sojourn.add_argument("--a", type=int, default=1,
                         help="max arrivals per window (a_i)")
    sojourn.add_argument("--x", type=int, default=4,
                         help="interference events (x_i)")
    sojourn.add_argument("--u", type=int, default=1000,
                         help="pure compute time (u_i)")
    sojourn.add_argument("--interference", type=int, default=0)
    return parser


def _cmd_quick(args) -> int:
    syncs = args.sync or ["ideal", "edf", "lockfree", "lockbased"]
    print(f"{'style':<10} {'AUR':>6} {'CMR':>6} {'jobs':>6} "
          f"{'retries':>8} {'blocked':>8}")
    for sync in syncs:
        summary = quick_simulation(
            n_tasks=args.tasks, n_objects=args.objects, sync=sync,
            load=args.load, horizon_us=args.horizon_ms * 1000,
            seed=args.seed, tuf_class=args.tuf_class,
        )
        result = summary.result
        print(f"{sync:<10} {summary.aur:6.3f} {summary.cmr:6.3f} "
              f"{len(result.records):6d} {result.total_retries:8d} "
              f"{result.total_blockings:8d}")
    return 0


def _cmd_figure(args) -> int:
    fn = FIGURES[args.name]
    if args.name == "fig9":
        result = fn(repeats=max(1, args.repeats // 3))
    else:
        result = fn(repeats=args.repeats, horizon=args.horizon_ms * MS)
    print(result.render())
    return 0


def _cmd_retrybound(args) -> int:
    result = figures.thm2_validation(repeats=args.repeats,
                                     horizon=args.horizon_ms * MS)
    print(result.render())
    measured, bound = result.series
    violated = any(m.mean > b.mean for m, b in
                   zip(measured.estimates, bound.estimates))
    print("BOUND VIOLATED" if violated else "bound holds for every task")
    return 1 if violated else 0


def _cmd_faults(args) -> int:
    try:
        levels = tuple(int(part) for part in args.bursts.split(",") if part)
    except ValueError:
        print(f"invalid --bursts {args.bursts!r}: expected e.g. 0,2,4",
              file=sys.stderr)
        return 2
    if not levels:
        print("--bursts must name at least one level", file=sys.stderr)
        return 2
    if any(level < 0 for level in levels):
        print(f"invalid --bursts {args.bursts!r}: levels must be >= 0",
              file=sys.stderr)
        return 2
    campaign = cml_under_faults(
        burst_levels=levels,
        repeats=args.repeats,
        horizon=args.horizon_ms * MS,
        load=args.load,
        burst_size=args.burst_size,
        max_retries=args.max_retries,
        base_seed=args.seed,
    )
    text = campaign.render()
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"degradation report written to {args.out}")
    return 0


def _cmd_sojourn(args) -> int:
    n = 2 * args.a + args.x   # worst-case n_i
    comparison = compare_sojourn(
        u_i=args.u, interference=args.interference, r=args.r, s=args.s,
        m_i=args.m, n_i=n, a_i=args.a, x_i=args.x,
    )
    print(f"s/r = {comparison.ratio:.4f}")
    print(f"paper threshold  (Thm 3 as stated): {comparison.paper_threshold:.4f}")
    print(f"exact threshold  (from the proof):  {comparison.exact_threshold:.4f}")
    print(f"worst-case sojourn, lock-based: {comparison.lockbased:.1f}")
    print(f"worst-case sojourn, lock-free:  {comparison.lockfree:.1f}")
    winner = "lock-free" if comparison.lockfree_wins else "lock-based"
    print(f"shorter worst-case sojourn: {winner}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "quick":
        return _cmd_quick(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "retrybound":
        return _cmd_retrybound(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "sojourn":
        return _cmd_sojourn(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
