"""Job body segments.

A job's execution body is a sequence of segments:

* :class:`Compute` — ``duration`` time ticks (ns) of pure computation
  (contributes to ``u_i`` in the paper's notation);
* :class:`ObjectAccess` — one operation on a shared object (contributes to
  ``m_i``), whose ``duration`` is the *intrinsic* operation time; the
  synchronization layer adds its own mechanism costs on top (lock/unlock
  scheduler activations for lock-based sharing, retries for lock-free).

Nested critical sections are excluded by the paper's resource model
(Section 2), which the flat segment sequence encodes structurally: an
access segment is a single non-nested critical section / lock-free
operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class AccessKind(Enum):
    """Read/write flavour of a shared-object operation.

    The retry model only restarts a lock-free access when a *conflicting*
    operation completed concurrently; two reads never conflict.
    """

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Compute:
    """Pure computation for ``duration`` time ticks (ns)."""

    duration: int

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")


@dataclass(frozen=True)
class ObjectAccess:
    """One operation of ``duration`` time ticks (ns) on shared object
    ``obj``.  ``obj`` is an opaque object identifier (small int or str).

    Under lock-based sharing the lock is normally released when the
    segment ends; ``release_at_end=False`` keeps it held across later
    segments until an explicit :class:`ReleaseLock` — the *nested
    critical section* mode of the paper's Section 3.3 (excluded from the
    Section 5 comparisons, but part of RUA's definition).  Under
    lock-free or ideal sharing the flag is ignored (the paper's model
    has no lock-free nesting).
    """

    obj: int | str
    duration: int
    kind: AccessKind = AccessKind.WRITE
    release_at_end: bool = True

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("access duration must be positive")


@dataclass(frozen=True)
class ReleaseLock:
    """Explicit unlock of a lock held across segments (instantaneous;
    the unlock request's mechanism cost is charged by the kernel).
    A no-op under lock-free/ideal sharing."""

    obj: int | str
    duration: int = 0

    def __post_init__(self) -> None:
        if self.duration != 0:
            raise ValueError("ReleaseLock is instantaneous")


Segment = Compute | ObjectAccess | ReleaseLock


def compute_time(segments: tuple[Segment, ...]) -> int:
    """Total pure-computation time ``u_i`` of a segment sequence."""
    return sum(s.duration for s in segments if isinstance(s, Compute))


def access_count(segments: tuple[Segment, ...]) -> int:
    """Number of shared-object accesses ``m_i``."""
    return sum(1 for s in segments if isinstance(s, ObjectAccess))


def access_time(segments: tuple[Segment, ...]) -> int:
    """Total intrinsic object-access time of a segment sequence."""
    return sum(s.duration for s in segments if isinstance(s, ObjectAccess))


def accessed_objects(segments: tuple[Segment, ...]) -> frozenset[int | str]:
    """Identifiers of all objects the segment sequence touches."""
    return frozenset(s.obj for s in segments if isinstance(s, ObjectAccess))


def validate_lock_structure(segments: tuple[Segment, ...]) -> None:
    """Check the body's lock discipline, simulating the held set.

    Raises ``ValueError`` when a :class:`ReleaseLock` targets an object
    not held, an object is re-acquired while already held, or the body
    ends with locks still held (abort rollback aside, every job must
    release what it takes).
    """
    held: set[int | str] = set()
    for index, segment in enumerate(segments):
        if isinstance(segment, ObjectAccess):
            if segment.obj in held:
                raise ValueError(
                    f"segment {index}: re-acquiring held object "
                    f"{segment.obj!r}"
                )
            if not segment.release_at_end:
                held.add(segment.obj)
        elif isinstance(segment, ReleaseLock):
            if segment.obj not in held:
                raise ValueError(
                    f"segment {index}: releasing object {segment.obj!r} "
                    "that is not held"
                )
            held.remove(segment.obj)
    if held:
        raise ValueError(
            f"body ends with locks still held: {sorted(map(str, held))}"
        )

