"""Job runtime state.

The job is the basic scheduling entity (Section 2): one invocation of a
task, released at a UAM arrival instant, executing its task's segment
sequence, and either completing before its critical time (accruing
``U_i(sojourn)``) or being aborted when the critical time expires.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.tasks.segments import Compute, ObjectAccess, Segment
from repro.tasks.task import TaskSpec

#: Process-wide monotonic job serial numbers.  Scheduling-pass caches key
#: job state by serial rather than ``id()`` — ids are recycled by the
#: allocator once a completed job is garbage collected, serials never are.
_SERIALS = itertools.count(1)


class JobState(Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"      # lock-based sharing only
    COMPLETED = "completed"
    ABORTED = "aborted"


@dataclass(slots=True)
class Job:
    """One invocation ``J_{i,j}`` of task ``T_i``.

    Mutable runtime state owned by the kernel.  Progress is tracked as
    (current segment index, time ticks (ns) completed inside that segment);
    a lock-free retry resets the in-segment progress to zero.
    """

    task: TaskSpec
    jid: int                      # j-th invocation of the task
    release_time: int             # absolute, ticks
    state: JobState = JobState.READY
    segment_index: int = 0
    segment_progress: int = 0
    # --- synchronization state -------------------------------------------
    holds_lock: int | str | None = None      # most recently acquired lock
    held_locks: set = field(default_factory=set)  # all locks held (nesting)
    blocked_on: int | str | None = None      # object we wait for
    access_dirty: bool = False    # lock-free access must restart on resume
    #: Fault-injected execution overrun of the current segment: extra
    #: ticks beyond the declared WCET that must execute before the
    #: segment boundary.  Reset when the segment finishes.
    segment_extra: int = 0
    # --- statistics -------------------------------------------------------
    retries: int = 0
    blockings: int = 0
    preemptions: int = 0
    completion_time: int | None = None
    accrued_utility: float = 0.0

    # Monotonic token invalidating stale milestone events after preemption.
    dispatch_token: int = field(default=0, repr=False)

    #: Process-unique identity for scheduling-state signatures (see
    #: ``_SERIALS``); never reused, unlike ``id()``.
    serial: int = field(default_factory=lambda: next(_SERIALS), repr=False)

    @property
    def name(self) -> str:
        return f"{self.task.name}#{self.jid}"

    @property
    def critical_time_abs(self) -> int:
        """Absolute critical time: release + ``C_i``."""
        return self.release_time + self.task.critical_time

    @property
    def is_live(self) -> bool:
        return self.state in (JobState.READY, JobState.RUNNING, JobState.BLOCKED)

    @property
    def current_segment(self) -> Segment | None:
        if self.segment_index >= len(self.task.body):
            return None
        return self.task.body[self.segment_index]

    @property
    def in_access(self) -> bool:
        """True while the current segment is a shared-object access with
        progress under way or about to start."""
        return isinstance(self.current_segment, ObjectAccess)

    def remaining_time(self) -> int:
        """Remaining nominal execution demand, as presented to the
        scheduler (intrinsic durations; mechanism costs are runtime
        phenomena the scheduler cannot predict)."""
        body = self.task.body
        index = self.segment_index
        if index >= len(body):
            return 0
        # Clamped at zero: with an injected overrun the progress can
        # legitimately exceed the declared duration — the scheduler still
        # sees the *declared* demand, which is the point of the fault.
        tail = self.task.body_suffix[index]
        return max(tail - self.segment_progress, tail - body[index].duration)

    def advance(self, amount: int) -> None:
        """Credit ``amount`` ticks of execution to the current segment.

        The kernel guarantees ``amount`` never crosses a segment boundary:
        segment completion is an explicit kernel transition (it may
        involve lock release / access commit).
        """
        if amount < 0:
            raise ValueError("cannot advance by a negative amount")
        segment = self.current_segment
        if segment is None:
            raise RuntimeError(f"{self.name}: advancing a finished job")
        if self.segment_progress + amount > segment.duration + self.segment_extra:
            raise RuntimeError(
                f"{self.name}: advance {amount} overruns segment "
                f"({self.segment_progress}/{segment.duration}"
                f"+{self.segment_extra})"
            )
        self.segment_progress += amount

    def segment_remaining(self) -> int:
        segment = self.current_segment
        if segment is None:
            return 0
        return segment.duration + self.segment_extra - self.segment_progress

    def finish_segment(self) -> None:
        """Move past the current segment."""
        if self.segment_remaining() != 0:
            raise RuntimeError(
                f"{self.name}: finishing an incomplete segment "
                f"({self.segment_progress}/{self.current_segment.duration})"
            )
        self.segment_index += 1
        self.segment_progress = 0
        self.segment_extra = 0
        self.access_dirty = False

    def restart_access(self) -> int:
        """Discard in-progress work on the current (lock-free) access
        segment — a retry.  Returns the number of ticks thrown away."""
        if not isinstance(self.current_segment, ObjectAccess):
            raise RuntimeError(f"{self.name}: retry outside an access segment")
        wasted = self.segment_progress
        self.segment_progress = 0
        self.access_dirty = False
        self.retries += 1
        return wasted

    def sojourn_time(self) -> int | None:
        """Completion time minus release time, or None if not completed."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.release_time

    def __repr__(self) -> str:  # keep simulator traces readable
        return (
            f"Job({self.name}, {self.state.value}, seg={self.segment_index}"
            f"+{self.segment_progress}, rel={self.release_time})"
        )

    # Identity semantics: jobs are mutable kernel entities.
    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


def job_body_valid_for_lockfree(task: TaskSpec) -> bool:
    """Lock-free RUA excludes physical resources; every accessed object is
    a logical data object, which the flat segment model guarantees.  Kept
    as an explicit hook should physical-resource segments be added."""
    return all(isinstance(s, (Compute, ObjectAccess)) for s in task.body)
