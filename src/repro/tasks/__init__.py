"""Task and job model.

A *task* is a recurrent activity: a UAM arrival envelope, a TUF time
constraint shared by all of its jobs, and an execution body described as a
sequence of *segments* — pure computation and shared-object accesses.  A
*job* is one invocation of a task and is the basic scheduling entity
(Section 2 of the paper).
"""

from repro.tasks.segments import Compute, ObjectAccess, Segment
from repro.tasks.task import TaskSpec
from repro.tasks.job import Job, JobState
from repro.tasks.taskset import (
    approximate_load,
    make_task,
    random_taskset,
    scale_to_load,
    total_access_time,
)

__all__ = [
    "Segment",
    "Compute",
    "ObjectAccess",
    "TaskSpec",
    "Job",
    "JobState",
    "make_task",
    "random_taskset",
    "approximate_load",
    "scale_to_load",
    "total_access_time",
]
