"""Task-set construction helpers.

The paper's experiments use task sets of ~10 tasks sharing ~10 queues, with
controlled *approximate load* ``AL = sum(u_i / C_i)`` (Section 6.1, which
deliberately excludes object access time from the load so that scheduler
and synchronization overheads show up as the gap between ideal and actual
behaviour).  These helpers build such task sets reproducibly.
"""

from __future__ import annotations

import random

from repro.arrivals.spec import UAMSpec
from repro.tasks.segments import (
    AccessKind,
    Compute,
    ObjectAccess,
    Segment,
)
from repro.tasks.task import TaskSpec
from repro.tuf.base import TimeUtilityFunction
from repro.tuf.catalog import heterogeneous_tuf_mix, step_tuf_mix


def make_task(name: str,
              arrival: UAMSpec,
              tuf: TimeUtilityFunction,
              compute: int,
              accesses: list[tuple[int | str, int]] | None = None,
              access_kind: AccessKind = AccessKind.WRITE,
              abort_handler_time: int = 0) -> TaskSpec:
    """Build a task whose body interleaves computation with object
    accesses.

    ``compute`` ticks of computation is split evenly around the given
    ``(object, duration)`` accesses, so accesses are spread across the
    body rather than clustered — matching the paper's workloads where jobs
    access queues at arbitrary points of their execution.
    """
    accesses = accesses or []
    chunks = len(accesses) + 1
    base, leftover = divmod(compute, chunks)
    body: list[Segment] = []
    for index, (obj, duration) in enumerate(accesses):
        chunk = base + (1 if index < leftover else 0)
        if chunk:
            body.append(Compute(chunk))
        body.append(ObjectAccess(obj=obj, duration=duration, kind=access_kind))
    if base:
        body.append(Compute(base))
    if not body:
        body.append(Compute(compute))
    return TaskSpec(
        name=name,
        arrival=arrival,
        tuf=tuf,
        body=tuple(body),
        abort_handler_time=abort_handler_time,
    )


def approximate_load(tasks: list[TaskSpec]) -> float:
    """The paper's approximate load ``AL = sum(u_i / C_i)``.

    Uses pure computation time ``u_i`` only — object access time is
    excluded, exactly as in Section 6.1's definition.
    """
    return sum(t.compute_time / t.critical_time for t in tasks)


def total_access_time(tasks: list[TaskSpec]) -> int:
    return sum(t.access_time for t in tasks)


def scale_to_load(tasks: list[TaskSpec], target_load: float) -> list[TaskSpec]:
    """Rescale every task's compute segments so ``AL`` hits
    ``target_load``, preserving access structure and time constraints."""
    if target_load <= 0:
        raise ValueError("target load must be positive")
    current = approximate_load(tasks)
    if current == 0:
        raise ValueError("cannot scale a task set with zero compute time")
    factor = target_load / current
    rescaled = []
    for task in tasks:
        body = tuple(
            Compute(max(1, round(s.duration * factor)))
            if isinstance(s, Compute) else s
            for s in task.body
        )
        rescaled.append(TaskSpec(
            name=task.name,
            arrival=task.arrival,
            tuf=task.tuf,
            body=body,
            abort_handler_time=task.abort_handler_time,
        ))
    return rescaled


def random_taskset(rng: random.Random,
                   n_tasks: int = 10,
                   n_objects: int = 10,
                   accesses_per_job: int = 2,
                   avg_compute: int = 300,
                   access_duration: int = 10,
                   window_range: tuple[int, int] = (20_000, 60_000),
                   max_arrivals: int = 1,
                   tuf_class: str = "step",
                   target_load: float | None = None) -> list[TaskSpec]:
    """Generate a reproducible random task set in the style of the paper's
    experiments (10 tasks, 10 shared queues, arbitrary access patterns).

    ``tuf_class`` is ``"step"`` (Figures 10/12) or ``"hetero"``
    (Figures 11/13/14).  Critical times are drawn at 40–90 % of each
    task's window (keeping ``C_i <= W_i``).  If ``target_load`` is given,
    compute segments are rescaled so ``AL`` matches it.
    """
    if n_tasks <= 0:
        raise ValueError("need at least one task")
    windows = [rng.randint(*window_range) for _ in range(n_tasks)]
    criticals = [int(w * rng.uniform(0.4, 0.9)) for w in windows]
    if tuf_class == "step":
        tufs = step_tuf_mix(criticals)
    elif tuf_class == "hetero":
        tufs = heterogeneous_tuf_mix(criticals)
    else:
        raise ValueError(f"unknown tuf_class {tuf_class!r}")
    tasks = []
    for index in range(n_tasks):
        compute = max(1, int(rng.uniform(0.5, 1.5) * avg_compute))
        accesses = [
            (rng.randrange(n_objects), access_duration)
            for _ in range(min(accesses_per_job, n_objects) if n_objects else 0)
        ]
        arrival = UAMSpec(
            min_arrivals=1,
            max_arrivals=max_arrivals,
            window=windows[index],
        )
        tasks.append(make_task(
            name=f"T{index}",
            arrival=arrival,
            tuf=tufs[index],
            compute=compute,
            accesses=accesses,
        ))
    if target_load is not None:
        tasks = scale_to_load(tasks, target_load)
    return tasks
