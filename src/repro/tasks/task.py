"""Static task specification."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arrivals.spec import UAMSpec
from repro.tasks import segments as seg
from repro.tasks.segments import Segment
from repro.tuf.base import TimeUtilityFunction


@dataclass(frozen=True)
class TaskSpec:
    """A recurrent task ``T_i`` of the paper's model.

    Attributes mirror the paper's notation:

    * ``arrival`` — the UAM tuple ``<l_i, a_i, W_i>``;
    * ``tuf`` — the task's TUF ``U_i(.)`` with critical time ``C_i``
      (the model requires ``C_i <= W_i``, enforced here);
    * ``body`` — the job body as a segment sequence, from which the pure
      computation time ``u_i``, the access count ``m_i`` and the total
      execution estimate ``c_i`` derive;
    * ``abort_handler_time`` — execution time of the abort-exception
      handler run when the job's critical time expires (Section 3.5).
    """

    name: str
    arrival: UAMSpec
    tuf: TimeUtilityFunction
    body: tuple[Segment, ...]
    abort_handler_time: int = 0
    # Derived, filled in __post_init__.
    compute_time: int = field(init=False)
    access_count: int = field(init=False)
    access_time: int = field(init=False)
    #: ``body_suffix[i]`` = total declared duration of ``body[i:]``
    #: (``body_suffix[len(body)] == 0``).  Lets the scheduler hot path
    #: compute a job's remaining demand in O(1) instead of walking the
    #: segment tail on every PUD / feasibility evaluation.
    body_suffix: tuple[int, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        if self.tuf.critical_time > self.arrival.window:
            raise ValueError(
                f"task {self.name}: critical time {self.tuf.critical_time} "
                f"exceeds UAM window {self.arrival.window} (the model "
                "assumes C_i <= W_i)"
            )
        if self.abort_handler_time < 0:
            raise ValueError("abort handler time must be non-negative")
        if not self.body:
            raise ValueError("task body must have at least one segment")
        seg.validate_lock_structure(self.body)
        object.__setattr__(self, "compute_time", seg.compute_time(self.body))
        object.__setattr__(self, "access_count", seg.access_count(self.body))
        object.__setattr__(self, "access_time", seg.access_time(self.body))
        suffix = [0] * (len(self.body) + 1)
        for i in range(len(self.body) - 1, -1, -1):
            suffix[i] = suffix[i + 1] + self.body[i].duration
        object.__setattr__(self, "body_suffix", tuple(suffix))

    @property
    def critical_time(self) -> int:
        """The task's relative critical time ``C_i``."""
        return self.tuf.critical_time

    @property
    def execution_estimate(self) -> int:
        """Nominal execution demand ``c_i = u_i + sum of intrinsic access
        times`` (mechanism costs are added by the synchronization layer at
        run time)."""
        return self.compute_time + self.access_time

    @property
    def accessed_objects(self) -> frozenset[int | str]:
        return seg.accessed_objects(self.body)

    def utilization_bound(self) -> float:
        """Peak processor demand of this task: up to ``a_i`` jobs per
        window, each needing ``c_i``."""
        return self.arrival.max_arrivals * self.execution_estimate / self.arrival.window
