"""Scheduler policy interface.

A policy is a pure decision procedure: given the live jobs, the lock state
(None under lock-free or no sharing) and the current time, it returns the
jobs in execution-eligibility order.  The kernel dispatches the first
dispatchable job of that order and charges ``cost_model(n)`` of simulated
CPU time for the pass.

Jobs *absent* from the returned order are rejected for this scheduling
event (RUA drops infeasible jobs from its tentative schedule); they remain
live and will be reconsidered at the next event or aborted at their
critical times.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.obs.observer import NULL_OBSERVER, NullObserver
from repro.sim.locks import LockManager
from repro.sim.overheads import CostModel
from repro.tasks.job import Job


class SchedulerPolicy(ABC):
    """Base class for scheduling policies driven by the kernel."""

    #: Human-readable policy name (used in reports).
    name: str = "policy"
    #: Simulated cost charged per scheduling pass.
    cost_model: CostModel
    #: Observability sink (repro.obs).  The kernel replaces this with its
    #: configured observer; policies guard hooks with ``self.obs.enabled``.
    obs: NullObserver = NULL_OBSERVER

    def __init__(self) -> None:
        self._deadlock_victims: list[Job] = []

    @abstractmethod
    def schedule(self, jobs: list[Job], locks: LockManager | None,
                 now: int) -> list[Job]:
        """Return jobs in eligibility order (head runs first)."""

    # ------------------------------------------------------------------
    # Deadlock resolution channel (lock-based RUA with nesting only)
    # ------------------------------------------------------------------

    def request_abort(self, job: Job) -> None:
        """Ask the kernel to abort ``job`` (deadlock resolution,
        Section 3.3).  The kernel collects requests after each pass."""
        self._deadlock_victims.append(job)

    def consume_abort_requests(self) -> list[Job]:
        victims = self._deadlock_victims
        self._deadlock_victims = []
        return victims
