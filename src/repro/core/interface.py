"""Scheduler policy interface.

A policy is a pure decision procedure: given the live jobs, the lock state
(None under lock-free or no sharing) and the current time, it returns the
jobs in execution-eligibility order.  The kernel dispatches the first
dispatchable job of that order and charges ``cost_model(n)`` of simulated
CPU time for the pass.

Jobs *absent* from the returned order are rejected for this scheduling
event (RUA drops infeasible jobs from its tentative schedule); they remain
live and will be reconsidered at the next event or aborted at their
critical times.

``schedule`` is a concrete template method: it validates the inputs, runs
the exact wall-clock fast path (empty-pass short-circuit and
unchanged-state memoization — disabled by ``REPRO_NO_FASTPATH``), emits
the policy's deterministic observability counters identically on every
path, and delegates the actual decision to ``_compute``.  Because a
scheduling pass is a deterministic pure function of ``(jobs' scheduling
state, lock state, now)``, replaying a memoized pass is *exact*: the
simulated cost model is still charged by the kernel, so fixed-seed results
are byte-identical with the fast path on or off (see DESIGN.md §12).
"""

from __future__ import annotations

import os
from abc import ABC
from dataclasses import dataclass

from repro.obs.observer import NULL_OBSERVER, NullObserver
from repro.sim.locks import LockManager
from repro.sim.overheads import CostModel
from repro.tasks.job import Job


def fastpath_enabled() -> bool:
    """True unless ``REPRO_NO_FASTPATH`` is set (to anything non-empty).

    The reference path recomputes every scheduling pass from scratch; the
    fast path memoizes, short-circuits and repairs.  Both produce
    identical results by construction — the equivalence suite
    (``tests/core/test_fastpath_equivalence.py``) pins it.
    """
    return not os.environ.get("REPRO_NO_FASTPATH")


@dataclass(slots=True)
class PassResult:
    """Outcome of one scheduling pass, as produced by ``_compute``.

    Carries the eligibility order plus the deterministic counter material
    the base class emits, so memoized replays report exactly what a fresh
    computation would have.
    """

    order: list[Job]
    #: Jobs examined but dropped as infeasible (RUA rejection).
    rejections: int = 0
    #: Deadlock victims selected during this pass (lock-based + nesting).
    victims: int = 0
    #: Length of the longest dependency chain seen (0 = no chains built).
    chain_len_max: int = 0


class SchedulerPolicy(ABC):
    """Base class for scheduling policies driven by the kernel."""

    #: Human-readable policy name (used in reports).
    name: str = "policy"
    #: Simulated cost charged per scheduling pass.
    cost_model: CostModel
    #: Observability sink (repro.obs).  The kernel replaces this with its
    #: configured observer; policies guard hooks with ``self.obs.enabled``.
    obs: NullObserver = NULL_OBSERVER
    #: Whether this policy reports the ``sched.*`` counter family (the
    #: RUA policies do; the EDF/LLF baselines never have).
    emits_counters: bool = False
    #: Whether exact pass memoization pays for itself.  True for policies
    #: whose ``_compute`` is super-linear (RUA); the baseline sorts are
    #: cheaper than building the state signature.
    memoizes: bool = False

    def __init__(self) -> None:
        self._deadlock_victims: list[Job] = []
        self._memo_key: tuple | None = None
        self._memo_result: PassResult | None = None

    def schedule(self, jobs: list[Job], locks: LockManager | None,
                 now: int) -> list[Job]:
        """Return jobs in eligibility order (head runs first)."""
        self._validate(jobs, locks)
        obs = self.obs
        fast = fastpath_enabled()
        key: tuple | None = None
        if fast:
            if not jobs:
                # Provably-empty pass: no candidates, the order is [] and
                # no policy state can change.  Emit the same counters a
                # real pass over zero jobs would.
                if obs.enabled:
                    self._emit_counters(PassResult(order=[]))
                    obs.counter("sched.pass.skipped")
                return []
            if self.memoizes:
                key = self._signature(jobs, locks, now)
                if key is not None and key == self._memo_key:
                    result = self._memo_result
                    if obs.enabled:
                        self._emit_counters(result)
                        obs.counter("sched.cache.hit")
                    return list(result.order)
        result = self._compute(jobs, locks, now)
        if fast and self.memoizes:
            # Never memoize a pass that selected deadlock victims: the
            # ``request_abort`` side effect would not replay.
            if result.victims == 0:
                self._memo_key = key
                self._memo_result = result
            else:
                self._memo_key = None
                self._memo_result = None
            if obs.enabled:
                obs.counter("sched.cache.miss")
        if obs.enabled:
            self._emit_counters(result)
        return result.order

    def _compute(self, jobs: list[Job], locks: LockManager | None,
                 now: int) -> PassResult:
        """The policy's decision procedure.  Must be a deterministic pure
        function of the jobs' scheduling state, the lock state and ``now``
        (plus the ``request_abort`` channel, which disables memoization
        for the pass)."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement _compute() "
            "(or override schedule() entirely)")

    def _validate(self, jobs: list[Job], locks: LockManager | None) -> None:
        """Input validation hook; runs before any fast-path shortcut."""

    def _signature(self, jobs: list[Job], locks: LockManager | None,
                   now: int) -> tuple | None:
        """Hashable snapshot of everything ``_compute`` may read.

        Per job that is the scheduling-relevant mutable state (segment
        position/progress and blocking target — ``remaining_time``,
        PUDs, laxities and dependency chains all derive from these plus
        immutable task attributes), keyed by the never-recycled job
        serial; plus the lock manager's mutation version and the clock.
        """
        lock_version = -1 if locks is None else locks.version
        return (
            now, lock_version,
            tuple((job.serial, job.segment_index, job.segment_progress,
                   job.blocked_on) for job in jobs),
        )

    def reset_caches(self) -> None:
        """Drop every memoized scheduling artifact.

        Called on checkpoint restore: restored jobs are new objects with
        fresh serials, so any pass memoized before the snapshot — the
        exact-pass memo here, or a subclass's prefix-replay
        :class:`~repro.core.schedule_cache.ScheduleCache` — must never
        replay.  Caches are performance-only (the fast-path equivalence
        gate guarantees identical decisions without them), so dropping
        them cannot change any schedule.
        """
        self._memo_key = None
        self._memo_result = None
        self._deadlock_victims = []
        cache = getattr(self, "_schedule_cache", None)
        if cache is not None:
            cache.invalidate()

    def _emit_counters(self, result: PassResult) -> None:
        """Deterministic per-pass counters, identical on the computed,
        memoized and short-circuited paths."""
        if not self.emits_counters:
            return
        obs = self.obs
        obs.counter("sched.passes")
        obs.counter("sched.rejections", result.rejections)
        if result.victims:
            obs.counter("sched.deadlock_victims", result.victims)
        if result.chain_len_max:
            obs.histogram("sched.chain_len", result.chain_len_max)

    # ------------------------------------------------------------------
    # Deadlock resolution channel (lock-based RUA with nesting only)
    # ------------------------------------------------------------------

    def request_abort(self, job: Job) -> None:
        """Ask the kernel to abort ``job`` (deadlock resolution,
        Section 3.3).  The kernel collects requests after each pass."""
        self._deadlock_victims.append(job)

    def consume_abort_requests(self) -> list[Job]:
        victims = self._deadlock_victims
        self._deadlock_victims = []
        return victims
