"""Deadlock detection and resolution (Section 3.3).

Deadlocks can only arise with nested critical sections; they manifest as
a cycle in the dependency relation.  RUA adopts detection-and-resolution
(not avoidance/prevention) because the dynamic systems it targets do not
reveal which resources activities will need, for how long, or in what
order.  Resolution aborts the job on the cycle "which will likely
contribute the least utility" — the lowest-PUD cycle member.
"""

from __future__ import annotations

from repro.core.dependency import blocking_owner
from repro.core.pud import chain_pud
from repro.sim.locks import LockManager
from repro.tasks.job import Job


def detect_deadlock(jobs: list[Job], locks: LockManager,
                    ignore: frozenset[Job] | set[Job] = frozenset()
                    ) -> list[Job] | None:
    """Find a dependency cycle among ``jobs``, or None.

    Follows each job's direct-dependency pointer; since every job has at
    most one outgoing edge (it waits for at most one object), the
    structure is a functional graph and cycle detection is a pointer walk
    with a visit stamp — ``O(n)`` overall.  Jobs in ``ignore`` (already
    chosen as abort victims this pass) are treated as departed.
    """
    color: dict[Job, int] = {}  # 0 unseen implicit, 1 on current path, 2 done
    for root in jobs:
        if root in ignore or color.get(root):
            continue
        path: list[Job] = []
        current: Job | None = root
        while current is not None and color.get(current) is None:
            color[current] = 1
            path.append(current)
            current = blocking_owner(current, locks, ignore)
        if current is not None and color.get(current) == 1:
            # `current` is on the active path: the cycle runs from its
            # first occurrence to the end of the path.
            start = path.index(current)
            for job in path:
                color[job] = 2
            return path[start:]
        for job in path:
            color[job] = 2
    return None


def pick_deadlock_victim(cycle: list[Job], now: int) -> Job:
    """The cycle member contributing the least utility: lowest standalone
    PUD, ties broken by latest critical time, then by name for
    determinism."""
    if not cycle:
        raise ValueError("empty cycle")
    return min(
        cycle,
        key=lambda job: (
            chain_pud([job], now),
            -job.critical_time_abs,
            job.name,
        ),
    )
