"""Potential Utility Density (Section 3.2).

The PUD of a job measures the utility that can be accrued per unit time by
executing the job together with its dependents:

    PUD(T_i) = (U_i(t_f) + sum_{T_j in Dep} U_j(t_j)) / (t_f - t)

where the completion estimates ``t_j`` and ``t_f`` come from executing the
dependency chain head-to-tail starting now.  The estimates assume the
chain runs at the front of the schedule and that jobs release resources
when they complete — the PUD is therefore the *highest possible* return on
investment given current knowledge (the paper's footnote 5).
"""

from __future__ import annotations

from repro.tasks.job import Job


def completion_estimates(chain: list[Job], now: int) -> list[int]:
    """Estimated completion times of each chain job, head first, assuming
    the chain executes back-to-back starting at ``now``."""
    estimates = []
    t = now
    for job in chain:
        t += job.remaining_time()
        estimates.append(t)
    return estimates


def chain_pud(chain: list[Job], now: int) -> float:
    """PUD of the chain's tail job (the job whose chain this is).

    A chain with zero total remaining time yields ``float('inf')`` — the
    job is (estimated) instantaneous, the best possible return.
    """
    if not chain:
        raise ValueError("chain must contain at least the job itself")
    estimates = completion_estimates(chain, now)
    total_utility = 0.0
    for job, completion in zip(chain, estimates):
        total_utility += job.task.tuf.utility(completion - job.release_time)
    final = estimates[-1]
    if final <= now:
        return float("inf")
    return total_utility / (final - now)
