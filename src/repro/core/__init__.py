"""The paper's core contribution: Resource-constrained Utility Accrual
(RUA) scheduling, in lock-based and lock-free variants.

* :class:`LockBasedRUA` — the full algorithm of Section 3: dependency
  chains, potential utility densities (PUDs), deadlock detection and
  resolution (for nested critical sections), and tentative-schedule
  construction with earliest-critical-time-first insertion and
  critical-time inheritance.  Asymptotic cost ``O(n^2 log n)``.
* :class:`LockFreeRUA` — RUA with lock-free object sharing (Section 5):
  dependencies do not exist, the dependency-chain and deadlock steps
  vanish, and the cost drops to ``O(n^2)``.
* :class:`EDF` and :class:`LLF` — classical baselines.  RUA defaults to
  EDF during underloads with step TUFs and no sharing, which the test
  suite asserts.
"""

from repro.core.interface import PassResult, SchedulerPolicy, fastpath_enabled
from repro.core.dependency import (
    DeadlockDetected,
    blocking_owner,
    dependency_chain,
    needed_object,
)
from repro.core.pud import chain_pud, completion_estimates
from repro.core.feasibility import is_feasible
from repro.core.schedule_builder import (
    build_rua_schedule,
    build_rua_schedule_inplace,
    insert_chain,
)
from repro.core.schedule_cache import ScheduleCache, build_singleton_schedule
from repro.core.deadlock import detect_deadlock, pick_deadlock_victim
from repro.core.rua_lockbased import LockBasedRUA
from repro.core.rua_lockfree import LockFreeRUA
from repro.core.edf import EDF
from repro.core.llf import LLF

__all__ = [
    "SchedulerPolicy",
    "PassResult",
    "fastpath_enabled",
    "ScheduleCache",
    "build_singleton_schedule",
    "build_rua_schedule_inplace",
    "DeadlockDetected",
    "needed_object",
    "blocking_owner",
    "dependency_chain",
    "chain_pud",
    "completion_estimates",
    "is_feasible",
    "insert_chain",
    "build_rua_schedule",
    "detect_deadlock",
    "pick_deadlock_victim",
    "LockBasedRUA",
    "LockFreeRUA",
    "EDF",
    "LLF",
]
