"""Schedule feasibility testing (Section 3.4).

A tentative schedule is feasible when executing its jobs in order, each
job completes no later than its *effective* critical time (the critical
time possibly tightened by dependency-order inheritance during insertion,
Section 3.4.1).
"""

from __future__ import annotations

from repro.tasks.job import Job


def is_feasible(schedule: list[Job], effective_ct: dict[Job, int],
                now: int) -> bool:
    """True when every job in the ordered schedule meets its effective
    critical time, assuming back-to-back execution from ``now``."""
    t = now
    for job in schedule:
        t += job.remaining_time()
        limit = effective_ct.get(job, job.critical_time_abs)
        if t > limit:
            return False
    return True


def completion_profile(schedule: list[Job], now: int) -> list[tuple[Job, int]]:
    """Projected ``(job, completion time)`` pairs for the ordered
    schedule (diagnostics and tests)."""
    profile = []
    t = now
    for job in schedule:
        t += job.remaining_time()
        profile.append((job, t))
    return profile
