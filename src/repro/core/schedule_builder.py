"""Tentative-schedule construction (Sections 3.4 and 3.4.1).

RUA examines jobs in non-increasing PUD order and inserts each job *with
its dependents* into a copy of the schedule, maintaining
earliest-critical-time-first (ECF) order while respecting dependency
order.  When the two orders conflict (a dependent's critical time is later
than its successor's), the dependent inherits the successor's critical
time and is placed immediately before it — the paper's Figure 4.  Jobs
already present in the schedule (inserted as someone else's dependent) may
need to be moved to restore dependency order — Figure 5.

The schedule is a plain Python list ordered by effective critical time;
``effective_ct`` carries the (possibly inherited) critical times used for
ordering and feasibility.
"""

from __future__ import annotations

from repro.core.feasibility import is_feasible
from repro.tasks.job import Job


def _insert_sorted(schedule: list[Job], effective_ct: dict[Job, int],
                   job: Job, before: Job | None = None) -> None:
    """Insert ``job`` at its ECF position; if ``before`` is given, never
    later than ``before`` (dependency order wins ties and conflicts)."""
    ct = effective_ct[job]
    limit = len(schedule)
    if before is not None:
        limit = schedule.index(before)
    position = 0
    while position < limit and effective_ct[schedule[position]] <= ct:
        position += 1
    schedule.insert(position, job)


def insert_chain(schedule: list[Job], effective_ct: dict[Job, int],
                 chain: list[Job]) -> None:
    """Insert a job and its dependents (``chain``, head first) into the
    tentative schedule, tail-to-head, per Section 3.4.1.

    Mutates ``schedule`` and ``effective_ct`` in place — callers pass
    copies and commit them only if the result is feasible.
    """
    successor: Job | None = None
    for job in reversed(chain):
        own_ct = effective_ct.get(job, job.critical_time_abs)
        if successor is None:
            # The tail (the job being examined).  It may already be in the
            # schedule as a previously inserted dependent; then there is
            # nothing to do (its position already respects every
            # constraint recorded so far).
            if job not in schedule:
                effective_ct[job] = own_ct
                _insert_sorted(schedule, effective_ct, job)
        else:
            successor_ct = effective_ct[successor]
            if job in schedule:
                # Figure 5: the dependent was inserted earlier (for some
                # other chain).  Ensure it still precedes `successor`.
                if own_ct > successor_ct:
                    # Case 2: remove, inherit, reinsert before successor.
                    schedule.remove(job)
                    effective_ct[job] = successor_ct
                    _insert_sorted(schedule, effective_ct, job,
                                   before=successor)
                elif schedule.index(job) > schedule.index(successor):
                    # Equal critical times can leave the dependent after
                    # its successor; reposition without inheritance.
                    schedule.remove(job)
                    _insert_sorted(schedule, effective_ct, job,
                                   before=successor)
            else:
                # Figure 4: fresh insertion of a dependent.
                if own_ct > successor_ct:
                    own_ct = successor_ct  # critical-time inheritance
                effective_ct[job] = own_ct
                _insert_sorted(schedule, effective_ct, job, before=successor)
        successor = job


def build_rua_schedule(pud_order: list[Job],
                       chains: dict[Job, list[Job]],
                       now: int) -> list[Job]:
    """The full Section 3.4 construction.

    ``pud_order`` lists jobs by non-increasing PUD; ``chains`` maps each
    job to its dependency chain (head first).  Returns the feasible
    schedule in ECF order; rejected jobs are simply absent.
    """
    schedule: list[Job] = []
    effective_ct: dict[Job, int] = {}
    for job in pud_order:
        if job in schedule:
            # Already inserted as a dependent of a higher-PUD job.
            continue
        tentative = schedule.copy()
        tentative_ct = effective_ct.copy()
        insert_chain(tentative, tentative_ct, chains[job])
        if is_feasible(tentative, tentative_ct, now):
            schedule = tentative
            effective_ct = tentative_ct
    return schedule
