"""Tentative-schedule construction (Sections 3.4 and 3.4.1).

RUA examines jobs in non-increasing PUD order and inserts each job *with
its dependents* into a copy of the schedule, maintaining
earliest-critical-time-first (ECF) order while respecting dependency
order.  When the two orders conflict (a dependent's critical time is later
than its successor's), the dependent inherits the successor's critical
time and is placed immediately before it — the paper's Figure 4.  Jobs
already present in the schedule (inserted as someone else's dependent) may
need to be moved to restore dependency order — Figure 5.

The schedule is a plain Python list ordered by effective critical time;
``effective_ct`` carries the (possibly inherited) critical times used for
ordering and feasibility.
"""

from __future__ import annotations

from repro.core.feasibility import is_feasible
from repro.tasks.job import Job


#: Sentinel marking "no previous effective ct" in undo-log records.
_MISSING = object()


def _insert_sorted(schedule: list[Job], effective_ct: dict[Job, int],
                   job: Job, before: Job | None = None,
                   log: list | None = None) -> None:
    """Insert ``job`` at its ECF position; if ``before`` is given, never
    later than ``before`` (dependency order wins ties and conflicts)."""
    ct = effective_ct[job]
    limit = len(schedule)
    if before is not None:
        limit = schedule.index(before)
    position = 0
    while position < limit and effective_ct[schedule[position]] <= ct:
        position += 1
    schedule.insert(position, job)
    if log is not None:
        log.append(("ins", position, None))


def _set_ct(effective_ct: dict[Job, int], job: Job, value: int,
            log: list | None) -> None:
    if log is not None:
        log.append(("ct", job, effective_ct.get(job, _MISSING)))
    effective_ct[job] = value


def rollback(schedule: list[Job], effective_ct: dict[Job, int],
             log: list) -> None:
    """Undo one ``insert_chain`` recorded in ``log``, restoring
    ``schedule`` and ``effective_ct`` exactly (ops reversed in reverse
    order, so list positions stay valid)."""
    for kind, a, b in reversed(log):
        if kind == "ins":
            del schedule[a]
        elif kind == "rem":
            schedule.insert(a, b)
        else:  # "ct"
            if b is _MISSING:
                del effective_ct[a]
            else:
                effective_ct[a] = b


def insert_chain(schedule: list[Job], effective_ct: dict[Job, int],
                 chain: list[Job], log: list | None = None) -> None:
    """Insert a job and its dependents (``chain``, head first) into the
    tentative schedule, tail-to-head, per Section 3.4.1.

    Mutates ``schedule`` and ``effective_ct`` in place — callers either
    pass copies and commit them only if the result is feasible (the
    reference), or pass ``log`` to record an undo trail and roll the
    insertion back with :func:`rollback` (the in-place fast path).
    """
    successor: Job | None = None
    for job in reversed(chain):
        own_ct = effective_ct.get(job, job.critical_time_abs)
        if successor is None:
            # The tail (the job being examined).  It may already be in the
            # schedule as a previously inserted dependent; then there is
            # nothing to do (its position already respects every
            # constraint recorded so far).
            if job not in schedule:
                _set_ct(effective_ct, job, own_ct, log)
                _insert_sorted(schedule, effective_ct, job, log=log)
        else:
            successor_ct = effective_ct[successor]
            if job in schedule:
                # Figure 5: the dependent was inserted earlier (for some
                # other chain).  Ensure it still precedes `successor`.
                if own_ct > successor_ct:
                    # Case 2: remove, inherit, reinsert before successor.
                    index = schedule.index(job)
                    del schedule[index]
                    if log is not None:
                        log.append(("rem", index, job))
                    _set_ct(effective_ct, job, successor_ct, log)
                    _insert_sorted(schedule, effective_ct, job,
                                   before=successor, log=log)
                elif schedule.index(job) > schedule.index(successor):
                    # Equal critical times can leave the dependent after
                    # its successor; reposition without inheritance.
                    index = schedule.index(job)
                    del schedule[index]
                    if log is not None:
                        log.append(("rem", index, job))
                    _insert_sorted(schedule, effective_ct, job,
                                   before=successor, log=log)
            else:
                # Figure 4: fresh insertion of a dependent.
                if own_ct > successor_ct:
                    own_ct = successor_ct  # critical-time inheritance
                _set_ct(effective_ct, job, own_ct, log)
                _insert_sorted(schedule, effective_ct, job,
                               before=successor, log=log)
        successor = job


def build_rua_schedule(pud_order: list[Job],
                       chains: dict[Job, list[Job]],
                       now: int) -> list[Job]:
    """The full Section 3.4 construction.

    ``pud_order`` lists jobs by non-increasing PUD; ``chains`` maps each
    job to its dependency chain (head first).  Returns the feasible
    schedule in ECF order; rejected jobs are simply absent.
    """
    schedule: list[Job] = []
    effective_ct: dict[Job, int] = {}
    for job in pud_order:
        if job in schedule:
            # Already inserted as a dependent of a higher-PUD job.
            continue
        tentative = schedule.copy()
        tentative_ct = effective_ct.copy()
        insert_chain(tentative, tentative_ct, chains[job])
        if is_feasible(tentative, tentative_ct, now):
            schedule = tentative
            effective_ct = tentative_ct
    return schedule


def build_rua_schedule_inplace(pud_order: list[Job],
                               chains: dict[Job, list[Job]],
                               now: int) -> list[Job]:
    """Allocation-free variant of :func:`build_rua_schedule`.

    Instead of copying the schedule and effective-ct map per candidate,
    each chain is inserted directly and rolled back via an undo log when
    the result is infeasible.  Decision-for-decision identical to the
    reference (same ``insert_chain``, same feasibility test on the same
    state); only the copies disappear.
    """
    schedule: list[Job] = []
    effective_ct: dict[Job, int] = {}
    log: list = []
    for job in pud_order:
        if job in schedule:
            # Already inserted as a dependent of a higher-PUD job.
            continue
        log.clear()
        insert_chain(schedule, effective_ct, chains[job], log=log)
        if not is_feasible(schedule, effective_ct, now):
            rollback(schedule, effective_ct, log)
    return schedule
