"""Least-Laxity-First baseline.

LLF is the canonical *fully-dynamic* priority scheduler of the Carpenter
et al. taxonomy the paper cites in Section 4.1: a job's eligibility
changes while it waits (laxity shrinks), so two jobs can preempt each
other repeatedly — the mutual-preemption behaviour of the paper's
Figure 6, which the test suite demonstrates with this policy and with
RUA.
"""

from __future__ import annotations

from repro.core.interface import PassResult, SchedulerPolicy
from repro.sim.locks import LockManager
from repro.sim.overheads import CostModel, default_edf_cost
from repro.tasks.job import Job


class LLF(SchedulerPolicy):
    """Laxity-ordered dispatch: laxity = time to critical time minus
    remaining work."""

    name = "llf"

    def __init__(self, cost_model: CostModel | None = None) -> None:
        super().__init__()
        self.cost_model = cost_model or default_edf_cost()

    def _compute(self, jobs: list[Job], locks: LockManager | None,
                 now: int) -> PassResult:
        def laxity(job: Job) -> int:
            return (job.critical_time_abs - now) - job.remaining_time()

        return PassResult(order=sorted(
            jobs, key=lambda job: (laxity(job), job.name)))
