"""Incremental tentative-schedule construction (the RUA hot loop).

``build_rua_schedule`` (the reference, Section 3.4) copies the whole
schedule and effective-critical-time map once per examined candidate.
When every dependency chain is a singleton — always under lock-free
sharing, and under lock-based sharing whenever no job is blocked — the
construction simplifies drastically:

* critical-time inheritance never fires (no dependents), so each job's
  effective critical time is its own and the schedule is a plain ECF
  array;
* inserting a candidate at ECF position ``p`` leaves the completion
  times of positions ``< p`` untouched, so feasibility only needs the
  candidate itself plus an ``O(n - p)`` scan of the suffix, against a
  maintained completion-time array — no copies, no dict.

:func:`build_singleton_schedule` implements that, and
:class:`ScheduleCache` adds cross-pass repair: the builder examines
candidates in PUD order and its accept/reject decision for candidate
``i`` is a pure function of ``now`` and the ``(remaining, critical
time)`` pairs of candidates ``0..i``.  If a new pass at the same ``now``
shares a prefix with the previous pass's candidate list (the common case
for same-instant rescheduling cascades: a burst arrival or a
retry-guard abort changes *one* entry), the prefix decisions are
replayed verbatim and only the suffix is recomputed.  A full rebuild is
the automatic fallback whenever the clock moved or the prefix is empty —
exactness never depends on the cache (DESIGN.md §12 states the
invariants).
"""

from __future__ import annotations

from bisect import bisect_right

from repro.tasks.job import Job

#: One candidate, in PUD-examination order: ``(job, remaining, ct)``.
#: ``remaining`` is the job's remaining demand snapshot for this pass and
#: ``ct`` its absolute critical time.
Entry = tuple[Job, int, int]


class ScheduleCache:
    """Memo of the previous singleton-chain pass's accept/reject
    decisions, keyed by ``(now, candidate prefix)``.

    Purely an acceleration structure: it stores no job references (only
    never-recycled serials) and its hits replay decisions that are
    provably identical, so it can be shared across reschedule cascades,
    deadlock-victim reruns and fault-injected timelines alike.
    """

    __slots__ = ("_now", "_keys", "_decisions")

    def __init__(self) -> None:
        self._now: int | None = None
        self._keys: list[tuple[int, int, int]] = []
        self._decisions: list[bool] = []

    def reusable_prefix(self, now: int,
                        keys: list[tuple[int, int, int]]) -> int:
        """Number of leading candidates whose accept/reject decision can
        be replayed from the previous pass (0 = full rebuild)."""
        if now != self._now or not self._keys:
            return 0
        old = self._keys
        bound = min(len(old), len(keys))
        i = 0
        while i < bound and old[i] == keys[i]:
            i += 1
        return i

    def store(self, now: int, keys: list[tuple[int, int, int]],
              decisions: list[bool]) -> None:
        self._now = now
        self._keys = keys
        self._decisions = decisions

    def invalidate(self) -> None:
        self._now = None
        self._keys = []
        self._decisions = []


def build_singleton_schedule(entries: list[Entry], now: int,
                             cache: ScheduleCache | None = None,
                             obs=None) -> list[Job]:
    """Section 3.4 construction specialized to singleton chains.

    ``entries`` lists the candidates in non-increasing PUD order.
    Produces exactly the schedule :func:`repro.core.schedule_builder.
    build_rua_schedule` would for ``chains = {job: [job]}`` — the
    equivalence is pinned by a hypothesis property test.
    """
    keys = [(job.serial, remaining, ct) for job, remaining, ct in entries]
    prefix = 0
    cached: list[bool] = []
    if cache is not None:
        prefix = cache.reusable_prefix(now, keys)
        cached = cache._decisions
    schedule: list[Job] = []
    cts: list[int] = []
    completions: list[int] = []
    decisions: list[bool] = []
    for index, (job, remaining, ct) in enumerate(entries):
        # ECF position: after every job with effective ct <= ct (the
        # reference's ``_insert_sorted`` scan, as a bisect).
        position = bisect_right(cts, ct)
        start = completions[position - 1] if position else now
        if index < prefix:
            accepted = cached[index]
        else:
            # Feasible iff the candidate itself meets its critical time
            # and pushing the suffix back by ``remaining`` breaks no
            # already-accepted job.  The prefix is untouched and was
            # feasible when accepted.
            accepted = start + remaining <= ct
            if accepted:
                for i in range(position, len(cts)):
                    if completions[i] + remaining > cts[i]:
                        accepted = False
                        break
        if accepted:
            schedule.insert(position, job)
            cts.insert(position, ct)
            completions.insert(position, start + remaining)
            for i in range(position + 1, len(completions)):
                completions[i] += remaining
        decisions.append(accepted)
    if cache is not None:
        recomputed = len(entries) - prefix
        cache.store(now, keys, decisions)
        if obs is not None and obs.enabled:
            if prefix:
                obs.counter("sched.repair.replayed", prefix)
            obs.counter("sched.repair.computed", recomputed)
    return schedule
