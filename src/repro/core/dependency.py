"""Dependency-chain computation (Section 3.1).

A job ``T_1`` that needs a resource held by ``T_2`` is *directly*
dependent on ``T_2``; chains arise transitively.  The chain of a job is
the sequence ``<T_n, ..., T_2, T_1>`` meaning ``T_n`` must execute (at
least up to its lock release) before ``T_{n-1}``, and so on, to respect
the chained mutual-exclusion dependency at the current instant.

Dependencies are derived purely from kernel state: a job depends on the
owner of the object it is blocked on, or — equivalently for scheduling
purposes — the owner of the object its next unacquired access segment
needs.  Without nested critical sections a chain has length at most 2;
with nesting, chains can be ``O(n)`` long and can form cycles
(deadlocks), which :func:`dependency_chain` reports by raising
:class:`DeadlockDetected`.
"""

from __future__ import annotations

from repro.sim.locks import LockManager, ObjectId
from repro.tasks.job import Job
from repro.tasks.segments import ObjectAccess


class DeadlockDetected(Exception):
    """The dependency chain closed on itself (Section 3.3).

    ``cycle`` lists the jobs on the cycle, in dependency order.
    """

    def __init__(self, cycle: list[Job]) -> None:
        names = " -> ".join(j.name for j in cycle)
        super().__init__(f"deadlock cycle: {names}")
        self.cycle = cycle


def needed_object(job: Job) -> ObjectId | None:
    """The object the job needs next but does not hold: the object of its
    current access segment when unacquired, else None."""
    segment = job.current_segment
    if not isinstance(segment, ObjectAccess):
        return None
    if segment.obj == job.holds_lock or segment.obj in job.held_locks:
        return None
    return segment.obj


def blocking_owner(job: Job, locks: LockManager,
                   ignore: frozenset[Job] | set[Job] = frozenset()
                   ) -> Job | None:
    """The job that ``job`` directly depends on right now, or None.

    ``ignore`` lists jobs slated for abortion (deadlock victims): their
    locks are about to be rolled back, so edges into them are treated as
    already broken.
    """
    obj = needed_object(job)
    if obj is None:
        return None
    owner = locks.owner_of(obj)
    if owner is job or owner in ignore:
        return None
    return owner


def dependency_chain(job: Job, locks: LockManager | None,
                     ignore: frozenset[Job] | set[Job] = frozenset(),
                     on_cycle: str = "raise") -> list[Job]:
    """The job's dependency chain, head first (deepest dependency first,
    the job itself last) — the order in which the chain must execute.

    ``on_cycle`` selects the behaviour when the chain closes on itself:
    ``"raise"`` raises :class:`DeadlockDetected` (the default — RUA's
    Step 3 wants to know); ``"truncate"`` stops the walk at the repeated
    job, covering the cycle once (used when deadlock detection is
    deliberately disabled and the scheduler must still produce *some*
    order).
    """
    if locks is None:
        return [job]
    chain = [job]
    seen = {job}
    current = job
    while True:
        owner = blocking_owner(current, locks, ignore)
        if owner is None:
            break
        if owner in seen:
            if on_cycle == "truncate":
                break
            # Cut the cycle out of the chain for the error report: it
            # starts where `owner` first appeared.
            start = chain.index(owner)
            raise DeadlockDetected(cycle=list(reversed(chain[start:])))
        chain.append(owner)
        seen.add(owner)
        current = owner
    chain.reverse()
    return chain


def all_dependency_chains(jobs: list[Job],
                          locks: LockManager | None,
                          ignore: frozenset[Job] | set[Job] = frozenset(),
                          on_cycle: str = "raise"
                          ) -> dict[Job, list[Job]]:
    """Chains for every job (the ``O(n^2)`` Step 1 of Section 3.6)."""
    return {job: dependency_chain(job, locks, ignore, on_cycle)
            for job in jobs}
