"""Earliest-Deadline-First baseline.

EDF orders jobs by absolute critical time.  It is optimal during
underloads on a uniprocessor (all deadlines met), which is why RUA — and
UA scheduling generally — defaults to EDF-equivalent behaviour there
(Section 1); during overloads EDF collapses (the classical domino
effect), which is what UA scheduling exists to fix.
"""

from __future__ import annotations

from repro.core.interface import PassResult, SchedulerPolicy
from repro.sim.locks import LockManager
from repro.sim.overheads import CostModel, default_edf_cost
from repro.tasks.job import Job


class EDF(SchedulerPolicy):
    """Deadline (critical-time) ordered dispatch; job-level dynamic
    priorities."""

    name = "edf"

    def __init__(self, cost_model: CostModel | None = None) -> None:
        super().__init__()
        self.cost_model = cost_model or default_edf_cost()

    def _compute(self, jobs: list[Job], locks: LockManager | None,
                 now: int) -> PassResult:
        return PassResult(order=sorted(
            jobs, key=lambda job: (job.critical_time_abs, job.name)))
