"""Lock-based RUA (Section 3).

The algorithm, at every scheduling event:

1. compute each job's dependency chain (Section 3.1);
2. compute each job's PUD over its chain (Section 3.2);
3. detect and resolve deadlocks (Section 3.3 — only reachable when nested
   critical sections are enabled);
4. sort jobs by non-increasing PUD;
5. insert each job with its dependents into a tentative ECF schedule,
   testing feasibility and rejecting infeasible insertions (Section 3.4).

Asymptotic cost ``O(n^2 log n)``, dominated by Step 5 (Section 3.6); the
matching simulated cost is charged through
:func:`repro.sim.overheads.default_lockbased_rua_cost`.

Step 5 runs through one of three result-identical constructions: when
every chain is a singleton (no job blocked) the copy-free specialization
with cross-pass repair (:mod:`repro.core.schedule_cache`); with real
chains the undo-log in-place builder; under ``REPRO_NO_FASTPATH`` the
copying Section 3.4 reference.
"""

from __future__ import annotations

from repro.core.deadlock import detect_deadlock, pick_deadlock_victim
from repro.core.dependency import all_dependency_chains
from repro.core.interface import PassResult, SchedulerPolicy, fastpath_enabled
from repro.core.pud import chain_pud
from repro.core.schedule_builder import (
    build_rua_schedule,
    build_rua_schedule_inplace,
)
from repro.core.schedule_cache import ScheduleCache, build_singleton_schedule
from repro.sim.locks import LockManager
from repro.sim.overheads import CostModel, default_lockbased_rua_cost
from repro.tasks.job import Job


class LockBasedRUA(SchedulerPolicy):
    """The Resource-constrained Utility Accrual scheduler with lock-based
    object sharing."""

    name = "rua-lockbased"
    emits_counters = True
    memoizes = True

    def __init__(self, cost_model: CostModel | None = None,
                 detect_deadlocks: bool = True) -> None:
        super().__init__()
        self.cost_model = cost_model or default_lockbased_rua_cost()
        self.detect_deadlocks = detect_deadlocks
        self._schedule_cache = ScheduleCache()

    def _compute(self, jobs: list[Job], locks: LockManager | None,
                 now: int) -> PassResult:
        candidates = list(jobs)
        victims: set[Job] = set()
        # Step 3 first in implementation order: resolving a deadlock
        # changes the chains, so victims are excluded before chains are
        # (re)built.  Detection itself is O(n), cheaper than chain
        # construction (Section 3.6 notes it never dominates).  A victim's
        # locks are only rolled back by the kernel after this pass, so the
        # walk must ignore victims rather than rely on the lock state.
        if self.detect_deadlocks and locks is not None:
            while True:
                cycle = detect_deadlock(candidates, locks, ignore=victims)
                if cycle is None:
                    break
                victim = pick_deadlock_victim(cycle, now)
                self.request_abort(victim)
                victims.add(victim)
                candidates = [j for j in candidates if j is not victim]
        # Steps 1-2: dependency chains and PUDs.  With detection enabled
        # every cycle has been resolved above, so chains cannot close;
        # with detection disabled, truncate instead of raising so the
        # scheduler still produces an order (the cycle members will sit
        # blocked until their critical-time aborts break it).
        on_cycle = "raise" if self.detect_deadlocks else "truncate"
        chains = all_dependency_chains(candidates, locks, ignore=victims,
                                       on_cycle=on_cycle)
        chain_len_max = 0
        singleton = True
        for chain in chains.values():
            length = len(chain)
            if length > chain_len_max:
                chain_len_max = length
                if length > 1:
                    singleton = False
        fast = fastpath_enabled()
        if fast and singleton:
            # Step 4-5, singleton specialization: every chain is the job
            # itself, so the PUD inlines (same arithmetic as chain_pud on
            # a one-job chain) and the copy-free builder applies.
            entries = []
            for job in candidates:
                remaining = job.remaining_time()
                if remaining <= 0:
                    pud = float("inf")
                else:
                    utility = 0.0 + job.task.tuf.utility(
                        now + remaining - job.release_time)
                    pud = utility / remaining
                entries.append(((-pud, job.critical_time_abs, job.name),
                                remaining, job))
            entries.sort(key=lambda entry: entry[0])
            order = build_singleton_schedule(
                [(job, remaining, key[1])
                 for key, remaining, job in entries],
                now, cache=self._schedule_cache, obs=self.obs)
        else:
            puds = {job: chain_pud(chains[job], now) for job in candidates}
            # Step 4: non-increasing PUD; deterministic tie-breaks
            # (earlier critical time, then name).
            pud_order = sorted(
                candidates,
                key=lambda job: (-puds[job], job.critical_time_abs,
                                 job.name),
            )
            # Step 5: tentative-schedule construction.
            if fast:
                order = build_rua_schedule_inplace(pud_order, chains, now)
            else:
                order = build_rua_schedule(pud_order, chains, now)
        return PassResult(order=order,
                          rejections=len(candidates) - len(order),
                          victims=len(victims),
                          chain_len_max=chain_len_max)
