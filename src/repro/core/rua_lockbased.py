"""Lock-based RUA (Section 3).

The algorithm, at every scheduling event:

1. compute each job's dependency chain (Section 3.1);
2. compute each job's PUD over its chain (Section 3.2);
3. detect and resolve deadlocks (Section 3.3 — only reachable when nested
   critical sections are enabled);
4. sort jobs by non-increasing PUD;
5. insert each job with its dependents into a tentative ECF schedule,
   testing feasibility and rejecting infeasible insertions (Section 3.4).

Asymptotic cost ``O(n^2 log n)``, dominated by Step 5 (Section 3.6); the
matching simulated cost is charged through
:func:`repro.sim.overheads.default_lockbased_rua_cost`.
"""

from __future__ import annotations

from repro.core.deadlock import detect_deadlock, pick_deadlock_victim
from repro.core.dependency import all_dependency_chains
from repro.core.interface import SchedulerPolicy
from repro.core.pud import chain_pud
from repro.core.schedule_builder import build_rua_schedule
from repro.sim.locks import LockManager
from repro.sim.overheads import CostModel, default_lockbased_rua_cost
from repro.tasks.job import Job


class LockBasedRUA(SchedulerPolicy):
    """The Resource-constrained Utility Accrual scheduler with lock-based
    object sharing."""

    name = "rua-lockbased"

    def __init__(self, cost_model: CostModel | None = None,
                 detect_deadlocks: bool = True) -> None:
        super().__init__()
        self.cost_model = cost_model or default_lockbased_rua_cost()
        self.detect_deadlocks = detect_deadlocks

    def schedule(self, jobs: list[Job], locks: LockManager | None,
                 now: int) -> list[Job]:
        candidates = list(jobs)
        victims: set[Job] = set()
        # Step 3 first in implementation order: resolving a deadlock
        # changes the chains, so victims are excluded before chains are
        # (re)built.  Detection itself is O(n), cheaper than chain
        # construction (Section 3.6 notes it never dominates).  A victim's
        # locks are only rolled back by the kernel after this pass, so the
        # walk must ignore victims rather than rely on the lock state.
        if self.detect_deadlocks and locks is not None:
            while True:
                cycle = detect_deadlock(candidates, locks, ignore=victims)
                if cycle is None:
                    break
                victim = pick_deadlock_victim(cycle, now)
                self.request_abort(victim)
                victims.add(victim)
                candidates = [j for j in candidates if j is not victim]
        # Steps 1-2: dependency chains and PUDs.  With detection enabled
        # every cycle has been resolved above, so chains cannot close;
        # with detection disabled, truncate instead of raising so the
        # scheduler still produces an order (the cycle members will sit
        # blocked until their critical-time aborts break it).
        on_cycle = "raise" if self.detect_deadlocks else "truncate"
        chains = all_dependency_chains(candidates, locks, ignore=victims,
                                       on_cycle=on_cycle)
        puds = {job: chain_pud(chains[job], now) for job in candidates}
        # Step 4: non-increasing PUD; deterministic tie-breaks (earlier
        # critical time, then name).
        pud_order = sorted(
            candidates,
            key=lambda job: (-puds[job], job.critical_time_abs, job.name),
        )
        # Step 5: tentative-schedule construction.
        order = build_rua_schedule(pud_order, chains, now)
        if self.obs.enabled:
            self.obs.counter("sched.passes")
            self.obs.counter("sched.rejections",
                             len(candidates) - len(order))
            if victims:
                self.obs.counter("sched.deadlock_victims", len(victims))
            if chains:
                self.obs.histogram(
                    "sched.chain_len",
                    max(len(chain) for chain in chains.values()))
        return order
