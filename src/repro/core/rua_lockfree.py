"""Lock-free RUA (Section 5).

With lock-free object sharing, resource dependencies do not exist: every
job's "aggregate computation" is just the job itself.  Steps 1 (dependency
chains) and 3 (deadlock detection) of lock-based RUA vanish, Step 2 (PUD)
drops to ``O(n)`` and Step 5 (schedule construction) to ``O(n^2)`` — the
paper's headline cost reduction from ``O(n^2 log n)`` to ``O(n^2)``.

The construction is otherwise identical: non-increasing PUD examination,
ECF insertion, feasibility testing with rejection.  On the fast path the
singleton-chain specialization (:mod:`repro.core.schedule_cache`) runs the
construction copy-free with cross-pass prefix repair; under
``REPRO_NO_FASTPATH`` the reference Section 3.4 builder runs instead —
the two are result-identical by construction and by test.
"""

from __future__ import annotations

from repro.core.interface import PassResult, SchedulerPolicy, fastpath_enabled
from repro.core.pud import chain_pud
from repro.core.schedule_builder import build_rua_schedule
from repro.core.schedule_cache import ScheduleCache, build_singleton_schedule
from repro.sim.locks import LockManager
from repro.sim.overheads import CostModel, default_lockfree_rua_cost
from repro.tasks.job import Job


class LockFreeRUA(SchedulerPolicy):
    """RUA specialized for lock-free sharing: no dependency chains."""

    name = "rua-lockfree"
    emits_counters = True
    memoizes = True

    def __init__(self, cost_model: CostModel | None = None) -> None:
        super().__init__()
        self.cost_model = cost_model or default_lockfree_rua_cost()
        self._schedule_cache = ScheduleCache()

    def _validate(self, jobs: list[Job],
                  locks: LockManager | None) -> None:
        if locks is not None:
            raise ValueError(
                "LockFreeRUA must not be used with lock-based sharing; "
                "use LockBasedRUA or SyncMode.LOCK_FREE"
            )

    def _compute(self, jobs: list[Job], locks: LockManager | None,
                 now: int) -> PassResult:
        if not fastpath_enabled():
            chains = {job: [job] for job in jobs}
            puds = {job: chain_pud(chains[job], now) for job in jobs}
            pud_order = sorted(
                jobs,
                key=lambda job: (-puds[job], job.critical_time_abs,
                                 job.name),
            )
            order = build_rua_schedule(pud_order, chains, now)
            return PassResult(order=order,
                              rejections=len(jobs) - len(order))
        # Fast path: inline the singleton-chain PUD (identical arithmetic
        # to chain_pud over a one-job chain) and run the copy-free
        # builder with cross-pass repair.
        entries = []
        for job in jobs:
            remaining = job.remaining_time()
            if remaining <= 0:
                pud = float("inf")
            else:
                utility = 0.0 + job.task.tuf.utility(
                    now + remaining - job.release_time)
                pud = utility / remaining
            entries.append(((-pud, job.critical_time_abs, job.name),
                            remaining, job))
        entries.sort(key=lambda entry: entry[0])
        order = build_singleton_schedule(
            [(job, remaining, key[1]) for key, remaining, job in entries],
            now, cache=self._schedule_cache, obs=self.obs)
        return PassResult(order=order, rejections=len(jobs) - len(order))
