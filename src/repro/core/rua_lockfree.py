"""Lock-free RUA (Section 5).

With lock-free object sharing, resource dependencies do not exist: every
job's "aggregate computation" is just the job itself.  Steps 1 (dependency
chains) and 3 (deadlock detection) of lock-based RUA vanish, Step 2 (PUD)
drops to ``O(n)`` and Step 5 (schedule construction) to ``O(n^2)`` — the
paper's headline cost reduction from ``O(n^2 log n)`` to ``O(n^2)``.

The construction is otherwise identical: non-increasing PUD examination,
ECF insertion, feasibility testing with rejection.
"""

from __future__ import annotations

from repro.core.interface import SchedulerPolicy
from repro.core.pud import chain_pud
from repro.core.schedule_builder import build_rua_schedule
from repro.sim.locks import LockManager
from repro.sim.overheads import CostModel, default_lockfree_rua_cost
from repro.tasks.job import Job


class LockFreeRUA(SchedulerPolicy):
    """RUA specialized for lock-free sharing: no dependency chains."""

    name = "rua-lockfree"

    def __init__(self, cost_model: CostModel | None = None) -> None:
        super().__init__()
        self.cost_model = cost_model or default_lockfree_rua_cost()

    def schedule(self, jobs: list[Job], locks: LockManager | None,
                 now: int) -> list[Job]:
        if locks is not None:
            raise ValueError(
                "LockFreeRUA must not be used with lock-based sharing; "
                "use LockBasedRUA or SyncMode.LOCK_FREE"
            )
        chains = {job: [job] for job in jobs}
        puds = {job: chain_pud(chains[job], now) for job in jobs}
        pud_order = sorted(
            jobs,
            key=lambda job: (-puds[job], job.critical_time_abs, job.name),
        )
        order = build_rua_schedule(pud_order, chains, now)
        if self.obs.enabled:
            self.obs.counter("sched.passes")
            self.obs.counter("sched.rejections", len(jobs) - len(order))
        return order
