"""ASCII Gantt rendering of kernel traces.

Turns a :class:`repro.sim.tracing.Tracer` into a per-task timeline —
the quickest way to *see* preemptions, blocking waits, retries and
aborts when debugging a scenario::

    kernel, result = ...  # run with trace=True
    print(render_gantt(kernel.tracer, horizon=config.horizon))

Lane characters: ``#`` running, ``!`` the instant of an abort, ``*`` the
instant of a retry, ``.`` idle for that task.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.tracing import TraceKind, Tracer


@dataclass(frozen=True)
class _Run:
    job: str
    start: int
    end: int


def execution_runs(tracer: Tracer, horizon: int) -> list[_Run]:
    """Reconstruct CPU occupancy intervals from dispatch/idle/terminal
    events."""
    runs: list[_Run] = []
    current: tuple[str, int] | None = None

    def close(end: int) -> None:
        nonlocal current
        if current is None:
            return
        job, start = current
        if end > start:
            runs.append(_Run(job=job, start=start, end=min(end, horizon)))
        current = None

    for event in tracer.events:
        if event.kind is TraceKind.DISPATCH:
            close(event.time)
            start = event.time
            if event.detail.startswith("start="):
                start = int(event.detail.split("=", 1)[1])
            current = (event.job, start)
        elif event.kind in (TraceKind.IDLE, TraceKind.PREEMPT):
            close(event.time)
        elif event.kind in (TraceKind.COMPLETE, TraceKind.ABORT):
            if current is not None and current[0] == event.job:
                close(event.time)
    close(horizon)
    return runs


def render_gantt(tracer: Tracer, horizon: int, width: int = 72) -> str:
    """Render one lane per job, bucketed to ``width`` columns."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if width < 8:
        raise ValueError("width must be at least 8 columns")
    runs = execution_runs(tracer, horizon)
    jobs: list[str] = []
    for event in tracer.events:
        if event.job and event.job not in jobs:
            jobs.append(event.job)
    lanes = {job: ["."] * width for job in jobs}
    scale = horizon / width

    def column(t: int) -> int:
        return min(width - 1, int(t / scale))

    for run in runs:
        lane = lanes.get(run.job)
        if lane is None:
            continue
        for col in range(column(run.start), column(max(run.start,
                                                       run.end - 1)) + 1):
            lane[col] = "#"
    for event in tracer.events:
        if event.kind is TraceKind.ABORT and event.job in lanes:
            lanes[event.job][column(event.time)] = "!"
        elif event.kind is TraceKind.RETRY and event.job in lanes:
            lanes[event.job][column(event.time)] = "*"
    label_width = max((len(j) for j in jobs), default=4)
    header = (f"{'time':<{label_width}}  0{' ' * (width - 2)}"
              f"{horizon}")
    lines = [header]
    for job in jobs:
        lines.append(f"{job:<{label_width}}  {''.join(lanes[job])}")
    return "\n".join(lines)
