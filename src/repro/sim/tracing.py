"""Execution tracing.

The tracer records kernel-level happenings (dispatches, preemptions,
blockings, retries, aborts, completions) as a flat, append-only list of
:class:`TraceEvent`.  Tests use traces to assert fine-grained behaviour;
the experiment harness uses them to measure effective object access times
for Figure 8.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TraceKind(enum.Enum):
    ARRIVAL = "arrival"
    DISPATCH = "dispatch"
    PREEMPT = "preempt"
    BLOCK = "block"
    UNBLOCK = "unblock"
    LOCK_ACQUIRE = "lock_acquire"
    LOCK_RELEASE = "lock_release"
    ACCESS_BEGIN = "access_begin"
    ACCESS_COMMIT = "access_commit"
    RETRY = "retry"
    COMPLETE = "complete"
    ABORT = "abort"
    SCHED_PASS = "sched_pass"
    IDLE = "idle"
    # Fault-injection / graceful-degradation events.
    FAULT = "fault"          # an injected fault landed
    SHED = "shed"            # admission guard rejected an arrival
    DEFER = "defer"          # admission guard pushed an arrival back


@dataclass(frozen=True)
class TraceEvent:
    time: int
    kind: TraceKind
    job: str            # job name, or "" for kernel-level events
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" {self.detail}" if self.detail else ""
        return f"[{self.time:>12}] {self.kind.value:<13} {self.job}{suffix}"

    def to_dict(self) -> dict:
        """JSON-ready form (the obs exporters embed trace events as an
        extra lane in the Chrome trace)."""
        return {"time": self.time, "kind": self.kind.value,
                "job": self.job, "detail": self.detail}


class Tracer:
    """Collects trace events; disabled tracers are near-free."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def emit(self, time: int, kind: TraceKind, job: str = "",
             detail: str = "") -> None:
        if self.enabled:
            self.events.append(TraceEvent(time, kind, job, detail))

    def of_kind(self, kind: TraceKind) -> list[TraceEvent]:
        return [e for e in self.events if e.kind is kind]

    def for_job(self, job_name: str) -> list[TraceEvent]:
        return [e for e in self.events if e.job == job_name]

    def dump(self) -> str:
        return "\n".join(str(e) for e in self.events)

    def clear(self) -> None:
        """Drop recorded events (keeps ``enabled``); lets long-lived
        harnesses bound memory between instrumented runs."""
        self.events.clear()
