"""Cost models for kernel and scheduler overheads.

The paper's measured effects (Figures 8 and 9) are driven by the *cost* of
the scheduling and synchronization mechanisms on the 500 MHz Pentium-III
testbed: lock-based RUA pays an ``O(n^2 log n)`` scheduling pass on every
scheduling event — including every lock and unlock request — while
lock-free RUA pays ``O(n^2)`` and never fields lock events at all.

We reproduce this by charging explicit, calibratable costs on the
simulated CPU.  A :class:`CostModel` maps the number of live jobs ``n`` to
an invocation cost in ticks; :class:`KernelCosts` bundles the fixed costs
(context switch, lock bookkeeping, one CAS) with default constants
calibrated so the simulated magnitudes land in the ranges the paper
reports (lock-free access times of a few µs, lock-based access times of
tens-to-hundreds of µs at 10 tasks, CML knees near 10 µs and 1 ms).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.units import US


class CostModel(ABC):
    """Maps live-job count to a per-invocation cost in ticks."""

    @abstractmethod
    def cost(self, n_jobs: int) -> int:
        """Cost of one invocation with ``n_jobs`` live jobs."""

    def __call__(self, n_jobs: int) -> int:
        return self.cost(n_jobs)


@dataclass(frozen=True)
class ZeroCost(CostModel):
    """The paper's "ideal" scheduler/object implementation: zero
    mechanism cost (Section 6.1's ideal RUA)."""

    def cost(self, n_jobs: int) -> int:
        return 0


@dataclass(frozen=True)
class ConstantCost(CostModel):
    """Fixed cost independent of the job count."""

    amount: int

    def cost(self, n_jobs: int) -> int:
        return self.amount


@dataclass(frozen=True)
class LinearithmicCost(CostModel):
    """``base + unit * n * log2(n + 1)`` — EDF-class schedulers that keep
    one sorted ready queue."""

    base: int
    unit: float

    def cost(self, n_jobs: int) -> int:
        n = max(0, n_jobs)
        return self.base + round(self.unit * n * math.log2(n + 1))


@dataclass(frozen=True)
class QuadraticCost(CostModel):
    """``base + unit * n^2`` — lock-free RUA (Section 5): no dependency
    chains, so each of the ``n`` PUD-ordered insertions costs ``O(n)``."""

    base: int
    unit: float

    def cost(self, n_jobs: int) -> int:
        n = max(0, n_jobs)
        return self.base + round(self.unit * n * n)


@dataclass(frozen=True)
class QuadraticLogCost(CostModel):
    """``base + unit * n^2 * log2(n + 1)`` — lock-based RUA (Section 3.6):
    every job drags its ``O(n)`` dependency chain through ``O(log n)``
    ordered-schedule operations."""

    base: int
    unit: float

    def cost(self, n_jobs: int) -> int:
        n = max(0, n_jobs)
        return self.base + round(self.unit * n * n * math.log2(n + 1))


@dataclass(frozen=True)
class KernelCosts:
    """Fixed kernel mechanism costs, in ticks (ns).

    Defaults are calibrated to a late-1990s embedded-class processor (the
    paper's 500 MHz Pentium-III):

    * ``context_switch`` — dispatch/preemption cost;
    * ``lock_overhead`` — lock *bookkeeping* per lock or unlock call, on
      top of the scheduler invocation the call triggers (lock and unlock
      requests are scheduling events for lock-based RUA);
    * ``cas_overhead`` — one compare-and-swap plus cache traffic for a
      lock-free operation attempt (charged per attempt, including each
      retry);
    * ``timer_overhead`` — servicing a critical-time timer interrupt.
    """

    context_switch: int = 1 * US
    lock_overhead: int = 2 * US
    cas_overhead: int = US // 2
    timer_overhead: int = US // 2

    def __post_init__(self) -> None:
        for name in ("context_switch", "lock_overhead", "cas_overhead",
                     "timer_overhead"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @classmethod
    def ideal(cls) -> "KernelCosts":
        """Zero-cost kernel: the 'ideal' configuration of Section 6.1."""
        return cls(context_switch=0, lock_overhead=0, cas_overhead=0,
                   timer_overhead=0)


def jittered_cost(base: int, rng, magnitude: float) -> int:
    """Multiplicatively perturb one fixed cost charge by up to
    ±``magnitude`` (uniform), clamped non-negative.  Used by the fault
    layer's cost-model jitter; the draw comes from the caller's seeded
    stream so runs replay deterministically."""
    if magnitude <= 0:
        return base
    return max(0, round(base * (1.0 + rng.uniform(-magnitude, magnitude))))


# Default scheduler cost constants.  ``unit`` values are in ticks per
# asymptotic unit and were calibrated against Figure 9's knees: with 10
# tasks, one lock-based RUA pass costs ~ 36 µs, one lock-free RUA pass
# ~ 3.5 µs, one EDF pass ~ 0.7 µs.
def default_lockbased_rua_cost() -> QuadraticLogCost:
    return QuadraticLogCost(base=2 * US, unit=100.0)


def default_lockfree_rua_cost() -> QuadraticCost:
    return QuadraticCost(base=1 * US, unit=25.0)


def default_edf_cost() -> LinearithmicCost:
    return LinearithmicCost(base=500, unit=6.0)
