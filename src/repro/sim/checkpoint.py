"""Kernel checkpoint/restore: crash-recoverable simulation state.

A :class:`KernelCheckpoint` is a *complete*, versioned, digest-stamped,
JSON-serializable snapshot of a mid-run :class:`repro.sim.kernel.Kernel`:
the event queue (raw heap order, so tie-breaking sequence numbers
survive), every job's segment progress and synchronization state, the
:class:`~repro.sim.locks.LockManager` and NBW
:class:`~repro.sim.objects.LockFreeObjectTable` tables, the UAM
admission-guard window counters, the fault injector's RNG stream and
one-shot bookkeeping, the monitor suite's dedup state, the accumulated
:class:`~repro.sim.metrics.SimulationResult`, and the trace buffer.

The restore contract is the same equivalence discipline PR 5 set for the
fast path: ``restore(config, snapshot).run()`` finishes to a
``SimulationResult`` **byte-identical** to the uninterrupted run — with
and without ``REPRO_NO_FASTPATH=1``.  Two deliberate properties make
that hold:

* restored jobs receive *fresh* ``Job.serial`` values (serials are
  process-global and never recycled), and every scheduling-pass cache is
  explicitly dropped via ``SchedulerPolicy.reset_caches()``, so a
  restored kernel can never replay a stale memoized pass;
* the observer is **not** checkpointed — observation is a side channel
  that must not perturb the simulation (DESIGN.md §10), so a resumed
  run's obs summary covers only the post-restore suffix.

Corruption is detected, never trusted: the envelope carries a SHA-256
digest of the canonical state encoding plus a format version, and
:func:`KernelCheckpoint.from_json` refuses anything torn, tampered or
from a different format generation with :class:`CheckpointError`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.faults.report import InvariantViolation
from repro.sim.engine import EventQueue
from repro.sim.events import CriticalTimeExpiry, JobArrival, Milestone
from repro.sim.metrics import JobRecord, SimulationResult
from repro.sim.objects import _ObjectState, _OpenAccess
from repro.sim.tracing import TraceEvent, TraceKind
from repro.tasks.job import Job, JobState
from repro.tasks.segments import AccessKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel, SimulationConfig

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointPolicy",
    "KernelCheckpoint",
    "fingerprint_result",
    "snapshot_kernel",
    "restore_kernel",
]

#: Format generation of the checkpoint wire encoding.  Bumped on any
#: incompatible change; restore refuses other generations outright
#: (recomputing from zero is always safe, resuming across formats never
#: is).
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint that cannot be trusted: torn, tampered, truncated,
    or written by an incompatible format generation."""


@dataclass(frozen=True)
class CheckpointPolicy:
    """When the kernel emits checkpoints during :meth:`Kernel.run`.

    ``every_events`` snapshots after every K handled events;
    ``every_ns`` snapshots when at least T simulated nanoseconds have
    elapsed since the previous snapshot.  Either may be used alone or
    both together (a snapshot is due when *either* trigger fires; firing
    resets both meters, so the cadence is identical before and after a
    restore).
    """

    every_events: int | None = None
    every_ns: int | None = None

    def __post_init__(self) -> None:
        if self.every_events is None and self.every_ns is None:
            raise ValueError(
                "CheckpointPolicy needs every_events and/or every_ns")
        if self.every_events is not None and self.every_events < 1:
            raise ValueError("every_events must be >= 1")
        if self.every_ns is not None and self.every_ns < 1:
            raise ValueError("every_ns must be >= 1")


def _canonical(state: dict[str, Any]) -> str:
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def _state_digest(state: dict[str, Any]) -> str:
    return hashlib.sha256(_canonical(state).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class KernelCheckpoint:
    """One digest-stamped snapshot of a mid-run kernel.

    ``state`` is plain JSON-compatible data; ``digest`` is the SHA-256
    of its canonical encoding, computed at snapshot time and re-verified
    on every decode, so a checkpoint that survives a round-trip is
    exactly the checkpoint that was written.
    """

    version: int
    digest: str
    state: dict[str, Any]

    @classmethod
    def wrap(cls, state: dict[str, Any]) -> "KernelCheckpoint":
        return cls(version=CHECKPOINT_VERSION,
                   digest=_state_digest(state), state=state)

    @property
    def clock(self) -> int:
        """Simulated time at which the snapshot was taken."""
        return self.state["clock"]

    @property
    def events_handled(self) -> int:
        return self.state["events_handled"]

    def verify(self) -> None:
        """Raise :class:`CheckpointError` unless this checkpoint is
        intact and of the supported format generation."""
        if self.version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint format v{self.version} is not the supported "
                f"v{CHECKPOINT_VERSION}")
        actual = _state_digest(self.state)
        if actual != self.digest:
            raise CheckpointError(
                f"checkpoint digest mismatch: stamped {self.digest[:12]}, "
                f"state hashes to {actual[:12]}")

    def to_json(self) -> str:
        return json.dumps({"version": self.version, "digest": self.digest,
                           "state": self.state},
                          sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "KernelCheckpoint":
        """Decode and verify; any defect raises :class:`CheckpointError`."""
        try:
            doc = json.loads(text)
            checkpoint = cls(version=doc["version"], digest=doc["digest"],
                             state=doc["state"])
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise CheckpointError(f"unreadable checkpoint: {exc}") from exc
        if not isinstance(checkpoint.state, dict):
            raise CheckpointError("checkpoint state is not an object")
        checkpoint.verify()
        return checkpoint


def fingerprint_result(result: SimulationResult) -> str:
    """Canonical byte encoding of everything deterministic in a
    :class:`SimulationResult` — the comparison key of the restore
    equivalence gate.  ``obs`` is excluded (observation is not
    checkpointed and carries wall-clock summaries)."""
    degradation = result.degradation
    doc = {
        "records": [_encode_record(record) for record in result.records],
        "horizon": result.horizon,
        "scheduler_invocations": result.scheduler_invocations,
        "scheduler_overhead_time": result.scheduler_overhead_time,
        "idle_time": result.idle_time,
        "unfinished": result.unfinished,
        "lock_mechanism_time": result.lock_mechanism_time,
        "lockfree_mechanism_time": result.lockfree_mechanism_time,
        "lock_access_commits": result.lock_access_commits,
        "lockfree_access_commits": result.lockfree_access_commits,
        "lockfree_attempts": result.lockfree_attempts,
        "degradation": (None if degradation is None
                        else degradation.to_dict()),
    }
    return _canonical(doc)


# ----------------------------------------------------------------------
# Encoding helpers
# ----------------------------------------------------------------------
# ObjectIds are ``int | str`` and JSON keeps the distinction, so they are
# stored as-is — but never as dict *keys* (JSON keys are strings);
# every ObjectId-keyed table is a list of ``[obj, value]`` pairs in
# insertion order, which also preserves dict iteration order exactly.


def _sorted_objs(objs) -> list:
    return sorted(objs, key=lambda obj: (isinstance(obj, str), obj))


def _encode_record(record: JobRecord) -> dict[str, Any]:
    return {
        "task_name": record.task_name,
        "jid": record.jid,
        "release_time": record.release_time,
        "completion_time": record.completion_time,
        "accrued_utility": record.accrued_utility,
        "max_utility": record.max_utility,
        "retries": record.retries,
        "blockings": record.blockings,
        "preemptions": record.preemptions,
        "aborted": record.aborted,
    }


def _decode_record(doc: dict[str, Any]) -> JobRecord:
    return JobRecord(**doc)


def _encode_job(job: Job, task_index: int) -> dict[str, Any]:
    return {
        "task_index": task_index,
        "jid": job.jid,
        "release_time": job.release_time,
        "state": job.state.value,
        "segment_index": job.segment_index,
        "segment_progress": job.segment_progress,
        "holds_lock": job.holds_lock,
        "held_locks": _sorted_objs(job.held_locks),
        "blocked_on": job.blocked_on,
        "access_dirty": job.access_dirty,
        "segment_extra": job.segment_extra,
        "retries": job.retries,
        "blockings": job.blockings,
        "preemptions": job.preemptions,
        "completion_time": job.completion_time,
        "accrued_utility": job.accrued_utility,
        "dispatch_token": job.dispatch_token,
    }


def _decode_job(doc: dict[str, Any], tasks) -> Job:
    # ``serial`` is deliberately NOT restored: serials are process-global
    # and never recycled, so a restored job's fresh serial can never
    # collide with any pass a policy memoized before the crash.
    job = Job(task=tasks[doc["task_index"]], jid=doc["jid"],
              release_time=doc["release_time"])
    job.state = JobState(doc["state"])
    job.segment_index = doc["segment_index"]
    job.segment_progress = doc["segment_progress"]
    job.holds_lock = doc["holds_lock"]
    job.held_locks = set(doc["held_locks"])
    job.blocked_on = doc["blocked_on"]
    job.access_dirty = doc["access_dirty"]
    job.segment_extra = doc["segment_extra"]
    job.retries = doc["retries"]
    job.blockings = doc["blockings"]
    job.preemptions = doc["preemptions"]
    job.completion_time = doc["completion_time"]
    job.accrued_utility = doc["accrued_utility"]
    job.dispatch_token = doc["dispatch_token"]
    return job


def _encode_event(payload, job_index) -> dict[str, Any]:
    if isinstance(payload, JobArrival):
        return {"kind": "arrival", "task_index": payload.task_index,
                "jid": payload.jid, "injected": payload.injected,
                "deferrals": payload.deferrals}
    if isinstance(payload, CriticalTimeExpiry):
        return {"kind": "expiry", "job": job_index[id(payload.job)]}
    if isinstance(payload, Milestone):
        return {"kind": "milestone", "job": job_index[id(payload.job)],
                "token": payload.token}
    raise CheckpointError(f"unknown event payload {payload!r}")


def _decode_event(doc: dict[str, Any], jobs: list[Job]):
    kind = doc["kind"]
    if kind == "arrival":
        return JobArrival(task_index=doc["task_index"], jid=doc["jid"],
                          injected=doc["injected"],
                          deferrals=doc["deferrals"])
    if kind == "expiry":
        return CriticalTimeExpiry(job=jobs[doc["job"]])
    if kind == "milestone":
        return Milestone(job=jobs[doc["job"]], token=doc["token"])
    raise CheckpointError(f"unknown event kind {kind!r}")


# ----------------------------------------------------------------------
# Snapshot
# ----------------------------------------------------------------------

def snapshot_kernel(kernel: "Kernel") -> KernelCheckpoint:
    """Capture the kernel's complete mid-run state.

    Jobs are indexed canonically: the live set in arrival order first,
    then any departed jobs still referenced from queued events (stale
    abort timers, superseded milestones) in heap order.  Every other
    table refers to jobs by that index.
    """
    jobs: list[Job] = list(kernel._live)
    job_index: dict[int, int] = {id(job): i for i, job in enumerate(jobs)}

    def _index_job(job: Job) -> None:
        if id(job) not in job_index:
            job_index[id(job)] = len(jobs)
            jobs.append(job)

    for entry in kernel._queue._heap:
        payload = entry[3]
        if isinstance(payload, (CriticalTimeExpiry, Milestone)):
            _index_job(payload.job)
    locks = kernel._locks
    for owner in locks._owner.values():
        _index_job(owner)
    for waiters in locks._waiters.values():
        for waiter in waiters:
            _index_job(waiter)
    for holder in locks._held:
        _index_job(holder)
    for accessor in kernel._objects._open:
        _index_job(accessor)

    state: dict[str, Any] = {
        "clock": kernel._clock,
        "events_handled": kernel._events_handled,
        "last_ckpt_event": kernel._last_ckpt_event,
        "last_ckpt_clock": kernel._last_ckpt_clock,
        "next_jid": list(kernel._next_jid),
        "jobs": [
            _encode_job(job, kernel._task_index[id(job.task)])
            for job in jobs
        ],
        "live": [job_index[id(job)] for job in kernel._live],
        "running": (None if kernel._running is None
                    else job_index[id(kernel._running)]),
        "running_since": kernel._running_since,
        "kernel_free_at": kernel._kernel_free_at,
        "queue": {
            "sequence": kernel._queue._sequence,
            "heap": [
                [entry[0], int(entry[1]), entry[2],
                 _encode_event(entry[3], job_index)]
                for entry in kernel._queue._heap
            ],
        },
        "locks": {
            "owner": [[obj, job_index[id(job)]]
                      for obj, job in locks._owner.items()],
            "waiters": [[obj, [job_index[id(w)] for w in waiters]]
                        for obj, waiters in locks._waiters.items()
                        if waiters],
            "held": [[job_index[id(job)], list(held)]
                     for job, held in locks._held.items() if held],
            "acquisitions": locks.acquisitions,
            "contentions": locks.contentions,
            "version": locks.version,
        },
        "objects": {
            "states": [[obj, {"write_version": st.write_version,
                              "any_version": st.any_version,
                              "commits": st.commits}]
                       for obj, st in kernel._objects._objects.items()],
            "open": [[job_index[id(job)],
                      {"obj": acc.obj, "kind": acc.kind.value,
                       "write_version_seen": acc.write_version_seen,
                       "any_version_seen": acc.any_version_seen,
                       "retries": acc.retries}]
                     for job, acc in kernel._objects._open.items()],
            "total_retries": kernel._objects.total_retries,
        },
        "result": {
            "records": [_encode_record(r) for r in kernel._result.records],
            "scheduler_invocations": kernel._result.scheduler_invocations,
            "scheduler_overhead_time":
                kernel._result.scheduler_overhead_time,
            "idle_time": kernel._result.idle_time,
            "lock_mechanism_time": kernel._result.lock_mechanism_time,
            "lockfree_mechanism_time":
                kernel._result.lockfree_mechanism_time,
            "lock_access_commits": kernel._result.lock_access_commits,
            "lockfree_access_commits":
                kernel._result.lockfree_access_commits,
            "lockfree_attempts": kernel._result.lockfree_attempts,
        },
    }

    report = kernel._report
    if report is not None:
        state["report"] = {
            "injected_arrivals": report.injected_arrivals,
            "injected_overruns": report.injected_overruns,
            "forced_retries": report.forced_retries,
            "jittered_charges": report.jittered_charges,
            "timer_faults": report.timer_faults,
            "shed_jobs": report.shed_jobs,
            "deferred_jobs": report.deferred_jobs,
            "deferred_delay_total": report.deferred_delay_total,
            "retry_aborts": report.retry_aborts,
            "backoff_time": report.backoff_time,
            "violations": [v.to_dict() for v in report.violations],
        }
    injector = kernel._injector
    if injector is not None:
        version, internal, gauss = injector._jitter_rng.getstate()
        state["injector"] = {
            "rng": [version, list(internal), gauss],
            "overruns_applied": sorted(
                list(key) for key in injector._overruns_applied),
            "retry_budgets": list(injector._retry_budgets),
            "timer_faults_fired": sorted(
                list(key) for key in injector._timer_faults_fired),
        }
    if kernel._admission is not None:
        state["admission"] = [
            {"admitted": list(counter._admitted), "left": counter._left}
            for counter in kernel._admission._counters
        ]
    if kernel._monitors is not None:
        state["monitors"] = {
            "last_clock": kernel._monitors._last_clock,
            "flagged": sorted(list(key)
                              for key in kernel._monitors._flagged),
        }
    if kernel.tracer.enabled:
        state["trace"] = [event.to_dict() for event in kernel.tracer.events]

    return KernelCheckpoint.wrap(state)


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------

def restore_kernel(config: "SimulationConfig",
                   checkpoint: KernelCheckpoint) -> "Kernel":
    """Rebuild a runnable kernel from ``checkpoint``.

    ``config`` must be *equivalent* to the snapshotted run's config (same
    tasks, traces, sync, costs, fault plan, ...) — normally it is rebuilt
    deterministically from the same :class:`~repro.scenario.Scenario`.
    The checkpoint is verified first; a torn or tampered one raises
    :class:`CheckpointError` before any kernel state is touched.
    """
    from repro.sim.kernel import Kernel

    checkpoint.verify()
    state = checkpoint.state
    kernel = Kernel(config)

    tasks = list(config.tasks)
    jobs = [_decode_job(doc, tasks) for doc in state["jobs"]]

    kernel._clock = state["clock"]
    kernel._events_handled = state["events_handled"]
    kernel._last_ckpt_event = state["last_ckpt_event"]
    kernel._last_ckpt_clock = state["last_ckpt_clock"]
    kernel._next_jid = list(state["next_jid"])
    kernel._live = [jobs[i] for i in state["live"]]
    kernel._running = (None if state["running"] is None
                       else jobs[state["running"]])
    kernel._running_since = state["running_since"]
    kernel._kernel_free_at = state["kernel_free_at"]

    queue = EventQueue()
    queue._sequence = state["queue"]["sequence"]
    queue._heap = [
        (time, priority, sequence, _decode_event(payload, jobs))
        for time, priority, sequence, payload in state["queue"]["heap"]
    ]
    kernel._queue = queue

    locks = kernel._locks
    locks._owner = {obj: jobs[i] for obj, i in state["locks"]["owner"]}
    locks._waiters = {obj: [jobs[i] for i in waiting]
                      for obj, waiting in state["locks"]["waiters"]}
    locks._held = {jobs[i]: list(held)
                   for i, held in state["locks"]["held"]}
    locks.acquisitions = state["locks"]["acquisitions"]
    locks.contentions = state["locks"]["contentions"]
    locks.version = state["locks"]["version"]

    table = kernel._objects
    table._objects = {
        obj: _ObjectState(write_version=doc["write_version"],
                          any_version=doc["any_version"],
                          commits=doc["commits"])
        for obj, doc in state["objects"]["states"]
    }
    table._open = {
        jobs[i]: _OpenAccess(
            obj=doc["obj"], kind=AccessKind(doc["kind"]),
            write_version_seen=doc["write_version_seen"],
            any_version_seen=doc["any_version_seen"],
            retries=doc["retries"])
        for i, doc in state["objects"]["open"]
    }
    table.total_retries = state["objects"]["total_retries"]

    result = kernel._result
    result.records = [_decode_record(doc)
                      for doc in state["result"]["records"]]
    result.scheduler_invocations = state["result"]["scheduler_invocations"]
    result.scheduler_overhead_time = \
        state["result"]["scheduler_overhead_time"]
    result.idle_time = state["result"]["idle_time"]
    result.lock_mechanism_time = state["result"]["lock_mechanism_time"]
    result.lockfree_mechanism_time = \
        state["result"]["lockfree_mechanism_time"]
    result.lock_access_commits = state["result"]["lock_access_commits"]
    result.lockfree_access_commits = \
        state["result"]["lockfree_access_commits"]
    result.lockfree_attempts = state["result"]["lockfree_attempts"]

    report = kernel._report
    if "report" in state:
        if report is None:
            raise CheckpointError(
                "checkpoint carries a degradation report but the config "
                "enables no fault/degradation layer")
        doc = state["report"]
        report.injected_arrivals = doc["injected_arrivals"]
        report.injected_overruns = doc["injected_overruns"]
        report.forced_retries = doc["forced_retries"]
        report.jittered_charges = doc["jittered_charges"]
        report.timer_faults = doc["timer_faults"]
        report.shed_jobs = doc["shed_jobs"]
        report.deferred_jobs = doc["deferred_jobs"]
        report.deferred_delay_total = doc["deferred_delay_total"]
        report.retry_aborts = doc["retry_aborts"]
        report.backoff_time = doc["backoff_time"]
        report.violations = [InvariantViolation(**v)
                             for v in doc["violations"]]
    elif report is not None:
        raise CheckpointError(
            "config enables the fault/degradation layer but the "
            "checkpoint carries no degradation report")

    if "injector" in state:
        injector = kernel._injector
        if injector is None:
            raise CheckpointError(
                "checkpoint carries injector state but the config has "
                "no active fault plan")
        doc = state["injector"]
        version, internal, gauss = doc["rng"]
        injector._jitter_rng.setstate((version, tuple(internal), gauss))
        injector._overruns_applied = {tuple(key)
                                      for key in doc["overruns_applied"]}
        injector._retry_budgets = list(doc["retry_budgets"])
        injector._timer_faults_fired = {
            tuple(key) for key in doc["timer_faults_fired"]}
    if "admission" in state:
        guard = kernel._admission
        if guard is None:
            raise CheckpointError(
                "checkpoint carries admission state but the config has "
                "no admission policy")
        if len(state["admission"]) != len(guard._counters):
            raise CheckpointError("admission counter count mismatch")
        for counter, doc in zip(guard._counters, state["admission"]):
            counter._admitted = list(doc["admitted"])
            counter._left = doc["left"]
    if "monitors" in state:
        monitors = kernel._monitors
        if monitors is None:
            raise CheckpointError(
                "checkpoint carries monitor state but the config does "
                "not enable monitors")
        monitors._last_clock = state["monitors"]["last_clock"]
        monitors._flagged = {tuple(key)
                             for key in state["monitors"]["flagged"]}
    if "trace" in state and kernel.tracer.enabled:
        kernel.tracer.events = [
            TraceEvent(time=doc["time"], kind=TraceKind(doc["kind"]),
                       job=doc["job"], detail=doc["detail"])
            for doc in state["trace"]
        ]

    # A restored kernel must never replay a pass memoized before the
    # snapshot: serials changed and Job identities are new objects.
    config.policy.reset_caches()
    kernel._restored = True
    return kernel
