"""The simulated RTOS kernel.

Drives the discrete-event simulation: admits UAM job arrivals, invokes the
scheduler policy on every scheduling event (charging its cost model on the
simulated CPU), dispatches and preempts jobs, mediates lock-based and
lock-free object sharing, and enforces the paper's abortion model
(Section 3.5) through per-job critical-time timers.

Scheduling events, per the paper (Section 3): job arrivals, job
departures, lock and unlock requests, and critical-time expirations.
Under lock-free sharing the lock events do not exist — which is exactly
the cost advantage the paper quantifies.

Execution model
---------------
The kernel owns a single simulated CPU.  At every scheduling event it runs
the policy's ``schedule`` pass (cost charged = ``policy.cost_model(n)``),
walks the returned eligibility order to the first dispatchable job
(attempting lock acquisitions along the way; a failed acquisition blocks
that job and charges another activation), and dispatches it after the
charged overhead plus a context switch when the job changes.  The
dispatched job's next segment boundary is predicted exactly and queued as
a Milestone; any intervening event re-enters the scheduler and supersedes
the milestone through the job's dispatch token.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.faults.degradation import (
    AdmissionGuard,
    AdmissionPolicy,
    Decision,
    RetryGuard,
)
from repro.faults.injector import FaultInjector
from repro.faults.monitors import MonitorSuite
from repro.faults.plan import FaultPlan
from repro.faults.report import DegradationReport
from repro.obs.observer import NULL_OBSERVER, NullObserver
from repro.sim.checkpoint import (
    CheckpointPolicy,
    KernelCheckpoint,
    restore_kernel,
    snapshot_kernel,
)
from repro.sim.engine import EventQueue
from repro.sim.events import (
    CriticalTimeExpiry,
    EventPriority,
    JobArrival,
    Milestone,
)
from repro.sim.locks import LockManager
from repro.sim.metrics import SimulationResult, record_of
from repro.sim.objects import LockFreeObjectTable, RetryPolicy
from repro.sim.overheads import KernelCosts
from repro.sim.tracing import TraceKind, Tracer
from repro.tasks.job import Job, JobState
from repro.tasks.segments import ObjectAccess, ReleaseLock
from repro.tasks.task import TaskSpec

if TYPE_CHECKING:  # avoid an import cycle with repro.core
    from repro.core.interface import SchedulerPolicy


class SyncMode(enum.Enum):
    """How shared-object access segments are mediated."""

    #: Ideal objects: zero mechanism cost, no blocking, no retries
    #: (Section 6.1's "ideal RUA" baseline).
    NONE = "none"
    LOCK_BASED = "lock_based"
    LOCK_FREE = "lock_free"


@dataclass
class SimulationConfig:
    """Everything a run needs.  ``arrival_traces[i]`` lists the absolute
    release times of ``tasks[i]``'s jobs (UAM-conformant traces come from
    :mod:`repro.arrivals.generators`).

    The fault/degradation fields are all optional and default off:

    * ``fault_plan`` — deterministic perturbations to inject
      (:mod:`repro.faults.plan`);
    * ``admission`` — UAM admission guarding of out-of-spec arrivals
      (shed or defer instead of overloading downstream analysis);
    * ``retry_guard`` — bounded lock-free retries with backoff, aborting
      through the Section 3.5 abortion model when exhausted;
    * ``monitors`` — online invariant monitors (Theorem 2 retry bound,
      clock monotonicity, lock state, abort point) recording violations
      into the result's degradation report.

    ``observer`` attaches a recording :class:`repro.obs.Observer`; when
    None (the default) the shared no-op singleton is used and the
    instrumented hot paths cost one ``enabled`` attribute test each.
    """

    tasks: Sequence[TaskSpec]
    arrival_traces: Sequence[Sequence[int]]
    policy: "SchedulerPolicy"
    horizon: int
    sync: SyncMode = SyncMode.LOCK_FREE
    costs: KernelCosts = field(default_factory=KernelCosts)
    retry_policy: RetryPolicy = RetryPolicy.ON_CONFLICT
    allow_nesting: bool = False
    trace: bool = False
    # --- fault injection & graceful degradation (all optional) ---------
    fault_plan: FaultPlan | None = None
    admission: AdmissionPolicy | None = None
    retry_guard: RetryGuard | None = None
    monitors: bool = False
    # --- observability (optional; see repro.obs) -----------------------
    observer: NullObserver | None = None
    # --- crash recovery (optional; see repro.sim.checkpoint) ------------
    #: When set, the kernel snapshots itself mid-run at the policy's
    #: cadence; each :class:`KernelCheckpoint` goes to ``checkpoint_sink``
    #: (a callable), or accumulates on ``Kernel.checkpoints`` when no
    #: sink is given.  Checkpointing never perturbs the simulation.
    checkpoints: CheckpointPolicy | None = None
    checkpoint_sink: "object | None" = None

    def __post_init__(self) -> None:
        if len(self.tasks) != len(self.arrival_traces):
            raise ValueError("one arrival trace per task is required")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        for task_index, trace in enumerate(self.arrival_traces):
            previous = None
            beyond = 0
            for release in trace:
                if release < 0:
                    raise ValueError(
                        f"arrival trace of task {task_index} has a "
                        f"negative release time {release}"
                    )
                if previous is not None and release < previous:
                    raise ValueError(
                        f"arrival trace of task {task_index} is not sorted"
                    )
                previous = release
                if release >= self.horizon:
                    beyond += 1
            if beyond:
                warnings.warn(
                    f"arrival trace of task {task_index} has {beyond} "
                    f"arrival(s) at or beyond the horizon "
                    f"{self.horizon}; they will never be released",
                    RuntimeWarning,
                    stacklevel=2,
                )


class Kernel:
    """One simulation run.  Create, :meth:`run`, inspect the result."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.tracer = Tracer(enabled=config.trace)
        self.obs = (config.observer if config.observer is not None
                    else NULL_OBSERVER)
        # The policy shares the kernel's sink (scheduler-internal hooks).
        config.policy.obs = self.obs
        # Lazy per-task Theorem 2 bounds for the live retry comparison
        # (only computed — per task, once — when a retry is observed).
        self._retry_bounds: dict[int, int | None] = {}
        self._task_index = {
            id(task): index for index, task in enumerate(config.tasks)
        }
        self._queue = EventQueue()
        self._clock = 0
        #: The live set, maintained incrementally: jobs append on arrival
        #: and are removed at their completion/abort transition, so every
        #: scheduling pass reads it as-is instead of re-filtering
        #: (arrival order is preserved, exactly as the filter did).
        self._live: list[Job] = []
        self._running: Job | None = None
        self._running_since = 0
        self._kernel_free_at = 0
        self._locks = LockManager(allow_nesting=config.allow_nesting)
        self._objects = LockFreeObjectTable(policy=config.retry_policy)
        self._result = SimulationResult(horizon=config.horizon)
        self._finished = False
        # --- fault injection / graceful degradation -------------------
        degradation_active = (
            (config.fault_plan is not None and not config.fault_plan.empty)
            or config.admission is not None
            or config.retry_guard is not None
            or config.monitors
        )
        self._report = DegradationReport() if degradation_active else None
        self._injector = (
            FaultInjector(config.fault_plan, self._report)
            if config.fault_plan is not None and not config.fault_plan.empty
            else None
        )
        self._admission = (
            AdmissionGuard(config.tasks, config.admission, self._report)
            if config.admission is not None else None
        )
        self._monitors = (
            MonitorSuite(config.tasks, self._report, observer=self.obs)
            if config.monitors else None
        )
        # jid counters continue past each declared trace so injected
        # burst arrivals get unique job names.
        self._next_jid = [len(t) for t in config.arrival_traces]
        # --- crash recovery -------------------------------------------
        #: Snapshots collected when checkpointing is on but no sink is
        #: configured (tests and in-process consumers read this).
        self.checkpoints: list[KernelCheckpoint] = []
        self._events_handled = 0
        self._last_ckpt_event = 0
        self._last_ckpt_clock = 0
        #: True on a kernel rebuilt by :meth:`restore`: ``run`` must not
        #: re-prime arrivals (the queue already holds the future).
        self._restored = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the simulation to the horizon and return the result."""
        # Re-entry is rejected before any side effect of this call is
        # observable (the queue, clock and result are untouched).
        if self._finished:
            raise RuntimeError(
                "a Kernel instance runs exactly once (this instance "
                f"already ran with horizon={self.config.horizon})"
            )
        self._finished = True
        if not self._restored:
            self._prime_arrivals()
        ckpt_policy = self.config.checkpoints
        while self._queue:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > self.config.horizon:
                break
            time, event = self._queue.pop()
            if self._monitors is not None:
                self._monitors.note_clock(time)
            self._advance_running_to(time)
            self._clock = time
            self._handle(event)
            self._events_handled += 1
            if ckpt_policy is not None and \
                    self._checkpoint_due(ckpt_policy):
                self._emit_checkpoint()
        # The live set contains exactly the unfinished jobs — completed
        # and aborted jobs are removed at their transition (previously
        # this re-scanned a stale list that could still carry departed
        # entries between passes).
        self._result.unfinished = len(self._live)
        self._result.degradation = self._report
        if self.obs.enabled:
            self.obs.close_open_spans(self._clock)
            self._result.obs = self.obs.summary()
        return self._result

    # ------------------------------------------------------------------
    # Checkpoint / restore (crash recovery; see repro.sim.checkpoint)
    # ------------------------------------------------------------------

    def snapshot(self) -> KernelCheckpoint:
        """Capture the complete current simulation state as a versioned,
        digest-stamped, JSON-serializable checkpoint."""
        return snapshot_kernel(self)

    @classmethod
    def restore(cls, config: SimulationConfig,
                checkpoint: KernelCheckpoint) -> "Kernel":
        """Rebuild a runnable kernel from a checkpoint taken by
        :meth:`snapshot` under an equivalent ``config``.  The returned
        kernel's :meth:`run` finishes the simulation byte-identically to
        the uninterrupted run."""
        return restore_kernel(config, checkpoint)

    def _checkpoint_due(self, policy: CheckpointPolicy) -> bool:
        due = (policy.every_events is not None
               and self._events_handled - self._last_ckpt_event
               >= policy.every_events)
        if not due and policy.every_ns is not None:
            due = (self._clock - self._last_ckpt_clock
                   >= policy.every_ns)
        return due

    def _emit_checkpoint(self) -> None:
        # Markers move *before* snapshotting so they are captured inside
        # the checkpoint: a restored run keeps the original cadence.
        self._last_ckpt_event = self._events_handled
        self._last_ckpt_clock = self._clock
        checkpoint = self.snapshot()
        sink = self.config.checkpoint_sink
        if sink is None:
            self.checkpoints.append(checkpoint)
        else:
            sink(checkpoint)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _prime_arrivals(self) -> None:
        # Traces are validated (sorted, non-negative) by the config.
        for task_index, trace in enumerate(self.config.arrival_traces):
            for jid, release in enumerate(trace):
                if release >= self.config.horizon:
                    break
                self._queue.push(release, EventPriority.ARRIVAL,
                                 JobArrival(task_index=task_index, jid=jid))
        if self._injector is not None:
            for release, task_index in self._injector.burst_arrivals(
                    self.config.horizon):
                jid = self._next_jid[task_index]
                self._next_jid[task_index] += 1
                self._queue.push(release, EventPriority.ARRIVAL,
                                 JobArrival(task_index=task_index, jid=jid,
                                            injected=True))

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------

    def _handle(self, event) -> None:
        if isinstance(event, JobArrival):
            self._handle_arrival(event)
        elif isinstance(event, CriticalTimeExpiry):
            self._handle_expiry(event)
        elif isinstance(event, Milestone):
            self._handle_milestone(event)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown event {event!r}")

    def _handle_arrival(self, event: JobArrival) -> None:
        task = self.config.tasks[event.task_index]
        if self._admission is not None:
            decision, when = self._admission.decide(event.task_index,
                                                    self._clock)
            if decision is Decision.SHED:
                self.tracer.emit(self._clock, TraceKind.SHED,
                                 f"{task.name}#{event.jid}",
                                 detail="UAM max bound exceeded")
                self.obs.counter("kernel.shed")
                return
            if decision is Decision.DEFER:
                self.tracer.emit(self._clock, TraceKind.DEFER,
                                 f"{task.name}#{event.jid}",
                                 detail=f"until={when}")
                self.obs.counter("kernel.deferrals")
                self._queue.push(when, EventPriority.ARRIVAL,
                                 JobArrival(task_index=event.task_index,
                                            jid=event.jid,
                                            injected=event.injected,
                                            deferrals=event.deferrals + 1))
                return
        job = Job(task=task, jid=event.jid, release_time=self._clock)
        self._live.append(job)
        self._arm_critical_timer(job)
        self.tracer.emit(self._clock, TraceKind.ARRIVAL, job.name)
        if self.obs.enabled:
            self.obs.counter("kernel.arrivals")
            self.obs.instant("arrival", "job", task.name, self._clock,
                             {"job": job.name})
        self._reschedule()

    def _arm_critical_timer(self, job: Job) -> None:
        """Queue the job's abort timer, subject to timer faults."""
        when = job.critical_time_abs
        if self._injector is not None:
            drop, delay = self._injector.timer_disposition(job)
            if drop:
                self.tracer.emit(self._clock, TraceKind.FAULT, job.name,
                                 detail="critical-time timer dropped")
                return
            if delay:
                self.tracer.emit(self._clock, TraceKind.FAULT, job.name,
                                 detail=f"critical-time timer +{delay}")
                when += delay
        self._queue.push(when, EventPriority.TIMER,
                         CriticalTimeExpiry(job=job))

    def _handle_expiry(self, event: CriticalTimeExpiry) -> None:
        job = event.job
        if not job.is_live:
            return  # job already departed; stale timer
        self._abort(job)
        extra = self._cost("timer_overhead") + job.task.abort_handler_time
        self._reschedule(extra_overhead=extra)

    def _handle_milestone(self, event: Milestone) -> None:
        job = event.job
        if job is not self._running or event.token != job.dispatch_token:
            return  # superseded by a preemption/retry/abort
        if job.segment_remaining() != 0:  # pragma: no cover - defensive
            raise RuntimeError(
                f"milestone for {job.name} fired with work remaining"
            )
        self._finish_current_segment(job)

    # ------------------------------------------------------------------
    # Segment lifecycle
    # ------------------------------------------------------------------

    def _finish_current_segment(self, job: Job) -> None:
        """The running job completed its current segment at the clock."""
        segment = job.current_segment
        sync = self.config.sync
        if isinstance(segment, ReleaseLock):
            self._release_segment(job)
            return
        if isinstance(segment, ObjectAccess) and sync is SyncMode.LOCK_BASED:
            self._result.lock_access_commits += 1
            if not segment.release_at_end:
                # Nested critical section: keep the lock across later
                # segments; no unlock request, no scheduling event.
                job.finish_segment()
                self._continue_running(job)
                return
            # End of critical section: unlock request — a scheduling event.
            self._release_lock(job, segment.obj)
            job.finish_segment()
            cost = self._cost("lock_overhead")
            self._result.lock_mechanism_time += cost
            self._reschedule(extra_overhead=cost, lock_event=True)
            return
        if isinstance(segment, ObjectAccess) and sync is SyncMode.LOCK_FREE:
            self._objects.commit(job)
            self._result.lockfree_access_commits += 1
            self._result.lockfree_attempts += 1
            job.finish_segment()
            self.tracer.emit(self._clock, TraceKind.ACCESS_COMMIT, job.name,
                             detail=str(segment.obj))
            self._continue_running(job)
            return
        # Compute segment, or an access under SyncMode.NONE.
        job.finish_segment()
        self._continue_running(job)

    def _release_lock(self, job: Job, obj) -> None:
        """Release one lock, waking its waiters."""
        woken = self._locks.release(job, obj)
        job.held_locks.discard(obj)
        if job.holds_lock == obj:
            job.holds_lock = None
        for waiter in woken:
            waiter.state = JobState.READY
            waiter.blocked_on = None
            self.tracer.emit(self._clock, TraceKind.UNBLOCK, waiter.name)
            self.obs.close_span(("block", waiter.name), self._clock)
        self.tracer.emit(self._clock, TraceKind.LOCK_RELEASE, job.name,
                         detail=str(obj))

    def _release_segment(self, job: Job) -> None:
        """Process a :class:`ReleaseLock` segment reached by the running
        job.  An unlock request (scheduling event) under lock-based
        sharing; a no-op otherwise."""
        segment = job.current_segment
        if self.config.sync is SyncMode.LOCK_BASED:
            self._release_lock(job, segment.obj)
            job.finish_segment()
            cost = self._cost("lock_overhead")
            self._result.lock_mechanism_time += cost
            self._reschedule(extra_overhead=cost, lock_event=True)
            return
        job.finish_segment()
        self._continue_running(job)

    def _continue_running(self, job: Job) -> None:
        """Advance the running job into its next segment (or completion)
        without an intervening scheduling event, unless the segment
        boundary itself is one (completion, lock request, unlock)."""
        if job.current_segment is None:
            self._complete(job)
            return
        segment = job.current_segment
        sync = self.config.sync
        if isinstance(segment, ReleaseLock):
            self._release_segment(job)
            return
        if isinstance(segment, ObjectAccess) and sync is SyncMode.LOCK_BASED:
            # Lock request: a scheduling event.  The job stops here; the
            # acquisition is attempted during the dispatch walk.
            self.tracer.emit(self._clock, TraceKind.ACCESS_BEGIN, job.name,
                             detail=str(segment.obj))
            cost = self._cost("lock_overhead")
            self._result.lock_mechanism_time += cost
            self._reschedule(extra_overhead=cost, lock_event=True)
            return
        # Compute segment, SyncMode.NONE access, or lock-free access: keep
        # running without a scheduler pass.
        delay = self._enter_segment(job, trace=True)
        self._running_since = self._clock + delay
        self._push_milestone(job)

    def _enter_segment(self, job: Job, trace: bool) -> int:
        """Prepare the job's current segment for execution; return extra
        mechanism delay (CAS attempt cost, retry backoff) to charge
        before work starts.

        Handles the lock-free begin/retry protocol.  Lock-based entry is
        handled in the dispatch walk (acquisition) instead.
        """
        segment = job.current_segment
        if (self._injector is not None and segment is not None
                and job.segment_progress == 0 and job.segment_extra == 0):
            extra = self._injector.overrun_for(job)
            if extra:
                job.segment_extra = extra
                self.tracer.emit(self._clock, TraceKind.FAULT, job.name,
                                 detail=f"segment overrun +{extra}")
        if not isinstance(segment, ObjectAccess):
            return 0
        sync = self.config.sync
        if sync is not SyncMode.LOCK_FREE:
            return 0
        if self._objects.open_access_of(job) is None:
            self._objects.begin(job, segment)
            if trace:
                self.tracer.emit(self._clock, TraceKind.ACCESS_BEGIN,
                                 job.name, detail=str(segment.obj))
            cost = self._cost("cas_overhead")
            self._result.lockfree_mechanism_time += cost
            return cost
        if self._objects.must_retry(job):
            wasted = job.restart_access()
            self._objects.record_retry(job)
            self._result.lockfree_attempts += 1
            self.tracer.emit(self._clock, TraceKind.RETRY, job.name,
                             detail=f"obj={segment.obj} wasted={wasted}")
            if self._monitors is not None:
                self._monitors.note_retry(self._clock, job)
            if self.obs.enabled:
                self._note_retry_obs(job, segment.obj, wasted)
            cost = self._cost("cas_overhead")
            self._result.lockfree_mechanism_time += cost + wasted
            if self.config.retry_guard is not None:
                backoff = self.config.retry_guard.backoff(
                    self._objects.retries_of(job))
                if backoff:
                    self._report.backoff_time += backoff
                    cost += backoff
            return cost
        return 0

    def _note_retry_obs(self, job: Job, obj, wasted: int) -> None:
        """Per-object retry counter track, wasted-work histogram, and
        the live comparison of this job's retry count against its
        Theorem 2 bound (``theorem2.exceeded`` counts violations)."""
        obs = self.obs
        obs.tick_counter(f"retries.{obj}", self._clock)
        obs.histogram("retry.wasted_ns", wasted)
        obs.instant("retry", "lockfree", job.task.name, self._clock,
                    {"job": job.name, "obj": str(obj), "wasted": wasted})
        retries = self._objects.retries_of(job)
        bound = self._retry_bound_of(job)
        if bound is not None and retries > bound:
            obs.counter("theorem2.exceeded")
            obs.instant("retry_bound_exceeded", "lockfree", job.task.name,
                        self._clock, {"job": job.name, "retries": retries,
                                      "bound": bound})

    def _retry_bound_of(self, job: Job) -> int | None:
        """This task's Theorem 2 retry bound (lazily computed, cached;
        None when the bound does not apply, e.g. injected tasks)."""
        index = self._task_index.get(id(job.task))
        if index is None:
            return None
        if index not in self._retry_bounds:
            from repro.analysis.retry_bound import retry_bound_for_taskset

            try:
                self._retry_bounds[index] = retry_bound_for_taskset(
                    list(self.config.tasks), index)
            except (ValueError, ZeroDivisionError):
                self._retry_bounds[index] = None
        return self._retry_bounds[index]

    # ------------------------------------------------------------------
    # Scheduling and dispatch
    # ------------------------------------------------------------------

    def _reschedule(self, extra_overhead: int = 0,
                    lock_event: bool = False) -> None:
        """Run a scheduler pass and dispatch its choice.

        ``extra_overhead`` is kernel-busy time to charge in addition to
        the policy's own invocation cost (timer service, abort handlers,
        lock bookkeeping).  ``lock_event`` attributes the pass to the
        lock-based sharing mechanism for Figure 8 accounting.
        """
        now = self._clock
        cost = extra_overhead
        passes = 0
        chosen: Job | None = None
        n = 0
        obs = self.obs
        policy = self.config.policy
        cost_model = policy.cost_model
        result = self._result
        lock_view = self._lock_view()
        wall_start = obs.clock() if obs.enabled else 0
        while True:
            # The live set is maintained incrementally (arrival append,
            # completion/abort removal), so a pass starts without the
            # former re-filtering scan.
            live = self._live
            n = len(live)
            cost += cost_model.cost(n)
            result.scheduler_invocations += 1
            passes += 1
            order = policy.schedule(live, lock_view, now)
            # Deadlock resolution (Section 3.3): the policy may request
            # aborts; each abort changes the dependency structure, so the
            # pass reruns (with its cost charged) until no victim remains.
            victims = policy.consume_abort_requests()
            if victims:
                for victim in victims:
                    if victim.is_live:
                        self._abort(victim)
                        cost += (self._cost("timer_overhead")
                                 + victim.task.abort_handler_time)
                continue
            chosen, blocked_any, walk_cost = self._walk(order, n, now)
            cost += walk_cost
            # Bounded-retry graceful degradation: a job whose lock-free
            # access would retry past the guard's budget is aborted via
            # the Section 3.5 abortion model (handler charged, zero
            # utility) instead of spinning, and the pass reruns.
            if (chosen is not None
                    and self.config.retry_guard is not None
                    and self.config.sync is SyncMode.LOCK_FREE
                    and self._objects.open_access_of(chosen) is not None
                    and self._objects.must_retry(chosen)
                    and self.config.retry_guard.exhausted(
                        self._objects.retries_of(chosen))):
                self.tracer.emit(now, TraceKind.FAULT, chosen.name,
                                 detail="retry budget exhausted: aborting")
                self._abort(chosen)
                cost += (self._cost("timer_overhead")
                         + chosen.task.abort_handler_time)
                self._report.retry_aborts += 1
                continue
            # A blocking during the walk can have closed a dependency
            # cycle (with nesting): if nothing is dispatchable, rerun the
            # pass so detection sees the new blocked_on edges.  Bounded:
            # each rerun either aborts a victim or blocks new jobs.
            if (chosen is None and blocked_any
                    and self.config.sync is SyncMode.LOCK_BASED
                    and passes <= len(live) + 1):
                continue
            break
        if (self._monitors is not None
                and self.config.sync is SyncMode.LOCK_BASED):
            self._monitors.audit_locks(
                now, list(self._live), self._locks)
        self.tracer.emit(now, TraceKind.SCHED_PASS, "",
                         detail=f"n={n} cost={cost}")
        if obs.enabled:
            # Wall ns are summary-only (never exported into the trace);
            # the span carries the deterministic simulated cost.
            obs.decision(n, cost, obs.clock() - wall_start)
            obs.span("sched.decision", "sched", "kernel", now, cost,
                     {"n": n, "passes": passes,
                      "chosen": chosen.name if chosen is not None else ""})
            obs.histogram("sched.ready_queue", n)
        self._result.scheduler_overhead_time += cost
        if lock_event:
            self._result.lock_mechanism_time += (
                self.config.policy.cost_model.cost(n)
            )
        self._dispatch(chosen, cost)

    def _walk(self, order: list[Job], n: int,
              now: int) -> tuple[Job | None, bool, int]:
        """Walk the policy's eligibility order to the first dispatchable
        job, attempting lock acquisitions along the way.  Returns
        (chosen, whether any job newly blocked, extra cost charged)."""
        blocked_any = False
        extra_cost = 0
        for job in order:
            if not job.is_live or job.state is JobState.BLOCKED:
                continue
            if self._needs_lock(job):
                obj = job.current_segment.obj
                if self._locks.try_acquire(job, obj):
                    job.holds_lock = obj
                    job.held_locks.add(obj)
                    self.tracer.emit(now, TraceKind.LOCK_ACQUIRE, job.name,
                                     detail=str(obj))
                    return job, blocked_any, extra_cost
                job.state = JobState.BLOCKED
                job.blocked_on = obj
                job.blockings += 1
                blocked_any = True
                self.tracer.emit(now, TraceKind.BLOCK, job.name,
                                 detail=str(obj))
                if self.obs.enabled:
                    self.obs.counter("kernel.blockings")
                    self.obs.open_span(("block", job.name),
                                       f"blocked:{obj}", "lock",
                                       job.task.name, now)
                # The failed acquisition re-activates the scheduler.
                activation = self.config.policy.cost_model.cost(n)
                extra_cost += activation
                self._result.lock_mechanism_time += activation
                self._result.scheduler_invocations += 1
                continue
            return job, blocked_any, extra_cost
        return None, blocked_any, extra_cost

    def _needs_lock(self, job: Job) -> bool:
        """True when the job sits at the entry of a lock-based access it
        has not acquired yet."""
        if self.config.sync is not SyncMode.LOCK_BASED:
            return False
        segment = job.current_segment
        return (
            isinstance(segment, ObjectAccess)
            and segment.obj not in self._locks.held_by(job)
        )

    def _dispatch(self, chosen: Job | None, cost: int) -> None:
        now = self._clock
        previous = self._running
        switching = chosen is not previous
        if previous is not None and switching and previous.is_live:
            previous.state = JobState.READY
            previous.preemptions += 1
            previous.dispatch_token += 1
            if (self.config.sync is SyncMode.LOCK_FREE
                    and previous.in_access):
                self._objects.note_preemption(previous)
                # Adversarial invalidation: the fault plan may spend one
                # spurious-retry budget unit to poison the preempted
                # access, forcing a retry at re-dispatch.
                if (self._injector is not None
                        and self._injector.spurious_invalidate(
                            previous, self._objects)):
                    self.tracer.emit(now, TraceKind.FAULT, previous.name,
                                     detail="spurious access invalidation")
            self.tracer.emit(now, TraceKind.PREEMPT, previous.name)
            if self.obs.enabled:
                self.obs.counter("kernel.preemptions")
                self.obs.instant("preempt", "job", previous.task.name, now,
                                 {"job": previous.name})
        # Kernel work is serialized: overhead charged by an earlier pass
        # at this instant (abort handlers, timer service) delays this one.
        busy_from = max(now, self._kernel_free_at)
        if chosen is None:
            self._running = None
            self._kernel_free_at = busy_from + cost
            self.tracer.emit(now, TraceKind.IDLE, "")
            return
        start = busy_from + cost
        if switching:
            start += self._cost("context_switch")
        self._kernel_free_at = start
        entry_delay = self._enter_segment(chosen, trace=switching)
        chosen.state = JobState.RUNNING
        chosen.dispatch_token += 1
        self._running = chosen
        self._running_since = start + entry_delay
        self.tracer.emit(now, TraceKind.DISPATCH, chosen.name,
                         detail=f"start={self._running_since}")
        self._push_milestone(chosen)

    def _push_milestone(self, job: Job) -> None:
        when = self._running_since + job.segment_remaining()
        self._queue.push(when, EventPriority.MILESTONE,
                         Milestone(job=job, token=job.dispatch_token))

    # ------------------------------------------------------------------
    # Job termination
    # ------------------------------------------------------------------

    def _complete(self, job: Job) -> None:
        job.state = JobState.COMPLETED
        self._live.remove(job)
        job.completion_time = self._clock
        job.accrued_utility = job.task.tuf.utility(job.sojourn_time())
        self._result.records.append(record_of(job))
        self.tracer.emit(self._clock, TraceKind.COMPLETE, job.name,
                         detail=f"utility={job.accrued_utility:.3f}")
        if self.obs.enabled:
            self.obs.counter("kernel.completions")
            self.obs.histogram("job.sojourn_ns", job.sojourn_time())
            self.obs.histogram("job.retries", job.retries)
            self.obs.histogram("job.utility", job.accrued_utility)
            self.obs.instant("complete", "job", job.task.name, self._clock,
                             {"job": job.name,
                              "utility": round(job.accrued_utility, 6)})
        if job is self._running:
            self._running = None
        # Departure is a scheduling event.
        self._reschedule()

    def _abort(self, job: Job) -> None:
        """Critical-time expiry (Section 3.5): raise the abort exception,
        run the handler, roll back held resources, depart with zero
        utility."""
        job.state = JobState.ABORTED
        self._live.remove(job)
        job.accrued_utility = 0.0
        if self.config.sync is SyncMode.LOCK_BASED:
            woken = self._locks.release_all(job)
            job.holds_lock = None
            job.held_locks.clear()
            for waiter in woken:
                waiter.state = JobState.READY
                waiter.blocked_on = None
                self.tracer.emit(self._clock, TraceKind.UNBLOCK, waiter.name)
        elif self.config.sync is SyncMode.LOCK_FREE:
            self._objects.abandon(job)
        if job is self._running:
            self._running = None
        self._result.records.append(record_of(job))
        self.tracer.emit(self._clock, TraceKind.ABORT, job.name)
        if self.obs.enabled:
            self.obs.close_span(("block", job.name), self._clock)
            self.obs.counter("kernel.aborts")
            self.obs.histogram("job.retries", job.retries)
            self.obs.instant("abort", "job", job.task.name, self._clock,
                             {"job": job.name})

    # ------------------------------------------------------------------
    # Execution accounting
    # ------------------------------------------------------------------

    def _advance_running_to(self, time: int) -> None:
        job = self._running
        if job is None:
            return
        if time <= self._running_since:
            return
        amount = min(time - self._running_since, job.segment_remaining())
        if amount > 0:
            job.advance(amount)
            if self._monitors is not None:
                self._monitors.note_execution(
                    job, self._running_since, self._running_since + amount)
            if self.obs.enabled:
                self.obs.span("exec", "cpu", job.task.name,
                              self._running_since, amount,
                              {"job": job.name,
                               "segment": job.segment_index})
        self._running_since = time

    def _cost(self, name: str) -> int:
        """One fixed kernel cost charge, fault-jittered when a plan with
        cost jitter is active."""
        base = getattr(self.config.costs, name)
        if self._injector is not None:
            return self._injector.cost(name, base)
        return base

    def _lock_view(self) -> LockManager | None:
        if self.config.sync is SyncMode.LOCK_BASED:
            return self._locks
        return None
