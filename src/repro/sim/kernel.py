"""The simulated RTOS kernel.

Drives the discrete-event simulation: admits UAM job arrivals, invokes the
scheduler policy on every scheduling event (charging its cost model on the
simulated CPU), dispatches and preempts jobs, mediates lock-based and
lock-free object sharing, and enforces the paper's abortion model
(Section 3.5) through per-job critical-time timers.

Scheduling events, per the paper (Section 3): job arrivals, job
departures, lock and unlock requests, and critical-time expirations.
Under lock-free sharing the lock events do not exist — which is exactly
the cost advantage the paper quantifies.

Execution model
---------------
The kernel owns a single simulated CPU.  At every scheduling event it runs
the policy's ``schedule`` pass (cost charged = ``policy.cost_model(n)``),
walks the returned eligibility order to the first dispatchable job
(attempting lock acquisitions along the way; a failed acquisition blocks
that job and charges another activation), and dispatches it after the
charged overhead plus a context switch when the job changes.  The
dispatched job's next segment boundary is predicted exactly and queued as
a Milestone; any intervening event re-enters the scheduler and supersedes
the milestone through the job's dispatch token.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.sim.engine import EventQueue
from repro.sim.events import (
    CriticalTimeExpiry,
    EventPriority,
    JobArrival,
    Milestone,
)
from repro.sim.locks import LockManager
from repro.sim.metrics import SimulationResult, record_of
from repro.sim.objects import LockFreeObjectTable, RetryPolicy
from repro.sim.overheads import KernelCosts
from repro.sim.tracing import TraceKind, Tracer
from repro.tasks.job import Job, JobState
from repro.tasks.segments import ObjectAccess, ReleaseLock
from repro.tasks.task import TaskSpec

if TYPE_CHECKING:  # avoid an import cycle with repro.core
    from repro.core.interface import SchedulerPolicy


class SyncMode(enum.Enum):
    """How shared-object access segments are mediated."""

    #: Ideal objects: zero mechanism cost, no blocking, no retries
    #: (Section 6.1's "ideal RUA" baseline).
    NONE = "none"
    LOCK_BASED = "lock_based"
    LOCK_FREE = "lock_free"


@dataclass
class SimulationConfig:
    """Everything a run needs.  ``arrival_traces[i]`` lists the absolute
    release times of ``tasks[i]``'s jobs (UAM-conformant traces come from
    :mod:`repro.arrivals.generators`)."""

    tasks: Sequence[TaskSpec]
    arrival_traces: Sequence[Sequence[int]]
    policy: "SchedulerPolicy"
    horizon: int
    sync: SyncMode = SyncMode.LOCK_FREE
    costs: KernelCosts = field(default_factory=KernelCosts)
    retry_policy: RetryPolicy = RetryPolicy.ON_CONFLICT
    allow_nesting: bool = False
    trace: bool = False

    def __post_init__(self) -> None:
        if len(self.tasks) != len(self.arrival_traces):
            raise ValueError("one arrival trace per task is required")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")


class Kernel:
    """One simulation run.  Create, :meth:`run`, inspect the result."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.tracer = Tracer(enabled=config.trace)
        self._queue = EventQueue()
        self._clock = 0
        self._live: list[Job] = []
        self._running: Job | None = None
        self._running_since = 0
        self._kernel_free_at = 0
        self._locks = LockManager(allow_nesting=config.allow_nesting)
        self._objects = LockFreeObjectTable(policy=config.retry_policy)
        self._result = SimulationResult(horizon=config.horizon)
        self._finished = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the simulation to the horizon and return the result."""
        if self._finished:
            raise RuntimeError("a Kernel instance runs exactly once")
        self._finished = True
        self._prime_arrivals()
        while self._queue:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > self.config.horizon:
                break
            time, event = self._queue.pop()
            self._advance_running_to(time)
            self._clock = time
            self._handle(event)
        self._result.unfinished = sum(1 for j in self._live if j.is_live)
        return self._result

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _prime_arrivals(self) -> None:
        for task_index, trace in enumerate(self.config.arrival_traces):
            previous = None
            for jid, release in enumerate(trace):
                if previous is not None and release < previous:
                    raise ValueError(
                        f"arrival trace of task {task_index} is not sorted"
                    )
                previous = release
                if release >= self.config.horizon:
                    break
                self._queue.push(release, EventPriority.ARRIVAL,
                                 JobArrival(task_index=task_index, jid=jid))

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------

    def _handle(self, event) -> None:
        if isinstance(event, JobArrival):
            self._handle_arrival(event)
        elif isinstance(event, CriticalTimeExpiry):
            self._handle_expiry(event)
        elif isinstance(event, Milestone):
            self._handle_milestone(event)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown event {event!r}")

    def _handle_arrival(self, event: JobArrival) -> None:
        task = self.config.tasks[event.task_index]
        job = Job(task=task, jid=event.jid, release_time=self._clock)
        self._live.append(job)
        self._queue.push(job.critical_time_abs, EventPriority.TIMER,
                         CriticalTimeExpiry(job=job))
        self.tracer.emit(self._clock, TraceKind.ARRIVAL, job.name)
        self._reschedule()

    def _handle_expiry(self, event: CriticalTimeExpiry) -> None:
        job = event.job
        if not job.is_live:
            return  # job already departed; stale timer
        self._abort(job)
        extra = self.config.costs.timer_overhead + job.task.abort_handler_time
        self._reschedule(extra_overhead=extra)

    def _handle_milestone(self, event: Milestone) -> None:
        job = event.job
        if job is not self._running or event.token != job.dispatch_token:
            return  # superseded by a preemption/retry/abort
        if job.segment_remaining() != 0:  # pragma: no cover - defensive
            raise RuntimeError(
                f"milestone for {job.name} fired with work remaining"
            )
        self._finish_current_segment(job)

    # ------------------------------------------------------------------
    # Segment lifecycle
    # ------------------------------------------------------------------

    def _finish_current_segment(self, job: Job) -> None:
        """The running job completed its current segment at the clock."""
        segment = job.current_segment
        sync = self.config.sync
        if isinstance(segment, ReleaseLock):
            self._release_segment(job)
            return
        if isinstance(segment, ObjectAccess) and sync is SyncMode.LOCK_BASED:
            self._result.lock_access_commits += 1
            if not segment.release_at_end:
                # Nested critical section: keep the lock across later
                # segments; no unlock request, no scheduling event.
                job.finish_segment()
                self._continue_running(job)
                return
            # End of critical section: unlock request — a scheduling event.
            self._release_lock(job, segment.obj)
            job.finish_segment()
            cost = self.config.costs.lock_overhead
            self._result.lock_mechanism_time += cost
            self._reschedule(extra_overhead=cost, lock_event=True)
            return
        if isinstance(segment, ObjectAccess) and sync is SyncMode.LOCK_FREE:
            self._objects.commit(job)
            self._result.lockfree_access_commits += 1
            self._result.lockfree_attempts += 1
            job.finish_segment()
            self.tracer.emit(self._clock, TraceKind.ACCESS_COMMIT, job.name,
                             detail=str(segment.obj))
            self._continue_running(job)
            return
        # Compute segment, or an access under SyncMode.NONE.
        job.finish_segment()
        self._continue_running(job)

    def _release_lock(self, job: Job, obj) -> None:
        """Release one lock, waking its waiters."""
        woken = self._locks.release(job, obj)
        job.held_locks.discard(obj)
        if job.holds_lock == obj:
            job.holds_lock = None
        for waiter in woken:
            waiter.state = JobState.READY
            waiter.blocked_on = None
            self.tracer.emit(self._clock, TraceKind.UNBLOCK, waiter.name)
        self.tracer.emit(self._clock, TraceKind.LOCK_RELEASE, job.name,
                         detail=str(obj))

    def _release_segment(self, job: Job) -> None:
        """Process a :class:`ReleaseLock` segment reached by the running
        job.  An unlock request (scheduling event) under lock-based
        sharing; a no-op otherwise."""
        segment = job.current_segment
        if self.config.sync is SyncMode.LOCK_BASED:
            self._release_lock(job, segment.obj)
            job.finish_segment()
            cost = self.config.costs.lock_overhead
            self._result.lock_mechanism_time += cost
            self._reschedule(extra_overhead=cost, lock_event=True)
            return
        job.finish_segment()
        self._continue_running(job)

    def _continue_running(self, job: Job) -> None:
        """Advance the running job into its next segment (or completion)
        without an intervening scheduling event, unless the segment
        boundary itself is one (completion, lock request, unlock)."""
        if job.current_segment is None:
            self._complete(job)
            return
        segment = job.current_segment
        sync = self.config.sync
        if isinstance(segment, ReleaseLock):
            self._release_segment(job)
            return
        if isinstance(segment, ObjectAccess) and sync is SyncMode.LOCK_BASED:
            # Lock request: a scheduling event.  The job stops here; the
            # acquisition is attempted during the dispatch walk.
            self.tracer.emit(self._clock, TraceKind.ACCESS_BEGIN, job.name,
                             detail=str(segment.obj))
            cost = self.config.costs.lock_overhead
            self._result.lock_mechanism_time += cost
            self._reschedule(extra_overhead=cost, lock_event=True)
            return
        # Compute segment, SyncMode.NONE access, or lock-free access: keep
        # running without a scheduler pass.
        delay = self._enter_segment(job, trace=True)
        self._running_since = self._clock + delay
        self._push_milestone(job)

    def _enter_segment(self, job: Job, trace: bool) -> int:
        """Prepare the job's current segment for execution; return extra
        mechanism delay (CAS attempt cost) to charge before work starts.

        Handles the lock-free begin/retry protocol.  Lock-based entry is
        handled in the dispatch walk (acquisition) instead.
        """
        segment = job.current_segment
        if not isinstance(segment, ObjectAccess):
            return 0
        sync = self.config.sync
        if sync is not SyncMode.LOCK_FREE:
            return 0
        if self._objects.open_access_of(job) is None:
            self._objects.begin(job, segment)
            if trace:
                self.tracer.emit(self._clock, TraceKind.ACCESS_BEGIN,
                                 job.name, detail=str(segment.obj))
            cost = self.config.costs.cas_overhead
            self._result.lockfree_mechanism_time += cost
            return cost
        if self._objects.must_retry(job):
            wasted = job.restart_access()
            self._objects.record_retry(job)
            self._result.lockfree_attempts += 1
            self.tracer.emit(self._clock, TraceKind.RETRY, job.name,
                             detail=f"obj={segment.obj} wasted={wasted}")
            cost = self.config.costs.cas_overhead
            self._result.lockfree_mechanism_time += cost + wasted
            return cost
        return 0

    # ------------------------------------------------------------------
    # Scheduling and dispatch
    # ------------------------------------------------------------------

    def _reschedule(self, extra_overhead: int = 0,
                    lock_event: bool = False) -> None:
        """Run a scheduler pass and dispatch its choice.

        ``extra_overhead`` is kernel-busy time to charge in addition to
        the policy's own invocation cost (timer service, abort handlers,
        lock bookkeeping).  ``lock_event`` attributes the pass to the
        lock-based sharing mechanism for Figure 8 accounting.
        """
        now = self._clock
        cost = extra_overhead
        passes = 0
        chosen: Job | None = None
        n = 0
        while True:
            live = [j for j in self._live if j.is_live]
            self._live = live
            n = len(live)
            cost += self.config.policy.cost_model.cost(n)
            self._result.scheduler_invocations += 1
            passes += 1
            order = self.config.policy.schedule(live, self._lock_view(), now)
            # Deadlock resolution (Section 3.3): the policy may request
            # aborts; each abort changes the dependency structure, so the
            # pass reruns (with its cost charged) until no victim remains.
            victims = self.config.policy.consume_abort_requests()
            if victims:
                for victim in victims:
                    if victim.is_live:
                        self._abort(victim)
                        cost += (self.config.costs.timer_overhead
                                 + victim.task.abort_handler_time)
                continue
            chosen, blocked_any, walk_cost = self._walk(order, n, now)
            cost += walk_cost
            # A blocking during the walk can have closed a dependency
            # cycle (with nesting): if nothing is dispatchable, rerun the
            # pass so detection sees the new blocked_on edges.  Bounded:
            # each rerun either aborts a victim or blocks new jobs.
            if (chosen is None and blocked_any
                    and self.config.sync is SyncMode.LOCK_BASED
                    and passes <= len(live) + 1):
                continue
            break
        self.tracer.emit(now, TraceKind.SCHED_PASS, "",
                         detail=f"n={n} cost={cost}")
        self._result.scheduler_overhead_time += cost
        if lock_event:
            self._result.lock_mechanism_time += (
                self.config.policy.cost_model.cost(n)
            )
        self._dispatch(chosen, cost)

    def _walk(self, order: list[Job], n: int,
              now: int) -> tuple[Job | None, bool, int]:
        """Walk the policy's eligibility order to the first dispatchable
        job, attempting lock acquisitions along the way.  Returns
        (chosen, whether any job newly blocked, extra cost charged)."""
        blocked_any = False
        extra_cost = 0
        for job in order:
            if not job.is_live or job.state is JobState.BLOCKED:
                continue
            if self._needs_lock(job):
                obj = job.current_segment.obj
                if self._locks.try_acquire(job, obj):
                    job.holds_lock = obj
                    job.held_locks.add(obj)
                    self.tracer.emit(now, TraceKind.LOCK_ACQUIRE, job.name,
                                     detail=str(obj))
                    return job, blocked_any, extra_cost
                job.state = JobState.BLOCKED
                job.blocked_on = obj
                job.blockings += 1
                blocked_any = True
                self.tracer.emit(now, TraceKind.BLOCK, job.name,
                                 detail=str(obj))
                # The failed acquisition re-activates the scheduler.
                activation = self.config.policy.cost_model.cost(n)
                extra_cost += activation
                self._result.lock_mechanism_time += activation
                self._result.scheduler_invocations += 1
                continue
            return job, blocked_any, extra_cost
        return None, blocked_any, extra_cost

    def _needs_lock(self, job: Job) -> bool:
        """True when the job sits at the entry of a lock-based access it
        has not acquired yet."""
        if self.config.sync is not SyncMode.LOCK_BASED:
            return False
        segment = job.current_segment
        return (
            isinstance(segment, ObjectAccess)
            and segment.obj not in self._locks.held_by(job)
        )

    def _dispatch(self, chosen: Job | None, cost: int) -> None:
        now = self._clock
        previous = self._running
        switching = chosen is not previous
        if previous is not None and switching and previous.is_live:
            previous.state = JobState.READY
            previous.preemptions += 1
            previous.dispatch_token += 1
            if (self.config.sync is SyncMode.LOCK_FREE
                    and previous.in_access):
                self._objects.note_preemption(previous)
            self.tracer.emit(now, TraceKind.PREEMPT, previous.name)
        # Kernel work is serialized: overhead charged by an earlier pass
        # at this instant (abort handlers, timer service) delays this one.
        busy_from = max(now, self._kernel_free_at)
        if chosen is None:
            self._running = None
            self._kernel_free_at = busy_from + cost
            self.tracer.emit(now, TraceKind.IDLE, "")
            return
        start = busy_from + cost
        if switching:
            start += self.config.costs.context_switch
        self._kernel_free_at = start
        entry_delay = self._enter_segment(chosen, trace=switching)
        chosen.state = JobState.RUNNING
        chosen.dispatch_token += 1
        self._running = chosen
        self._running_since = start + entry_delay
        self.tracer.emit(now, TraceKind.DISPATCH, chosen.name,
                         detail=f"start={self._running_since}")
        self._push_milestone(chosen)

    def _push_milestone(self, job: Job) -> None:
        when = self._running_since + job.segment_remaining()
        self._queue.push(when, EventPriority.MILESTONE,
                         Milestone(job=job, token=job.dispatch_token))

    # ------------------------------------------------------------------
    # Job termination
    # ------------------------------------------------------------------

    def _complete(self, job: Job) -> None:
        job.state = JobState.COMPLETED
        job.completion_time = self._clock
        job.accrued_utility = job.task.tuf.utility(job.sojourn_time())
        self._result.records.append(record_of(job))
        self.tracer.emit(self._clock, TraceKind.COMPLETE, job.name,
                         detail=f"utility={job.accrued_utility:.3f}")
        if job is self._running:
            self._running = None
        # Departure is a scheduling event.
        self._reschedule()

    def _abort(self, job: Job) -> None:
        """Critical-time expiry (Section 3.5): raise the abort exception,
        run the handler, roll back held resources, depart with zero
        utility."""
        job.state = JobState.ABORTED
        job.accrued_utility = 0.0
        if self.config.sync is SyncMode.LOCK_BASED:
            woken = self._locks.release_all(job)
            job.holds_lock = None
            job.held_locks.clear()
            for waiter in woken:
                waiter.state = JobState.READY
                waiter.blocked_on = None
                self.tracer.emit(self._clock, TraceKind.UNBLOCK, waiter.name)
        elif self.config.sync is SyncMode.LOCK_FREE:
            self._objects.abandon(job)
        if job is self._running:
            self._running = None
        self._result.records.append(record_of(job))
        self.tracer.emit(self._clock, TraceKind.ABORT, job.name)

    # ------------------------------------------------------------------
    # Execution accounting
    # ------------------------------------------------------------------

    def _advance_running_to(self, time: int) -> None:
        job = self._running
        if job is None:
            return
        if time <= self._running_since:
            return
        amount = min(time - self._running_since, job.segment_remaining())
        if amount > 0:
            job.advance(amount)
        self._running_since = time

    def _lock_view(self) -> LockManager | None:
        if self.config.sync is SyncMode.LOCK_BASED:
            return self._locks
        return None
