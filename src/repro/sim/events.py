"""Kernel event taxonomy.

The paper's scheduling events are "job arrivals, job departures, lock and
unlock requests, expiration of job critical times" (Section 3).  In this
simulator, lock/unlock requests and job departures are *synchronous*
transitions — they happen when the running job's execution reaches a
segment boundary — so the queued event kinds reduce to:

* :class:`JobArrival` — a UAM release instant of some task;
* :class:`CriticalTimeExpiry` — the per-job abort timer (Section 3.5);
* :class:`Milestone` — the predicted instant at which the currently
  dispatched job finishes its current segment (internal bookkeeping; it
  carries a dispatch token so stale milestones from before a preemption
  are ignored).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.tasks.job import Job


class EventPriority(enum.IntEnum):
    """Tie-break classes for simultaneous events.

    At a shared instant the abort timer must fire before new arrivals are
    admitted (a job whose critical time is *now* accrues zero utility and
    must not be re-examined by the scheduler), and both must precede the
    running job's milestone processing.
    """

    TIMER = 0
    ARRIVAL = 1
    MILESTONE = 2


@dataclass(frozen=True, slots=True)
class JobArrival:
    """Release of job ``jid`` of task index ``task_index``.

    ``injected`` marks arrivals synthesized by the fault layer (burst
    faults beyond the UAM budget); ``deferrals`` counts how many times
    the admission guard has already pushed this arrival back.
    """

    task_index: int
    jid: int
    injected: bool = False
    deferrals: int = 0


@dataclass(frozen=True, slots=True)
class CriticalTimeExpiry:
    """One-shot abort timer armed at the job's release (Section 3.5)."""

    job: Job


@dataclass(frozen=True, slots=True)
class Milestone:
    """The dispatched job reaches the end of its current segment.

    ``token`` snapshots ``job.dispatch_token`` at dispatch; the kernel
    drops milestones whose token no longer matches (the job was preempted,
    blocked, retried or aborted in the meantime).
    """

    job: Job
    token: int
