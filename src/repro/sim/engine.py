"""Event queue and clock for the discrete-event simulation.

Events are totally ordered by ``(time, priority, sequence)``: ties at the
same instant break first by a small priority class (timers fire before
arrivals, arrivals before execution milestones — see
:class:`repro.sim.events.EventPriority`) and then by insertion order, which
makes every simulation run exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator


class QueueEmpty(Exception):
    """Raised when popping from an exhausted event queue."""


class EventQueue:
    """Priority queue of timed events with deterministic tie-breaking."""

    __slots__ = ("_heap", "_sequence")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, int, Any]] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: int, priority: int, payload: Any) -> None:
        """Schedule ``payload`` at ``time`` with tie-break ``priority``."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        heapq.heappush(self._heap, (time, priority, self._sequence, payload))
        self._sequence += 1

    def pop(self) -> tuple[int, Any]:
        """Remove and return the earliest ``(time, payload)`` pair."""
        if not self._heap:
            raise QueueEmpty
        time, _, _, payload = heapq.heappop(self._heap)
        return time, payload

    def peek_time(self) -> int | None:
        """Time of the earliest event, or None if the queue is empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def drain(self) -> Iterator[tuple[int, Any]]:
        """Pop everything, in order (mainly for tests)."""
        while self._heap:
            yield self.pop()
