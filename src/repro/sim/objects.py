"""Lock-free object layer: retry semantics.

A lock-free operation "continuously accesses the object, checks, and
retries until it becomes successful" (Section 1.1).  On a uniprocessor, an
in-progress operation can only be invalidated by a *preemption* during
which some other job operates on the same object — the retry model of
Anderson et al. [4], which the paper's Theorem 2 bounds.

Two retry policies are provided:

* ``ON_CONFLICT`` (default, realistic): the preempted access restarts only
  if a conflicting operation (a write, or any operation when the preempted
  access is a write) *committed* on the same object during the preemption;
* ``ON_PREEMPTION`` (conservative): any preemption while mid-access forces
  a restart.  This matches the accounting of Theorem 2's proof, which
  charges every scheduling event, and therefore can never exceed the bound
  either.

Both policies are exercised by the test suite against the Theorem 2 bound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.tasks.job import Job
from repro.tasks.segments import AccessKind, ObjectAccess

ObjectId = int | str


class RetryPolicy(enum.Enum):
    ON_CONFLICT = "on_conflict"
    ON_PREEMPTION = "on_preemption"


@dataclass
class _ObjectState:
    """Commit bookkeeping for one shared object."""

    #: Monotone counter of committed write operations.
    write_version: int = 0
    #: Monotone counter of committed operations of any kind.
    any_version: int = 0
    #: Total committed operations (metrics).
    commits: int = 0


@dataclass
class _OpenAccess:
    """A job's in-flight lock-free access snapshot."""

    obj: ObjectId
    kind: AccessKind
    write_version_seen: int
    any_version_seen: int
    #: Retries of *this* access so far (bounded-retry guards key off this,
    #: not the job's cumulative count).
    retries: int = 0


class LockFreeObjectTable:
    """Tracks in-flight lock-free accesses and decides retries.

    The kernel calls :meth:`begin` when a job starts (or restarts) an
    access segment, :meth:`commit` when the segment completes, and
    :meth:`must_retry` when a previously preempted job is re-dispatched
    mid-access.
    """

    def __init__(self, policy: RetryPolicy = RetryPolicy.ON_CONFLICT) -> None:
        self.policy = policy
        self._objects: dict[ObjectId, _ObjectState] = {}
        self._open: dict[Job, _OpenAccess] = {}
        #: Cumulative retry count across all jobs (metrics).
        self.total_retries = 0

    def _state(self, obj: ObjectId) -> _ObjectState:
        return self._objects.setdefault(obj, _ObjectState())

    # ------------------------------------------------------------------
    # Kernel hooks
    # ------------------------------------------------------------------

    def begin(self, job: Job, access: ObjectAccess) -> None:
        """Snapshot the object's versions as the job (re)starts the
        access."""
        state = self._state(access.obj)
        self._open[job] = _OpenAccess(
            obj=access.obj,
            kind=access.kind,
            write_version_seen=state.write_version,
            any_version_seen=state.any_version,
        )

    def commit(self, job: Job) -> None:
        """The job finished its access segment: the operation takes
        effect atomically (its final CAS succeeds)."""
        open_access = self._open.pop(job, None)
        if open_access is None:
            raise RuntimeError(f"{job.name}: commit without open access")
        state = self._state(open_access.obj)
        state.any_version += 1
        state.commits += 1
        if open_access.kind is AccessKind.WRITE:
            state.write_version += 1

    def abandon(self, job: Job) -> None:
        """Drop the job's open access without committing (abort path)."""
        self._open.pop(job, None)

    def note_preemption(self, job: Job) -> None:
        """Called when ``job`` is preempted.  Under ``ON_PREEMPTION`` the
        open access is immediately poisoned."""
        if self.policy is RetryPolicy.ON_PREEMPTION and job in self._open:
            job.access_dirty = True

    def must_retry(self, job: Job) -> bool:
        """Decide, at re-dispatch, whether the job's open access was
        invalidated while it was off the CPU."""
        open_access = self._open.get(job)
        if open_access is None:
            return False
        if job.access_dirty:
            return True
        state = self._state(open_access.obj)
        if open_access.kind is AccessKind.READ:
            # A reader is invalidated only by committed writes.
            return state.write_version != open_access.write_version_seen
        # A writer's CAS fails if *any* conflicting commit happened; reads
        # of the same object do not change the object, so only writes
        # conflict — but a write-write race is what the version tracks.
        return state.write_version != open_access.write_version_seen

    def record_retry(self, job: Job) -> None:
        """Account a retry decided by :meth:`must_retry` (the kernel also
        resets the job's segment progress)."""
        self.total_retries += 1
        open_access = self._open.get(job)
        if open_access is not None:
            open_access.retries += 1
            # Re-snapshot: the retry restarts from the current state.
            state = self._state(open_access.obj)
            open_access.write_version_seen = state.write_version
            open_access.any_version_seen = state.any_version

    def invalidate(self, job: Job) -> bool:
        """Adversarially poison the job's open access so its next
        re-dispatch retries — the fault layer's spurious-invalidation
        hook (an interfering commit the version counters never saw).
        Returns False when the job has no open access."""
        if job not in self._open:
            return False
        job.access_dirty = True
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def open_access_of(self, job: Job) -> ObjectId | None:
        open_access = self._open.get(job)
        return None if open_access is None else open_access.obj

    def retries_of(self, job: Job) -> int:
        """Retries of the job's currently open access (0 if none)."""
        open_access = self._open.get(job)
        return 0 if open_access is None else open_access.retries

    def commits_on(self, obj: ObjectId) -> int:
        return self._state(obj).commits
