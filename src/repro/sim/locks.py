"""Lock manager for lock-based object sharing.

Implements mutual-exclusion locks in the style the paper's lock-based RUA
assumes: a lock request for a held object blocks the requester (creating a
resource dependency the scheduler must respect), and both lock and unlock
requests are scheduling events.

The resource model of the comparison (Section 5) excludes nested critical
sections, so a job holds at most one lock at a time; the manager supports
nesting anyway (``allow_nesting=True``) because lock-based RUA's deadlock
detection/resolution (Section 3.3) is part of the algorithm and is
exercised by dedicated tests.
"""

from __future__ import annotations

from repro.tasks.job import Job

ObjectId = int | str


class LockManager:
    """Tracks lock ownership, waiters, and the resulting dependencies."""

    def __init__(self, allow_nesting: bool = False) -> None:
        self._allow_nesting = allow_nesting
        self._owner: dict[ObjectId, Job] = {}
        self._waiters: dict[ObjectId, list[Job]] = {}
        self._held: dict[Job, list[ObjectId]] = {}
        #: Cumulative counters for metrics.
        self.acquisitions = 0
        self.contentions = 0
        #: Monotonic mutation counter: bumped by every operation that can
        #: change ownership or wait queues.  Scheduling-pass caches fold it
        #: into their state signature, so any lock-state change invalidates
        #: memoized passes without walking the tables.
        self.version = 0

    # ------------------------------------------------------------------
    # Lock operations
    # ------------------------------------------------------------------

    def try_acquire(self, job: Job, obj: ObjectId) -> bool:
        """Acquire ``obj`` for ``job`` if free; otherwise enqueue ``job``
        as a waiter and return False."""
        holder = self._owner.get(obj)
        if holder is job:
            raise RuntimeError(f"{job.name}: re-acquiring held lock {obj!r}")
        self.version += 1
        if holder is None:
            held = self._held.setdefault(job, [])
            if held and not self._allow_nesting:
                raise RuntimeError(
                    f"{job.name}: nested critical section on {obj!r} while "
                    f"holding {held[-1]!r} (nesting disabled)"
                )
            self._owner[obj] = job
            held.append(obj)
            self.acquisitions += 1
            return True
        waiters = self._waiters.setdefault(obj, [])
        if job not in waiters:
            waiters.append(job)
        self.contentions += 1
        return False

    def release(self, job: Job, obj: ObjectId) -> list[Job]:
        """Release ``obj``; return the waiters that should be re-examined
        (they re-attempt acquisition when next dispatched)."""
        if self._owner.get(obj) is not job:
            raise RuntimeError(
                f"{job.name}: releasing lock {obj!r} it does not hold"
            )
        self.version += 1
        del self._owner[obj]
        self._held[job].remove(obj)
        woken = self._waiters.pop(obj, [])
        return woken

    def release_all(self, job: Job) -> list[Job]:
        """Roll back every lock ``job`` holds (abort path, Section 3.5).
        Returns all waiters to wake.  Also drops the job from any wait
        queues it sits in."""
        self.version += 1
        woken: list[Job] = []
        for obj in list(self._held.get(job, [])):
            woken.extend(self.release(job, obj))
        self._held.pop(job, None)
        for waiters in self._waiters.values():
            if job in waiters:
                waiters.remove(job)
        return woken

    def cancel_wait(self, job: Job) -> None:
        """Remove ``job`` from every wait queue (e.g. on abort)."""
        self.version += 1
        for waiters in self._waiters.values():
            if job in waiters:
                waiters.remove(job)

    # ------------------------------------------------------------------
    # Introspection used by the scheduler
    # ------------------------------------------------------------------

    def owner_of(self, obj: ObjectId) -> Job | None:
        return self._owner.get(obj)

    def held_by(self, job: Job) -> tuple[ObjectId, ...]:
        return tuple(self._held.get(job, ()))

    def waiters_on(self, obj: ObjectId) -> tuple[Job, ...]:
        return tuple(self._waiters.get(obj, ()))

    def blocking_job(self, job: Job) -> Job | None:
        """The job that ``job`` directly depends on (the owner of the
        object ``job`` waits for), or None."""
        if job.blocked_on is None:
            return None
        return self._owner.get(job.blocked_on)

    def consistency_anomalies(self) -> list[str]:
        """Self-audit of the manager's internal bookkeeping, for the
        runtime lock-state invariant monitor.  Returns human-readable
        anomaly descriptions (empty when consistent): every owned object
        appears in its owner's held list and vice versa, no job waits on
        an object it owns, and no completed/aborted job lingers as an
        owner or waiter."""
        anomalies: list[str] = []
        for obj, owner in self._owner.items():
            if obj not in self._held.get(owner, []):
                anomalies.append(
                    f"{owner.name} owns {obj!r} but it is missing from "
                    f"its held list")
            if not owner.is_live:
                anomalies.append(
                    f"dead job {owner.name} still owns {obj!r}")
        for job, held in self._held.items():
            for obj in held:
                if self._owner.get(obj) is not job:
                    anomalies.append(
                        f"{job.name} lists {obj!r} as held but does not "
                        f"own it")
        for obj, waiters in self._waiters.items():
            for waiter in waiters:
                if self._owner.get(obj) is waiter:
                    anomalies.append(
                        f"{waiter.name} waits on {obj!r} it owns")
                if not waiter.is_live:
                    anomalies.append(
                        f"dead job {waiter.name} still waits on {obj!r}")
        return anomalies

    def dependency_edges(self) -> dict[Job, Job]:
        """Direct dependency map: waiter -> owner, for every blocked job.

        This is the raw material from which RUA builds dependency chains
        (Section 3.1).
        """
        edges: dict[Job, Job] = {}
        for obj, waiters in self._waiters.items():
            owner = self._owner.get(obj)
            if owner is None:
                continue
            for waiter in waiters:
                edges[waiter] = owner
        return edges
