"""Discrete-event uniprocessor RTOS simulator.

This package replaces the paper's QNX Neutrino 6.3 testbed.  It is a
deterministic discrete-event simulation of a single-processor real-time
kernel: UAM job arrivals, preemptive dispatch controlled by a pluggable
scheduler policy, critical-time timers with the paper's abort-exception
model, a lock manager for lock-based sharing, and a lock-free object layer
that restarts interfered accesses (Anderson's retry model).

All scheduler/synchronization mechanism costs are *charged on the
simulated CPU* through explicit cost models (:mod:`repro.sim.overheads`),
which is what lets the simulation reproduce the overhead-driven figures of
the paper (Figures 8 and 9) without measuring Python wall time.
"""

from repro.sim.engine import EventQueue, QueueEmpty
from repro.sim.events import (
    CriticalTimeExpiry,
    EventPriority,
    JobArrival,
    Milestone,
)
from repro.sim.overheads import (
    ConstantCost,
    CostModel,
    LinearithmicCost,
    QuadraticCost,
    QuadraticLogCost,
    ZeroCost,
    KernelCosts,
)
from repro.sim.locks import LockManager
from repro.sim.objects import LockFreeObjectTable, RetryPolicy
from repro.sim.kernel import Kernel, SimulationConfig, SyncMode
from repro.sim.metrics import JobRecord, SimulationResult
from repro.sim.tracing import TraceEvent, Tracer
from repro.sim.gantt import render_gantt

__all__ = [
    "EventQueue",
    "QueueEmpty",
    "EventPriority",
    "JobArrival",
    "CriticalTimeExpiry",
    "Milestone",
    "CostModel",
    "ZeroCost",
    "ConstantCost",
    "LinearithmicCost",
    "QuadraticCost",
    "QuadraticLogCost",
    "KernelCosts",
    "LockManager",
    "LockFreeObjectTable",
    "RetryPolicy",
    "Kernel",
    "SimulationConfig",
    "SyncMode",
    "JobRecord",
    "SimulationResult",
    "TraceEvent",
    "Tracer",
    "render_gantt",
]
