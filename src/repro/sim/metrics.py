"""Per-run metrics: AUR, CMR, sojourn times, retries, blockings.

Definitions follow the paper:

* **AUR** (accrued utility ratio, Section 5) — the ratio of the actual
  accrued total utility to the maximum possible total utility.  The
  maximum possible counts every released job at its TUF's maximum.
* **CMR** (critical-time-meet ratio, Section 6.2) — the ratio of the
  number of jobs that meet their critical times to the total number of
  job releases.
* **Sojourn time** — completion time minus arrival time (footnote 1).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.tasks.job import Job, JobState
from repro.tasks.task import TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.faults.report import DegradationReport


@dataclass(frozen=True)
class JobRecord:
    """Immutable summary of one finished (completed or aborted) job."""

    task_name: str
    jid: int
    release_time: int
    completion_time: int | None     # None for aborted jobs
    accrued_utility: float
    max_utility: float
    retries: int
    blockings: int
    preemptions: int
    aborted: bool

    @property
    def sojourn(self) -> int | None:
        if self.completion_time is None:
            return None
        return self.completion_time - self.release_time

    @property
    def met_critical_time(self) -> bool:
        return not self.aborted and self.completion_time is not None


def record_of(job: Job) -> JobRecord:
    """Snapshot a finished job into a :class:`JobRecord`."""
    if job.is_live:
        raise ValueError(f"{job.name} is still live")
    return JobRecord(
        task_name=job.task.name,
        jid=job.jid,
        release_time=job.release_time,
        completion_time=job.completion_time,
        accrued_utility=job.accrued_utility,
        max_utility=job.task.tuf.max_utility,
        retries=job.retries,
        blockings=job.blockings,
        preemptions=job.preemptions,
        aborted=job.state is JobState.ABORTED,
    )


@dataclass
class SimulationResult:
    """Aggregated outcome of one simulation run."""

    records: list[JobRecord] = field(default_factory=list)
    horizon: int = 0
    scheduler_invocations: int = 0
    scheduler_overhead_time: int = 0
    idle_time: int = 0
    #: Jobs still live at the horizon (not in the records; exposed so
    #: harnesses can judge edge effects).
    unfinished: int = 0
    # --- synchronization mechanism accounting (drives Figure 8) ----------
    #: Kernel time charged to lock-based sharing mechanisms: lock/unlock
    #: bookkeeping plus the scheduler passes those requests trigger.
    lock_mechanism_time: int = 0
    #: Kernel time charged to lock-free mechanisms: CAS attempts (initial
    #: and retry) plus the work thrown away by retries.
    lockfree_mechanism_time: int = 0
    #: Committed lock-based critical sections.
    lock_access_commits: int = 0
    #: Committed lock-free operations.
    lockfree_access_commits: int = 0
    #: Total lock-free attempts (commits + retries).
    lockfree_attempts: int = 0
    # --- fault injection / graceful degradation ---------------------------
    #: Structured degradation report: injected faults, shed/deferred jobs,
    #: retry-guard aborts, invariant-monitor findings.  None when the run
    #: used no fault plan, guard, or monitors.
    degradation: "DegradationReport | None" = None
    # --- observability (repro.obs) ----------------------------------------
    #: The attached observer's end-of-run summary (counters, histogram
    #: digests, scheduler decision stats).  None when the run was not
    #: instrumented.
    obs: dict | None = None

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------

    @property
    def releases(self) -> int:
        return len(self.records) + self.unfinished

    @property
    def accrued_utility(self) -> float:
        return sum(r.accrued_utility for r in self.records)

    @property
    def max_possible_utility(self) -> float:
        total = sum(r.max_utility for r in self.records)
        return total

    @property
    def aur(self) -> float:
        """Accrued Utility Ratio over the finished jobs."""
        denominator = self.max_possible_utility
        if denominator == 0:
            return 0.0
        return self.accrued_utility / denominator

    @property
    def cmr(self) -> float:
        """Critical-time-Meet Ratio over the finished jobs."""
        if not self.records:
            return 0.0
        met = sum(1 for r in self.records if r.met_critical_time)
        return met / len(self.records)

    @property
    def abort_count(self) -> int:
        return sum(1 for r in self.records if r.aborted)

    @property
    def total_retries(self) -> int:
        return sum(r.retries for r in self.records)

    @property
    def total_blockings(self) -> int:
        return sum(r.blockings for r in self.records)

    @property
    def mean_lock_mechanism_per_access(self) -> float | None:
        """Mean mechanism time per committed lock-based access — the
        measured component of the paper's ``r`` beyond the intrinsic
        operation time."""
        if self.lock_access_commits == 0:
            return None
        return self.lock_mechanism_time / self.lock_access_commits

    @property
    def mean_lockfree_mechanism_per_access(self) -> float | None:
        """Mean mechanism time per committed lock-free access — the
        measured component of the paper's ``s`` beyond the intrinsic
        operation time."""
        if self.lockfree_access_commits == 0:
            return None
        return self.lockfree_mechanism_time / self.lockfree_access_commits

    # ------------------------------------------------------------------
    # Distributional views
    # ------------------------------------------------------------------

    def sojourns(self, task_name: str | None = None) -> list[int]:
        return [
            r.sojourn for r in self.records
            if r.sojourn is not None
            and (task_name is None or r.task_name == task_name)
        ]

    def mean_sojourn(self, task_name: str | None = None) -> float | None:
        values = self.sojourns(task_name)
        return statistics.fmean(values) if values else None

    def max_sojourn(self, task_name: str | None = None) -> int | None:
        values = self.sojourns(task_name)
        return max(values) if values else None

    def retries_by_job(self, task_name: str | None = None) -> list[int]:
        return [
            r.retries for r in self.records
            if task_name is None or r.task_name == task_name
        ]

    def per_task(self) -> dict[str, "SimulationResult"]:
        """Split the result by task name (horizon/overhead fields are
        copied; they are global)."""
        split: dict[str, SimulationResult] = {}
        for record in self.records:
            sub = split.setdefault(record.task_name, SimulationResult(
                horizon=self.horizon,
            ))
            sub.records.append(record)
        return split


def max_utility_denominator(tasks: list[TaskSpec],
                            releases_per_task: dict[str, int]) -> float:
    """Maximum possible utility for a set of releases (AUR denominator
    computed from the task specs rather than job records)."""
    return sum(
        tasks_by_name.tuf.max_utility * releases_per_task.get(tasks_by_name.name, 0)
        for tasks_by_name in tasks
    )
