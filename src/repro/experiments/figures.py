"""Per-figure experiment functions (Figures 8–14 plus theorem/lemma
validations).

Each function runs the seeded simulation campaign for one figure of the
paper and returns a :class:`FigureResult` whose ``render()`` produces the
ASCII table recorded in EXPERIMENTS.md.  ``repeats`` and ``horizon_factor``
trade fidelity for speed; the benchmark suite uses reduced settings, and
``scripts``-level runs can crank them up.

Every figure accepts ``campaign=`` — a
:class:`repro.campaign.CampaignConfig` (or a pre-built
:class:`repro.campaign.CampaignEngine`) that routes the figure's trials
through the resilient campaign engine: parallel workers, per-trial
timeouts, retry with backoff, write-ahead journaling and resume.  The
default (``None``) preserves the original in-process serial loops
byte-for-byte.  Trial functions are module-level and rebuild their
tasksets from ``(base_seed, trial_index)``-derived seeds alone, so
serial and parallel campaigns agree on every data point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.retry_bound import retry_bound_for_taskset
from repro.analysis.aur_bounds import (
    lemma4_lockfree_aur_bounds,
    lemma5_lockbased_aur_bounds,
)
from repro.campaign import (
    CampaignConfig,
    CampaignEngine,
    CampaignStats,
    as_engine,
)
from repro.experiments.cml import measure_cml
from repro.experiments.report import format_series_table
from repro.experiments.runner import run_many, run_once
from repro.experiments.stats import Series
from repro.experiments.workloads import (
    DEFAULT_ACCESS_DURATION,
    BuilderSpec,
    LoadedBuilderSpec,
    interference_taskset,
    paper_taskset,
)
from repro.sim.objects import RetryPolicy
from repro.units import MS, US, ns_to_us

CampaignArg = "CampaignConfig | CampaignEngine | None"


@dataclass
class FigureResult:
    """Structured outcome of one figure's campaign."""

    figure: str
    title: str
    x_label: str
    series: list[Series] = field(default_factory=list)
    notes: str = ""
    #: Campaign health when the figure ran through the resilient engine
    #: (None for the plain serial path).  Failed trials thin the sample
    #: behind a point; the render makes that visible instead of silent.
    campaign: CampaignStats | None = None

    def render(self) -> str:
        text = format_series_table(
            f"{self.figure}: {self.title}", self.x_label, self.series,
            show_n=self.campaign is not None,
        )
        if self.notes:
            text += f"\n{self.notes}"
        if self.campaign is not None:
            text += f"\ncampaign: {self.campaign.summary_line()}"
        return text

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable summary (the CLI's ``--json`` payload)."""
        return {
            "figure": self.figure,
            "title": self.title,
            "x_label": self.x_label,
            "series": [s.to_dict() for s in self.series],
            "notes": self.notes,
            "campaign": (None if self.campaign is None
                         else self.campaign.to_dict()),
        }


def _seeds(repeats: int, base: int) -> list[int]:
    return [base + 1000 * k for k in range(repeats)]


def _engine_for(campaign, tag: str) -> tuple[CampaignEngine | None, bool]:
    """Normalize the ``campaign=`` argument; ``owned`` tells the figure
    whether it must close the engine (it built one from a config) or the
    caller keeps ownership (it passed an engine)."""
    engine = as_engine(campaign, tag=tag)
    owned = engine is not None and not isinstance(campaign, CampaignEngine)
    return engine, owned


def _finish(result: FigureResult, engine: CampaignEngine | None,
            owned: bool) -> FigureResult:
    if engine is not None:
        result.campaign = engine.stats()
        if owned:
            engine.close()
    return result


# ---------------------------------------------------------------------
# Figure 8 — object access times r and s
# ---------------------------------------------------------------------

def fig8(repeats: int = 5, horizon: int = 150 * MS,
         objects: tuple[int, ...] = tuple(range(1, 11)),
         load: float = 0.5, base_seed: int = 80,
         campaign: CampaignArg = None) -> FigureResult:
    """Lock-based (``r``) vs lock-free (``s``) shared-object access time
    under an increasing number of objects accessed per job.

    ``r``/``s`` are the intrinsic operation time plus the measured
    mechanism time per committed access (lock bookkeeping and the
    scheduler passes that lock/unlock requests trigger for ``r``; CAS
    attempts and retry-wasted work for ``s``), reported in µs.
    """
    engine, owned = _engine_for(campaign, tag="fig8")
    r_series = Series(label="r lock-based [us]")
    s_series = Series(label="s lock-free [us]")
    for m in objects:
        build = BuilderSpec.make("paper", accesses_per_job=m,
                                 target_load=load)
        r_values = []
        for result in run_many(build, "lockbased", horizon,
                               _seeds(repeats, base_seed),
                               campaign=engine):
            mech = result.mean_lock_mechanism_per_access or 0.0
            r_values.append(ns_to_us(DEFAULT_ACCESS_DURATION + mech))
        s_values = []
        for result in run_many(build, "lockfree", horizon,
                               _seeds(repeats, base_seed),
                               campaign=engine):
            mech = result.mean_lockfree_mechanism_per_access or 0.0
            s_values.append(ns_to_us(DEFAULT_ACCESS_DURATION + mech))
        r_series.add(m, r_values)
        s_series.add(m, s_values)
    return _finish(FigureResult(
        figure="Figure 8",
        title="Lock-Based and Lock-Free Shared Object Access Time",
        x_label="objects/job",
        series=[r_series, s_series],
        notes="Paper shape: r >> s; r grows with object count; s stays flat.",
    ), engine, owned)


# ---------------------------------------------------------------------
# Figure 9 — Critical-time-Miss Load vs average execution time
# ---------------------------------------------------------------------

def fig9(repeats: int = 3,
         exec_times_us: tuple[int, ...] = (10, 30, 100, 300, 1000),
         syncs: tuple[str, ...] = ("ideal", "lockfree", "lockbased"),
         base_seed: int = 90, windows_per_run: int = 40,
         bisect_iterations: int = 7,
         campaign: CampaignArg = None) -> FigureResult:
    """CML of ideal / lock-free / lock-based RUA under increasing average
    job execution time (10 µs – 1 ms)."""
    engine, owned = _engine_for(campaign, tag="fig9")
    series = {sync: Series(label=f"CML {sync}") for sync in syncs}
    for exec_us in exec_times_us:
        avg_exec = exec_us * US
        # Horizon: enough windows at the heaviest probed load.
        horizon = max(windows_per_run * 10 * avg_exec, 5 * MS)
        build = LoadedBuilderSpec.make("paper", avg_exec=avg_exec,
                                       accesses_per_job=2)
        for sync in syncs:
            cml = measure_cml(build, sync, horizon,
                              _seeds(repeats, base_seed),
                              iterations=bisect_iterations,
                              campaign=engine)
            series[sync].add(exec_us, [cml])
    return _finish(FigureResult(
        figure="Figure 9",
        title="Critical Time Miss Load",
        x_label="avg exec [us]",
        series=list(series.values()),
        notes=("Paper shape: lock-free ~ ideal, CML→1 near 10 us; "
               "lock-based converges to 1 only near 1 ms."),
    ), engine, owned)


# ---------------------------------------------------------------------
# Figures 10-13 — AUR / CMR vs number of shared objects
# ---------------------------------------------------------------------

def _aur_cmr_vs_objects(figure: str, load: float, tuf_class: str,
                        repeats: int, horizon: int,
                        objects: tuple[int, ...],
                        base_seed: int,
                        campaign: CampaignArg = None) -> FigureResult:
    engine, owned = _engine_for(campaign, tag=figure.replace(" ", "").lower())
    labels = ("AUR lock-based", "AUR lock-free",
              "CMR lock-based", "CMR lock-free")
    series = {label: Series(label=label) for label in labels}
    for m in objects:
        build = BuilderSpec.make("paper", accesses_per_job=m,
                                 target_load=load, tuf_class=tuf_class)
        for sync, tag in (("lockbased", "lock-based"),
                          ("lockfree", "lock-free")):
            results = run_many(build, sync, horizon,
                               _seeds(repeats, base_seed),
                               campaign=engine)
            series[f"AUR {tag}"].add(m, [r.aur for r in results])
            series[f"CMR {tag}"].add(m, [r.cmr for r in results])
    regime = "Underload" if load < 1.0 else "Overload"
    shape = ("lock-free stays near 100%" if load < 1.0 else
             "lock-based AUR/CMR collapse with objects; lock-free holds")
    return _finish(FigureResult(
        figure=figure,
        title=(f"AUR/CMR During {regime} (AL≈{load}), "
               f"{tuf_class} TUFs"),
        x_label="objects/job",
        series=list(series.values()),
        notes=f"Paper shape: {shape}.",
    ), engine, owned)


def fig10(repeats: int = 5, horizon: int = 150 * MS,
          objects: tuple[int, ...] = tuple(range(1, 11)),
          base_seed: int = 100,
          campaign: CampaignArg = None) -> FigureResult:
    """Underload (AL ≈ 0.4), step TUFs."""
    return _aur_cmr_vs_objects("Figure 10", 0.4, "step", repeats, horizon,
                               objects, base_seed, campaign)


def fig11(repeats: int = 5, horizon: int = 150 * MS,
          objects: tuple[int, ...] = tuple(range(1, 11)),
          base_seed: int = 110,
          campaign: CampaignArg = None) -> FigureResult:
    """Underload (AL ≈ 0.4), heterogeneous TUFs."""
    return _aur_cmr_vs_objects("Figure 11", 0.4, "hetero", repeats, horizon,
                               objects, base_seed, campaign)


def fig12(repeats: int = 5, horizon: int = 150 * MS,
          objects: tuple[int, ...] = tuple(range(1, 11)),
          base_seed: int = 120,
          campaign: CampaignArg = None) -> FigureResult:
    """Overload (AL ≈ 1.1), step TUFs."""
    return _aur_cmr_vs_objects("Figure 12", 1.1, "step", repeats, horizon,
                               objects, base_seed, campaign)


def fig13(repeats: int = 5, horizon: int = 150 * MS,
          objects: tuple[int, ...] = tuple(range(1, 11)),
          base_seed: int = 130,
          campaign: CampaignArg = None) -> FigureResult:
    """Overload (AL ≈ 1.1), heterogeneous TUFs."""
    return _aur_cmr_vs_objects("Figure 13", 1.1, "hetero", repeats, horizon,
                               objects, base_seed, campaign)


# ---------------------------------------------------------------------
# Figure 14 — AUR / CMR vs number of reader tasks
# ---------------------------------------------------------------------

def fig14(repeats: int = 5, horizon: int = 150 * MS,
          readers: tuple[int, ...] = tuple(range(1, 10)),
          base_seed: int = 140,
          campaign: CampaignArg = None) -> FigureResult:
    """Increasing reader-task count, heterogeneous TUFs; the load grows
    with the task count (the paper's AL = 0.1–1.1 sweep)."""
    engine, owned = _engine_for(campaign, tag="fig14")
    labels = ("AUR lock-based", "AUR lock-free",
              "CMR lock-based", "CMR lock-free")
    series = {label: Series(label=label) for label in labels}
    for n_readers in readers:
        build = BuilderSpec.make("readers", n_readers=n_readers)
        for sync, tag in (("lockbased", "lock-based"),
                          ("lockfree", "lock-free")):
            results = run_many(build, sync, horizon,
                               _seeds(repeats, base_seed),
                               campaign=engine)
            series[f"AUR {tag}"].add(n_readers, [r.aur for r in results])
            series[f"CMR {tag}"].add(n_readers, [r.cmr for r in results])
    return _finish(FigureResult(
        figure="Figure 14",
        title="AUR/CMR During Increasing Readers, Heterogeneous TUFs",
        x_label="readers",
        series=list(series.values()),
        notes="Paper shape: lock-free superior throughout the sweep.",
    ), engine, owned)


# ---------------------------------------------------------------------
# Theorem 2 validation — measured retries vs the bound
# ---------------------------------------------------------------------

def _thm2_trial(base_seed: int, max_arrivals: int, horizon: int, seed: int,
                retry_policy: RetryPolicy) -> dict[str, int]:
    """One Theorem 2 trial: rebuild the (deterministic) interference
    taskset, run it under bursty arrivals, return per-task max retries.
    Module-level and picklable for campaign workers."""
    tasks = interference_taskset(random.Random(base_seed),
                                 max_arrivals=max_arrivals)
    result = run_once(tasks, "lockfree", horizon, random.Random(seed),
                      arrival_style="bursty",
                      retry_policy=retry_policy)
    worst: dict[str, int] = {t.name: 0 for t in tasks}
    for record in result.records:
        worst[record.task_name] = max(worst[record.task_name],
                                      record.retries)
    return worst


def thm2_validation(repeats: int = 5, horizon: int = 400 * MS,
                    retry_policy: RetryPolicy = RetryPolicy.ON_PREEMPTION,
                    max_arrivals: int = 2,
                    base_seed: int = 200,
                    campaign: CampaignArg = None) -> FigureResult:
    """Adversarial (bursty) UAM arrivals under lock-free RUA: per task,
    the maximum observed per-job retries against Theorem 2's ``f_i``.

    Uses :func:`repro.experiments.workloads.interference_taskset` —
    long-access victim tasks plus short-critical-time bursty interferers
    — so preemptions really land mid-access and force retries (a plain
    homogeneous task set almost never preempts under ECF-ordered
    dispatch, making the bound trivially satisfied at zero).
    The x axis indexes tasks; both series must satisfy measured <= bound
    for every task (tests assert it)."""
    engine, owned = _engine_for(campaign, tag="thm2")
    measured = Series(label="max retries measured")
    bound = Series(label="Theorem 2 bound f_i")
    tasks = interference_taskset(random.Random(base_seed),
                                 max_arrivals=max_arrivals)
    seeds = _seeds(repeats, base_seed + 1)
    if engine is None:
        per_trial = [
            _thm2_trial(base_seed, max_arrivals, horizon, seed,
                        retry_policy)
            for seed in seeds
        ]
    else:
        per_trial = engine.map(
            _thm2_trial,
            [(base_seed, max_arrivals, horizon, seed, retry_policy)
             for seed in seeds],
        ).values
    worst: dict[str, int] = {t.name: 0 for t in tasks}
    for trial_worst in per_trial:
        for name, retries in trial_worst.items():
            worst[name] = max(worst[name], retries)
    for index, task in enumerate(tasks):
        measured.add(index, [float(worst[task.name])])
        bound.add(index, [float(retry_bound_for_taskset(tasks, index))])
    return _finish(FigureResult(
        figure="Theorem 2",
        title="Lock-Free Retry Bound Under UAM (measured vs bound)",
        x_label="task",
        series=[measured, bound],
        notes="Soundness requires measured <= bound for every task.",
    ), engine, owned)


# ---------------------------------------------------------------------
# Lemmas 4/5 validation — AUR inside the analytical bounds
# ---------------------------------------------------------------------

def _lemma45_trial(base_seed: int, load: float, sync: str, horizon: int,
                   seed: int):
    """One Lemma 4/5 trial: rebuild the deterministic feasible taskset,
    run one seeded simulation of it.  Module-level and picklable."""
    tasks = paper_taskset(random.Random(base_seed), accesses_per_job=2,
                          target_load=load, tuf_class="step")
    return run_once(tasks, sync, horizon, random.Random(seed))


def lemma45_validation(repeats: int = 5, horizon: int = 300 * MS,
                       load: float = 0.35,
                       base_seed: int = 450,
                       campaign: CampaignArg = None) -> FigureResult:
    """Feasible (underloaded) task set with non-increasing TUFs: measured
    AUR of each sharing style against its Lemma 4/5 interval.

    Interference/retry/blocking inputs to the bounds are taken at their
    measured worst over the campaign, as the lemmas' worst-case terms."""
    engine, owned = _engine_for(campaign, tag="lemma45")
    tasks = paper_taskset(random.Random(base_seed), accesses_per_job=2,
                          target_load=load, tuf_class="step")
    seeds = _seeds(repeats, base_seed + 1)
    out: list[Series] = []
    for sync, lemma in (("lockfree", "4"), ("lockbased", "5")):
        if engine is None:
            results = [
                _lemma45_trial(base_seed, load, sync, horizon, seed)
                for seed in seeds
            ]
        else:
            results = engine.map(
                _lemma45_trial,
                [(base_seed, load, sync, horizon, seed) for seed in seeds],
            ).values
        aurs = [r.aur for r in results]
        # Worst-case measured interference per task: max sojourn minus
        # the task's own execution estimate (conservative split).
        interference = []
        extra = []
        for task in tasks:
            worst_sojourn = max(
                (r.max_sojourn(task.name) or 0) for r in results
            )
            interference.append(
                max(0.0, worst_sojourn - task.execution_estimate)
            )
            extra.append(0.0)  # retries/blocking folded into interference
        if sync == "lockfree":
            mech = max(
                (r.mean_lockfree_mechanism_per_access or 0.0)
                for r in results
            )
            bounds = lemma4_lockfree_aur_bounds(
                tasks, s=DEFAULT_ACCESS_DURATION + mech,
                interference=interference, retry_time=extra,
            )
        else:
            mech = max(
                (r.mean_lock_mechanism_per_access or 0.0)
                for r in results
            )
            bounds = lemma5_lockbased_aur_bounds(
                tasks, r=DEFAULT_ACCESS_DURATION + mech,
                interference=interference, blocking_time=extra,
            )
        s_low = Series(label=f"Lemma {lemma} lower ({sync})")
        s_meas = Series(label=f"AUR measured ({sync})")
        s_high = Series(label=f"Lemma {lemma} upper ({sync})")
        s_low.add(0, [bounds.lower])
        s_meas.add(0, aurs)
        s_high.add(0, [bounds.upper])
        out.extend([s_low, s_meas, s_high])
    return _finish(FigureResult(
        figure="Lemmas 4-5",
        title="AUR Bounds (lock-free and lock-based)",
        x_label="-",
        series=out,
        notes="Soundness requires lower <= measured <= upper.",
    ), engine, owned)
