"""The paper's experimental workloads (Section 6).

The evaluation uses a task set of 10 tasks, accessing 10 shared queues
"arbitrarily", with two TUF classes (step-only and heterogeneous), average
job execution times between 10 µs and 1 ms, and approximate loads
``AL = sum(u_i / C_i)`` of ≈0.4 (underload) and ≈1.1 (overload).

Exact per-task parameters are not published; these builders fix the
unstated ones with documented conventions:

* task windows are drawn around ``10 u_i / AL_target`` so that the task
  count, execution times and load target are mutually consistent;
* critical times sit at 90–100 % of the window (keeping ``C_i <= W_i``
  while making AL track true utilization closely, so AL ≈ 1.1 genuinely
  overloads);
* each job accesses ``m`` of the shared queues, one operation each, with
  the object choice rotating across tasks so all queues see contention.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.arrivals.spec import UAMSpec
from repro.tasks.segments import AccessKind
from repro.tasks.task import TaskSpec
from repro.tasks.taskset import make_task, scale_to_load
from repro.tuf.catalog import heterogeneous_tuf_mix, step_tuf_mix
from repro.units import US

#: Intrinsic time of one queue operation (enqueue/dequeue) — the paper's
#: Figure 8 shows lock-free access times of a few microseconds on the
#: 500 MHz testbed.
DEFAULT_ACCESS_DURATION = 2 * US


def paper_taskset(rng: random.Random,
                  n_tasks: int = 10,
                  n_objects: int = 10,
                  accesses_per_job: int = 2,
                  avg_exec: int = 300 * US,
                  target_load: float = 0.4,
                  tuf_class: str = "step",
                  max_arrivals: int = 1,
                  access_duration: int = DEFAULT_ACCESS_DURATION,
                  access_kind: AccessKind = AccessKind.WRITE) -> list[TaskSpec]:
    """The 10-task / 10-queue workload of Figures 8–13.

    ``accesses_per_job`` is the figures' x-axis "number of shared objects
    accessed"; each job touches that many distinct queues (rotating
    starting offset per task, so contention spreads over all queues).
    """
    if accesses_per_job > max(n_objects, 1):
        raise ValueError("cannot access more distinct objects than exist")
    computes = [
        max(1, int(rng.uniform(0.5, 1.5) * avg_exec)) for _ in range(n_tasks)
    ]
    # Windows consistent with the load target: AL = sum(u_i / C_i) and
    # C_i ≈ 0.95 W_i  =>  W_i ≈ n u_i / (0.95 AL).
    windows = [
        max(10, int(n_tasks * u / max(target_load, 1e-6) / 0.95))
        for u in computes
    ]
    criticals = [int(w * rng.uniform(0.90, 1.0)) for w in windows]
    if tuf_class == "step":
        tufs = step_tuf_mix(criticals)
    elif tuf_class == "hetero":
        tufs = heterogeneous_tuf_mix(criticals)
    else:
        raise ValueError(f"unknown tuf_class {tuf_class!r}")
    tasks = []
    for index in range(n_tasks):
        if n_objects and accesses_per_job:
            accesses = [
                ((index + k) % n_objects, access_duration)
                for k in range(accesses_per_job)
            ]
        else:
            accesses = []
        tasks.append(make_task(
            name=f"T{index}",
            arrival=UAMSpec(min_arrivals=1, max_arrivals=max_arrivals,
                            window=windows[index]),
            tuf=tufs[index],
            compute=computes[index],
            accesses=accesses,
            access_kind=access_kind,
        ))
    return scale_to_load(tasks, target_load)


def scaled_paper_taskset(rng: random.Random, target_load: float,
                         **kwargs) -> list[TaskSpec]:
    """``paper_taskset`` rescaled exactly to ``target_load`` (builders
    already hit it approximately; this pins it for CML bisection)."""
    tasks = paper_taskset(rng, target_load=target_load, **kwargs)
    return scale_to_load(tasks, target_load)


def interference_taskset(rng: random.Random,
                         n_victims: int = 5,
                         n_interferers: int = 5,
                         n_objects: int = 4,
                         max_arrivals: int = 2) -> list[TaskSpec]:
    """Retry-inducing workload for validating Theorem 2.

    *Victims* have long critical times and long lock-free accesses, so
    they are frequently on the CPU mid-access.  *Interferers* have short
    critical times (they preempt whatever runs, under any ECF-ordered
    dispatch) and burst-arrive up to ``max_arrivals`` at a time, writing
    the same objects — each burst can invalidate a victim's in-flight
    access.  The total utilization stays feasible so jobs actually
    interleave instead of being rejected.
    """
    from repro.units import US

    tasks: list[TaskSpec] = []
    for index in range(n_victims):
        window = 4_000 * US + rng.randint(0, 500) * US
        tasks.append(make_task(
            name=f"V{index}",
            arrival=UAMSpec(1, 1, window),
            tuf=step_tuf_mix([window - 100 * US])[0],
            compute=100 * US,
            accesses=[(index % n_objects, 400 * US)],
        ))
    for index in range(n_interferers):
        window = 2_000 * US + rng.randint(0, 300) * US
        tasks.append(make_task(
            name=f"I{index}",
            arrival=UAMSpec(1, max_arrivals, window),
            tuf=step_tuf_mix([500 * US])[0],
            compute=40 * US,
            accesses=[(index % n_objects, 20 * US)],
        ))
    return tasks


def readers_taskset(rng: random.Random,
                    n_readers: int,
                    n_writers: int = 2,
                    n_objects: int = 10,
                    accesses_per_job: int = 2,
                    avg_exec: int = 300 * US,
                    target_load: float | None = None,
                    access_duration: int = DEFAULT_ACCESS_DURATION
                    ) -> list[TaskSpec]:
    """Figure 14's workload: a fixed pool of writer tasks plus an
    increasing number of reader tasks, heterogeneous TUFs.

    If ``target_load`` is None, the load grows with the reader count
    (≈0.1 per task, the paper's "AL = 0.1–1.1" sweep); otherwise the set
    is rescaled to the given AL.
    """
    n_tasks = n_readers + n_writers
    load = target_load if target_load is not None else 0.1 * n_tasks
    computes = [
        max(1, int(rng.uniform(0.5, 1.5) * avg_exec)) for _ in range(n_tasks)
    ]
    windows = [
        max(10, int(n_tasks * u / max(load, 1e-6) / 0.95)) for u in computes
    ]
    criticals = [int(w * rng.uniform(0.90, 1.0)) for w in windows]
    tufs = heterogeneous_tuf_mix(criticals)
    tasks = []
    for index in range(n_tasks):
        kind = AccessKind.WRITE if index < n_writers else AccessKind.READ
        accesses = [
            ((index + k) % n_objects, access_duration)
            for k in range(min(accesses_per_job, n_objects))
        ]
        tasks.append(make_task(
            name=("W" if kind is AccessKind.WRITE else "R") + str(index),
            arrival=UAMSpec(min_arrivals=1, max_arrivals=1,
                            window=windows[index]),
            tuf=tufs[index],
            compute=computes[index],
            accesses=accesses,
            access_kind=kind,
        ))
    return scale_to_load(tasks, load)


# ----------------------------------------------------------------------
# Picklable taskset builders (campaign workers)
# ----------------------------------------------------------------------
#
# The figure campaigns used to close over their sweep variables
# (``def build(rng, m=m): ...``), which pickles neither under ``spawn``
# nor by reference.  A :class:`BuilderSpec` is the declarative
# equivalent: a registered factory name plus frozen keyword arguments,
# so a campaign worker can rebuild the exact same taskset from the spec
# and the trial's own RNG.

WORKLOAD_FACTORIES: dict[str, Any] = {
    "paper": paper_taskset,
    "scaled_paper": scaled_paper_taskset,
    "interference": interference_taskset,
    "readers": readers_taskset,
}


@dataclass(frozen=True)
class BuilderSpec:
    """Picklable ``TasksetBuilder``: ``spec(rng)`` invokes the named
    factory with the frozen keyword arguments."""

    factory: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, factory: str, **params: Any) -> "BuilderSpec":
        if factory not in WORKLOAD_FACTORIES:
            raise ValueError(
                f"unknown workload factory {factory!r}; "
                f"known: {sorted(WORKLOAD_FACTORIES)}")
        return cls(factory=factory, params=tuple(sorted(params.items())))

    def __call__(self, rng: random.Random) -> list[TaskSpec]:
        return WORKLOAD_FACTORIES[self.factory](rng, **dict(self.params))


@dataclass(frozen=True)
class LoadedBuilderSpec:
    """Picklable ``LoadedTasksetBuilder`` for CML bisection:
    ``spec(rng, load)`` forwards the probed load as ``target_load``."""

    factory: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, factory: str, **params: Any) -> "LoadedBuilderSpec":
        if factory not in WORKLOAD_FACTORIES:
            raise ValueError(
                f"unknown workload factory {factory!r}; "
                f"known: {sorted(WORKLOAD_FACTORIES)}")
        return cls(factory=factory, params=tuple(sorted(params.items())))

    def __call__(self, rng: random.Random,
                 load: float) -> list[TaskSpec]:
        return WORKLOAD_FACTORIES[self.factory](
            rng, target_load=load, **dict(self.params))
