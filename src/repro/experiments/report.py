"""ASCII rendering of figure series.

Every figure function prints its series through these helpers; the same
text is captured into EXPERIMENTS.md as the paper-vs-measured record.
"""

from __future__ import annotations

from repro.experiments.stats import Series


def format_series_table(title: str, x_label: str,
                        series: list[Series],
                        x_format: str = "{:g}",
                        show_n: bool = False) -> str:
    """Render aligned columns: x, then one ``mean ± ci`` column per
    series.

    ``show_n`` appends each estimate's sample count — campaigns that
    dropped failed trials render with it so a thinned point (or an empty
    ``n=0`` one) is visible in the artifact, not silently averaged over.
    """
    header = [x_label] + [s.label for s in series]
    rows: list[list[str]] = []
    xs = series[0].xs if series else []
    for s in series:
        if s.xs != xs:
            raise ValueError(
                f"series {s.label!r} has mismatched x values"
            )
    for index, x in enumerate(xs):
        row = [x_format.format(x)]
        for s in series:
            est = s.estimates[index]
            cell = f"{est.mean:8.4f} ±{est.ci:7.4f}"
            if show_n:
                cell += f" n={est.n}"
            row.append(cell)
        rows.append(row)
    widths = [
        max(len(header[col]), *(len(r[col]) for r in rows)) if rows
        else len(header[col])
        for col in range(len(header))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_scalar_rows(title: str, rows: list[tuple[str, str]]) -> str:
    """Simple two-column key/value block."""
    width = max((len(k) for k, _ in rows), default=0)
    lines = [title, "=" * len(title)]
    for key, value in rows:
        lines.append(f"{key.ljust(width)}  {value}")
    return "\n".join(lines)
