"""CML-under-faults campaign: graceful degradation under burst storms.

The paper's evaluation (Figures 9–13) only exercises UAM-*conformant*
workloads.  This campaign measures what happens when the premise breaks:
seeded out-of-spec arrival bursts of increasing intensity are injected
into the Figure 10 workload under lock-free RUA, with the runtime
invariant monitors attached and the bounded-retry guard armed, and the
accrued utility ratio is tracked with the UAM admission guard **on**
(out-of-spec arrivals shed) versus **off** (everything admitted).

The expected shape — the acceptance criterion of the fault-injection
layer — is *graceful* decline: no crash, no unbounded retry loop, AUR
falling smoothly with burst intensity, and the shedding guard holding
utility above the unguarded kernel at every intensity level.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.experiments.figures import FigureResult, _seeds
from repro.experiments.runner import run_once
from repro.experiments.stats import Series
from repro.experiments.workloads import paper_taskset
from repro.faults.degradation import AdmissionPolicy, RetryGuard, ShedMode
from repro.faults.plan import FaultPlan
from repro.faults.report import DegradationReport
from repro.units import MS


@dataclass
class DegradationCampaign:
    """A :class:`FigureResult` plus the per-level degradation evidence."""

    figure: FigureResult
    #: ``reports[level]`` -> list of (guarded, unguarded) report pairs,
    #: one pair per repeat seed.
    reports: dict[int, list[tuple[DegradationReport, DegradationReport]]] = (
        field(default_factory=dict)
    )

    def render(self) -> str:
        lines = [self.figure.render(), "", "per-level degradation:"]
        for level, pairs in sorted(self.reports.items()):
            shed = sum(g.shed_jobs for g, _ in pairs)
            injected = sum(g.injected_arrivals for g, _ in pairs)
            aborts = sum(u.retry_aborts for _, u in pairs)
            guarded_viol = sum(len(g.violations) for g, _ in pairs)
            unguarded_viol = sum(len(u.violations) for _, u in pairs)
            lines.append(
                f"  bursts/task={level}: injected={injected} "
                f"shed={shed} retry-aborts(unguarded)={aborts} "
                f"violations guarded/unguarded="
                f"{guarded_viol}/{unguarded_viol}"
            )
        return "\n".join(lines)


def cml_under_faults(burst_levels: tuple[int, ...] = (0, 1, 2, 4, 8),
                     repeats: int = 3, horizon: int = 60 * MS,
                     load: float = 0.8, burst_size: int = 2,
                     max_retries: int = 8,
                     base_seed: int = 700) -> DegradationCampaign:
    """AUR vs injected burst intensity, shedding on vs off.

    Each level injects ``burst_levels[k]`` bursts of ``burst_size``
    simultaneous extra arrivals per task — all beyond the tasks' UAM
    ``a_i`` budgets.  Both arms run lock-free RUA with monitors and a
    bounded-retry guard; only the admission guard differs.
    """
    guarded = Series(label="AUR shed on")
    unguarded = Series(label="AUR shed off")
    violations = Series(label="violations (shed off)")
    retry_guard = RetryGuard(max_retries=max_retries)
    campaign = DegradationCampaign(figure=FigureResult(
        figure="CML under faults",
        title=f"Accrued Utility Under Arrival-Burst Faults (AL≈{load})",
        x_label="bursts/task",
    ))
    for level in burst_levels:
        g_values: list[float] = []
        u_values: list[float] = []
        v_values: list[float] = []
        pairs: list[tuple[DegradationReport, DegradationReport]] = []
        for seed in _seeds(repeats, base_seed):
            rng = random.Random(seed)
            tasks = paper_taskset(rng, accesses_per_job=2,
                                  target_load=load)
            plan = (FaultPlan.burst_storm(seed + 13, len(tasks), horizon,
                                          bursts_per_task=level,
                                          burst_size=burst_size)
                    if level else FaultPlan(seed=seed + 13))
            shared = dict(fault_plan=plan, retry_guard=retry_guard,
                          monitors=True)
            g_result = run_once(tasks, "lockfree", horizon,
                                random.Random(seed + 1),
                                admission=AdmissionPolicy(ShedMode.SHED),
                                **shared)
            u_result = run_once(tasks, "lockfree", horizon,
                                random.Random(seed + 1), **shared)
            g_values.append(g_result.aur)
            u_values.append(u_result.aur)
            v_values.append(float(len(u_result.degradation.violations)))
            pairs.append((g_result.degradation, u_result.degradation))
        guarded.add(level, g_values)
        unguarded.add(level, u_values)
        violations.add(level, v_values)
        campaign.reports[level] = pairs
    campaign.figure.series = [guarded, unguarded, violations]
    campaign.figure.notes = (
        "Expected shape: AUR declines gracefully with burst intensity; "
        "shedding keeps it above the unguarded kernel."
    )
    return campaign
