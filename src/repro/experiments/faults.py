"""CML-under-faults campaign: graceful degradation under burst storms.

The paper's evaluation (Figures 9–13) only exercises UAM-*conformant*
workloads.  This campaign measures what happens when the premise breaks:
seeded out-of-spec arrival bursts of increasing intensity are injected
into the Figure 10 workload under lock-free RUA, with the runtime
invariant monitors attached and the bounded-retry guard armed, and the
accrued utility ratio is tracked with the UAM admission guard **on**
(out-of-spec arrivals shed) versus **off** (everything admitted).

The expected shape — the acceptance criterion of the fault-injection
layer — is *graceful* decline: no crash, no unbounded retry loop, AUR
falling smoothly with burst intensity, and the shedding guard holding
utility above the unguarded kernel at every intensity level.

Like the figure campaigns, the trial grid — ``(level, seed)`` pairs, one
guarded + one unguarded kernel run each — routes through the resilient
campaign engine when ``campaign=`` is supplied; every trial derives all
randomness from its own seed, so parallel and serial campaigns agree.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.campaign import CampaignConfig, CampaignEngine
from repro.experiments.figures import FigureResult, _engine_for, _seeds
from repro.experiments.runner import run_once
from repro.experiments.stats import Series
from repro.experiments.workloads import paper_taskset
from repro.faults.degradation import AdmissionPolicy, RetryGuard, ShedMode
from repro.faults.plan import FaultPlan
from repro.faults.report import DegradationReport
from repro.sim.metrics import SimulationResult
from repro.units import MS


@dataclass
class DegradationCampaign:
    """A :class:`FigureResult` plus the per-level degradation evidence."""

    figure: FigureResult
    #: ``reports[level]`` -> list of (guarded, unguarded) report pairs,
    #: one pair per repeat seed.
    reports: dict[int, list[tuple[DegradationReport, DegradationReport]]] = (
        field(default_factory=dict)
    )

    def render(self) -> str:
        lines = [self.figure.render(), "", "per-level degradation:"]
        for level, pairs in sorted(self.reports.items()):
            shed = sum(g.shed_jobs for g, _ in pairs)
            injected = sum(g.injected_arrivals for g, _ in pairs)
            aborts = sum(u.retry_aborts for _, u in pairs)
            guarded_viol = sum(len(g.violations) for g, _ in pairs)
            unguarded_viol = sum(len(u.violations) for _, u in pairs)
            lines.append(
                f"  bursts/task={level}: injected={injected} "
                f"shed={shed} retry-aborts(unguarded)={aborts} "
                f"violations guarded/unguarded="
                f"{guarded_viol}/{unguarded_viol}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable summary (the CLI's ``--json`` payload)."""
        levels = {}
        for level, pairs in sorted(self.reports.items()):
            levels[str(level)] = {
                "injected": sum(g.injected_arrivals for g, _ in pairs),
                "shed": sum(g.shed_jobs for g, _ in pairs),
                "retry_aborts_unguarded": sum(u.retry_aborts
                                              for _, u in pairs),
                "violations_guarded": sum(len(g.violations)
                                          for g, _ in pairs),
                "violations_unguarded": sum(len(u.violations)
                                            for _, u in pairs),
            }
        payload = self.figure.to_dict()
        payload["degradation_levels"] = levels
        return payload


def faults_trial(level: int, seed: int, horizon: int, load: float,
                 burst_size: int, max_retries: int
                 ) -> tuple[SimulationResult, SimulationResult]:
    """One (level, seed) cell: the guarded and unguarded kernel runs.
    Module-level and picklable; all randomness derives from ``seed``."""
    retry_guard = RetryGuard(max_retries=max_retries)
    rng = random.Random(seed)
    tasks = paper_taskset(rng, accesses_per_job=2, target_load=load)
    plan = (FaultPlan.burst_storm(seed + 13, len(tasks), horizon,
                                  bursts_per_task=level,
                                  burst_size=burst_size)
            if level else FaultPlan(seed=seed + 13))
    shared = dict(faults=plan, retry_guard=retry_guard,
                  monitors=True)
    g_result = run_once(tasks, "lockfree", horizon,
                        random.Random(seed + 1),
                        admission=AdmissionPolicy(ShedMode.SHED),
                        **shared)
    u_result = run_once(tasks, "lockfree", horizon,
                        random.Random(seed + 1), **shared)
    return g_result, u_result


def cml_under_faults(burst_levels: tuple[int, ...] = (0, 1, 2, 4, 8),
                     repeats: int = 3, horizon: int = 60 * MS,
                     load: float = 0.8, burst_size: int = 2,
                     max_retries: int = 8,
                     base_seed: int = 700,
                     campaign: "CampaignConfig | CampaignEngine | None" = None
                     ) -> DegradationCampaign:
    """AUR vs injected burst intensity, shedding on vs off.

    Each level injects ``burst_levels[k]`` bursts of ``burst_size``
    simultaneous extra arrivals per task — all beyond the tasks' UAM
    ``a_i`` budgets.  Both arms run lock-free RUA with monitors and a
    bounded-retry guard; only the admission guard differs.
    """
    engine, owned = _engine_for(campaign, tag="faults")
    guarded = Series(label="AUR shed on")
    unguarded = Series(label="AUR shed off")
    violations = Series(label="violations (shed off)")
    result = DegradationCampaign(figure=FigureResult(
        figure="CML under faults",
        title=f"Accrued Utility Under Arrival-Burst Faults (AL≈{load})",
        x_label="bursts/task",
    ))
    for level in burst_levels:
        seeds = _seeds(repeats, base_seed)
        if engine is None:
            cells = [
                faults_trial(level, seed, horizon, load, burst_size,
                             max_retries)
                for seed in seeds
            ]
        else:
            cells = engine.map(
                faults_trial,
                [(level, seed, horizon, load, burst_size, max_retries)
                 for seed in seeds],
            ).values
        g_values = [g.aur for g, _ in cells]
        u_values = [u.aur for _, u in cells]
        v_values = [float(len(u.degradation.violations)) for _, u in cells]
        guarded.add(level, g_values)
        unguarded.add(level, u_values)
        violations.add(level, v_values)
        result.reports[level] = [(g.degradation, u.degradation)
                                 for g, u in cells]
    result.figure.series = [guarded, unguarded, violations]
    result.figure.notes = (
        "Expected shape: AUR declines gracefully with burst intensity; "
        "shedding keeps it above the unguarded kernel."
    )
    if engine is not None:
        result.figure.campaign = engine.stats()
        if owned:
            engine.close()
    return result
