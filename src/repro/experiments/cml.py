"""Critical-time-Miss Load measurement (Section 6.1).

The CML of a scheduler is "the approximate load *after which* the
scheduler begins to miss task critical times".  We measure it by
bisecting the approximate load: a load is *clean* when, across the seeded
trials, the critical-time-meet ratio stays at (or above) a tolerance-
adjusted 100 %.  The CML is the highest clean load found.

Object access time is excluded from AL by definition (the taskset
builders already define AL over pure compute time), so the gap between a
scheduler's CML and the ideal 1.0 exposes exactly the scheduler +
synchronization overhead the figure is about.

The bisection itself is inherently sequential (each probe depends on the
last verdict), but the seeded trials *within* one probe are independent
and route through the campaign engine when one is supplied — the probe's
verdict is then computed from whichever trials succeeded, and a trial
that failed terminally (crash/timeout past its retry budget) makes the
probed load count as not-clean, the conservative direction.
"""

from __future__ import annotations

import random
import statistics
from typing import TYPE_CHECKING, Callable

from repro.experiments.runner import run_once
from repro.tasks.task import TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign import CampaignConfig, CampaignEngine

LoadedTasksetBuilder = Callable[[random.Random, float], list[TaskSpec]]


def cml_probe_trial(build_tasks: LoadedTasksetBuilder, sync: str,
                    horizon: int, load: float, seed: int,
                    arrival_style: str) -> tuple[bool, float]:
    """One seeded probe trial: ``(any jobs finished, cmr)``.  Module-level
    and picklable for campaign workers."""
    rng = random.Random(seed)
    tasks = build_tasks(rng, load)
    result = run_once(tasks, sync, horizon, rng,
                      arrival_style=arrival_style)
    return bool(result.records), result.cmr


def _clean_at(build_tasks: LoadedTasksetBuilder, sync: str, horizon: int,
              load: float, seeds: list[int], tolerance: float,
              arrival_style: str,
              engine: "CampaignEngine | None" = None) -> bool:
    if engine is None:
        ratios = []
        for seed in seeds:
            populated, cmr = cml_probe_trial(build_tasks, sync, horizon,
                                             load, seed, arrival_style)
            if not populated:
                return False
            ratios.append(cmr)
        return statistics.fmean(ratios) >= 1.0 - tolerance
    batch = engine.map(
        cml_probe_trial,
        [(build_tasks, sync, horizon, load, seed, arrival_style)
         for seed in seeds],
    )
    values = batch.values
    if len(values) < len(seeds):          # lost trials: conservative
        return False
    if any(not populated for populated, _ in values):
        return False
    return statistics.fmean(cmr for _, cmr in values) >= 1.0 - tolerance


def measure_cml(build_tasks: LoadedTasksetBuilder, sync: str, horizon: int,
                seeds: list[int],
                low: float = 0.02, high: float = 1.2,
                iterations: int = 8, tolerance: float = 0.002,
                arrival_style: str = "uniform",
                campaign: "CampaignConfig | CampaignEngine | None" = None
                ) -> float:
    """Bisect for the highest clean load in ``[low, high]``.

    Returns ``low`` if even the lowest probed load misses (a scheduler
    whose overhead swamps the workload), or ``high`` if nothing misses in
    range.  ``campaign`` routes each probe's seeded trials through the
    resilient engine (the builder must then be picklable, e.g. a
    :class:`repro.experiments.workloads.LoadedBuilderSpec`).
    """
    from repro.campaign import as_engine

    engine = as_engine(campaign, tag=f"cml:{sync}")
    if not _clean_at(build_tasks, sync, horizon, low, seeds, tolerance,
                     arrival_style, engine):
        return low
    if _clean_at(build_tasks, sync, horizon, high, seeds, tolerance,
                 arrival_style, engine):
        return high
    lo, hi = low, high
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        if _clean_at(build_tasks, sync, horizon, mid, seeds, tolerance,
                     arrival_style, engine):
            lo = mid
        else:
            hi = mid
    return lo
