"""Critical-time-Miss Load measurement (Section 6.1).

The CML of a scheduler is "the approximate load *after which* the
scheduler begins to miss task critical times".  We measure it by
bisecting the approximate load: a load is *clean* when, across the seeded
trials, the critical-time-meet ratio stays at (or above) a tolerance-
adjusted 100 %.  The CML is the highest clean load found.

Object access time is excluded from AL by definition (the taskset
builders already define AL over pure compute time), so the gap between a
scheduler's CML and the ideal 1.0 exposes exactly the scheduler +
synchronization overhead the figure is about.
"""

from __future__ import annotations

import random
import statistics
from typing import Callable

from repro.experiments.runner import run_once
from repro.tasks.task import TaskSpec

LoadedTasksetBuilder = Callable[[random.Random, float], list[TaskSpec]]


def _clean_at(build_tasks: LoadedTasksetBuilder, sync: str, horizon: int,
              load: float, seeds: list[int], tolerance: float,
              arrival_style: str) -> bool:
    ratios = []
    for seed in seeds:
        rng = random.Random(seed)
        tasks = build_tasks(rng, load)
        result = run_once(tasks, sync, horizon, rng,
                          arrival_style=arrival_style)
        if not result.records:
            return False
        ratios.append(result.cmr)
    return statistics.fmean(ratios) >= 1.0 - tolerance


def measure_cml(build_tasks: LoadedTasksetBuilder, sync: str, horizon: int,
                seeds: list[int],
                low: float = 0.02, high: float = 1.2,
                iterations: int = 8, tolerance: float = 0.002,
                arrival_style: str = "uniform") -> float:
    """Bisect for the highest clean load in ``[low, high]``.

    Returns ``low`` if even the lowest probed load misses (a scheduler
    whose overhead swamps the workload), or ``high`` if nothing misses in
    range.
    """
    if not _clean_at(build_tasks, sync, horizon, low, seeds, tolerance,
                     arrival_style):
        return low
    if _clean_at(build_tasks, sync, horizon, high, seeds, tolerance,
                 arrival_style):
        return high
    lo, hi = low, high
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        if _clean_at(build_tasks, sync, horizon, mid, seeds, tolerance,
                     arrival_style):
            lo = mid
        else:
            hi = mid
    return lo
