"""Experiment harness regenerating the paper's evaluation.

One function per figure (:mod:`repro.experiments.figures`), built on:

* :mod:`repro.experiments.workloads` — the paper's task sets (10 tasks /
  10 shared queues, step or heterogeneous TUF classes, controlled AL);
* :mod:`repro.experiments.runner` — seeded repetition;
* :mod:`repro.experiments.stats` — means and 95 % confidence intervals
  (the paper reports 95 % CIs on every data point);
* :mod:`repro.experiments.cml` — the Critical-time-Miss Load search of
  Section 6.1;
* :mod:`repro.experiments.report` — ASCII rendering of each figure's
  series, the shape-comparison artifact recorded in EXPERIMENTS.md.
"""

from repro.experiments.stats import Estimate, estimate, Series
from repro.experiments.workloads import (
    paper_taskset,
    readers_taskset,
    scaled_paper_taskset,
)
from repro.experiments.runner import run_many, run_once
from repro.experiments.cml import measure_cml
from repro.experiments.report import format_series_table

__all__ = [
    "Estimate",
    "estimate",
    "Series",
    "paper_taskset",
    "scaled_paper_taskset",
    "readers_taskset",
    "run_once",
    "run_many",
    "measure_cml",
    "format_series_table",
]
