"""Statistics helpers: means with 95 % confidence intervals.

The paper reports each data point with a 95 % confidence interval
(footnotes 8/9).  We use the Student-t interval, matching the small
repeat counts of simulation campaigns.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field

try:  # scipy is available in the reference environment; fall back to a
    # normal-approximation table if not.
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


def _t_critical(dof: int, confidence: float = 0.95) -> float:
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))
    # Coarse fallback: normal quantile (fine for dof >= 30, conservative
    # enough below).
    return 1.96 if confidence == 0.95 else 2.58


@dataclass(frozen=True)
class Estimate:
    """Sample mean with a symmetric 95 % confidence half-width."""

    mean: float
    ci: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.ci

    @property
    def high(self) -> float:
        return self.mean + self.ci

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci:.2g}"


def estimate(values: list[float], confidence: float = 0.95) -> Estimate:
    """Mean and t-interval half-width of a sample."""
    if not values:
        raise ValueError("cannot estimate from an empty sample")
    n = len(values)
    mean = statistics.fmean(values)
    if n == 1:
        return Estimate(mean=mean, ci=0.0, n=1)
    stdev = statistics.stdev(values)
    half = _t_critical(n - 1, confidence) * stdev / math.sqrt(n)
    return Estimate(mean=mean, ci=half, n=n)


@dataclass
class Series:
    """One labeled curve of a figure: x values and per-x estimates.

    A point may carry an *empty* sample (``n == 0``, NaN mean): that is
    how a campaign whose every trial at some x failed degrades — the
    point stays in the table, visibly hollow, instead of crashing the
    aggregation (mirroring ``SimulationResult.degradation``)."""

    label: str
    xs: list[float] = field(default_factory=list)
    estimates: list[Estimate] = field(default_factory=list)

    def add(self, x: float, values: list[float]) -> None:
        self.xs.append(x)
        if values:
            self.estimates.append(estimate(values))
        else:
            self.estimates.append(Estimate(mean=math.nan, ci=0.0, n=0))

    def means(self) -> list[float]:
        return [e.mean for e in self.estimates]

    def at(self, x: float) -> Estimate:
        return self.estimates[self.xs.index(x)]

    @property
    def total_n(self) -> int:
        """Total sample count across all points (campaign N bookkeeping)."""
        return sum(e.n for e in self.estimates)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "xs": list(self.xs),
            "estimates": [
                {"mean": e.mean, "ci": e.ci, "n": e.n}
                for e in self.estimates
            ],
        }
