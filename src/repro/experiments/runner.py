"""Seeded simulation repetition.

Each trial builds a fresh task set and arrival trace from its own RNG
stream (so repeats vary workload *and* arrivals, like re-running the
paper's campaign) and runs one kernel.  Everything is deterministic in
the base seed.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.api import build_policy_and_mode
from repro.arrivals.generators import generator_for
from repro.faults.degradation import AdmissionPolicy, RetryGuard
from repro.faults.plan import FaultPlan
from repro.sim.kernel import Kernel, SimulationConfig
from repro.sim.metrics import SimulationResult
from repro.sim.objects import RetryPolicy
from repro.tasks.task import TaskSpec

TasksetBuilder = Callable[[random.Random], list[TaskSpec]]


def run_once(tasks: list[TaskSpec], sync: str, horizon: int,
             rng: random.Random, arrival_style: str = "uniform",
             retry_policy: RetryPolicy = RetryPolicy.ON_CONFLICT,
             trace: bool = False,
             fault_plan: "FaultPlan | None" = None,
             admission: "AdmissionPolicy | None" = None,
             retry_guard: "RetryGuard | None" = None,
             monitors: bool = False) -> SimulationResult:
    """One simulation of a concrete task set.  The optional fault layer
    arguments mirror :class:`repro.sim.kernel.SimulationConfig`."""
    traces = [
        generator_for(task.arrival, arrival_style).generate(rng, horizon)
        for task in tasks
    ]
    policy, mode, costs = build_policy_and_mode(sync)
    config = SimulationConfig(
        tasks=tasks,
        arrival_traces=traces,
        policy=policy,
        horizon=horizon,
        sync=mode,
        costs=costs,
        retry_policy=retry_policy,
        trace=trace,
        fault_plan=fault_plan,
        admission=admission,
        retry_guard=retry_guard,
        monitors=monitors,
    )
    return Kernel(config).run()


def run_many(build_tasks: TasksetBuilder, sync: str, horizon: int,
             seeds: list[int], arrival_style: str = "uniform",
             retry_policy: RetryPolicy = RetryPolicy.ON_CONFLICT
             ) -> list[SimulationResult]:
    """One simulation per seed, fresh workload each."""
    results = []
    for seed in seeds:
        rng = random.Random(seed)
        tasks = build_tasks(rng)
        results.append(run_once(tasks, sync, horizon, rng,
                                arrival_style=arrival_style,
                                retry_policy=retry_policy))
    return results
