"""Seeded simulation repetition.

Each trial builds a fresh task set and arrival trace from its own RNG
stream (so repeats vary workload *and* arrivals, like re-running the
paper's campaign) and runs one kernel.  Everything is deterministic in
the base seed.

**Determinism contract (DESIGN.md §9):** the RNG stream of trial ``k``
is ``random.Random(seeds[k])`` — a pure function of that trial's own
seed, never of shared-RNG draw order or of which trial ran before it.
That is what makes serial, parallel (``CampaignEngine`` with
``workers > 1``), retried and resumed campaigns agree on every result;
``tests/experiments/test_runner_campaign.py`` pins the property.  Trial
functions that a campaign fans out (:func:`simulation_trial`) are
module-level and take only picklable arguments, so the builder must be a
picklable callable — use
:class:`repro.experiments.workloads.BuilderSpec` rather than a closure.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.api import _coalesce_deprecated, simulate
from repro.arrivals.generators import generator_for
from repro.campaign import CampaignConfig, CampaignEngine, as_engine
from repro.campaign.spec import TrialSpec
from repro.faults.degradation import AdmissionPolicy, RetryGuard
from repro.faults.plan import FaultPlan
from repro.scenario import Scenario
from repro.sim.metrics import SimulationResult
from repro.sim.objects import RetryPolicy
from repro.tasks.task import TaskSpec

TasksetBuilder = Callable[[random.Random], list[TaskSpec]]


def run_once(tasks: list[TaskSpec], sync: str, horizon: int,
             rng: random.Random, arrival_style: str = "uniform",
             retry_policy: RetryPolicy = RetryPolicy.ON_CONFLICT,
             trace: bool = False,
             faults: "FaultPlan | None" = None,
             fault_plan: "FaultPlan | None" = None,
             admission: "AdmissionPolicy | None" = None,
             retry_guard: "RetryGuard | None" = None,
             monitors: bool = False,
             observer=None,
             obs=None) -> SimulationResult:
    """One simulation of a concrete task set: a thin wrapper over
    :func:`repro.api.simulate`.

    The caller owns ``rng`` (it may be mid-stream), so the arrival
    traces are drawn here and handed to the Scenario explicitly rather
    than re-derived from a seed.  The optional fault layer and
    ``observer`` arguments mirror
    :class:`repro.sim.kernel.SimulationConfig`; ``fault_plan=`` and
    ``obs=`` are deprecated spellings of ``faults=`` / ``observer=``.
    """
    faults = _coalesce_deprecated("faults", faults, "fault_plan",
                                  fault_plan)
    observer = _coalesce_deprecated("observer", observer, "obs", obs)
    traces = [
        generator_for(task.arrival, arrival_style).generate(rng, horizon)
        for task in tasks
    ]
    scenario = Scenario(
        sync=sync,
        horizon=horizon,
        tasks=tuple(tasks),
        arrival_traces=tuple(tuple(trace) for trace in traces),
        retry_policy=retry_policy,
        trace=trace,
        faults=faults,
        admission=admission,
        retry_guard=retry_guard,
        monitors=monitors,
    )
    return simulate(scenario, observer=observer).result


def simulation_trial(build_tasks: TasksetBuilder, sync: str, horizon: int,
                     seed: int, arrival_style: str = "uniform",
                     retry_policy: RetryPolicy = RetryPolicy.ON_CONFLICT
                     ) -> SimulationResult:
    """One self-contained campaign trial: taskset + arrivals + kernel,
    all derived from ``seed`` alone.  Module-level so worker processes
    can unpickle it."""
    rng = random.Random(seed)
    tasks = build_tasks(rng)
    return run_once(tasks, sync, horizon, rng,
                    arrival_style=arrival_style,
                    retry_policy=retry_policy)


def run_many(build_tasks: TasksetBuilder, sync: str, horizon: int,
             seeds: list[int], arrival_style: str = "uniform",
             retry_policy: RetryPolicy = RetryPolicy.ON_CONFLICT,
             campaign: "CampaignConfig | CampaignEngine | None" = None
             ) -> list[SimulationResult]:
    """One simulation per seed, fresh workload each.

    With ``campaign`` unset this is the plain serial loop.  With a
    :class:`~repro.campaign.CampaignConfig` or a shared
    :class:`~repro.campaign.CampaignEngine`, trials route through the
    resilient engine instead: parallel workers, per-trial timeouts,
    retry with backoff, journaling.  Failed trials are *dropped* from
    the returned list (graceful degradation); consult the engine's
    ``stats()`` for failure counts.
    """
    engine = as_engine(campaign, tag=f"run_many:{sync}")
    if engine is None:
        return [
            simulation_trial(build_tasks, sync, horizon, seed,
                             arrival_style=arrival_style,
                             retry_policy=retry_policy)
            for seed in seeds
        ]
    specs = [
        TrialSpec(index=k, fn=simulation_trial,
                  args=(build_tasks, sync, horizon, seed),
                  kwargs=(("arrival_style", arrival_style),
                          ("retry_policy", retry_policy)))
        for k, seed in enumerate(seeds)
    ]
    return engine.run(specs).values
