"""Declarative, seed-driven fault plans.

A :class:`FaultPlan` is an immutable description of every perturbation a
run should suffer.  Plans are pure data: the same plan replayed against
the same :class:`~repro.sim.kernel.SimulationConfig` produces the *same*
faults at the same instants, which is what makes degraded runs debuggable
and the acceptance tests reproducible.

Five injector families mirror the ways a real embedded system misbehaves:

* :class:`SegmentOverrun` — a job segment executes longer than its
  declared WCET (the ``c_i`` the analysis trusts);
* :class:`ArrivalBurst` — extra releases beyond the task's UAM ``a_i``
  budget (the premise of Theorems 2/3 and Lemmas 4/5);
* :class:`SpuriousRetry` — adversarial invalidation of in-flight
  lock-free accesses on preemption (retry storms; Alistarh et al. show
  retry behaviour is scheduler-dependent in exactly this regime);
* :class:`TimerFault` — a critical-time timer fires late or never
  (Section 3.5's abortion model silently disarmed);
* :class:`CostJitter` — multiplicative noise on the fixed
  :class:`~repro.sim.overheads.KernelCosts` charges (cost-model drift).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

ObjectId = int | str


@dataclass(frozen=True)
class SegmentOverrun:
    """Stretch matching segments by ``extra`` ticks past their WCET.

    ``jid``/``segment_index`` of ``None`` match every job / segment of
    the task.  The overrun is applied once per (job, segment) instance.
    """

    task: str
    extra: int
    jid: int | None = None
    segment_index: int | None = None

    def __post_init__(self) -> None:
        if self.extra <= 0:
            raise ValueError("overrun extra must be positive")

    def matches(self, task_name: str, jid: int, segment_index: int) -> bool:
        return (self.task == task_name
                and (self.jid is None or self.jid == jid)
                and (self.segment_index is None
                     or self.segment_index == segment_index))


@dataclass(frozen=True)
class ArrivalBurst:
    """``count`` extra releases of task ``task_index`` at ``time`` —
    deliberately *not* checked against the task's UAM envelope."""

    task_index: int
    time: int
    count: int = 1

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("burst time must be non-negative")
        if self.count < 1:
            raise ValueError("burst count must be at least 1")


@dataclass(frozen=True)
class SpuriousRetry:
    """Invalidate up to ``times`` in-flight lock-free accesses of
    matching jobs at preemption (an adversary committing a conflicting
    write during every preemption window).

    ``task`` of ``None`` matches any task; ``obj`` of ``None`` matches
    any object.
    """

    times: int
    task: str | None = None
    obj: ObjectId | None = None

    def __post_init__(self) -> None:
        if self.times < 1:
            raise ValueError("times must be at least 1")

    def matches(self, task_name: str, obj: ObjectId) -> bool:
        return ((self.task is None or self.task == task_name)
                and (self.obj is None or self.obj == obj))


@dataclass(frozen=True)
class TimerFault:
    """Drop (``drop=True``) or delay (``delay`` ticks) the critical-time
    timer of matching jobs.  ``jid`` of ``None`` matches every job."""

    task: str
    jid: int | None = None
    delay: int = 0
    drop: bool = False

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("timer delay must be non-negative")
        if not self.drop and self.delay == 0:
            raise ValueError("a timer fault must drop or delay")

    def matches(self, task_name: str, jid: int) -> bool:
        return self.task == task_name and (self.jid is None
                                           or self.jid == jid)


@dataclass(frozen=True)
class CostJitter:
    """Multiplicative uniform jitter of ±``magnitude`` on every fixed
    kernel cost charge (context switch, lock bookkeeping, CAS, timer
    service).  Drawn from the plan's seeded stream, so deterministic."""

    magnitude: float

    def __post_init__(self) -> None:
        if not 0.0 < self.magnitude <= 1.0:
            raise ValueError("jitter magnitude must be in (0, 1]")


@dataclass(frozen=True)
class FaultPlan:
    """The complete, immutable fault schedule of one run."""

    seed: int = 0
    overruns: tuple[SegmentOverrun, ...] = ()
    bursts: tuple[ArrivalBurst, ...] = ()
    spurious_retries: tuple[SpuriousRetry, ...] = ()
    timer_faults: tuple[TimerFault, ...] = ()
    jitter: CostJitter | None = None

    @property
    def empty(self) -> bool:
        return (not self.overruns and not self.bursts
                and not self.spurious_retries and not self.timer_faults
                and self.jitter is None)

    # ------------------------------------------------------------------
    # Seeded generators
    # ------------------------------------------------------------------

    @classmethod
    def burst_storm(cls, seed: int, n_tasks: int, horizon: int,
                    bursts_per_task: int, burst_size: int = 2,
                    **extra) -> "FaultPlan":
        """Out-of-spec arrival bursts at seeded-random instants.

        Each task receives ``bursts_per_task`` bursts of ``burst_size``
        simultaneous extra releases, landing uniformly in the middle 80 %
        of the horizon (so boundary effects don't mask the overload).
        Additional plan fields pass through ``extra``.
        """
        if n_tasks < 1:
            raise ValueError("need at least one task")
        rng = random.Random(seed)
        bursts = []
        lo, hi = horizon // 10, max(horizon // 10 + 1, 9 * horizon // 10)
        for task_index in range(n_tasks):
            for _ in range(bursts_per_task):
                bursts.append(ArrivalBurst(
                    task_index=task_index,
                    time=rng.randrange(lo, hi),
                    count=burst_size,
                ))
        bursts.sort(key=lambda b: (b.time, b.task_index))
        return cls(seed=seed, bursts=tuple(bursts), **extra)

    @classmethod
    def retry_storm(cls, seed: int, times_per_task: int,
                    task_names: Sequence[str] | None = None,
                    **extra) -> "FaultPlan":
        """Adversarial invalidation budget for every (or the named)
        task(s)."""
        if task_names is None:
            retries = (SpuriousRetry(times=times_per_task),)
        else:
            retries = tuple(SpuriousRetry(times=times_per_task, task=name)
                            for name in task_names)
        return cls(seed=seed, spurious_retries=retries, **extra)
