"""Graceful-degradation policies: UAM admission guarding and bounded
retries.

The paper's analytical results (Theorems 2/3, Lemmas 4/5) are premised on
every task honouring its declared UAM ``<l, a, W>`` envelope and on
lock-free accesses retrying a bounded number of times.  When inputs break
those premises the kernel should *degrade*, not corrupt the analysis:

* the :class:`AdmissionGuard` detects arrivals that exceed the UAM max
  bound as they happen (online sliding-window check, the runtime twin of
  :func:`repro.arrivals.validate.check_uam`) and either **sheds** them or
  **defers** them to the earliest conforming instant;
* the :class:`RetryGuard` bounds lock-free retries: each retry beyond the
  first is charged a configurable backoff, and after ``max_retries``
  retries of one access the job is aborted through the paper's
  Section 3.5 abortion model (handler time charged, zero utility) instead
  of spinning unboundedly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.arrivals.validate import OnlineWindowCounter
from repro.faults.report import DegradationReport
from repro.tasks.task import TaskSpec


class ShedMode(enum.Enum):
    """What to do with an out-of-spec arrival."""

    SHED = "shed"       # reject: the job is never released
    DEFER = "defer"     # re-release at the earliest conforming instant


@dataclass(frozen=True)
class AdmissionPolicy:
    """Configuration of the UAM admission guard."""

    mode: ShedMode = ShedMode.SHED


class Decision(enum.Enum):
    ADMIT = "admit"
    SHED = "shed"
    DEFER = "defer"


class AdmissionGuard:
    """Per-run UAM admission state: one online window counter per task."""

    def __init__(self, tasks: Sequence[TaskSpec], policy: AdmissionPolicy,
                 report: DegradationReport) -> None:
        self.policy = policy
        self.report = report
        self._counters = [
            OnlineWindowCounter(window=task.arrival.window,
                                limit=task.arrival.max_arrivals)
            for task in tasks
        ]

    def decide(self, task_index: int, now: int) -> tuple[Decision, int]:
        """Judge one arrival of ``task_index`` at ``now``.

        Returns ``(ADMIT, now)`` — and records the admission — or
        ``(SHED, now)`` / ``(DEFER, retry_time)`` per the policy.  The
        caller re-submits a deferred arrival at ``retry_time``, where it
        is judged again (other admissions may have happened meanwhile).
        """
        counter = self._counters[task_index]
        if counter.would_conform(now):
            counter.admit(now)
            return Decision.ADMIT, now
        if self.policy.mode is ShedMode.SHED:
            self.report.shed_jobs += 1
            return Decision.SHED, now
        retry_time = counter.earliest_admissible(now)
        self.report.deferred_jobs += 1
        self.report.deferred_delay_total += retry_time - now
        return Decision.DEFER, retry_time

    def admitted_times(self, task_index: int) -> tuple[int, ...]:
        """Release times actually admitted for a task — by construction a
        UAM-max-conformant trace (tests verify with ``check_uam``)."""
        return self._counters[task_index].admitted_times


@dataclass(frozen=True)
class RetryGuard:
    """Bounded-retry policy for lock-free accesses.

    ``max_retries`` is the per-access retry budget ``k``; when an access
    would retry for the ``k+1``-th time the job is aborted instead
    (Section 3.5 abortion model).  ``backoff_base``/``backoff_factor``
    shape the per-retry backoff delay: retry ``j`` (1-based) waits
    ``backoff_base * backoff_factor**(j-1)`` ticks before restarting.
    """

    max_retries: int
    backoff_base: int = 0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError("max_retries must be at least 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")

    def backoff(self, attempt: int) -> int:
        """Backoff delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt must be at least 1")
        if self.backoff_base == 0:
            return 0
        return round(self.backoff_base * self.backoff_factor ** (attempt - 1))

    def exhausted(self, retries_so_far: int) -> bool:
        """True when another retry would exceed the ``k`` budget."""
        return retries_so_far >= self.max_retries
