"""Structured degradation reporting.

A faulted (or merely monitored) run produces a :class:`DegradationReport`
alongside the usual :class:`repro.sim.metrics.SimulationResult`.  The
report answers two questions the paper's evaluation never has to ask —
*what misbehavior was injected* and *how did the kernel degrade* — plus a
third the analytical results depend on: *did any runtime invariant break*.

Invariant violations are recorded, never raised: the whole point of the
graceful-degradation layer is that a misbehaving workload yields a
quantified, inspectable outcome instead of a crashed simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class InvariantViolation:
    """One runtime invariant breach observed by a monitor."""

    time: int
    monitor: str        # e.g. "retry-bound", "abort-point"
    job: str            # job name, or "" for kernel-level invariants
    detail: str = ""

    def __str__(self) -> str:
        subject = f" {self.job}" if self.job else ""
        suffix = f": {self.detail}" if self.detail else ""
        return f"[{self.time}] {self.monitor}{subject}{suffix}"

    def to_dict(self) -> dict:
        return {"time": self.time, "monitor": self.monitor,
                "job": self.job, "detail": self.detail}


@dataclass
class DegradationReport:
    """What was injected, how the kernel shed load, what invariants broke.

    All counters are exact and deterministic for a given seed; two runs of
    the same :class:`~repro.sim.kernel.SimulationConfig` compare equal.
    """

    # --- injected faults (what the plan actually landed) ---------------
    injected_arrivals: int = 0      # burst arrivals beyond the UAM budget
    injected_overruns: int = 0      # segments stretched past their WCET
    forced_retries: int = 0         # adversarial access invalidations
    jittered_charges: int = 0       # kernel cost charges perturbed
    timer_faults: int = 0           # critical-time timers dropped/delayed

    # --- graceful degradation (how the kernel responded) ---------------
    shed_jobs: int = 0              # out-of-spec arrivals rejected
    deferred_jobs: int = 0          # out-of-spec arrivals pushed back
    deferred_delay_total: int = 0   # cumulative deferral, ticks
    retry_aborts: int = 0           # accesses aborted by the retry guard
    backoff_time: int = 0           # ticks spent in retry backoff

    # --- invariant monitoring ------------------------------------------
    violations: list[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no runtime invariant was violated."""
        return not self.violations

    @property
    def faults_injected(self) -> int:
        return (self.injected_arrivals + self.injected_overruns
                + self.forced_retries + self.timer_faults)

    def record(self, violation: InvariantViolation) -> None:
        self.violations.append(violation)

    def violations_of(self, monitor: str) -> list[InvariantViolation]:
        return [v for v in self.violations if v.monitor == monitor]

    def to_dict(self) -> dict:
        """Machine-readable form (CLI ``--json`` summaries, journals)."""
        return {
            "injected_arrivals": self.injected_arrivals,
            "injected_overruns": self.injected_overruns,
            "forced_retries": self.forced_retries,
            "jittered_charges": self.jittered_charges,
            "timer_faults": self.timer_faults,
            "shed_jobs": self.shed_jobs,
            "deferred_jobs": self.deferred_jobs,
            "deferred_delay_total": self.deferred_delay_total,
            "retry_aborts": self.retry_aborts,
            "backoff_time": self.backoff_time,
            "violations": [v.to_dict() for v in self.violations],
        }

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            "degradation report:",
            f"  injected: {self.injected_arrivals} burst arrivals, "
            f"{self.injected_overruns} overruns, "
            f"{self.forced_retries} forced retries, "
            f"{self.timer_faults} timer faults, "
            f"{self.jittered_charges} jittered cost charges",
            f"  degraded: {self.shed_jobs} shed, {self.deferred_jobs} "
            f"deferred (+{self.deferred_delay_total} ticks), "
            f"{self.retry_aborts} retry-guard aborts, "
            f"{self.backoff_time} ticks backoff",
            f"  invariants: "
            + ("all hold" if self.ok else f"{len(self.violations)} violated"),
        ]
        for violation in self.violations[:10]:
            lines.append(f"    {violation}")
        if len(self.violations) > 10:
            lines.append(f"    ... and {len(self.violations) - 10} more")
        return "\n".join(lines)
