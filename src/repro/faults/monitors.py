"""Online invariant monitors attached to the kernel event loop.

Brandenburg's survey argument (PAPERS.md): analytical bounds are only
trustworthy when runtime monitors can confirm their preconditions.  These
monitors watch a run — faulted or not — and *record* (never raise)
violations into the :class:`~repro.faults.report.DegradationReport`:

* **retry-bound** — per-job lock-free retries must stay within
  Theorem 2's ``f_i`` (computed from the declared task set; spurious
  invalidation or out-of-spec bursts legitimately break it, which is
  precisely what the monitor is for);
* **clock** — simulation time never goes backwards;
* **lock-state** — lock ownership/nesting bookkeeping stays consistent
  between the jobs and the :class:`~repro.sim.locks.LockManager`;
* **abort-point** — no job executes past its critical time (the abort
  timer of Section 3.5 must have fired), the invariant a dropped/delayed
  timer fault visibly breaks.

A fault-free run on any UAM-conformant workload reports zero violations;
the acceptance tests pin that on the Figure 9–13 workloads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.analysis.retry_bound import retry_bound_for_taskset
from repro.faults.report import DegradationReport, InvariantViolation
from repro.obs.observer import NULL_OBSERVER, NullObserver
from repro.tasks.job import Job, JobState
from repro.tasks.task import TaskSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.locks import LockManager


class MonitorSuite:
    """All runtime invariant monitors for one kernel run.

    ``observer`` (optional) receives every recorded violation as an
    ``invariant.violations.<monitor>`` counter plus an instant event, so
    the metrics registry (``repro.obs.metrics``) can expose a live
    per-monitor violation series during instrumented runs.
    """

    def __init__(self, tasks: Sequence[TaskSpec],
                 report: DegradationReport,
                 observer: NullObserver | None = None) -> None:
        self.report = report
        self.obs = observer if observer is not None else NULL_OBSERVER
        self._tasks = list(tasks)
        self._last_clock: int | None = None
        # Theorem 2 bounds are computed lazily (only lock-free runs that
        # actually retry pay for them) and cached per task name.
        self._retry_bounds: dict[str, int] = {}
        # One violation per (monitor, job) — a job that breaks a bound
        # once would otherwise flood the report on every later event.
        self._flagged: set[tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _violate(self, time: int, monitor: str, job: str,
                 detail: str) -> None:
        if (monitor, job) in self._flagged:
            return
        self._flagged.add((monitor, job))
        self.report.record(InvariantViolation(
            time=time, monitor=monitor, job=job, detail=detail))
        if self.obs.enabled:
            self.obs.counter(f"invariant.violations.{monitor}")
            self.obs.instant("invariant_violation", "invariant",
                             job or "kernel", time,
                             {"monitor": monitor, "detail": detail})

    # ------------------------------------------------------------------
    # Clock monotonicity
    # ------------------------------------------------------------------

    def note_clock(self, time: int) -> None:
        if self._last_clock is not None and time < self._last_clock:
            self._violate(time, "clock", "",
                          f"clock moved backwards: {self._last_clock} "
                          f"-> {time}")
            return
        self._last_clock = time

    # ------------------------------------------------------------------
    # Theorem 2 retry bound
    # ------------------------------------------------------------------

    def _bound_for(self, task_name: str) -> int:
        bound = self._retry_bounds.get(task_name)
        if bound is None:
            index = next(i for i, t in enumerate(self._tasks)
                         if t.name == task_name)
            bound = retry_bound_for_taskset(self._tasks, index)
            self._retry_bounds[task_name] = bound
        return bound

    def note_retry(self, time: int, job: Job) -> None:
        """Called after each lock-free retry is accounted."""
        bound = self._bound_for(job.task.name)
        if job.retries > bound:
            self._violate(time, "retry-bound", job.name,
                          f"{job.retries} retries exceed Theorem 2 bound "
                          f"f_i={bound}")

    # ------------------------------------------------------------------
    # Abort point
    # ------------------------------------------------------------------

    def note_execution(self, job: Job, start: int, end: int) -> None:
        """The running job executed over ``(start, end]``: none of that
        work may lie past its absolute critical time."""
        if end > job.critical_time_abs:
            self._violate(end, "abort-point", job.name,
                          f"executed to {end}, past critical time "
                          f"{job.critical_time_abs}")

    # ------------------------------------------------------------------
    # Lock ownership / nesting
    # ------------------------------------------------------------------

    def audit_locks(self, time: int, live: Sequence[Job],
                    locks: "LockManager") -> None:
        """Cross-check per-job lock state against the lock manager."""
        for job in live:
            held = set(locks.held_by(job))
            if held != job.held_locks:
                self._violate(time, "lock-state", job.name,
                              f"held-lock mismatch: job says "
                              f"{sorted(map(str, job.held_locks))}, "
                              f"manager says {sorted(map(str, held))}")
            if job.blocked_on is not None:
                if job.blocked_on in held:
                    self._violate(time, "lock-state", job.name,
                                  f"waits on {job.blocked_on!r} it holds")
                owner = locks.owner_of(job.blocked_on)
                if owner is None and job.state is JobState.BLOCKED:
                    self._violate(time, "lock-state", job.name,
                                  f"blocked on unowned {job.blocked_on!r}")
            elif job.state is JobState.BLOCKED:
                self._violate(time, "lock-state", job.name,
                              "BLOCKED with no blocked_on object")
        for anomaly in locks.consistency_anomalies():
            self._violate(time, "lock-state", "", anomaly)
