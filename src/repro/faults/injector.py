"""Runtime fault injector: one per kernel run.

The injector is the mutable counterpart of an immutable
:class:`~repro.faults.plan.FaultPlan`: it tracks which faults have
already landed (overruns apply once per segment instance, spurious-retry
budgets deplete, timer faults fire once per job) and draws all its
randomness from streams seeded by the plan, so a run replays exactly.

The kernel queries it at five points: arrival priming (bursts), segment
entry (overruns), preemption (spurious invalidation), timer arming
(timer faults), and every fixed cost charge (jitter).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.faults.plan import FaultPlan
from repro.faults.report import DegradationReport
from repro.tasks.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.objects import LockFreeObjectTable


class FaultInjector:
    """Applies a :class:`FaultPlan` to one simulation run."""

    def __init__(self, plan: FaultPlan, report: DegradationReport) -> None:
        self.plan = plan
        self.report = report
        # Derived deterministically from the plan seed (no str hashing:
        # str hash randomization would break cross-process replay).
        self._jitter_rng = random.Random(plan.seed * 1_000_003 + 17)
        # Keyed by (task, jid, segment): job identities can be recycled
        # by the allocator once a job departs, names cannot.
        self._overruns_applied: set[tuple[str, int, int]] = set()
        self._retry_budgets: list[int] = [
            spec.times for spec in plan.spurious_retries
        ]
        self._timer_faults_fired: set[tuple[str, int]] = set()

    # ------------------------------------------------------------------
    # Arrival bursts
    # ------------------------------------------------------------------

    def burst_arrivals(self, horizon: int) -> list[tuple[int, int]]:
        """(time, task_index) pairs to prime beyond the declared traces.

        Bursts at or beyond the horizon are dropped (they could never be
        observed).  Counting happens at priming so a plan generated for a
        longer horizon reports only what actually landed.
        """
        out: list[tuple[int, int]] = []
        for burst in self.plan.bursts:
            if burst.time >= horizon:
                continue
            out.extend((burst.time, burst.task_index)
                       for _ in range(burst.count))
        self.report.injected_arrivals += len(out)
        return out

    # ------------------------------------------------------------------
    # Execution-time overruns
    # ------------------------------------------------------------------

    def overrun_for(self, job: Job) -> int:
        """Extra ticks to stretch the job's *current* segment by, applied
        at most once per (job, segment) instance."""
        if not self.plan.overruns:
            return 0
        key = (job.task.name, job.jid, job.segment_index)
        if key in self._overruns_applied:
            return 0
        extra = 0
        for spec in self.plan.overruns:
            if spec.matches(job.task.name, job.jid, job.segment_index):
                extra += spec.extra
        if extra:
            self._overruns_applied.add(key)
            self.report.injected_overruns += 1
        return extra

    # ------------------------------------------------------------------
    # Spurious lock-free retries
    # ------------------------------------------------------------------

    def spurious_invalidate(self, job: Job,
                            objects: "LockFreeObjectTable") -> bool:
        """Adversarially invalidate ``job``'s in-flight access at a
        preemption, if a matching budget remains."""
        obj = objects.open_access_of(job)
        if obj is None:
            return False
        for index, spec in enumerate(self.plan.spurious_retries):
            if self._retry_budgets[index] > 0 and spec.matches(
                    job.task.name, obj):
                self._retry_budgets[index] -= 1
                objects.invalidate(job)
                self.report.forced_retries += 1
                return True
        return False

    # ------------------------------------------------------------------
    # Critical-time timer faults
    # ------------------------------------------------------------------

    def timer_disposition(self, job: Job) -> tuple[bool, int]:
        """(drop, delay) for the job's critical-time timer, decided when
        the timer is armed at release."""
        for spec in self.plan.timer_faults:
            if spec.matches(job.task.name, job.jid):
                key = (job.task.name, job.jid)
                if key in self._timer_faults_fired:
                    continue
                self._timer_faults_fired.add(key)
                self.report.timer_faults += 1
                return spec.drop, spec.delay
        return False, 0

    # ------------------------------------------------------------------
    # Kernel-cost jitter
    # ------------------------------------------------------------------

    def cost(self, name: str, base: int) -> int:
        """Perturb one fixed kernel cost charge."""
        if self.plan.jitter is None or base == 0:
            return base
        # Imported lazily: repro.sim.kernel imports this module, so a
        # top-level import of repro.sim.overheads would close a cycle
        # through repro.sim's package __init__.
        from repro.sim.overheads import jittered_cost

        self.report.jittered_charges += 1
        return jittered_cost(base, self._jitter_rng,
                             self.plan.jitter.magnitude)
