"""Fault injection, graceful degradation, and runtime invariant
monitoring for the simulated kernel.

The paper's value proposition is predictability *under misbehavior*; this
package supplies the misbehavior (deterministic, seed-driven
:class:`FaultPlan` injectors), the degradation machinery (UAM
:class:`AdmissionGuard` shedding/deferring out-of-spec arrivals, a
:class:`RetryGuard` bounding lock-free retries with backoff and
Section 3.5 aborts), and the :class:`MonitorSuite` of online invariant
checkers whose findings land in a structured :class:`DegradationReport`
on the :class:`~repro.sim.metrics.SimulationResult`.
"""

from repro.faults.degradation import (
    AdmissionGuard,
    AdmissionPolicy,
    Decision,
    RetryGuard,
    ShedMode,
)
from repro.faults.injector import FaultInjector
from repro.faults.monitors import MonitorSuite
from repro.faults.plan import (
    ArrivalBurst,
    CostJitter,
    FaultPlan,
    SegmentOverrun,
    SpuriousRetry,
    TimerFault,
)
from repro.faults.report import DegradationReport, InvariantViolation

__all__ = [
    "AdmissionGuard",
    "AdmissionPolicy",
    "ArrivalBurst",
    "CostJitter",
    "Decision",
    "DegradationReport",
    "FaultInjector",
    "FaultPlan",
    "InvariantViolation",
    "MonitorSuite",
    "RetryGuard",
    "SegmentOverrun",
    "ShedMode",
    "SpuriousRetry",
    "TimerFault",
]
