"""Lemmas 4 and 5: AUR bounds under the UAM.

For feasible jobs with non-increasing TUFs, the long-run Accrued Utility
Ratio of lock-free sharing satisfies

    sum_i (l_i/W_i) U_i(u_i + s m_i + I_i + R_i)      sum_i (a_i/W_i) U_i(u_i + s m_i)
    --------------------------------------------  <  AUR  <  -----------------------------
    sum_i (l_i/W_i) U_i(0)                            sum_i (a_i/W_i) U_i(0)

(Lemma 4), and the lock-based analogue replaces ``s``/``R_i`` with
``r``/``B_i`` (Lemma 5).  The lower bound pairs the minimum UAM job count
``l_i floor(dt/W_i)`` with the longest feasible sojourn; the upper bound
pairs the maximum count ``a_i (ceil(dt/W_i)+1)`` with the shortest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tasks.task import TaskSpec


@dataclass(frozen=True)
class AURBounds:
    lower: float
    upper: float

    def contains(self, aur: float, slack: float = 0.0) -> bool:
        """Whether a measured AUR falls inside (with optional numeric
        slack for finite-horizon effects)."""
        return self.lower - slack <= aur <= self.upper + slack


def _weighted_aur(tasks: list[TaskSpec], weights: list[float],
                  sojourns: list[float]) -> float:
    numerator = 0.0
    denominator = 0.0
    for task, weight, sojourn in zip(tasks, weights, sojourns):
        numerator += weight * task.tuf.utility(round(sojourn))
        denominator += weight * task.tuf.utility(0)
    if denominator == 0:
        raise ValueError("task set has zero utility at zero sojourn")
    return numerator / denominator


def _check_non_increasing(tasks: list[TaskSpec]) -> None:
    for task in tasks:
        if not task.tuf.is_non_increasing():
            raise ValueError(
                f"Lemmas 4/5 require non-increasing TUFs; task "
                f"{task.name} violates this"
            )


def lemma4_lockfree_aur_bounds(tasks: list[TaskSpec],
                               s: float,
                               interference: list[float],
                               retry_time: list[float]) -> AURBounds:
    """Lemma 4 bounds for lock-free sharing.

    ``interference[i]`` is ``I_i`` and ``retry_time[i]`` is ``R_i`` for
    task ``i``; the per-task worst sojourn is
    ``u_i + s m_i + I_i + R_i`` and the best is ``u_i + s m_i``.
    """
    _check_non_increasing(tasks)
    if not (len(tasks) == len(interference) == len(retry_time)):
        raise ValueError("per-task vectors must align with the task list")
    lower_weights = [t.arrival.min_arrivals / t.arrival.window for t in tasks]
    upper_weights = [t.arrival.max_arrivals / t.arrival.window for t in tasks]
    worst = [
        t.compute_time + s * t.access_count + i + rt
        for t, i, rt in zip(tasks, interference, retry_time)
    ]
    best = [t.compute_time + s * t.access_count for t in tasks]
    if all(w == 0 for w in lower_weights):
        lower = 0.0
    else:
        lower = _weighted_aur(tasks, lower_weights, worst)
    upper = _weighted_aur(tasks, upper_weights, best)
    return AURBounds(lower=lower, upper=upper)


def lemma5_lockbased_aur_bounds(tasks: list[TaskSpec],
                                r: float,
                                interference: list[float],
                                blocking_time: list[float]) -> AURBounds:
    """Lemma 5 bounds for lock-based sharing (``B_i`` in place of
    ``R_i``, ``r`` in place of ``s``)."""
    _check_non_increasing(tasks)
    if not (len(tasks) == len(interference) == len(blocking_time)):
        raise ValueError("per-task vectors must align with the task list")
    lower_weights = [t.arrival.min_arrivals / t.arrival.window for t in tasks]
    upper_weights = [t.arrival.max_arrivals / t.arrival.window for t in tasks]
    worst = [
        t.compute_time + r * t.access_count + i + bt
        for t, i, bt in zip(tasks, interference, blocking_time)
    ]
    best = [t.compute_time + r * t.access_count for t in tasks]
    if all(w == 0 for w in lower_weights):
        lower = 0.0
    else:
        lower = _weighted_aur(tasks, lower_weights, worst)
    upper = _weighted_aur(tasks, upper_weights, best)
    return AURBounds(lower=lower, upper=upper)
