"""Analytical results of the paper.

* Lemma 1 — preemption/event counting under UA schedulers
  (:mod:`repro.analysis.preemption`);
* Theorem 2 — the lock-free retry bound under the UAM
  (:mod:`repro.analysis.retry_bound`);
* Theorem 3 — lock-based vs. lock-free worst-case sojourn times and the
  ``s/r`` crossover conditions (:mod:`repro.analysis.sojourn`);
* Lemmas 4 and 5 — AUR lower/upper bounds for lock-free and lock-based
  sharing (:mod:`repro.analysis.aur_bounds`);
* Section 3.6 / Section 5 — asymptotic scheduler cost models
  (:mod:`repro.analysis.complexity`).
"""

from repro.analysis.preemption import max_scheduling_events
from repro.analysis.retry_bound import (
    interference_events,
    retry_bound,
    retry_bound_for_taskset,
)
from repro.analysis.sojourn import (
    SojournComparison,
    blocking_count_bound,
    compare_sojourn,
    exact_ratio_threshold,
    lockbased_sojourn_bound,
    lockfree_sojourn_bound,
    lockfree_wins_ratio_threshold,
    sufficient_ratio_for_lockfree,
)
from repro.analysis.aur_bounds import (
    AURBounds,
    lemma4_lockfree_aur_bounds,
    lemma5_lockbased_aur_bounds,
)
from repro.analysis.complexity import (
    lockbased_rua_operations,
    lockfree_rua_operations,
)

__all__ = [
    "max_scheduling_events",
    "interference_events",
    "retry_bound",
    "retry_bound_for_taskset",
    "SojournComparison",
    "blocking_count_bound",
    "compare_sojourn",
    "exact_ratio_threshold",
    "lockbased_sojourn_bound",
    "lockfree_sojourn_bound",
    "lockfree_wins_ratio_threshold",
    "sufficient_ratio_for_lockfree",
    "AURBounds",
    "lemma4_lockfree_aur_bounds",
    "lemma5_lockbased_aur_bounds",
    "lockbased_rua_operations",
    "lockfree_rua_operations",
]
