"""Lemma 1: preemption counting under UA schedulers.

UA schedulers such as RUA are *fully dynamic* (a job's execution
eligibility changes over time), so — unlike static or job-level-dynamic
schedulers where one job preempts another at most once — two jobs can
preempt each other repeatedly (the paper's Figure 6).  What still bounds
the preemptions a job suffers is the number of *scheduling events* that
invoke the scheduler during the interval of interest: a preemption can
only happen when the scheduler runs.
"""

from __future__ import annotations

import math

from repro.arrivals.spec import UAMSpec


def releases_in_interval(spec: UAMSpec, interval: int) -> int:
    """Maximum job releases a UAM task can produce inside any interval of
    the given length: ``a * (ceil(interval / W) + 1)`` — the counting
    argument of Theorem 2's Case 1 (bursts at the far edges of the first
    and last overlapped windows)."""
    if interval < 0:
        raise ValueError("interval must be non-negative")
    if interval == 0:
        return spec.max_arrivals
    return spec.max_arrivals * (math.ceil(interval / spec.window) + 1)


def max_scheduling_events(specs: list[UAMSpec], observer_index: int,
                          interval: int) -> int:
    """Lemma 1 applied to a UAM task set under lock-free RUA: the maximum
    number of scheduling events that can invoke the scheduler within an
    interval of length ``interval`` following a release of the observer
    task.

    Under lock-free sharing, scheduling events are job arrivals and
    departures only.  Each job released inside the interval contributes at
    most two events (arrival + departure-or-abort); the observer's own
    task additionally contributes completions of jobs released up to
    ``interval`` *before* the window, for ``3 a_i`` total (Theorem 2's
    Case 2).
    """
    if not 0 <= observer_index < len(specs):
        raise IndexError("observer_index out of range")
    observer = specs[observer_index]
    total = 3 * observer.max_arrivals
    for index, spec in enumerate(specs):
        if index == observer_index:
            continue
        total += 2 * releases_in_interval(spec, interval)
    return total
