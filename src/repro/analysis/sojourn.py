"""Theorem 3: lock-based versus lock-free worst-case sojourn times.

Notation (Section 5):

* ``r`` / ``s`` — lock-based / lock-free object access time;
* ``u_i`` — computation time not involving shared objects;
* ``m_i`` — number of shared-object accesses by ``J_i``;
* ``n_i`` — number of jobs that could block ``J_i``
  (``n_i <= 2 a_i + x_i``);
* ``I_i`` — worst-case interference time;
* ``B_i = r * min(m_i, n_i)`` — worst-case blocking time (lock-based);
* ``R_i = s * f_i`` — worst-case retry time (lock-free, Theorem 2).

Worst-case sojourns:

* lock-based: ``u_i + I_i + r m_i + B_i``
* lock-free:  ``u_i + I_i + s m_i + R_i``

Theorem 3: lock-free yields the shorter maximum sojourn when

* ``s/r < 2/3``                                   if ``m_i <= n_i``;
* ``s/r < (m_i + n_i) / (m_i + 3 a_i + 2 x_i)``    if ``m_i > n_i``.

``s/r < 1`` is necessary in both regimes; ``r/s > 3/2`` is sufficient in
the first.
"""

from __future__ import annotations

from dataclasses import dataclass


def blocking_count_bound(m_i: int, n_i: int) -> int:
    """A job under RUA is blocked at most ``min(m_i, n_i)`` times
    (result quoted from the RUA paper [27])."""
    if m_i < 0 or n_i < 0:
        raise ValueError("counts must be non-negative")
    return min(m_i, n_i)


def lockbased_sojourn_bound(u_i: int, interference: int, r: float,
                            m_i: int, n_i: int) -> float:
    """Worst-case lock-based sojourn ``u_i + I_i + r m_i + B_i``."""
    blocking = r * blocking_count_bound(m_i, n_i)
    return u_i + interference + r * m_i + blocking


def lockfree_sojourn_bound(u_i: int, interference: int, s: float,
                           m_i: int, f_i: int) -> float:
    """Worst-case lock-free sojourn ``u_i + I_i + s m_i + s f_i``."""
    if f_i < 0:
        raise ValueError("retry bound must be non-negative")
    return u_i + interference + s * m_i + s * f_i


def lockfree_wins_ratio_threshold(m_i: int, n_i: int, a_i: int,
                                  x_i: int) -> float:
    """The Theorem 3 threshold on ``s/r`` as *stated* in the paper.

    Note the Case 1 statement (``2/3`` when ``m_i <= n_i``) comes from
    substituting ``X`` by its worst case ``2r(2a_i + x_i)`` in the proof;
    it coincides with the exact condition only when ``2 m_i`` is near
    ``3 a_i + 2 x_i``.  Use :func:`exact_ratio_threshold` for the
    condition that is sufficient for *all* parameter values (derived from
    the same proof's ``X``/``Y`` without the substitution).
    """
    if m_i <= n_i:
        return 2.0 / 3.0
    denominator = m_i + 3 * a_i + 2 * x_i
    if denominator <= 0:
        raise ValueError("degenerate parameters")
    return (m_i + n_i) / denominator


def exact_ratio_threshold(m_i: int, n_i: int, a_i: int, x_i: int) -> float:
    """Exact ``s/r`` threshold from Theorem 3's proof.

    With ``X = r(m_i + min(m_i, n_i))`` and
    ``Y = s(m_i + f_i) = s(m_i + 3 a_i + 2 x_i)``, lock-free wins exactly
    when ``s/r < (m_i + min(m_i, n_i)) / (m_i + 3 a_i + 2 x_i)`` — which
    is the paper's Case 2 expression, and generalizes Case 1 (where
    ``min = m_i``) without the worst-case substitution.
    """
    denominator = m_i + 3 * a_i + 2 * x_i
    if denominator <= 0:
        raise ValueError("degenerate parameters")
    return (m_i + min(m_i, n_i)) / denominator


def sufficient_ratio_for_lockfree() -> float:
    """``r/s > 3/2`` is sufficient when ``m_i <= n_i`` (Theorem 3's
    discussion)."""
    return 1.5


@dataclass(frozen=True)
class SojournComparison:
    """Outcome of comparing the two worst-case sojourn bounds."""

    lockbased: float
    lockfree: float
    ratio: float                   # s / r
    paper_threshold: float         # Theorem 3 threshold as stated
    exact_threshold: float         # threshold from the proof's X/Y
    lockfree_wins: bool            # bound comparison
    predicted_lockfree_wins: bool  # exact-threshold test

    @property
    def threshold(self) -> float:
        """Backward-friendly alias for the paper's stated threshold."""
        return self.paper_threshold


def compare_sojourn(u_i: int, interference: int, r: float, s: float,
                    m_i: int, n_i: int, a_i: int, x_i: int,
                    f_i: int | None = None) -> SojournComparison:
    """Evaluate both bounds and the Theorem 3 prediction.

    ``f_i`` defaults to the Theorem 2 expression written in terms of
    ``a_i`` and ``x_i``: ``3 a_i + 2 x_i``.
    """
    if r <= 0 or s <= 0:
        raise ValueError("access times must be positive")
    if f_i is None:
        f_i = 3 * a_i + 2 * x_i
    lockbased = lockbased_sojourn_bound(u_i, interference, r, m_i, n_i)
    lockfree = lockfree_sojourn_bound(u_i, interference, s, m_i, f_i)
    paper = lockfree_wins_ratio_threshold(m_i, n_i, a_i, x_i)
    exact = exact_ratio_threshold(m_i, n_i, a_i, x_i)
    return SojournComparison(
        lockbased=lockbased,
        lockfree=lockfree,
        ratio=s / r,
        paper_threshold=paper,
        exact_threshold=exact,
        lockfree_wins=lockfree < lockbased,
        predicted_lockfree_wins=(s / r) < exact,
    )
