"""Theorem 2: the lock-free retry bound under the UAM.

For a job ``J_i`` of a task with UAM ``<l_i, a_i, W_i>`` and critical time
``C_i``, scheduled by RUA over lock-free objects, the total number of
retries is bounded by

    f_i <= 3 a_i + sum_{j != i} 2 a_j (ceil(C_i / W_j) + 1)

— the first retry bound under a non-periodic arrival model.  The bound is
the maximum number of scheduling events in ``[t_0, t_0 + C_i]`` (each of
which can cause at most one retry, Lemma 1), and is independent of how
many lock-free objects the job accesses.
"""

from __future__ import annotations

import math

from repro.arrivals.spec import UAMSpec
from repro.tasks.task import TaskSpec


def interference_events(observer: UAMSpec, others: list[UAMSpec],
                        critical_time: int) -> int:
    """The ``x_i``-style event count from other tasks:
    ``sum_j a_j (ceil(C_i / W_j) + 1)`` (before the factor of 2)."""
    if critical_time <= 0:
        raise ValueError("critical time must be positive")
    return sum(
        spec.max_arrivals * (math.ceil(critical_time / spec.window) + 1)
        for spec in others
    )


def retry_bound(observer: UAMSpec, others: list[UAMSpec],
                critical_time: int) -> int:
    """Theorem 2's ``f_i`` for an observer task among ``others``."""
    return (3 * observer.max_arrivals
            + 2 * interference_events(observer, others, critical_time))


def retry_bound_for_taskset(tasks: list[TaskSpec], index: int) -> int:
    """Theorem 2 applied to task ``index`` of a concrete task set."""
    if not 0 <= index < len(tasks):
        raise IndexError("task index out of range")
    observer = tasks[index]
    others = [t.arrival for i, t in enumerate(tasks) if i != index]
    return retry_bound(observer.arrival, others, observer.critical_time)


def x_i(observer_index: int, tasks: list[TaskSpec]) -> int:
    """The paper's ``x_i = sum_{j != i} a_j (ceil(C_i / W_j) + 1)``,
    used by Theorem 3."""
    observer = tasks[observer_index]
    others = [t.arrival for i, t in enumerate(tasks) if i != observer_index]
    return interference_events(observer.arrival, others,
                               observer.critical_time)
