"""Asymptotic scheduler cost (Sections 3.6 and 5).

Lock-based RUA costs ``O(n^2 log n)``: dependency chains ``O(n^2)``, PUDs
``O(n^2)``, deadlock tests ``O(n^2)``, PUD sort ``O(n log n)``, and the
dominating schedule construction ``O(n^2 log n)`` (each job drags its
``O(n)`` chain through ``O(log n)`` ordered-list operations).  Lock-free
RUA drops the chain-dependent steps: PUDs cost ``O(n)`` and construction
``O(n^2)``, for ``O(n^2)`` total.

These operation-count models back the simulated cost charged per
scheduling pass and are validated against wall-time measurements of the
real policy implementations by ``benchmarks/bench_scheduler_cost.py``.
"""

from __future__ import annotations

import math


def lockbased_rua_operations(n: int) -> float:
    """Operation-count model for one lock-based RUA pass (Section 3.6):
    ``n^2 + n^2 + n^2 + n log n + n^2 log n``, reported as the dominant
    profile ``3 n^2 + n log n + n^2 log n``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return 0.0
    log_n = math.log2(n + 1)
    return 3 * n * n + n * log_n + n * n * log_n


def lockfree_rua_operations(n: int) -> float:
    """Operation-count model for one lock-free RUA pass (Section 5):
    PUDs ``O(n)``, sort ``n log n``, construction ``n^2``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return 0.0
    return n + n * math.log2(n + 1) + n * n


def cost_ratio(n: int) -> float:
    """Model ratio lock-based / lock-free at ``n`` jobs — approaches
    ``~3 + log2(n)`` for large ``n``."""
    lockfree = lockfree_rua_operations(n)
    if lockfree == 0:
        return 1.0
    return lockbased_rua_operations(n) / lockfree
