"""Reproduction of *Lock-Free Synchronization for Dynamic Embedded Real-Time
Systems* (Cho, Ravindran, Jensen — DATE 2006, extended June 2007).

The package implements, from scratch:

* the task model of the paper — Time/Utility Functions (:mod:`repro.tuf`),
  the Unimodal Arbitrary arrival Model (:mod:`repro.arrivals`), and the
  job/segment abstraction (:mod:`repro.tasks`);
* a deterministic discrete-event uniprocessor RTOS simulator that replaces
  the paper's QNX Neutrino testbed (:mod:`repro.sim`);
* the paper's core contribution, the Resource-constrained Utility Accrual
  scheduler in both lock-based and lock-free variants, plus EDF/LLF
  baselines (:mod:`repro.core`);
* real lock-free data structures (Michael–Scott queue, Treiber stack)
  executing over a cooperative-interleaving VM with genuine CAS semantics
  (:mod:`repro.lockfree`);
* the analytical results — the Theorem 2 retry bound, the Theorem 3 sojourn
  comparison and the Lemma 4/5 AUR bounds (:mod:`repro.analysis`);
* the experiment harness regenerating every figure of the paper's
  evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro import quick_simulation

    result = quick_simulation(n_tasks=5, n_objects=3, sync="lockfree",
                              load=0.8, horizon_us=200_000, seed=42)
    print(result.aur, result.cmr)
"""

from repro._version import __version__
from repro.api import (
    CampaignConfig,
    CampaignEngine,
    Scenario,
    SimulationSummary,
    atomic_write,
    quick_scenario,
    quick_simulation,
    run_simulations,
    simulate,
)

__all__ = [
    "__version__",
    "Scenario",
    "simulate",
    "quick_scenario",
    "quick_simulation",
    "run_simulations",
    "SimulationSummary",
    "CampaignConfig",
    "CampaignEngine",
    "atomic_write",
]
