"""Time/Utility Functions (TUFs).

A TUF expresses the utility of completing an activity as a function of the
activity's completion time (Jensen, Locke, Tokuda 1985).  The paper's task
model (Section 2) allows arbitrarily shaped TUFs with a single *critical
time* — the time at which the TUF drops to zero utility, after which the
utility stays zero.

Times are *relative to job release* and measured in integer simulated
time ticks (ns), the time base used across the whole package.
"""

from repro.tuf.base import TimeUtilityFunction, check_tuf_wellformed
from repro.tuf.shapes import (
    CompositeMaxTUF,
    LinearDecreasingTUF,
    ParabolicTUF,
    PiecewiseLinearTUF,
    RampUpTUF,
    ScaledTUF,
    StepTUF,
    TableTUF,
)
from repro.tuf.catalog import (
    awacs_association_tuf,
    missile_intercept_tuf,
    awacs_plot_correlation_tuf,
    awacs_track_maintenance_tuf,
    coastal_surveillance_tuf,
    heterogeneous_tuf_mix,
    step_tuf_mix,
)

__all__ = [
    "TimeUtilityFunction",
    "check_tuf_wellformed",
    "StepTUF",
    "LinearDecreasingTUF",
    "ParabolicTUF",
    "PiecewiseLinearTUF",
    "RampUpTUF",
    "TableTUF",
    "ScaledTUF",
    "CompositeMaxTUF",
    "awacs_association_tuf",
    "missile_intercept_tuf",
    "awacs_plot_correlation_tuf",
    "awacs_track_maintenance_tuf",
    "coastal_surveillance_tuf",
    "heterogeneous_tuf_mix",
    "step_tuf_mix",
]
