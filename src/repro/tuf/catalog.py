"""Named TUFs reconstructing the application examples of the paper.

Figure 1 of the paper shows time constraints from two real applications
cited in its introduction:

* an adaptive airborne tracking system (AWACS) [Clark et al. 1999], whose
  track-association activity has a step TUF and whose plot-correlation and
  track-maintenance activities have decaying TUFs;
* a coastal-surveillance / air-defense system [Maynard et al. 1988], with
  piecewise-linear TUFs for plot correlation and track maintenance and an
  increasing TUF for missile intercept.

The exact numeric profiles are not given in the paper, so these factories
fix representative magnitudes (milliseconds-scale critical times, unit-ish
utilities) that preserve the published *shapes*.  The heterogeneous mix
used across the Section 6.2 experiments is reproduced by
:func:`heterogeneous_tuf_mix`.
"""

from __future__ import annotations

from repro.tuf.base import TimeUtilityFunction
from repro.tuf.shapes import (
    LinearDecreasingTUF,
    ParabolicTUF,
    PiecewiseLinearTUF,
    RampUpTUF,
    StepTUF,
)


def awacs_association_tuf(critical_time: int = 50_000,
                          importance: float = 1.0) -> StepTUF:
    """Track association: classical hard step at the critical time."""
    return StepTUF(critical_time=critical_time, height=importance)


def awacs_plot_correlation_tuf(critical_time: int = 40_000,
                               importance: float = 1.0) -> ParabolicTUF:
    """Plot correlation: utility decays parabolically — early correlation
    of sensor plots is much more valuable than late correlation."""
    return ParabolicTUF(critical_time=critical_time, initial=importance)


def awacs_track_maintenance_tuf(critical_time: int = 60_000,
                                importance: float = 1.0) -> LinearDecreasingTUF:
    """Track maintenance: linearly decaying utility until track data is
    useless at the critical time."""
    return LinearDecreasingTUF(critical_time=critical_time, initial=importance)


def coastal_surveillance_tuf(critical_time: int = 80_000,
                             importance: float = 1.0) -> PiecewiseLinearTUF:
    """Coastal-surveillance plot correlation: full utility for an initial
    grace interval, then linear decay to zero (Figure 1(c) style)."""
    grace = critical_time // 4
    return PiecewiseLinearTUF(points=(
        (0, importance),
        (grace, importance),
        (critical_time, 0.0),
    ))


def missile_intercept_tuf(critical_time: int = 30_000,
                          importance: float = 1.0) -> RampUpTUF:
    """Intercept: utility increases as the intercept point nears, then
    drops to zero — the canonical increasing TUF of Figure 1(c)."""
    return RampUpTUF(critical_time=critical_time,
                     start=importance * 0.2, peak=importance)


def step_tuf_mix(critical_times: list[int],
                 importances: list[float] | None = None) -> list[TimeUtilityFunction]:
    """Homogeneous step-TUF class used in Figures 10 and 12."""
    if importances is None:
        importances = [1.0] * len(critical_times)
    if len(importances) != len(critical_times):
        raise ValueError("importances and critical_times must align")
    return [StepTUF(critical_time=c, height=h)
            for c, h in zip(critical_times, importances)]


def heterogeneous_tuf_mix(critical_times: list[int],
                          importances: list[float] | None = None
                          ) -> list[TimeUtilityFunction]:
    """Heterogeneous class of Figures 11, 13, 14: step, parabolic and
    linearly-decreasing shapes cycled across the task set."""
    if importances is None:
        importances = [1.0] * len(critical_times)
    if len(importances) != len(critical_times):
        raise ValueError("importances and critical_times must align")
    shapes: list[TimeUtilityFunction] = []
    for index, (c, h) in enumerate(zip(critical_times, importances)):
        kind = index % 3
        if kind == 0:
            shapes.append(StepTUF(critical_time=c, height=h))
        elif kind == 1:
            shapes.append(ParabolicTUF(critical_time=c, initial=h))
        else:
            shapes.append(LinearDecreasingTUF(critical_time=c, initial=h))
    return shapes
