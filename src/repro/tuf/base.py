"""Base protocol for Time/Utility Functions.

The paper constrains TUFs only lightly (Section 2): a TUF can take an
arbitrary shape but must have a *single* critical time, i.e. the time at
which the function drops to zero, and it yields zero utility from the
critical time onwards.  The scheduler additionally cares about two derived
quantities: the maximum attainable utility (used to normalize the Accrued
Utility Ratio) and whether the TUF is non-increasing (used by Theorem 3's
discussion and by Lemmas 4/5, which require non-increasing TUFs).
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class TimeUtilityFunction(ABC):
    """Utility of completing a job, as a function of its sojourn time.

    Subclasses implement :meth:`utility`.  The function argument is the
    *sojourn time* — completion time minus release time — in integer
    nanoseconds (see repro.units).  Implementations must guarantee:

    * ``utility(t) == 0`` for every ``t >= critical_time``;
    * ``utility(t) >= 0`` for every ``t`` (negative utility is not part of
      the paper's model — a job that misses its critical time is aborted
      and simply accrues zero);
    * ``critical_time > 0``.
    """

    #: Relative time at which the TUF drops to (and stays at) zero.
    critical_time: int

    @abstractmethod
    def utility(self, sojourn: int) -> float:
        """Return the utility accrued by completing ``sojourn`` ticks after
        release."""

    @property
    def max_utility(self) -> float:
        """Largest utility the TUF can yield over ``[0, critical_time)``.

        Used as the denominator of the Accrued Utility Ratio.  For the
        non-increasing shapes the paper evaluates, this equals
        ``utility(0)``; increasing shapes override :meth:`_max_utility`.
        """
        return self._max_utility()

    def _max_utility(self) -> float:
        return self.utility(0)

    def is_non_increasing(self, samples: int = 256) -> bool:
        """Heuristically test monotonicity by dense sampling.

        Exact for the piecewise shapes shipped in :mod:`repro.tuf.shapes`
        as long as ``samples`` exceeds the number of pieces, which it does
        by a wide margin for every catalogued shape.
        """
        step = max(1, self.critical_time // samples)
        previous = self.utility(0)
        for t in range(step, self.critical_time + step, step):
            current = self.utility(t)
            if current > previous + 1e-12:
                return False
            previous = current
        return True

    def __call__(self, sojourn: int) -> float:
        return self.utility(sojourn)


def check_tuf_wellformed(tuf: TimeUtilityFunction, samples: int = 512) -> None:
    """Raise ``ValueError`` if ``tuf`` violates the paper's TUF contract.

    Checks positivity of the critical time, non-negativity of sampled
    utilities, and that the function is zero at and beyond the critical
    time.
    """
    if tuf.critical_time <= 0:
        raise ValueError(f"critical time must be positive, got {tuf.critical_time}")
    step = max(1, tuf.critical_time // samples)
    for t in range(0, tuf.critical_time, step):
        u = tuf.utility(t)
        if u < 0:
            raise ValueError(f"negative utility {u} at sojourn {t}")
    for t in (tuf.critical_time, tuf.critical_time + 1, tuf.critical_time * 2):
        u = tuf.utility(t)
        if u != 0:
            raise ValueError(
                f"utility must be zero at/after the critical time; got {u} at {t}"
            )
