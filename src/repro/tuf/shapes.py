"""Concrete TUF shapes.

The paper's evaluation (Section 6.2) uses two TUF classes: a homogeneous
class of downward step shapes and a heterogeneous class mixing step,
parabolic and linearly-decreasing shapes.  Figure 1 of the paper
additionally motivates piecewise-linear and increasing shapes from two real
applications (the AWACS tracker and a coastal-surveillance system); those
are provided here as well so the catalog in :mod:`repro.tuf.catalog` can
reconstruct them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tuf.base import TimeUtilityFunction


@dataclass(frozen=True)
class StepTUF(TimeUtilityFunction):
    """Binary-valued downward step: the classical deadline.

    Completing any time before ``critical_time`` accrues ``height``;
    completing at or after it accrues zero.  The paper treats deadlines as
    this special TUF case throughout.
    """

    critical_time: int
    height: float = 1.0

    def __post_init__(self) -> None:
        if self.critical_time <= 0:
            raise ValueError("critical_time must be positive")
        if self.height <= 0:
            raise ValueError("height must be positive")

    def utility(self, sojourn: int) -> float:
        return self.height if 0 <= sojourn < self.critical_time else 0.0


@dataclass(frozen=True)
class LinearDecreasingTUF(TimeUtilityFunction):
    """Utility decays linearly from ``initial`` at release to zero at the
    critical time."""

    critical_time: int
    initial: float = 1.0

    def __post_init__(self) -> None:
        if self.critical_time <= 0:
            raise ValueError("critical_time must be positive")
        if self.initial <= 0:
            raise ValueError("initial utility must be positive")

    def utility(self, sojourn: int) -> float:
        if sojourn < 0 or sojourn >= self.critical_time:
            return 0.0
        return self.initial * (1.0 - sojourn / self.critical_time)


@dataclass(frozen=True)
class ParabolicTUF(TimeUtilityFunction):
    """Downward parabola: ``initial * (1 - (t/C)^2)``.

    Decays slowly at first, then steeply toward the critical time — one of
    the heterogeneous shapes in the paper's Section 6.2 experiments.
    """

    critical_time: int
    initial: float = 1.0

    def __post_init__(self) -> None:
        if self.critical_time <= 0:
            raise ValueError("critical_time must be positive")
        if self.initial <= 0:
            raise ValueError("initial utility must be positive")

    def utility(self, sojourn: int) -> float:
        if sojourn < 0 or sojourn >= self.critical_time:
            return 0.0
        x = sojourn / self.critical_time
        return self.initial * (1.0 - x * x)


@dataclass(frozen=True)
class RampUpTUF(TimeUtilityFunction):
    """Utility *increases* linearly from ``start`` to ``peak`` and drops to
    zero at the critical time.

    Models activities whose value grows with completion time until a hard
    cutoff — e.g. the intercept TUF of the coastal-surveillance application
    in Figure 1(c) of the paper.  Note Theorem 3's caveat: shorter sojourn
    times do not always increase utility for increasing TUFs.
    """

    critical_time: int
    start: float = 0.0
    peak: float = 1.0

    def __post_init__(self) -> None:
        if self.critical_time <= 0:
            raise ValueError("critical_time must be positive")
        if self.peak < self.start:
            raise ValueError("peak must be >= start for a ramp-up shape")
        if self.start < 0:
            raise ValueError("start must be non-negative")

    def utility(self, sojourn: int) -> float:
        if sojourn < 0 or sojourn >= self.critical_time:
            return 0.0
        frac = sojourn / self.critical_time
        return self.start + (self.peak - self.start) * frac

    def _max_utility(self) -> float:
        # The supremum is approached just before the critical time.
        return self.utility(self.critical_time - 1)


@dataclass(frozen=True)
class PiecewiseLinearTUF(TimeUtilityFunction):
    """TUF defined by linear interpolation between ``(time, utility)``
    breakpoints.

    The last breakpoint must carry zero utility and its time is the
    critical time.  Breakpoint times must be strictly increasing, start at
    zero, and utilities must be non-negative.  This is the general shape
    from which Figure 1's application TUFs are built.
    """

    points: tuple[tuple[int, float], ...]
    critical_time: int = field(init=False)

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("need at least two breakpoints")
        if self.points[0][0] != 0:
            raise ValueError("first breakpoint must be at time 0")
        times = [t for t, _ in self.points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("breakpoint times must be strictly increasing")
        if any(u < 0 for _, u in self.points):
            raise ValueError("utilities must be non-negative")
        if self.points[-1][1] != 0:
            raise ValueError("last breakpoint must have zero utility")
        object.__setattr__(self, "critical_time", self.points[-1][0])

    def utility(self, sojourn: int) -> float:
        if sojourn < 0 or sojourn >= self.critical_time:
            return 0.0
        for (t0, u0), (t1, u1) in zip(self.points, self.points[1:]):
            if t0 <= sojourn <= t1:
                if t1 == t0:
                    return u1
                return u0 + (u1 - u0) * (sojourn - t0) / (t1 - t0)
        return 0.0

    def _max_utility(self) -> float:
        return max(u for _, u in self.points)


@dataclass(frozen=True)
class TableTUF(TimeUtilityFunction):
    """TUF sampled on a uniform grid, held constant between samples.

    Useful for importing empirically specified utility profiles.  The value
    for sojourn ``t`` is ``values[t // resolution]``; beyond the table the
    utility is zero and the critical time is ``len(values) * resolution``.
    """

    values: tuple[float, ...]
    resolution: int = 1
    critical_time: int = field(init=False)

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("values must be non-empty")
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")
        if any(v < 0 for v in self.values):
            raise ValueError("utilities must be non-negative")
        object.__setattr__(
            self, "critical_time", len(self.values) * self.resolution
        )

    def utility(self, sojourn: int) -> float:
        if sojourn < 0 or sojourn >= self.critical_time:
            return 0.0
        return self.values[sojourn // self.resolution]

    def _max_utility(self) -> float:
        return max(self.values)


@dataclass(frozen=True)
class ScaledTUF(TimeUtilityFunction):
    """Wrap another TUF, multiplying its utility by a positive factor.

    Lets an application express relative activity importance (the Y-axis of
    the TUF decouples importance from urgency) without redefining shape.
    """

    inner: TimeUtilityFunction
    factor: float
    critical_time: int = field(init=False)

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("factor must be positive")
        object.__setattr__(self, "critical_time", self.inner.critical_time)

    def utility(self, sojourn: int) -> float:
        return self.factor * self.inner.utility(sojourn)

    def _max_utility(self) -> float:
        return self.factor * self.inner.max_utility


@dataclass(frozen=True)
class CompositeMaxTUF(TimeUtilityFunction):
    """Pointwise maximum of several TUFs sharing one critical time.

    The paper requires a *single* critical time, so all components must
    agree on it; this keeps the composite well-formed.
    """

    components: tuple[TimeUtilityFunction, ...]
    critical_time: int = field(init=False)

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("need at least one component")
        times = {c.critical_time for c in self.components}
        if len(times) != 1:
            raise ValueError(
                "all components must share a single critical time; "
                f"got {sorted(times)}"
            )
        object.__setattr__(self, "critical_time", times.pop())

    def utility(self, sojourn: int) -> float:
        return max(c.utility(sojourn) for c in self.components)

    def _max_utility(self) -> float:
        return max(c.max_utility for c in self.components)
