"""Bounded admission queue with UAM-style utility-density shedding.

The paper's UAM admission guard sheds *work* by utility density when the
kernel is overloaded; this is the identical policy one layer up, applied
to HTTP requests.  Each queued request carries a ``priority`` (its
utility) and a ``cost`` estimate (its scenario horizon — long simulations
are expensive); the queue orders service by density ``priority / cost``
and, past a watermark, sheds the *lowest*-density work first:

* below ``watermark`` — every request is admitted;
* at or above ``watermark`` (degraded) — a new request is admitted only
  if it is denser than the sparsest request already queued; otherwise it
  is shed immediately with a 429 and a ``Retry-After`` hint;
* at ``capacity`` (saturated) — admission is only by *eviction*: the
  sparsest queued request is shed to make room for a denser arrival, so
  the queue depth is a hard bound and a flood of cheap low-priority
  requests can never starve a high-priority one.

Shedding is a load signal, not an error: the response tells the client
when to come back, and every shed is counted for ``/metrics``.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["ServeRequest", "AdmissionQueue", "AdmissionDecision"]


class ServeRequest:
    """One in-flight ``POST /simulate``: payload, QoS, and a rendezvous
    between the HTTP handler thread (waits) and a dispatcher (finishes).
    """

    __slots__ = ("scenario_dict", "digest", "priority", "cost",
                 "deadline", "enqueued_at", "_event", "_lock",
                 "status", "body", "cancelled")

    def __init__(self, scenario_dict: dict[str, Any], digest: str, *,
                 priority: float = 1.0, cost: float = 1.0,
                 deadline: float | None = None,
                 enqueued_at: float = 0.0) -> None:
        self.scenario_dict = scenario_dict
        self.digest = digest
        self.priority = float(priority)
        self.cost = max(float(cost), 1.0)
        self.deadline = deadline          # absolute, on the app's clock
        self.enqueued_at = enqueued_at
        self._event = threading.Event()
        self._lock = threading.Lock()
        self.status: int | None = None
        self.body: dict[str, Any] | None = None
        self.cancelled = False

    @property
    def density(self) -> float:
        """UAM utility density: what shedding and service order sort by."""
        return self.priority / self.cost

    def finish(self, status: int, body: dict[str, Any]) -> bool:
        """Deliver the outcome (first writer wins; later calls no-op)."""
        with self._lock:
            if self.status is not None:
                return False
            self.status = status
            self.body = body
        self._event.set()
        return True

    def cancel(self) -> None:
        """Mark abandoned (deadline passed while queued or in flight);
        dispatchers skip cancelled work, and a late finish is ignored."""
        with self._lock:
            self.cancelled = True

    def wait(self, timeout: float | None) -> bool:
        return self._event.wait(timeout)


class AdmissionDecision:
    """Outcome of :meth:`AdmissionQueue.submit`."""

    __slots__ = ("admitted", "shed", "reason")

    def __init__(self, admitted: bool, shed: "ServeRequest | None" = None,
                 reason: str = "") -> None:
        self.admitted = admitted
        #: A *different* request evicted to make room (its waiting
        #: handler thread must be answered 429), or None.
        self.shed = shed
        self.reason = reason


class AdmissionQueue:
    """Bounded, density-ordered queue between handlers and dispatchers."""

    def __init__(self, capacity: int = 64, watermark: int | None = None,
                 retry_after_s: float = 1.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.watermark = capacity if watermark is None \
            else min(watermark, capacity)
        if self.watermark < 1:
            raise ValueError("watermark must be >= 1")
        self.retry_after_s = retry_after_s
        self._items: list[ServeRequest] = []
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False
        self.admitted_total = 0
        self.shed_total = 0
        self.evicted_total = 0

    # ------------------------------------------------------------------
    # Producer side (HTTP handler threads)
    # ------------------------------------------------------------------

    def submit(self, request: ServeRequest) -> AdmissionDecision:
        with self._available:
            if self._closed:
                return AdmissionDecision(False, reason="draining")
            depth = len(self._items)
            if depth < self.watermark:
                self._admit(request)
                return AdmissionDecision(True)
            # Degraded: compare against the sparsest queued request.
            sparsest = min(self._items, key=lambda r: r.density) \
                if self._items else None
            if sparsest is None or request.density <= sparsest.density:
                self.shed_total += 1
                return AdmissionDecision(False, reason="queue_full")
            if depth < self.capacity:
                self._admit(request)
                return AdmissionDecision(True)
            # Saturated: make room by shedding the sparsest entry.
            self._items.remove(sparsest)
            self.evicted_total += 1
            self.shed_total += 1
            self._admit(request)
            return AdmissionDecision(True, shed=sparsest, reason="evicted")

    def _admit(self, request: ServeRequest) -> None:
        self._items.append(request)
        self.admitted_total += 1
        self._available.notify()

    # ------------------------------------------------------------------
    # Consumer side (dispatcher threads)
    # ------------------------------------------------------------------

    def take(self, timeout: float | None = None) -> ServeRequest | None:
        """Pop the densest queued request (UAM service order), or None
        on timeout / after :meth:`close` empties the queue."""
        with self._available:
            while not self._items:
                if self._closed:
                    return None
                if not self._available.wait(timeout):
                    return None
            densest = max(
                enumerate(self._items),
                key=lambda pair: (pair[1].density, -pair[1].enqueued_at,
                                  -pair[0]))
            return self._items.pop(densest[0])

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self) -> list[ServeRequest]:
        """Stop admitting; wake all consumers; return what was queued
        (the drain path answers or journals these)."""
        with self._available:
            self._closed = True
            leftover = list(self._items)
            self._items.clear()
            self._available.notify_all()
        return leftover

    def depth(self) -> int:
        with self._lock:
            return len(self._items)
