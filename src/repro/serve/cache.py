"""Content-addressed simulation-result store.

Results are keyed by :meth:`repro.scenario.Scenario.digest` — a stable
SHA-256 of the scenario's canonical encoding — so a cache hit *is* a
correctness claim: equal digests mean equal declarative scenarios mean
byte-identical ``simulate(scenario)`` output at a fixed code version.
The store therefore refuses to serve anything it cannot re-verify:

* every entry is an envelope ``{digest, payload, payload_sha256}``
  written with :func:`repro.campaign.atomic_write` (readers see either
  the old entry or the complete new one, never a torn hybrid);
* every read re-verifies both the addressed digest and the payload
  checksum; a torn, truncated, bit-flipped or mis-filed entry is
  **quarantined** (moved aside for post-mortem) and reported as a miss,
  so the service recomputes instead of serving garbage;
* the cache directory disappearing mid-run (operator ``rm -rf``, tmpfs
  reaped) degrades to recompute-and-rewrite — never to a failed request.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any

from repro.campaign.io import atomic_write

__all__ = ["ResultCache", "canonical_payload_json", "payload_checksum"]


def canonical_payload_json(payload: dict[str, Any]) -> str:
    """Canonical JSON encoding of a result payload (sorted keys, no
    whitespace) — the byte form that is checksummed, cached and served,
    so every 200 response for a digest is byte-identical."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: dict[str, Any]) -> str:
    return hashlib.sha256(
        canonical_payload_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """Digest-addressed result store under one root directory.

    Layout: ``root/<digest[:2]>/<digest>.json`` (two-level fan-out keeps
    directory listings sane at millions of entries); quarantined entries
    land under ``root/quarantine/``.  All methods are thread-safe; the
    only shared mutable state is the stats counters.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        if len(digest) != 64 or set(digest) - set("0123456789abcdef"):
            raise ValueError(f"not a SHA-256 hex digest: {digest!r}")
        return self.root / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def get(self, digest: str) -> dict[str, Any] | None:
        """The verified payload for ``digest``, or ``None`` (miss).

        Any defect — unreadable file, bad JSON, digest mismatch,
        checksum mismatch — quarantines the entry and reports a miss:
        the caller recomputes and overwrites, so corruption degrades to
        extra work, never to a wrong or failed response.
        """
        path = self.path_for(digest)
        try:
            raw = path.read_text(encoding="utf-8")
        except (FileNotFoundError, NotADirectoryError):
            with self._lock:
                self.misses += 1
            return None
        except OSError:
            # Unreadable (permissions, I/O error): treat as corrupt.
            self._quarantine(path)
            return None
        try:
            envelope = json.loads(raw)
            payload = envelope["payload"]
            if envelope["digest"] != digest:
                raise ValueError("entry addressed under the wrong digest")
            if envelope["payload_sha256"] != payload_checksum(payload):
                raise ValueError("payload checksum mismatch")
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            self._quarantine(path)
            return None
        with self._lock:
            self.hits += 1
        return payload

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def put(self, digest: str, payload: dict[str, Any]) -> Path | None:
        """Store ``payload`` under ``digest`` (atomic replace).

        Best-effort: a write that cannot land (disk gone, permissions)
        is swallowed — the service's answer was already computed and the
        next request simply recomputes.
        """
        path = self.path_for(digest)
        envelope = {
            "digest": digest,
            "payload": payload,
            "payload_sha256": payload_checksum(payload),
        }
        try:
            atomic_write(path, json.dumps(envelope, sort_keys=True,
                                          separators=(",", ":")) + "\n")
        except OSError:
            return None
        with self._lock:
            self.writes += 1
        return path

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------

    def _quarantine(self, path: Path) -> None:
        """Move a defective entry aside (never delete evidence); a
        failed move falls back to unlink so the bad entry cannot be
        served again either way."""
        with self._lock:
            self.corrupt += 1
            self.misses += 1
        quarantine_dir = self.root / "quarantine"
        try:
            quarantine_dir.mkdir(parents=True, exist_ok=True)
            target = quarantine_dir / f"{path.name}.{os.getpid()}"
            suffix = 0
            while target.exists():
                suffix += 1
                target = quarantine_dir / f"{path.name}.{os.getpid()}.{suffix}"
            os.replace(path, target)
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        with self._lock:
            hits, misses = self.hits, self.misses
            stats = {
                "hits": hits,
                "misses": misses,
                "corrupt": self.corrupt,
                "writes": self.writes,
            }
        lookups = hits + misses
        stats["hit_rate"] = (hits / lookups) if lookups else 0.0
        return stats

    def quarantined(self) -> list[Path]:
        try:
            return sorted((self.root / "quarantine").iterdir())
        except (FileNotFoundError, NotADirectoryError):
            return []
